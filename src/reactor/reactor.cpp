#include "reactor/reactor.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "util/clock.hpp"

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>
#define NAPLET_REACTOR_EPOLL 1
#else
#define NAPLET_REACTOR_EPOLL 0
#endif

namespace naplet::reactor {

namespace {
// Longest the loop sleeps with nothing armed: keeps stop() responsive even
// if a wake is somehow lost, costs one spurious pass per quarter second.
constexpr std::int64_t kIdleSliceUs = 250'000;
constexpr int kMaxEpollEvents = 64;
// Spin-then-park budget: a loop that just dispatched usually sees the
// reply to what it sent within tens of microseconds (request/response
// ping-pong), so a short zero-timeout poll catches it without paying the
// park + eventfd-wake round trip. An idle loop parks immediately.
constexpr std::int64_t kSpinUs = 150;
}  // namespace

Reactor::Reactor() = default;

Reactor::~Reactor() { stop(); }

std::int64_t Reactor::now_us() {
  return util::RealClock::instance().now_us();
}

util::Status Reactor::start() {
  util::MutexLock lock(mu_);
  if (running_.load(std::memory_order_relaxed)) return util::OkStatus();
#if NAPLET_REACTOR_EPOLL
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return util::Internal("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return util::Internal("eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  // Microsecond-precision sleeps; optional (the ms epoll timeout is the
  // fallback if timerfd creation fails).
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (timer_fd_ >= 0) {
    epoll_event tev{};
    tev.events = EPOLLIN;
    tev.data.fd = timer_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &tev);
  }
#endif
  stopping_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  // The loop publishes its own tid (under mu_, so it blocks until this
  // start() call releases the lock) before dispatching anything.
  loop_thread_ = std::thread([this] { loop(); });
  return util::OkStatus();
}

void Reactor::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  std::vector<std::function<void()>> leftovers;
  {
    util::MutexLock lock(mu_);
    running_.store(false, std::memory_order_release);
    leftovers.swap(posted_);
    injected_.clear();
    injected_set_.clear();
    loop_tid_ = std::thread::id{};
#if NAPLET_REACTOR_EPOLL
    if (wake_fd_ >= 0) {
      ::close(wake_fd_);
      wake_fd_ = -1;
    }
    if (timer_fd_ >= 0) {
      ::close(timer_fd_);
      timer_fd_ = -1;
    }
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
      epoll_fd_ = -1;
    }
#endif
  }
  // Posted closures are guaranteed to run exactly once (remove_handler
  // barriers depend on it), so drain stragglers on the stopping thread.
  for (auto& fn : leftovers) fn();
}

bool Reactor::on_loop_thread() const {
  util::MutexLock lock(mu_);
  return loop_tid_ == std::this_thread::get_id();
}

bool Reactor::running() const {
  return running_.load(std::memory_order_acquire);
}

void Reactor::add_handler(EventHandler* h) {
  util::MutexLock lock(mu_);
  handlers_.insert(h);
}

util::Status Reactor::add_fd(int fd, EventHandler* h, std::uint32_t events) {
#if NAPLET_REACTOR_EPOLL
  util::MutexLock lock(mu_);
  if (epoll_fd_ < 0) return util::FailedPrecondition("reactor not started");
  epoll_event ev{};
  ev.events = 0;
  if (events & kReadable) ev.events |= EPOLLIN;
  if (events & kWritable) ev.events |= EPOLLOUT;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return util::Internal("epoll_ctl(ADD) failed");
  }
  handlers_.insert(h);
  fds_[fd] = FdReg{h, events};
  return util::OkStatus();
#else
  (void)fd;
  (void)h;
  (void)events;
  return util::Unavailable("fd readiness requires epoll (Linux)");
#endif
}

void Reactor::del_fd(int fd) {
  util::MutexLock lock(mu_);
#if NAPLET_REACTOR_EPOLL
  if (epoll_fd_ >= 0 && fds_.count(fd) != 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  fds_.erase(fd);
}

void Reactor::remove_handler(EventHandler* h) {
  bool need_barrier = false;
  {
    util::MutexLock lock(mu_);
    handlers_.erase(h);
    injected_set_.erase(h);
    injected_.erase(std::remove(injected_.begin(), injected_.end(), h),
                    injected_.end());
    for (auto it = fds_.begin(); it != fds_.end();) {
      if (it->second.handler == h) {
#if NAPLET_REACTOR_EPOLL
        if (epoll_fd_ >= 0) {
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->first, nullptr);
        }
#endif
        it = fds_.erase(it);
      } else {
        ++it;
      }
    }
    need_barrier = running_.load(std::memory_order_relaxed) &&
                   loop_tid_ != std::this_thread::get_id();
  }
  if (!need_barrier) return;
  // Quiesce: the loop validates registration per dispatch, so once it has
  // processed a barrier posted after the erasure above, no on_ready(h) is
  // in flight. post() runs the closure inline if the loop already stopped.
  auto barrier = std::make_shared<util::Event>();
  post([barrier] { barrier->set(); });
  barrier->wait();
}

void Reactor::notify(EventHandler* h) {
  bool wake_loop = false;
  {
    util::MutexLock lock(mu_);
    if (handlers_.count(h) == 0) return;
    if (injected_set_.insert(h).second) {
      injected_.push_back(h);
      // Only a parked loop needs the eventfd poke: an awake loop
      // re-checks the queue under mu_ before it parks (see loop()).
      wake_loop = running_.load(std::memory_order_relaxed) &&
                  parked_.load(std::memory_order_relaxed);
    }
  }
  if (wake_loop) wake();
}

void Reactor::post(std::function<void()> fn) {
  bool inline_run = false;
  bool wake_loop = false;
  {
    util::MutexLock lock(mu_);
    if (running_.load(std::memory_order_relaxed)) {
      posted_.push_back(std::move(fn));
      wake_loop = parked_.load(std::memory_order_relaxed);
    } else {
      inline_run = true;
    }
  }
  if (inline_run) {
    fn();
  } else if (wake_loop) {
    wake();
  }
}

TimerId Reactor::schedule_at_us(std::int64_t deadline_us,
                                std::function<void()> fn) {
  const TimerId id = wheel_.schedule_at(deadline_us, std::move(fn));
  if (running_.load(std::memory_order_acquire) &&
      deadline_us < sleep_until_us_.load(std::memory_order_relaxed)) {
    wake();
  }
  return id;
}

TimerId Reactor::schedule(util::Duration delay, std::function<void()> fn) {
  return schedule_at_us(now_us() + delay.count(), std::move(fn));
}

bool Reactor::cancel_timer(TimerId id) { return wheel_.cancel(id); }

void Reactor::bind_instruments(const ReactorInstruments& ins) {
  instruments_ = ins;
}

void Reactor::wake() {
#if NAPLET_REACTOR_EPOLL
  int fd = -1;
  {
    util::MutexLock lock(mu_);
    fd = wake_fd_;
  }
  if (fd >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] auto n = ::write(fd, &one, sizeof(one));
  }
#else
  wake_event_.set();
#endif
}

std::size_t Reactor::drain_injected() {
  {
    util::MutexLock lock(mu_);
    scratch_ready_.swap(injected_);
    injected_set_.clear();
    scratch_fns_.swap(posted_);
  }
  for (auto& fn : scratch_fns_) fn();
  scratch_fns_.clear();
  std::size_t dispatched = 0;
  for (EventHandler* h : scratch_ready_) {
    bool live;
    {
      util::MutexLock lock(mu_);
      live = handlers_.count(h) != 0;
    }
    if (live) {
      h->on_ready(kReadable);
      ++dispatched;
    }
  }
  scratch_ready_.clear();
  return dispatched;
}

void Reactor::loop() {
  {
    util::MutexLock lock(mu_);
    loop_tid_ = std::this_thread::get_id();
  }
  bool active = true;  // did the previous pass dispatch anything?
  while (!stopping_.load(std::memory_order_acquire)) {
    const std::int64_t now = now_us();
    // Timer lateness: how far past the earliest armed deadline we woke.
    if (instruments_.loop_lag_us) {
      const auto next = wheel_.next_deadline_us();
      if (next && *next <= now) {
        instruments_.loop_lag_us->record(
            static_cast<std::uint64_t>(now - *next));
      }
    }
    const std::size_t fired = wheel_.advance_to(now);

    const std::size_t batch = drain_injected();
    if (instruments_.dispatch_batch && batch > 0) {
      instruments_.dispatch_batch->record(batch);
    }

    // Sleep until the next deadline — or not at all if more work arrived
    // while dispatching.
    bool more;
    {
      util::MutexLock lock(mu_);
      more = !injected_.empty() || !posted_.empty();
    }
    const std::int64_t after = now_us();
    std::int64_t sleep_us = kIdleSliceUs;
    if (const auto next = wheel_.next_deadline_us()) {
      sleep_us = std::clamp<std::int64_t>(*next - after, 0, kIdleSliceUs);
    }
    if (more) sleep_us = 0;
    sleep_until_us_.store(after + sleep_us, std::memory_order_relaxed);

#if NAPLET_REACTOR_EPOLL
    epoll_event evs[kMaxEpollEvents];
    int n = 0;
    // Spin-then-park. notify()/post()/wake() all write the eventfd, so a
    // zero-timeout epoll_wait observes every wake source — the spin needs
    // no extra signaling. Only worth it when another core can produce
    // work during the spin; on a single CPU it just steals the producer's
    // timeslice.
    static const bool spin_ok = std::thread::hardware_concurrency() > 1;
    if (spin_ok && active && sleep_us > 0) {
      const std::int64_t spin_until =
          after + std::min<std::int64_t>(sleep_us, kSpinUs);
      while (n == 0 && now_us() < spin_until &&
             !stopping_.load(std::memory_order_relaxed)) {
        n = ::epoll_wait(epoll_fd_, evs, kMaxEpollEvents, 0);
      }
    }
    if (n == 0) {
      // Park. epoll's timeout is millisecond-granular; the timerfd
      // carries the exact sub-ms deadline, with the ceiled ms timeout
      // kept as backstop. The spin consumed part of the sleep budget, so
      // re-measure against the original wake-up instant.
      std::int64_t remaining =
          std::max<std::int64_t>(0, after + sleep_us - now_us());
      if (remaining > 0) {
        // The park handshake with notify()/post(): verify the queues are
        // still empty and publish parked_ in one critical section, so a
        // producer either sees parked_ (and writes the eventfd) or its
        // enqueue is visible here (and we don't block).
        util::MutexLock lock(mu_);
        if (!injected_.empty() || !posted_.empty()) {
          remaining = 0;
        } else {
          parked_.store(true, std::memory_order_relaxed);
        }
      }
      const int timeout_ms = static_cast<int>((remaining + 999) / 1000);
      if (timer_fd_ >= 0 && remaining > 0) {
        // Re-arm only when the wake-up instant moved: the armed kernel
        // timer survives eventfd wakes, and a fired timer always changes
        // the wheel's next deadline (the fire consumes the wheel entry).
        const std::int64_t target = after + sleep_us;
        if (target != timerfd_target_us_) {
          itimerspec its{};
          its.it_value.tv_sec = remaining / 1'000'000;
          its.it_value.tv_nsec = (remaining % 1'000'000) * 1'000;
          ::timerfd_settime(timer_fd_, 0, &its, nullptr);
          timerfd_target_us_ = target;
        }
      }
      n = ::epoll_wait(epoll_fd_, evs, kMaxEpollEvents, timeout_ms);
      parked_.store(false, std::memory_order_relaxed);
    }
    for (int i = 0; i < n; ++i) {
      const int fd = evs[i].data.fd;
      if (fd == wake_fd_ || fd == timer_fd_) {
        std::uint64_t drained;
        [[maybe_unused]] auto r = ::read(fd, &drained, sizeof(drained));
        // A consumed expiration disarms the kernel timer.
        if (fd == timer_fd_) timerfd_target_us_ = 0;
        continue;
      }
      EventHandler* h = nullptr;
      {
        util::MutexLock lock(mu_);
        auto it = fds_.find(fd);
        if (it != fds_.end()) h = it->second.handler;
      }
      if (h == nullptr) continue;
      std::uint32_t bits = 0;
      if (evs[i].events & EPOLLIN) bits |= kReadable;
      if (evs[i].events & EPOLLOUT) bits |= kWritable;
      if (evs[i].events & (EPOLLERR | EPOLLHUP)) bits |= kError;
      h->on_ready(bits);
    }
    active = fired > 0 || batch > 0 || n > 0;
#else
    if (sleep_us > 0) {
      bool park = false;
      {
        util::MutexLock lock(mu_);
        if (injected_.empty() && posted_.empty()) {
          parked_.store(true, std::memory_order_relaxed);
          park = true;
        }
      }
      if (park) wake_event_.wait_for(util::us(sleep_us));
      parked_.store(false, std::memory_order_relaxed);
    }
    wake_event_.reset();
    active = fired > 0 || batch > 0;
#endif
  }
}

}  // namespace naplet::reactor
