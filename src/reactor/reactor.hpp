// Event-driven reactor core (DESIGN.md §15): a single epoll loop plus the
// hierarchical timer wheel, serving fd readiness, fd-less readiness
// injections (SimNet delivery callbacks), deadline timers, and posted
// closures — all dispatched in batches on one loop thread.
//
// The design splits cleanly along the ISSUE-10 requirements:
//
//  * EventHandler is the one dispatch interface. Real sockets reach it
//    through epoll (add_fd); SimNet reaches the *same* interface through
//    notify(), so DES tests exercise identical dispatch code.
//  * Timers live in the TimerWheel and fire on the loop thread; the loop
//    sleeps in epoll_wait exactly until the next deadline, so an idle
//    reactor burns zero CPU — no per-deadline sleep_for threads.
//  * Handler removal is quiesced: remove_handler()/del_fd() do not return
//    (when called off-loop) until the loop has passed a barrier, after
//    which no on_ready() for that handler is running or will run. That is
//    the guarantee that makes rudp detach and controller stop safe.
//
// Locking: mu_ (rank kReactor) guards the handler tables and injected
// ready/post lists and is never held across a callback; the wheel has its
// own rank-kReactorTimer lock with the same discipline. Callbacks may
// therefore take any outer-rank lock (controller, session, rudp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "reactor/timer_wheel.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::obs {
class Histogram;
}  // namespace naplet::obs

namespace naplet::reactor {

/// Readiness bits passed to EventHandler::on_ready.
inline constexpr std::uint32_t kReadable = 0x1;
inline constexpr std::uint32_t kWritable = 0x2;
inline constexpr std::uint32_t kError = 0x4;

/// The one dispatch interface: implemented by rudp's receive glue, the
/// redirector sweep, and anything else the loop serves. on_ready runs on
/// the loop thread and must not block indefinitely.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void on_ready(std::uint32_t events) = 0;
};

/// Instruments are owned by the embedding layer (the controller registers
/// them by name so the analyzer's bench/src cross-check sees the strings).
struct ReactorInstruments {
  obs::Histogram* loop_lag_us = nullptr;     ///< timer fire lateness
  obs::Histogram* dispatch_batch = nullptr;  ///< handlers per loop pass
};

class Reactor {
 public:
  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawn the loop thread. Idempotent.
  util::Status start();

  /// Stop and join the loop. Pending timers are dropped; registered
  /// handlers are forgotten (their owners outlive the reactor by the
  /// documented teardown order: detach first, then stop()).
  void stop();

  /// Register `h` for fd-less readiness injections (notify()).
  void add_handler(EventHandler* h);

  /// Watch `fd` for `events` (kReadable/kWritable), dispatching to `h`.
  /// Also registers `h` as with add_handler.
  util::Status add_fd(int fd, EventHandler* h, std::uint32_t events);

  /// Stop watching `fd`. Does NOT quiesce the handler; pair with
  /// remove_handler for that.
  void del_fd(int fd);

  /// Unregister `h` everywhere and quiesce: when this returns, no
  /// on_ready(h) is running or will run. Callable from the loop thread
  /// itself (no barrier needed there) or any other thread.
  void remove_handler(EventHandler* h);

  /// Inject readiness for a registered handler (SimNet delivery path).
  /// Coalesces: a handler already marked ready is not queued twice.
  void notify(EventHandler* h);

  /// Run `fn` once on the loop thread, as soon as possible.
  void post(std::function<void()> fn);

  /// Arm a timer at absolute steady-clock microseconds (see now_us()).
  TimerId schedule_at_us(std::int64_t deadline_us, std::function<void()> fn);
  /// Arm a timer `delay` from now.
  TimerId schedule(util::Duration delay, std::function<void()> fn);
  bool cancel_timer(TimerId id);

  /// The reactor's time base: RealClock (steady) microseconds — the same
  /// base SimNet stamps delivery times in, so next_ready_us() hints from
  /// sim datagrams can be fed straight into schedule_at_us.
  [[nodiscard]] static std::int64_t now_us();

  [[nodiscard]] bool on_loop_thread() const;
  [[nodiscard]] bool running() const;

  /// Direct access to the wheel (tests; DES drivers advance it manually
  /// only when the loop is not running).
  TimerWheel& wheel() { return wheel_; }

  void bind_instruments(const ReactorInstruments& ins);

 private:
  struct FdReg {
    EventHandler* handler = nullptr;
    std::uint32_t events = 0;
  };

  void loop();
  void wake();
  /// Dispatch one batch of injected readiness + posted closures.
  /// Returns the number of handlers dispatched.
  std::size_t drain_injected();

  mutable util::Mutex mu_{util::LockRank::kReactor, "reactor"};
  std::unordered_set<EventHandler*> handlers_ NAPLET_GUARDED_BY(mu_);
  std::unordered_map<int, FdReg> fds_ NAPLET_GUARDED_BY(mu_);
  std::vector<EventHandler*> injected_ NAPLET_GUARDED_BY(mu_);
  std::unordered_set<EventHandler*> injected_set_ NAPLET_GUARDED_BY(mu_);
  std::vector<std::function<void()>> posted_ NAPLET_GUARDED_BY(mu_);
  /// Loop-thread scratch, swapped with the queues above each pass so the
  /// hot path reuses their capacity instead of reallocating. Touched only
  /// by the loop thread (drain_injected), so no guard.
  std::vector<EventHandler*> scratch_ready_;  // analyze-ignore(unguarded-member)
  std::vector<std::function<void()>> scratch_fns_;  // analyze-ignore(unguarded-member)

  /// Anchored at construction so the loop's first advance_to does not
  /// replay the machine's whole uptime in 1 ms ticks. Internally
  /// synchronized (owns its own rank-kReactorTimer mutex).
  TimerWheel wheel_{Reactor::now_us()};  // analyze-ignore(unguarded-member)

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// True only while the loop is blocked in epoll_wait with a nonzero
  /// timeout. Set under mu_ in the same critical section that verifies
  /// the injected/posted queues are empty, so notify()/post() either see
  /// parked_ and write the eventfd, or enqueue before the park check and
  /// the loop skips the park — no lost wakeup either way. Skipping the
  /// eventfd write while the loop is awake removes two syscalls from
  /// every busy-path dispatch (notify is called under the sim pipe lock,
  /// so the saving also shortens that critical section).
  std::atomic<bool> parked_{false};
  std::atomic<std::int64_t> sleep_until_us_{0};
  std::thread::id loop_tid_ NAPLET_GUARDED_BY(mu_);
  std::thread loop_thread_;

  // The fds are opened in start() and closed in stop(); const in between,
  // so loop-thread reads need no lock.
  int epoll_fd_ = -1;   // -1 when epoll is unavailable  analyze-ignore(unguarded-member)
  int wake_fd_ = -1;    // eventfd; always watched  analyze-ignore(unguarded-member)
  /// timerfd armed each pass at the next wheel deadline: epoll_wait's
  /// timeout is millisecond-granular, the timerfd is not — without it
  /// every sub-ms sleep overshoots by up to 1 ms per message hop.
  int timer_fd_ = -1;   // analyze-ignore(unguarded-member)
  /// Absolute wake-up instant the timerfd is currently armed for; 0 when
  /// disarmed (or after its expiration was consumed). Lets the park path
  /// skip timerfd_settime when the next deadline has not moved. Loop
  /// thread only.
  std::int64_t timerfd_target_us_ = 0;  // analyze-ignore(unguarded-member)
  /// Fallback wake when epoll/eventfd are unavailable (non-Linux): the
  /// loop sleeps on this event instead of epoll_wait.
  util::Event wake_event_;

  /// Pointers into the obs registry; bound before start() (documented on
  /// bind_instruments) and read only by the loop thread after that.
  ReactorInstruments instruments_;  // analyze-ignore(unguarded-member)
};

}  // namespace naplet::reactor
