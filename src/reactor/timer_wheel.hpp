// Hierarchical timer wheel for the reactor core (DESIGN.md §15): absorbs
// the rudp RTO/fec-flush, redirector lease-TTL, recovery probe, and
// resume-retry deadlines that previously each burned a sleep_for/condvar
// wait on a dedicated thread.
//
// The wheel is clock-agnostic: it never reads a clock itself. A driver —
// the Reactor loop on steady time, or a DES harness on virtual time —
// calls advance_to(now_us) and the wheel fires everything due, cascading
// entries down the levels as the horizon rolls forward. That single design
// choice is what lets SimNet tests drive the exact same timer code from
// deterministic virtual time.
//
// Four levels of 256 slots at ~1 ms ticks cover horizons from 1 ms to
// ~50 days; entries beyond the top level clamp to the outermost slot and
// re-cascade (schedule_at keeps the true deadline, so nothing fires early).
// Callbacks are invoked with the wheel lock RELEASED — a callback may
// freely schedule or cancel timers, including on this wheel.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::reactor {

/// Opaque timer handle; 0 is never a live timer.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class TimerWheel {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kSlotsPerLevel = 256;
  /// Tick resolution. 1024 us ≈ 1 ms, and a power of two keeps the
  /// tick-index math to shifts.
  static constexpr std::int64_t kTickUs = 1024;

  /// `start_us` anchors tick 0; pass the driving clock's current reading
  /// so the first advance_to does not replay a huge idle span.
  explicit TimerWheel(std::int64_t start_us = 0);

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arm `fn` to fire at absolute `deadline_us` (same time base as the
  /// driver's advance_to calls). Past deadlines fire on the next advance.
  TimerId schedule_at(std::int64_t deadline_us, std::function<void()> fn);

  /// Disarm. Returns false if the timer already fired or never existed.
  /// Safe to call from a timer callback (including for the firing timer,
  /// which is already gone by then — returns false). A timer that is due
  /// in the SAME advance_to batch but has not fired yet is still
  /// cancellable: cancel returns true and its callback will not run.
  bool cancel(TimerId id);

  /// Roll time forward to `now_us`, firing every due callback (with the
  /// wheel lock released, in deadline order). Returns the number fired.
  /// Time never moves backwards; stale `now_us` values are ignored.
  std::size_t advance_to(std::int64_t now_us);

  /// Earliest pending deadline, or nullopt when nothing is armed. Exact
  /// (not slot-granular): the driver can sleep precisely until it.
  [[nodiscard]] std::optional<std::int64_t> next_deadline_us() const;

  /// Number of armed (not yet fired) timers.
  [[nodiscard]] std::size_t pending() const;

  /// Current wheel time (last advance_to / construction anchor).
  [[nodiscard]] std::int64_t now_us() const;

 private:
  struct Entry {
    TimerId id = kInvalidTimer;
    std::int64_t deadline_tick = 0;
    std::int64_t deadline_us = 0;
    std::function<void()> fn;
  };
  using SlotList = std::list<Entry>;
  /// level == kOverdue marks the already-due list (slot unused).
  static constexpr int kOverdue = -1;
  struct Location {
    int level = 0;
    int slot = 0;
    SlotList::iterator it;
  };

  void insert_locked(Entry entry) NAPLET_REQUIRES(mu_);
  void cascade_locked(int level, int slot, std::vector<Entry>& due)
      NAPLET_REQUIRES(mu_);
  /// Drop `id`'s pair from the deadline mirror.
  void erase_deadline_locked(std::int64_t deadline_us, TimerId id)
      NAPLET_REQUIRES(mu_);

  mutable util::Mutex mu_{util::LockRank::kReactorTimer, "reactor.timer"};
  SlotList slots_[kLevels][kSlotsPerLevel] NAPLET_GUARDED_BY(mu_);
  /// Entries whose deadline had already passed at schedule time: the
  /// current tick's slot has been swept, so they park here and fire on
  /// the very next advance_to (even one that crosses no tick boundary).
  SlotList overdue_ NAPLET_GUARDED_BY(mu_);
  std::unordered_map<TimerId, Location> live_ NAPLET_GUARDED_BY(mu_);
  /// Ids collected as due by an in-progress advance_to but not yet fired.
  /// cancel() moves an id from here to fire_cancelled_, and the firing
  /// pass then skips it — so cancelling a same-batch peer from a callback
  /// still prevents its run.
  std::unordered_set<TimerId> firing_ NAPLET_GUARDED_BY(mu_);
  std::unordered_set<TimerId> fire_cancelled_ NAPLET_GUARDED_BY(mu_);
  /// Exact deadline → id mirror. Serves two purposes: next_deadline_us()
  /// is O(1) and precise, and advance_to's exact sweep fires entries at
  /// their microsecond deadline instead of the next tick boundary — the
  /// driver sleeps until the exact deadline, so without the sweep every
  /// timer would land up to one tick (~1 ms) late.
  std::multimap<std::int64_t, TimerId> deadlines_ NAPLET_GUARDED_BY(mu_);
  std::int64_t current_tick_ NAPLET_GUARDED_BY(mu_) = 0;
  TimerId next_id_ NAPLET_GUARDED_BY(mu_) = 1;
};

}  // namespace naplet::reactor
