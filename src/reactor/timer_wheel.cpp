#include "reactor/timer_wheel.hpp"

#include <algorithm>
#include <vector>

namespace naplet::reactor {

namespace {

// Span (in ticks) covered by one slot of `level`: 256^level.
constexpr std::int64_t slot_span(int level) {
  std::int64_t span = 1;
  for (int i = 0; i < level; ++i) span *= TimerWheel::kSlotsPerLevel;
  return span;
}

// Span (in ticks) covered by the whole of `level`: 256^(level+1).
constexpr std::int64_t level_span(int level) {
  return slot_span(level) * TimerWheel::kSlotsPerLevel;
}

constexpr std::int64_t tick_of(std::int64_t t_us) {
  // Ceil so an entry never fires before its microsecond deadline.
  return (t_us + TimerWheel::kTickUs - 1) / TimerWheel::kTickUs;
}

}  // namespace

TimerWheel::TimerWheel(std::int64_t start_us) {
  util::MutexLock lock(mu_);
  current_tick_ = start_us / kTickUs;
}

void TimerWheel::insert_locked(Entry entry) {
  const std::int64_t delta = entry.deadline_tick - current_tick_;
  if (delta <= 0) {
    // Already due: the current tick's slot has been swept, so park in the
    // overdue list — drained at the top of every advance_to.
    const TimerId id = entry.id;
    overdue_.push_back(std::move(entry));
    live_[id] = Location{kOverdue, 0, std::prev(overdue_.end())};
    return;
  }
  int level = kLevels - 1;
  for (int l = 0; l < kLevels; ++l) {
    if (delta < level_span(l)) {
      level = l;
      break;
    }
  }
  // Beyond the outermost horizon: clamp the *placement* to the far edge;
  // the true deadline_tick is kept, so the entry simply re-cascades when
  // its clamped slot comes up.
  const std::int64_t placement_tick =
      std::min<std::int64_t>(entry.deadline_tick,
                             current_tick_ + level_span(kLevels - 1) - 1);
  const int slot = static_cast<int>((placement_tick / slot_span(level)) %
                                    kSlotsPerLevel);
  const TimerId id = entry.id;
  SlotList& list = slots_[level][slot];
  list.push_back(std::move(entry));
  live_[id] = Location{level, slot, std::prev(list.end())};
}

TimerId TimerWheel::schedule_at(std::int64_t deadline_us,
                                std::function<void()> fn) {
  util::MutexLock lock(mu_);
  Entry entry;
  entry.id = next_id_++;
  entry.deadline_us = deadline_us;
  entry.deadline_tick = tick_of(deadline_us);
  entry.fn = std::move(fn);
  deadlines_.emplace(deadline_us, entry.id);
  const TimerId id = entry.id;
  insert_locked(std::move(entry));
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  util::MutexLock lock(mu_);
  auto it = live_.find(id);
  if (it == live_.end()) {
    // Collected as due by an advance_to still in its firing pass: flag it
    // so that pass skips the callback. True means "will not run".
    if (firing_.erase(id) != 0) {
      fire_cancelled_.insert(id);
      return true;
    }
    return false;
  }
  const Location& loc = it->second;
  erase_deadline_locked(loc.it->deadline_us, id);
  if (loc.level == kOverdue) {
    overdue_.erase(loc.it);
  } else {
    slots_[loc.level][loc.slot].erase(loc.it);
  }
  live_.erase(it);
  return true;
}

void TimerWheel::erase_deadline_locked(std::int64_t deadline_us, TimerId id) {
  auto range = deadlines_.equal_range(deadline_us);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == id) {
      deadlines_.erase(it);
      return;
    }
  }
}

void TimerWheel::cascade_locked(int level, int slot, std::vector<Entry>& due) {
  SlotList pulled;
  pulled.swap(slots_[level][slot]);
  for (Entry& entry : pulled) {
    live_.erase(entry.id);
    if (entry.deadline_tick <= current_tick_) {
      erase_deadline_locked(entry.deadline_us, entry.id);
      due.push_back(std::move(entry));
    } else {
      insert_locked(std::move(entry));
    }
  }
}

std::size_t TimerWheel::advance_to(std::int64_t now_us) {
  std::vector<Entry> due;
  {
    util::MutexLock lock(mu_);
    for (Entry& entry : overdue_) {
      live_.erase(entry.id);
      erase_deadline_locked(entry.deadline_us, entry.id);
      due.push_back(std::move(entry));
    }
    overdue_.clear();
    const std::int64_t target_tick = now_us / kTickUs;
    while (current_tick_ < target_tick) {
      ++current_tick_;
      // When a level's index wraps, pull the next outer slot down
      // (outermost first so entries sift through every level in one pass).
      for (int level = kLevels - 1; level >= 1; --level) {
        if (current_tick_ % slot_span(level) == 0) {
          cascade_locked(
              level,
              static_cast<int>((current_tick_ / slot_span(level)) %
                               kSlotsPerLevel),
              due);
        }
      }
      cascade_locked(0, static_cast<int>(current_tick_ % kSlotsPerLevel),
                     due);
    }
    // Exact sweep: tick assignment ceils, so an entry due at `now_us` but
    // mid-tick still sits in a future slot. The driver sleeps until the
    // exact deadline (next_deadline_us); without this sweep every such
    // timer would fire up to one tick late — and the driver would spin
    // with zero-timeout polls until the boundary. Pull anything due by
    // microseconds straight out of its slot.
    while (!deadlines_.empty() && deadlines_.begin()->first <= now_us) {
      const auto head = deadlines_.begin();
      auto lit = live_.find(head->second);
      // live_ and deadlines_ are updated together; a pair here always has
      // a live entry.
      const Location& loc = lit->second;
      Entry entry = std::move(*loc.it);
      if (loc.level == kOverdue) {
        overdue_.erase(loc.it);
      } else {
        slots_[loc.level][loc.slot].erase(loc.it);
      }
      live_.erase(lit);
      deadlines_.erase(head);
      due.push_back(std::move(entry));
    }
    for (const Entry& entry : due) firing_.insert(entry.id);
  }
  std::stable_sort(due.begin(), due.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.deadline_us < b.deadline_us;
                   });
  std::size_t fired = 0;
  for (Entry& entry : due) {
    bool skip;
    {
      util::MutexLock lock(mu_);
      skip = fire_cancelled_.erase(entry.id) != 0;
      firing_.erase(entry.id);
    }
    if (skip) continue;
    if (entry.fn) {
      entry.fn();
      ++fired;
    }
  }
  return fired;
}

std::optional<std::int64_t> TimerWheel::next_deadline_us() const {
  util::MutexLock lock(mu_);
  if (deadlines_.empty()) return std::nullopt;
  return deadlines_.begin()->first;
}

std::size_t TimerWheel::pending() const {
  util::MutexLock lock(mu_);
  return live_.size();
}

std::int64_t TimerWheel::now_us() const {
  util::MutexLock lock(mu_);
  return current_tick_ * kTickUs;
}

}  // namespace naplet::reactor
