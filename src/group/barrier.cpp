#include "group/barrier.hpp"

#include "fault/fault.hpp"

namespace naplet::group {

std::string_view to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kCommit: return "COMMIT";
    case Verdict::kAbort: return "ABORT";
  }
  return "?";
}

GroupBarrier::GroupBarrier(std::uint64_t group_id, std::size_t member_count)
    : group_id_(group_id), total_(member_count) {}

bool GroupBarrier::arrive() {
  const fault::Decision d = fault::hit("group.barrier");
  util::MutexLock lock(mu_);
  if (d.action == fault::Action::kError ||
      d.action == fault::Action::kKill) {
    if (!failed_ && arrived_ < total_) {
      failed_ = true;
      reason_ = "fault: barrier arrival failed";
      cv_.notify_all();
    }
    return false;
  }
  if (failed_) return false;
  ++arrived_;
  if (arrived_ >= total_) cv_.notify_all();
  return true;
}

void GroupBarrier::fail(std::string reason) {
  util::MutexLock lock(mu_);
  // After the barrier trips the cut is taken; only the verdict matters.
  if (failed_ || arrived_ >= total_) return;
  failed_ = true;
  reason_ = std::move(reason);
  cv_.notify_all();
}

bool GroupBarrier::cancelled() const {
  util::MutexLock lock(mu_);
  return failed_;
}

std::string GroupBarrier::failure() const {
  util::MutexLock lock(mu_);
  return reason_;
}

bool GroupBarrier::await_prepared(util::Duration timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  util::MutexLock lock(mu_);
  while (!failed_ && arrived_ < total_) {
    if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) break;
  }
  if (arrived_ >= total_ && !failed_) return true;
  if (!failed_) {
    // Timeout: fail the barrier so late arrivers see it and bail out
    // instead of parking their streams against a dead coordinator.
    failed_ = true;
    reason_ = "prepare barrier timed out";
    cv_.notify_all();
  }
  return false;
}

void GroupBarrier::resolve(Verdict verdict) {
  util::MutexLock lock(mu_);
  verdict_ = verdict;
  cv_.notify_all();
}

std::optional<Verdict> GroupBarrier::await_verdict(util::Duration timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  util::MutexLock lock(mu_);
  while (!verdict_) {
    if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) break;
  }
  return verdict_;
}

}  // namespace naplet::group
