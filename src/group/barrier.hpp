// Checkpoint barrier for atomic whole-agent group suspend.
//
// One GroupBarrier choreographs phase 1 (*prepare*) of a group suspend:
// the coordinator spawns one worker per member connection, each sends SUS
// carrying the group id, drains its stream to the peer's declared mark,
// and then calls arrive(). The barrier trips when every member has
// arrived cleanly — that instant is the group's consistent cut — after
// which the coordinator performs phase 2 (*commit*: journal group-prepare
// then group-commit through the DurableStore) and resolves the barrier
// with a verdict so any observer knows whether the cut survived.
//
// Any member may fail() the barrier instead (peer refused, timed out, or
// the session was aborted mid-prepare); the first failure wins, is
// remembered by reason, and wakes everyone immediately — the coordinator
// then rolls the whole group back. fail() after the barrier has tripped
// is ignored: the cut is already taken and only the commit verdict
// matters from then on.
//
// Lock rank: kGroupBarrier (9), between the coordinator registry lock (7)
// and the controller lock (10). No controller or session call is ever
// made under the barrier lock; fault::hit (rank 90) under it is legal.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/clock.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::group {

/// Outcome of phase 2, published by the coordinator once it is decided.
enum class Verdict : std::uint8_t {
  kCommit = 1,  ///< group journaled prepare+commit; members may export
  kAbort = 2,   ///< group rolled back; members are ESTABLISHED again
};

[[nodiscard]] std::string_view to_string(Verdict verdict) noexcept;

class GroupBarrier {
 public:
  GroupBarrier(std::uint64_t group_id, std::size_t member_count);

  GroupBarrier(const GroupBarrier&) = delete;
  GroupBarrier& operator=(const GroupBarrier&) = delete;

  [[nodiscard]] std::uint64_t group_id() const noexcept { return group_id_; }
  [[nodiscard]] std::size_t member_count() const noexcept { return total_; }

  /// A member worker reached its cut point (SUS acked, stream drained to
  /// the peer's declared mark). Returns false when the barrier is already
  /// cancelled — the worker must not park its stream in that case.
  /// Weaves the "group.barrier" fault site: an injected error or kill
  /// fails the barrier instead of arriving.
  [[nodiscard]] bool arrive();

  /// A member (or abort_session racing the prepare) vetoes the group.
  /// First failure wins; every waiter wakes immediately.
  void fail(std::string reason);

  /// True once fail() has been called (and the barrier had not tripped).
  [[nodiscard]] bool cancelled() const;

  /// First failure reason, empty when none.
  [[nodiscard]] std::string failure() const;

  /// Coordinator side: block until every member arrived cleanly (true) or
  /// the barrier failed / `timeout` elapsed (false; a timeout fails the
  /// barrier so late arrivers don't park forever).
  [[nodiscard]] bool await_prepared(util::Duration timeout);

  /// Coordinator publishes the phase-2 outcome, waking verdict waiters.
  void resolve(Verdict verdict);

  /// Wait for the phase-2 verdict; nullopt on timeout.
  [[nodiscard]] std::optional<Verdict> await_verdict(util::Duration timeout);

 private:
  const std::uint64_t group_id_;
  const std::size_t total_;

  mutable util::Mutex mu_{util::LockRank::kGroupBarrier, "group_barrier"};
  util::CondVar cv_;
  std::size_t arrived_ NAPLET_GUARDED_BY(mu_) = 0;
  bool failed_ NAPLET_GUARDED_BY(mu_) = false;
  std::string reason_ NAPLET_GUARDED_BY(mu_);
  std::optional<Verdict> verdict_ NAPLET_GUARDED_BY(mu_);
};

}  // namespace naplet::group
