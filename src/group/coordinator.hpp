// Registry of in-flight whole-agent group suspends.
//
// The SocketController runs at most one group suspend per agent at a
// time; this registry hands out the group's barrier and, crucially, lets
// *other* control-plane paths veto a group they discover mid-flight:
// abort_session() racing an in-flight prepare looks its connection up
// here and cancels the member, which fails the barrier and wakes every
// parked worker bounded — the PR-4/PR-5 waiter-wake contract extended to
// the group path (ISSUE 9 satellite 2).
//
// Lock rank: kGroupCoordinator (7). cancel_member() takes the registry
// lock and then the barrier lock (rank 9) — the only place the two nest —
// and never calls into controller or session code under either.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "group/barrier.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::group {

class GroupSuspendCoordinator {
 public:
  GroupSuspendCoordinator() = default;

  GroupSuspendCoordinator(const GroupSuspendCoordinator&) = delete;
  GroupSuspendCoordinator& operator=(const GroupSuspendCoordinator&) = delete;

  /// Start a group suspend for `agent` over `conn_ids`. Returns the new
  /// barrier, or nullptr when a group for this agent is already in flight
  /// (the caller must not start a second one).
  std::shared_ptr<GroupBarrier> begin(const std::string& agent,
                                      std::uint64_t group_id,
                                      const std::vector<std::uint64_t>& conn_ids);

  /// The group for `agent` is finished (committed or rolled back);
  /// forget it and release its members.
  void end(const std::string& agent);

  /// A connection participating in some in-flight group is being torn
  /// down (abort_session). Fails that group's barrier so the coordinator
  /// rolls the whole group back. Returns true when a group was cancelled.
  bool cancel_member(std::uint64_t conn_id, const std::string& reason);

  /// Barrier of the in-flight group for `agent`, or nullptr.
  [[nodiscard]] std::shared_ptr<GroupBarrier> find(
      const std::string& agent) const;

  /// Number of in-flight groups (tests / metrics).
  [[nodiscard]] std::size_t active() const;

 private:
  mutable util::Mutex mu_{util::LockRank::kGroupCoordinator,
                          "group_coordinator"};
  std::map<std::string, std::shared_ptr<GroupBarrier>> by_agent_
      NAPLET_GUARDED_BY(mu_);
  std::map<std::uint64_t, std::string> member_agent_ NAPLET_GUARDED_BY(mu_);
};

}  // namespace naplet::group
