#include "group/coordinator.hpp"

namespace naplet::group {

std::shared_ptr<GroupBarrier> GroupSuspendCoordinator::begin(
    const std::string& agent, std::uint64_t group_id,
    const std::vector<std::uint64_t>& conn_ids) {
  util::MutexLock lock(mu_);
  if (by_agent_.contains(agent)) return nullptr;
  auto barrier = std::make_shared<GroupBarrier>(group_id, conn_ids.size());
  by_agent_[agent] = barrier;
  for (std::uint64_t id : conn_ids) member_agent_[id] = agent;
  return barrier;
}

void GroupSuspendCoordinator::end(const std::string& agent) {
  util::MutexLock lock(mu_);
  by_agent_.erase(agent);
  for (auto it = member_agent_.begin(); it != member_agent_.end();) {
    if (it->second == agent) {
      it = member_agent_.erase(it);
    } else {
      ++it;
    }
  }
}

bool GroupSuspendCoordinator::cancel_member(std::uint64_t conn_id,
                                            const std::string& reason) {
  util::MutexLock lock(mu_);
  const auto member = member_agent_.find(conn_id);
  if (member == member_agent_.end()) return false;
  const auto group = by_agent_.find(member->second);
  if (group == by_agent_.end()) return false;
  group->second->fail("member " + std::to_string(conn_id) + " aborted: " +
                      reason);
  return true;
}

std::shared_ptr<GroupBarrier> GroupSuspendCoordinator::find(
    const std::string& agent) const {
  util::MutexLock lock(mu_);
  const auto it = by_agent_.find(agent);
  return it == by_agent_.end() ? nullptr : it->second;
}

std::size_t GroupSuspendCoordinator::active() const {
  util::MutexLock lock(mu_);
  return by_agent_.size();
}

}  // namespace naplet::group
