#include "fault/chaos.hpp"

#include <atomic>
#include <filesystem>
#include <sstream>
#include <thread>

#include "core/runtime.hpp"
#include "fault/oracle.hpp"
#include "fault/sites.hpp"
#include "net/sim.hpp"
#include "obs/recorder.hpp"
#include "swarm/drain.hpp"
#include "swarm/scheduler.hpp"
#include "util/rng.hpp"

namespace naplet::fault {

namespace {

using namespace std::chrono_literals;

util::ByteSpan span_of(const std::string& s) {
  return util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size());
}

std::string node_name(int i) { return "chaos" + std::to_string(i); }

util::Status migrate_agent(nsock::Realm& realm, const agent::AgentId& id,
                           int from, int to) {
  auto& src = realm.node(node_name(from));
  auto& dst = realm.node(node_name(to));
  realm.locations().begin_migration(id);
  // Failures before the destination registration roll the location back
  // (end_migration) so the agent stays findable at the source instead of
  // stranding every lookup on a permanent in-transit entry.
  if (auto st = src.controller().prepare_migration(id); !st.ok()) {
    realm.locations().end_migration(id);
    return st;
  }
  const util::Bytes sessions = src.controller().export_sessions(id);
  if (auto st = dst.controller().import_sessions(
          id, util::ByteSpan(sessions.data(), sessions.size()));
      !st.ok()) {
    realm.locations().end_migration(id);
    return st;
  }
  realm.locations().register_agent(id, dst.server().node_info());
  return dst.controller().complete_migration(id);
}

// The survivable fault envelope the generator draws from. Drops live below
// the reliability layer (rudp retransmits around them), delays stay well
// under the control-response timeout, duplicated control messages exercise
// the protocol's documented re-ack paths, and killed handoff workers are
// absorbed by do_resume's retry loop — so a generated schedule can make a
// run slow and ugly but never impossible.
enum class Template : std::uint64_t {
  kRudpSendDrop = 0,
  kRudpRetransmitDrop,
  kRudpRetransmitDelay,
  kRudpSendFlip,
  kRudpSackDrop,
  kRudpFastRetxDrop,
  kRudpFecDrop,
  kCtrlPreSendDup,
  kCtrlPreSendDelay,
  kCtrlOnRecvDelay,
  kRedirectorKill,
  kCount,
};

constexpr const char* kDupableCtrl[] = {"suspend", "suspend_ack", "sus_res"};

Rule make_rule(util::Rng& rng) {
  Rule rule;
  switch (static_cast<Template>(
      rng.next_below(static_cast<std::uint64_t>(Template::kCount)))) {
    case Template::kRudpSendDrop:
      rule.site = "rudp.send";
      rule.hit = 1 + rng.next_below(8);
      rule.count = 1 + rng.next_below(2);
      rule.action = Action::kDrop;
      break;
    case Template::kRudpRetransmitDrop:
      rule.site = "rudp.retransmit";
      rule.hit = 1 + rng.next_below(4);
      rule.count = 1 + rng.next_below(2);
      rule.action = Action::kDrop;
      break;
    case Template::kRudpRetransmitDelay:
      rule.site = "rudp.retransmit";
      rule.hit = 1 + rng.next_below(4);
      rule.action = Action::kDelay;
      rule.delay_ms = 5 + static_cast<std::uint32_t>(rng.next_below(25));
      break;
    case Template::kRudpSendFlip:
      // A flipped bit anywhere in the frame fails the peer's CRC check:
      // corruption degrades to loss, which retransmit/FEC must absorb.
      rule.site = rng.bernoulli(0.5) ? "rudp.send" : "rudp.retransmit";
      rule.hit = 1 + rng.next_below(6);
      rule.count = 1 + rng.next_below(2);
      rule.action = Action::kCorrupt;
      break;
    case Template::kRudpSackDrop:
      // Starve the fast-retransmit gap detector: the RTO timer must still
      // recover delivery on its own.
      rule.site = "rudp.sack";
      rule.hit = 1 + rng.next_below(4);
      rule.count = 1 + rng.next_below(3);
      rule.action = Action::kDrop;
      break;
    case Template::kRudpFastRetxDrop:
      rule.site = "rudp.fast_retx";
      rule.hit = 1 + rng.next_below(2);
      rule.action = Action::kDrop;
      break;
    case Template::kRudpFecDrop:
      // Lost parity only removes a repair opportunity, never data.
      rule.site = "rudp.fec";
      rule.hit = 1 + rng.next_below(4);
      rule.count = 1 + rng.next_below(3);
      rule.action = Action::kDrop;
      break;
    case Template::kCtrlPreSendDup:
      rule.site = std::string("ctrl.") + kDupableCtrl[rng.next_below(3)] +
                  ".pre_send";
      rule.hit = 1 + rng.next_below(2);
      rule.action = Action::kDuplicate;
      break;
    case Template::kCtrlPreSendDelay:
      rule.site = std::string("ctrl.") + kDupableCtrl[rng.next_below(3)] +
                  ".pre_send";
      rule.hit = 1 + rng.next_below(2);
      rule.action = Action::kDelay;
      rule.delay_ms = 5 + static_cast<std::uint32_t>(rng.next_below(40));
      break;
    case Template::kCtrlOnRecvDelay:
      rule.site = std::string("ctrl.") + kDupableCtrl[rng.next_below(3)] +
                  ".on_recv";
      rule.hit = 1 + rng.next_below(2);
      rule.action = Action::kDelay;
      rule.delay_ms = 5 + static_cast<std::uint32_t>(rng.next_below(40));
      break;
    case Template::kRedirectorKill:
      rule.site = "redirector.handoff.accept";
      rule.hit = 1 + rng.next_below(2);
      rule.action = Action::kKill;
      break;
    case Template::kCount:
      break;  // unreachable
  }
  return rule;
}

}  // namespace

std::string_view to_string(Scenario scenario) noexcept {
  switch (scenario) {
    case Scenario::kSingleMigration: return "single";
    case Scenario::kDoubleSequential: return "double";
    case Scenario::kDoubleOverlapped: return "overlap";
    case Scenario::kCrashSuspend: return "crash-suspend";
    case Scenario::kCrashResume: return "crash-resume";
    case Scenario::kCrashDouble: return "crash-double";
    case Scenario::kDrainPartition: return "drain-partition";
    case Scenario::kCascadeRebalance: return "cascade-rebalance";
    case Scenario::kGroupCrashCommit: return "group-crash-commit";
    case Scenario::kGroupPeerRefusal: return "group-peer-refusal";
  }
  return "?";
}

std::string ChaosResult::line(const ChaosCase& chaos_case) const {
  std::ostringstream out;
  out << "seed=" << chaos_case.seed << " scenario="
      << to_string(chaos_case.scenario) << " plan=\""
      << chaos_case.plan.to_string() << "\" verdict="
      << (pass ? "PASS" : "FAIL");
  if (!pass) out << " failure=\"" << failure << "\"";
  return out.str();
}

ChaosCase generate_case(std::uint64_t seed, bool light) {
  util::Rng rng(seed);
  ChaosCase chaos_case;
  chaos_case.seed = seed;
  chaos_case.scenario =
      static_cast<Scenario>(rng.next_below(kGeneratedScenarioCount));
  chaos_case.forward_msgs = light ? 6 : 12;
  chaos_case.reverse_msgs = light ? 4 : 8;
  chaos_case.plan.seed = seed;
  const std::uint64_t rules = 1 + rng.next_below(light ? 2 : 4);
  for (std::uint64_t i = 0; i < rules; ++i) {
    chaos_case.plan.rules.push_back(make_rule(rng));
  }
  return chaos_case;
}

ChaosCase make_crash_case(std::uint64_t seed, Scenario scenario, bool light,
                          bool recovery) {
  ChaosCase chaos_case;
  chaos_case.seed = seed;
  chaos_case.scenario = scenario;
  chaos_case.recovery = recovery;
  chaos_case.forward_msgs = light ? 6 : 12;
  chaos_case.reverse_msgs = light ? 4 : 8;
  chaos_case.plan.seed = seed;
  Rule rule;
  if (scenario == Scenario::kCrashSuspend) {
    // Every SUS_ACK of the doomed incarnation dies (the resend cadence
    // would otherwise get a re-ack through), so the active side's suspend
    // handshake reliably times out before the harness pulls the plug.
    rule.site = "ctrl.suspend_ack.pre_send";
  } else {
    // Every handoff worker of the doomed incarnation dies: the mover's
    // RESUME is in flight, unanswered, when the controller is killed.
    rule.site = "redirector.handoff.accept";
  }
  rule.hit = 1;
  rule.count = 1000;  // all hits until disarm (which follows the kill)
  rule.action = Action::kKill;
  chaos_case.plan.rules.push_back(rule);
  return chaos_case;
}

ChaosCase make_swarm_case(std::uint64_t seed, Scenario scenario, bool light) {
  ChaosCase chaos_case;
  chaos_case.seed = seed;
  chaos_case.scenario = scenario;
  chaos_case.forward_msgs = light ? 6 : 12;
  chaos_case.reverse_msgs = light ? 4 : 8;
  chaos_case.plan.seed = seed;
  Rule rule;
  if (scenario == Scenario::kDrainPartition) {
    // One suspend in the second wave fails; the drain coordinator's
    // capped-backoff retry must land it without stalling the sweep.
    rule.site = "swarm.drain.suspend";
    rule.hit = 2;
    rule.action = Action::kError;
  } else {
    // The destination refuses the first batch admission outright: the
    // scheduler must split the batch and reroute the rear half to the
    // fallback host (the cascading rebalance).
    rule.site = "swarm.batch.admit";
    rule.hit = 1;
    rule.action = Action::kError;
  }
  rule.count = 1;
  chaos_case.plan.rules.push_back(rule);
  return chaos_case;
}

ChaosCase make_group_case(std::uint64_t seed, Scenario scenario, bool light) {
  ChaosCase chaos_case;
  chaos_case.seed = seed;
  chaos_case.scenario = scenario;
  chaos_case.forward_msgs = light ? 4 : 8;
  chaos_case.reverse_msgs = light ? 3 : 6;
  chaos_case.plan.seed = seed;
  Rule rule;
  if (scenario == Scenario::kGroupCrashCommit) {
    // Kill the mover's controller in the window between the group-prepare
    // and group-commit journal records; recovery must resolve the whole
    // group one way (roll forward: every peer already sealed).
    rule.site = "ctrl.group.commit";
    rule.action = Action::kKill;
  } else {
    // The first group SUS the peer host processes is refused; the
    // coordinator must roll the ENTIRE group back under send load.
    rule.site = "ctrl.group.prepare";
    rule.action = Action::kError;
  }
  rule.hit = 1;
  rule.count = 1;
  chaos_case.plan.rules.push_back(rule);
  return chaos_case;
}

namespace {

/// Node config for crash cases. A non-empty `durable_dir` gives the node a
/// journal (only the to-be-crashed server host needs one); recovery-off
/// cases get the paper's single-shot protocol with tight timeouts so the
/// expected failure is bounded, never a hang.
nsock::NodeConfig crash_node_config(const ChaosCase& chaos_case, int i,
                                    const std::string& durable_dir) {
  nsock::NodeConfig config;
  config.controller.security = false;
  config.server.rudp_config.retransmit_interval = 15ms;
  config.server.rudp_config.max_attempts = 40;
  config.server.rudp_config.jitter_seed = chaos_case.seed * 3 + i + 1;
  // XOR-FEC on the control channel keeps the rudp.sack / rudp.fast_retx /
  // rudp.fec fault sites live under the oracles.
  config.server.rudp_config.repair = net::LossRepair::kXorFec;
  config.controller.ctrl_response_timeout = 1s;
  config.controller.drain_timeout = 1s;
  if (chaos_case.recovery) {
    config.controller.failure_recovery.enabled = true;
    config.controller.failure_recovery.probe_interval = 500ms;
    config.controller.failure_recovery.probe_timeout = 200ms;
    // The planned kill must not race the death detector: recovery here is
    // journal replay serving the peer's retries, not probe-driven abort.
    config.controller.failure_recovery.miss_threshold = 1000;
    config.controller.suspend_rollback = true;
    config.controller.resume_max_attempts = 25;
    config.controller.resume_retry_backoff = 50ms;
    config.controller.resume_retry_cap = 400ms;
    config.controller.resume_timeout = 8s;
    config.controller.redirector_leases.enabled = true;
    config.controller.redirector_leases.ttl = 3s;
    if (!durable_dir.empty()) {
      config.controller.durability.enabled = true;
      config.controller.durability.dir = durable_dir;
      config.controller.durability.compact_every = 8;
    }
  } else {
    config.controller.resume_max_attempts = 1;
    config.controller.resume_timeout = 3s;
  }
  return config;
}

/// The crash-restart choreography behind Scenario::kCrash*. The server
/// host (chaos1) is killed — Realm::remove_node, which sends no protocol
/// messages — and stood up again under the same name; with recovery on,
/// the new controller replays its durable journal and serves the peer's
/// retries, and the DeliveryLedger must still balance exactly once. With
/// recovery off, the same staging must fail CLEANLY: a bounded error and
/// an abortable session, never a hang.
ChaosResult run_crash_case(const ChaosCase& chaos_case) {
  ChaosResult result;
  const auto fail = [&](const std::string& why) {
    result.pass = false;
    result.failure = why;
    // Snapshot every live session's ring before teardown destroys them:
    // the dump is the execution history that led to the oracle tripping.
    result.recorder_dump = obs::dump_all();
    return result;
  };

  Injector& injector = Injector::instance();
  injector.disarm();

  const std::string durable_dir =
      (std::filesystem::temp_directory_path() /
       ("naplet-chaos-" + std::to_string(chaos_case.seed) + "-" +
        std::string(to_string(chaos_case.scenario))))
          .string();
  std::error_code ec;
  std::filesystem::remove_all(durable_dir, ec);

  net::SimNet net(chaos_case.seed);
  net.set_default_link(net::LinkConfig{.latency = 1ms});

  nsock::Realm realm;
  for (int i = 0; i < 3; ++i) {
    realm.add_node(node_name(i), net.add_node(node_name(i)),
                   crash_node_config(chaos_case, i,
                                     i == 1 ? durable_dir : std::string()));
  }
  if (auto st = realm.start(); !st.ok()) {
    return fail("realm start: " + st.to_string());
  }

  const agent::AgentId cli("chaos-cli");
  const agent::AgentId srv("chaos-srv");
  realm.locations().register_agent(
      cli, realm.node(node_name(0)).server().node_info());
  realm.locations().register_agent(
      srv, realm.node(node_name(1)).server().node_info());

  auto& ctrl0 = realm.node(node_name(0)).controller();
  auto& ctrl1 = realm.node(node_name(1)).controller();
  if (auto st = ctrl1.listen(srv); !st.ok()) {
    return fail("listen: " + st.to_string());
  }
  auto client = ctrl0.connect(cli, srv);
  if (!client.ok()) return fail("connect: " + client.status().to_string());
  auto server = ctrl1.accept(srv, 5s);
  if (!server.ok()) return fail("accept: " + server.status().to_string());
  const std::uint64_t conn = (*client)->conn_id();

  DeliveryLedger ledger;
  constexpr std::uint64_t kFwd = 0, kRev = 1;

  // Phase A — same traffic shape as run_case: forward delivered live,
  // reverse left riding toward the suspension buffer.
  for (int i = 0; i < chaos_case.forward_msgs; ++i) {
    const std::string body =
        "f" + std::to_string(i) + "." + std::to_string(chaos_case.seed);
    if (auto st = (*client)->send(span_of(body), 2s); !st.ok()) {
      return fail("pre-fault send: " + st.to_string());
    }
    ledger.record_sent(kFwd, span_of(body));
  }
  for (int i = 0; i < chaos_case.forward_msgs; ++i) {
    auto got = (*server)->recv(2s);
    if (!got.ok()) return fail("pre-fault recv: " + got.status().to_string());
    ledger.record_delivered(kFwd, got->seq,
                            util::ByteSpan(got->body.data(),
                                           got->body.size()));
  }
  for (int i = 0; i < chaos_case.reverse_msgs; ++i) {
    const std::string body =
        "r" + std::to_string(i) + "." + std::to_string(chaos_case.seed);
    if (auto st = (*server)->send(span_of(body), 2s); !st.ok()) {
      return fail("reverse send: " + st.to_string());
    }
    ledger.record_sent(kRev, span_of(body));
  }
  std::this_thread::sleep_for(30ms);

  // The crash: remove the server-host node (no protocol goodbye), then
  // stand it up again under the same name. Faults are disarmed at the
  // moment of death — they belong to the doomed incarnation.
  const auto crash = [&] {
    realm.remove_node(node_name(1));
    injector.disarm();
  };
  const auto restart = [&]() -> util::Status {
    auto& node = realm.add_node(node_name(1), net.add_node(node_name(1)),
                                crash_node_config(chaos_case, 1, durable_dir));
    NAPLET_RETURN_IF_ERROR(node.start());
    if (chaos_case.recovery) {
      NAPLET_RETURN_IF_ERROR(node.controller().recover());
    }
    realm.locations().register_agent(srv, node.server().node_info());
    return util::OkStatus();
  };

  // Phase B — scenario choreography.
  int cli_node = 0, srv_node = 1;
  util::Status staged = util::OkStatus();  // the step expected to fail
                                           // when recovery is off
  switch (chaos_case.scenario) {
    case Scenario::kCrashSuspend: {
      // The suspend handshake dies (every SUS_ACK killed), then the
      // server-side controller does. The first migration attempt must
      // fail; after the restart the retry must find the journaled
      // passively-suspended session and complete.
      injector.arm(chaos_case.plan);
      util::Status first = migrate_agent(realm, cli, 0, 2);
      if (first.ok()) {
        injector.disarm();
        return fail("crash-suspend: first migration succeeded despite the "
                    "killed SUS_ACKs");
      }
      // The failed attempt left the location pending (begin_migration):
      // cancel by re-registering at the source.
      realm.locations().register_agent(
          cli, realm.node(node_name(0)).server().node_info());
      crash();
      if (auto st = restart(); !st.ok()) {
        return fail("restart: " + st.to_string());
      }
      staged = migrate_agent(realm, cli, 0, 2);
      cli_node = 2;
      break;
    }

    case Scenario::kCrashResume:
    case Scenario::kCrashDouble: {
      // Stage the client's migration cleanly up to the resume, then let
      // the mover's RESUME hit a redirector whose handoff workers die —
      // and kill the controller while the RESUME hangs unanswered.
      realm.locations().begin_migration(cli);
      if (auto st = ctrl0.prepare_migration(cli); !st.ok()) {
        return fail("prepare: " + st.to_string());
      }
      const util::Bytes blob = ctrl0.export_sessions(cli);
      auto& node2 = realm.node(node_name(2));
      if (auto st = node2.controller().import_sessions(
              cli, util::ByteSpan(blob.data(), blob.size()));
          !st.ok()) {
        return fail("import: " + st.to_string());
      }
      realm.locations().register_agent(cli, node2.server().node_info());
      injector.arm(chaos_case.plan);
      std::thread mover(
          [&] { staged = node2.controller().complete_migration(cli); });
      std::this_thread::sleep_for(150ms);
      crash();
      util::Status restarted = restart();
      mover.join();
      if (!restarted.ok()) {
        return fail("restart: " + restarted.to_string());
      }
      cli_node = 2;
      if (chaos_case.scenario == Scenario::kCrashDouble &&
          chaos_case.recovery && staged.ok()) {
        // A second, fault-free migration on top of the recovered state:
        // the server hops off the restarted host.
        if (auto st = migrate_agent(realm, srv, 1, 0); !st.ok()) {
          return fail("post-recovery server migration: " + st.to_string());
        }
        srv_node = 0;
      }
      break;
    }

    default:
      return fail("not a crash scenario");
  }
  injector.disarm();

  if (!chaos_case.recovery) {
    // The control run: the staged step must fail with a bounded error,
    // and the surviving half-open session must be abortable — a blocked
    // application must see ABORTED, not a hang.
    if (staged.ok()) {
      return fail("staging succeeded with recovery disabled");
    }
    nsock::SessionPtr leftover =
        realm.node(node_name(2)).controller().session_by_id(conn);
    if (leftover != nullptr) {
      realm.node(node_name(2)).controller().abort(leftover);
      if (leftover->state() != nsock::ConnState::kClosed) {
        return fail("abort left the session in " +
                    std::string(nsock::to_string(leftover->state())));
      }
    }
    if (auto st = check_fsm_trace(injector.transitions()); !st.ok()) {
      return fail(st.to_string());
    }
    result.pass = true;
    result.failure.clear();
    result.stats = "staged failure (expected): " + staged.to_string();
    return result;
  }

  if (!staged.ok()) {
    return fail("post-restart migration: " + staged.to_string());
  }

  // Phase C — judgement, identical to run_case: liveness bounds the
  // re-establishment, then the ledger must balance exactly once ACROSS
  // THE RESTART.
  nsock::SessionPtr client2 =
      realm.node(node_name(cli_node)).controller().session_by_id(conn);
  nsock::SessionPtr server2 =
      realm.node(node_name(srv_node)).controller().session_by_id(conn);
  if (!client2 || !server2) return fail("session lost across restart");
  if (auto st = await_established(*client2, 8s); !st.ok()) {
    return fail(st.to_string());
  }
  if (auto st = await_established(*server2, 8s); !st.ok()) {
    return fail(st.to_string());
  }

  while (true) {
    auto got = client2->recv(500ms);
    if (!got.ok()) break;
    ledger.record_delivered(kRev, got->seq,
                            util::ByteSpan(got->body.data(),
                                           got->body.size()));
  }

  for (int i = 0; i < 2; ++i) {
    const std::string body = "post" + std::to_string(i);
    if (auto st = client2->send(span_of(body), 2s); !st.ok()) {
      return fail("post-restart send: " + st.to_string());
    }
    ledger.record_sent(kFwd, span_of(body));
    auto got = server2->recv(2s);
    if (!got.ok()) {
      return fail("post-restart recv: " + got.status().to_string());
    }
    ledger.record_delivered(kFwd, got->seq,
                            util::ByteSpan(got->body.data(),
                                           got->body.size()));
  }

  if (auto st = ledger.check(/*require_complete=*/true); !st.ok()) {
    return fail(st.to_string());
  }
  if (auto st = check_fsm_trace(injector.transitions()); !st.ok()) {
    return fail(st.to_string());
  }

  const auto counters = net.counters();
  result.net_datagrams_dropped = counters.datagrams_dropped;
  const auto cli_stats =
      realm.node(node_name(cli_node)).controller().stats();
  const auto srv_stats =
      realm.node(node_name(srv_node)).controller().stats();
  result.ctrl_retransmissions =
      cli_stats.ctrl_retransmissions + srv_stats.ctrl_retransmissions;
  result.stats = "client: " + cli_stats.to_string() +
                 "\nserver: " + srv_stats.to_string();
  result.pass = true;
  return result;
}

/// Stage executor over a live realm: serialize exports the batch's agents
/// from the source host, transfer is a no-op (the sim network "ships" the
/// blobs instantly), reactivate imports at the batch's CURRENT destination
/// and completes the migration — so a batch rerouted by an admission
/// refusal cleanly re-imports at the fallback host.
class RealmStageExecutor final : public swarm::StageExecutor {
 public:
  RealmStageExecutor(nsock::Realm& realm, int source, bool prepare)
      : realm_(realm), source_(source), prepare_(prepare) {}

  void serialize(const swarm::MigrationBatch& batch, Done done) override {
    auto& src = realm_.node(node_name(source_));
    for (const agent::AgentId& id : batch.agents) {
      realm_.locations().begin_migration(id);
      if (prepare_) {
        if (auto st = src.controller().prepare_migration(id); !st.ok()) {
          realm_.locations().end_migration(id);
          done(st);
          return;
        }
      }
      blobs_[id.name()] = src.controller().export_sessions(id);
    }
    done(util::OkStatus());
  }

  void transfer(const swarm::MigrationBatch& batch, Done done) override {
    (void)batch;
    done(util::OkStatus());
  }

  void reactivate(const swarm::MigrationBatch& batch, Done done) override {
    auto& dst = realm_.node(batch.destination);
    for (const agent::AgentId& id : batch.agents) {
      auto it = blobs_.find(id.name());
      if (it == blobs_.end()) {
        done(util::Internal("no exported state for " + id.name()));
        return;
      }
      if (auto st = dst.controller().import_sessions(
              id, util::ByteSpan(it->second.data(), it->second.size()));
          !st.ok()) {
        realm_.locations().end_migration(id);
        done(st);
        return;
      }
      blobs_.erase(it);
      realm_.locations().register_agent(id, dst.server().node_info());
      if (auto st = dst.controller().complete_migration(id); !st.ok()) {
        done(st);
        return;
      }
    }
    done(util::OkStatus());
  }

 private:
  nsock::Realm& realm_;
  int source_;
  bool prepare_;
  // The scheduler drives this executor from one pump at a time; no lock.
  std::map<std::string, util::Bytes> blobs_;
};

/// The swarm choreography behind Scenario::kDrainPartition and
/// Scenario::kCascadeRebalance: one live connection (client chaos0,
/// server chaos1) plus a handful of passenger agents, all moved off
/// chaos1 through the drain coordinator + batch scheduler instead of
/// one-by-one migrate calls. The usual oracles judge the outcome.
ChaosResult run_swarm_case(const ChaosCase& chaos_case) {
  ChaosResult result;
  const auto fail = [&](const std::string& why) {
    result.pass = false;
    result.failure = why;
    result.recorder_dump = obs::dump_all();
    return result;
  };

  Injector& injector = Injector::instance();
  injector.disarm();

  net::SimNet net(chaos_case.seed);
  net.set_default_link(net::LinkConfig{.latency = 1ms});

  nsock::Realm realm;
  for (int i = 0; i < 3; ++i) {
    nsock::NodeConfig config;
    config.controller.security = false;
    config.server.rudp_config.retransmit_interval = 15ms;
    config.server.rudp_config.max_attempts = 40;
    config.server.rudp_config.jitter_seed = chaos_case.seed * 3 + i + 1;
    config.server.rudp_config.repair = net::LossRepair::kXorFec;
    // The partition scenario keeps RESUME retrying until the heal; give
    // the resume loop the recovery-grade patience.
    config.controller.resume_max_attempts = 25;
    config.controller.resume_retry_backoff = 50ms;
    config.controller.resume_retry_cap = 400ms;
    config.controller.resume_timeout = 8s;
    realm.add_node(node_name(i), net.add_node(node_name(i)), config);
  }
  if (auto st = realm.start(); !st.ok()) {
    return fail("realm start: " + st.to_string());
  }

  const agent::AgentId cli("chaos-cli");
  const agent::AgentId srv("chaos-srv");
  realm.locations().register_agent(
      cli, realm.node(node_name(0)).server().node_info());
  realm.locations().register_agent(
      srv, realm.node(node_name(1)).server().node_info());
  std::vector<agent::AgentId> fleet{srv};
  for (int i = 0; i < 4; ++i) {
    const agent::AgentId pax("chaos-pax" + std::to_string(i));
    realm.locations().register_agent(
        pax, realm.node(node_name(1)).server().node_info());
    fleet.push_back(pax);
  }

  auto& ctrl0 = realm.node(node_name(0)).controller();
  auto& ctrl1 = realm.node(node_name(1)).controller();
  if (auto st = ctrl1.listen(srv); !st.ok()) {
    return fail("listen: " + st.to_string());
  }
  auto client = ctrl0.connect(cli, srv);
  if (!client.ok()) return fail("connect: " + client.status().to_string());
  auto server = ctrl1.accept(srv, 5s);
  if (!server.ok()) return fail("accept: " + server.status().to_string());
  const std::uint64_t conn = (*client)->conn_id();

  DeliveryLedger ledger;
  constexpr std::uint64_t kFwd = 0, kRev = 1;
  for (int i = 0; i < chaos_case.forward_msgs; ++i) {
    const std::string body =
        "f" + std::to_string(i) + "." + std::to_string(chaos_case.seed);
    if (auto st = (*client)->send(span_of(body), 2s); !st.ok()) {
      return fail("pre-fault send: " + st.to_string());
    }
    ledger.record_sent(kFwd, span_of(body));
  }
  for (int i = 0; i < chaos_case.forward_msgs; ++i) {
    auto got = (*server)->recv(2s);
    if (!got.ok()) return fail("pre-fault recv: " + got.status().to_string());
    ledger.record_delivered(kFwd, got->seq,
                            util::ByteSpan(got->body.data(),
                                           got->body.size()));
  }
  for (int i = 0; i < chaos_case.reverse_msgs; ++i) {
    const std::string body =
        "r" + std::to_string(i) + "." + std::to_string(chaos_case.seed);
    if (auto st = (*server)->send(span_of(body), 2s); !st.ok()) {
      return fail("reverse send: " + st.to_string());
    }
    ledger.record_sent(kRev, span_of(body));
  }
  std::this_thread::sleep_for(30ms);

  injector.arm(chaos_case.plan);

  const bool partitioned =
      chaos_case.scenario == Scenario::kDrainPartition;
  std::thread healer;
  if (partitioned) {
    // The destination cannot reach the peer's host while the batch lands;
    // the resume retry loop must absorb the outage until the heal.
    net.set_partition(node_name(2), node_name(0), true);
    healer = std::thread([&net] {
      std::this_thread::sleep_for(300ms);
      net.set_partition(node_name(2), node_name(0), false);
    });
  }

  // Phase drain — mass-suspend the source host in latency-tuned waves.
  // Wave suspends run inline; the injected suspend failure (scenario 6's
  // plan) must be retried, not dropped.
  swarm::DrainConfig drain_config;
  drain_config.max_wave = 2;  // multiple waves even for this small fleet
  swarm::DrainCoordinator drain(
      drain_config,
      [&ctrl1](const agent::AgentId& id,
               std::function<void(util::Status)> done) {
        done(ctrl1.prepare_migration(id));
      });
  drain.drain(fleet);
  if (!drain.wait(10s)) {
    if (healer.joinable()) healer.join();
    return fail("drain did not complete");
  }
  const swarm::DrainReport drain_report = drain.report();
  if (drain_report.stragglers != 0) {
    if (healer.joinable()) healer.join();
    return fail("drain left " + std::to_string(drain_report.stragglers) +
                " stragglers");
  }

  // Phase rebalance — batch the drained fleet to chaos2; chaos0 is the
  // fallback for refused admissions (the cascade).
  swarm::SchedulerConfig sched_config;
  sched_config.max_batch = 5;
  sched_config.fallback_destination = node_name(0);
  RealmStageExecutor executor(realm, /*source=*/1, /*prepare=*/false);
  swarm::MigrationScheduler scheduler(sched_config, executor);
  std::vector<swarm::AgentPlan> plans;
  plans.reserve(fleet.size());
  for (const agent::AgentId& id : fleet) {
    plans.push_back(swarm::AgentPlan{id, node_name(2)});
  }
  scheduler.run(plans);
  const bool finished = scheduler.wait(15s);
  if (healer.joinable()) healer.join();
  injector.disarm();
  if (!finished) return fail("scheduler did not complete");
  const swarm::SchedulerReport sched_report = scheduler.report();
  if (sched_report.failed != 0) {
    return fail("scheduler failed " + std::to_string(sched_report.failed) +
                " agents");
  }
  if (sched_report.migrated != fleet.size()) {
    return fail("scheduler migrated " +
                std::to_string(sched_report.migrated) + " of " +
                std::to_string(fleet.size()));
  }
  if (chaos_case.scenario == Scenario::kCascadeRebalance &&
      sched_report.rerouted == 0) {
    return fail("cascade-rebalance: admission refusal did not reroute "
                "any agents");
  }

  // Phase judgement — find where the server agent actually landed, then
  // the usual oracles: liveness, ledger balance, FSM legality.
  const auto srv_loc = realm.locations().try_lookup(srv);
  if (!srv_loc.has_value()) return fail("server agent lost");
  nsock::SessionPtr client2 = ctrl0.session_by_id(conn);
  nsock::SessionPtr server2 =
      realm.node(srv_loc->server_name).controller().session_by_id(conn);
  if (!client2 || !server2) return fail("session lost across rebalance");
  if (auto st = await_established(*client2, 8s); !st.ok()) {
    return fail(st.to_string());
  }
  if (auto st = await_established(*server2, 8s); !st.ok()) {
    return fail(st.to_string());
  }

  while (true) {
    auto got = client2->recv(500ms);
    if (!got.ok()) break;
    ledger.record_delivered(kRev, got->seq,
                            util::ByteSpan(got->body.data(),
                                           got->body.size()));
  }

  for (int i = 0; i < 2; ++i) {
    const std::string body = "post" + std::to_string(i);
    if (auto st = client2->send(span_of(body), 2s); !st.ok()) {
      return fail("post-rebalance send: " + st.to_string());
    }
    ledger.record_sent(kFwd, span_of(body));
    auto got = server2->recv(2s);
    if (!got.ok()) {
      return fail("post-rebalance recv: " + got.status().to_string());
    }
    ledger.record_delivered(kFwd, got->seq,
                            util::ByteSpan(got->body.data(),
                                           got->body.size()));
  }

  if (auto st = ledger.check(/*require_complete=*/true); !st.ok()) {
    return fail(st.to_string());
  }
  if (auto st = check_fsm_trace(injector.transitions()); !st.ok()) {
    return fail(st.to_string());
  }

  const auto counters = net.counters();
  result.net_datagrams_dropped = counters.datagrams_dropped;
  result.stats =
      "drain: waves=" + std::to_string(drain_report.waves) +
      " retries=" + std::to_string(drain_report.retries) +
      " | scheduler: batches=" + std::to_string(sched_report.batches) +
      " exchanges=" + std::to_string(sched_report.handoff_exchanges) +
      " rerouted=" + std::to_string(sched_report.rerouted);
  result.pass = true;
  return result;
}

/// Node config for group cases: the group sweep itself plus
/// recovery-grade patience (the rollback resumes acknowledged members
/// through the redirector). Only the mover's host (chaos0) carries a
/// journal, and only the crash scenario needs one.
nsock::NodeConfig group_node_config(const ChaosCase& chaos_case, int i,
                                    const std::string& durable_dir) {
  nsock::NodeConfig config;
  config.controller.security = false;
  config.server.rudp_config.retransmit_interval = 15ms;
  config.server.rudp_config.max_attempts = 40;
  config.server.rudp_config.jitter_seed = chaos_case.seed * 3 + i + 1;
  config.server.rudp_config.repair = net::LossRepair::kXorFec;
  config.controller.ctrl_response_timeout = 1s;
  config.controller.drain_timeout = 1s;
  config.controller.group_suspend = true;
  config.controller.group_prepare_timeout = 3s;
  config.controller.suspend_rollback = true;
  config.controller.resume_max_attempts = 25;
  config.controller.resume_retry_backoff = 50ms;
  config.controller.resume_retry_cap = 400ms;
  config.controller.resume_timeout = 8s;
  config.controller.redirector_leases.enabled = true;
  config.controller.redirector_leases.ttl = 3s;
  if (!durable_dir.empty()) {
    config.controller.durability.enabled = true;
    config.controller.durability.dir = durable_dir;
    config.controller.durability.compact_every = 8;
  }
  return config;
}

/// The group-suspend choreography behind Scenario::kGroupCrashCommit and
/// Scenario::kGroupPeerRefusal: one agent (chaos-cli on chaos0) holds
/// several live connections to chaos-srv on chaos1, and the whole set is
/// swept through the atomic group barrier. Scenario 8 kills the mover's
/// host in the prepare→commit journal window and recovery must be
/// all-or-nothing; scenario 9 has one peer refuse mid-prepare under send
/// load and the ENTIRE group must roll back with blocked senders waking.
ChaosResult run_group_case(const ChaosCase& chaos_case) {
  ChaosResult result;
  const auto fail = [&](const std::string& why) {
    result.pass = false;
    result.failure = why;
    result.recorder_dump = obs::dump_all();
    return result;
  };

  Injector& injector = Injector::instance();
  injector.disarm();

  const bool crash = chaos_case.scenario == Scenario::kGroupCrashCommit;
  std::string durable_dir;
  if (crash) {
    durable_dir = (std::filesystem::temp_directory_path() /
                   ("naplet-chaos-" + std::to_string(chaos_case.seed) + "-" +
                    std::string(to_string(chaos_case.scenario))))
                      .string();
    std::error_code ec;
    std::filesystem::remove_all(durable_dir, ec);
  }

  net::SimNet net(chaos_case.seed);
  net.set_default_link(net::LinkConfig{.latency = 1ms});

  nsock::Realm realm;
  for (int i = 0; i < 3; ++i) {
    realm.add_node(node_name(i), net.add_node(node_name(i)),
                   group_node_config(chaos_case, i,
                                     i == 0 ? durable_dir : std::string()));
  }
  if (auto st = realm.start(); !st.ok()) {
    return fail("realm start: " + st.to_string());
  }

  const agent::AgentId cli("chaos-cli");
  const agent::AgentId srv("chaos-srv");
  realm.locations().register_agent(
      cli, realm.node(node_name(0)).server().node_info());
  realm.locations().register_agent(
      srv, realm.node(node_name(1)).server().node_info());

  auto& ctrl0 = realm.node(node_name(0)).controller();
  auto& ctrl1 = realm.node(node_name(1)).controller();
  if (auto st = ctrl1.listen(srv); !st.ok()) {
    return fail("listen: " + st.to_string());
  }

  // The group: one agent, several live connections — the point of the
  // barrier is that they suspend as one atomic cut.
  constexpr int kConns = 3;
  std::vector<nsock::SessionPtr> clients, servers;
  std::vector<std::uint64_t> conns;
  for (int i = 0; i < kConns; ++i) {
    auto client = ctrl0.connect(cli, srv);
    if (!client.ok()) return fail("connect: " + client.status().to_string());
    auto server = ctrl1.accept(srv, 5s);
    if (!server.ok()) return fail("accept: " + server.status().to_string());
    clients.push_back(*client);
    servers.push_back(*server);
    conns.push_back((*client)->conn_id());
  }

  DeliveryLedger ledger;
  const auto fwd = [](int i) { return static_cast<std::uint64_t>(2 * i); };
  const auto rev = [](int i) { return static_cast<std::uint64_t>(2 * i + 1); };
  const auto deliver = [&ledger](std::uint64_t stream, std::uint64_t seq,
                                 const util::Bytes& body) {
    ledger.record_delivered(stream, seq,
                            util::ByteSpan(body.data(), body.size()));
  };

  // Phase A — per-connection traffic: forward delivered live, reverse
  // left riding toward the suspension buffers.
  for (int i = 0; i < kConns; ++i) {
    for (int j = 0; j < chaos_case.forward_msgs; ++j) {
      const std::string body =
          "f" + std::to_string(i) + "." + std::to_string(j);
      if (auto st = clients[i]->send(span_of(body), 2s); !st.ok()) {
        return fail("pre-fault send: " + st.to_string());
      }
      ledger.record_sent(fwd(i), span_of(body));
    }
    for (int j = 0; j < chaos_case.forward_msgs; ++j) {
      auto got = servers[i]->recv(2s);
      if (!got.ok()) {
        return fail("pre-fault recv: " + got.status().to_string());
      }
      deliver(fwd(i), got->seq, got->body);
    }
    for (int j = 0; j < chaos_case.reverse_msgs; ++j) {
      const std::string body =
          "r" + std::to_string(i) + "." + std::to_string(j);
      if (auto st = servers[i]->send(span_of(body), 2s); !st.ok()) {
        return fail("reverse send: " + st.to_string());
      }
      ledger.record_sent(rev(i), span_of(body));
    }
  }
  std::this_thread::sleep_for(30ms);

  // Phase B — scenario choreography.
  std::uint64_t rollbacks = 0;
  if (crash) {
    // The kill lands between the group-prepare and group-commit journal
    // records; the first migration attempt must fail.
    injector.arm(chaos_case.plan);
    const util::Status first = migrate_agent(realm, cli, 0, 2);
    if (first.ok()) {
      injector.disarm();
      return fail("migration succeeded despite the kill between group "
                  "prepare and commit");
    }

    // The crash: the mover's host (the one holding the journal) dies with
    // no protocol goodbye and is stood up again from its journal.
    realm.remove_node(node_name(0));
    injector.disarm();
    auto& node0 =
        realm.add_node(node_name(0), net.add_node(node_name(0)),
                       group_node_config(chaos_case, 0, durable_dir));
    if (auto st = node0.start(); !st.ok()) {
      return fail("restart: " + st.to_string());
    }
    if (auto st = node0.controller().recover(); !st.ok()) {
      return fail("recover: " + st.to_string());
    }
    realm.locations().register_agent(cli, node0.server().node_info());

    // The all-or-nothing oracle: after recover() the agent must never be
    // left with a SUSPENDED/ESTABLISHED mix. The dangling prepare rolls
    // forward (every peer had sealed), so the deterministic outcome is
    // ALL suspended.
    int suspended = 0, established = 0;
    for (int i = 0; i < kConns; ++i) {
      const nsock::SessionPtr session =
          node0.controller().session_by_id(conns[i]);
      if (session == nullptr) {
        return fail("conn " + std::to_string(conns[i]) +
                    " lost across the crash");
      }
      const nsock::ConnState st = session->state();
      if (st == nsock::ConnState::kSuspended) {
        ++suspended;
      } else if (st == nsock::ConnState::kEstablished) {
        ++established;
      }
    }
    if (suspended != 0 && established != 0) {
      return fail("all-or-nothing violated: " + std::to_string(suspended) +
                  " suspended, " + std::to_string(established) +
                  " established after recover()");
    }
    if (suspended != kConns) {
      return fail("dangling group prepare did not roll forward: " +
                  std::to_string(suspended) + "/" + std::to_string(kConns) +
                  " suspended");
    }

    // The cut the group declared must be causally consistent; the peers
    // recorded each member's mark at passive suspension, and the marks
    // survived the mover's crash.
    std::vector<DeliveryLedger::CutPoint> cut;
    for (int i = 0; i < kConns; ++i) {
      const std::uint64_t mark = servers[i]->flags().peer_declared_seq;
      if (mark == 0) {
        return fail("peer of conn " + std::to_string(conns[i]) +
                    " holds no declared group mark");
      }
      cut.push_back({fwd(i), mark});
    }
    if (auto st = ledger.check_consistent_cut(cut); !st.ok()) {
      return fail(st.to_string());
    }

    // Roll the interrupted migration forward to its destination.
    if (auto st = migrate_agent(realm, cli, 0, 2); !st.ok()) {
      return fail("post-recovery migration: " + st.to_string());
    }
  } else {
    // kGroupPeerRefusal: concurrent send pressure on every member while
    // the first group SUS the peer host processes is refused.
    std::vector<std::thread> load;
    std::vector<util::Status> load_status(kConns, util::OkStatus());
    for (int i = 0; i < kConns; ++i) {
      load.emplace_back([&, i] {
        for (int j = 0; j < 8; ++j) {
          const std::string body =
              "l" + std::to_string(i) + "." + std::to_string(j);
          if (auto st = clients[i]->send(span_of(body), 10s); !st.ok()) {
            load_status[i] = st;
            return;
          }
          ledger.record_sent(fwd(i), span_of(body));
          std::this_thread::sleep_for(2ms);
        }
      });
    }
    std::this_thread::sleep_for(10ms);

    injector.arm(chaos_case.plan);
    const util::Status refused = ctrl0.prepare_migration(cli);
    injector.disarm();
    if (refused.ok()) {
      for (auto& t : load) t.join();
      return fail("group prepare succeeded despite the refused peer");
    }

    // Full-group rollback oracle: every member returns to ESTABLISHED
    // (never a mix), and the senders blocked across the rollback wake
    // and finish cleanly.
    for (int i = 0; i < kConns; ++i) {
      if (auto st = await_established(*clients[i], 8s); !st.ok()) {
        for (auto& t : load) t.join();
        return fail("rollback: " + st.to_string());
      }
    }
    for (auto& t : load) t.join();
    for (int i = 0; i < kConns; ++i) {
      if (!load_status[i].ok()) {
        return fail("sender under rollback: " + load_status[i].to_string());
      }
    }
    rollbacks = ctrl0.group_rollbacks();
    if (rollbacks == 0) {
      return fail("refusal did not count a group rollback");
    }

    // Retry the sweep fault-free with senders RACING the freeze: the
    // consistent-cut oracle proves no send slipped past another member's
    // pinned mark. Sends that time out never entered the stream (the
    // freeze parks them before the write), so only OK sends are recorded.
    std::atomic<bool> stop{false};
    std::vector<std::thread> racers;
    std::vector<util::Status> racer_status(kConns, util::OkStatus());
    for (int i = 0; i < kConns; ++i) {
      racers.emplace_back([&, i] {
        int j = 0;
        while (!stop.load()) {
          const std::string body =
              "g" + std::to_string(i) + "." + std::to_string(j);
          auto st = clients[i]->send(span_of(body), 300ms);
          if (st.ok()) {
            ledger.record_sent(fwd(i), span_of(body));
            ++j;
          } else if (st.code() != util::StatusCode::kTimeout) {
            racer_status[i] = st;
            return;
          }
          std::this_thread::sleep_for(2ms);
        }
      });
    }
    std::this_thread::sleep_for(10ms);
    realm.locations().begin_migration(cli);
    const util::Status prepared = ctrl0.prepare_migration(cli);
    stop.store(true);
    for (auto& t : racers) t.join();
    if (!prepared.ok()) {
      realm.locations().end_migration(cli);
      return fail("fault-free retry: " + prepared.to_string());
    }
    for (int i = 0; i < kConns; ++i) {
      if (!racer_status[i].ok()) {
        realm.locations().end_migration(cli);
        return fail("racing sender: " + racer_status[i].to_string());
      }
    }

    std::vector<DeliveryLedger::CutPoint> cut;
    for (int i = 0; i < kConns; ++i) {
      if (clients[i]->state() != nsock::ConnState::kSuspended) {
        realm.locations().end_migration(cli);
        return fail("conn " + std::to_string(conns[i]) +
                    " not SUSPENDED after the group prepare: " +
                    std::string(nsock::to_string(clients[i]->state())));
      }
      cut.push_back({fwd(i), clients[i]->sent_seq()});
    }
    if (auto st = ledger.check_consistent_cut(cut); !st.ok()) {
      realm.locations().end_migration(cli);
      return fail(st.to_string());
    }

    // Ship the suspended group to its destination.
    const util::Bytes blob = ctrl0.export_sessions(cli);
    auto& node2 = realm.node(node_name(2));
    if (auto st = node2.controller().import_sessions(
            cli, util::ByteSpan(blob.data(), blob.size()));
        !st.ok()) {
      realm.locations().end_migration(cli);
      return fail("import: " + st.to_string());
    }
    realm.locations().register_agent(cli, node2.server().node_info());
    if (auto st = node2.controller().complete_migration(cli); !st.ok()) {
      return fail("complete: " + st.to_string());
    }
  }

  // Phase C — judgement: liveness bounds the re-establishment, then the
  // ledger must balance exactly once across the whole ordeal.
  std::vector<nsock::SessionPtr> clients2, servers2;
  for (int i = 0; i < kConns; ++i) {
    nsock::SessionPtr c =
        realm.node(node_name(2)).controller().session_by_id(conns[i]);
    nsock::SessionPtr s = ctrl1.session_by_id(conns[i]);
    if (!c || !s) return fail("session lost across the group migration");
    if (auto st = await_established(*c, 8s); !st.ok()) {
      return fail(st.to_string());
    }
    if (auto st = await_established(*s, 8s); !st.ok()) {
      return fail(st.to_string());
    }
    clients2.push_back(std::move(c));
    servers2.push_back(std::move(s));
  }

  for (int i = 0; i < kConns; ++i) {
    while (true) {
      auto got = clients2[i]->recv(500ms);
      if (!got.ok()) break;
      deliver(rev(i), got->seq, got->body);
    }
    while (true) {
      auto got = servers2[i]->recv(300ms);
      if (!got.ok()) break;
      deliver(fwd(i), got->seq, got->body);
    }
    for (int j = 0; j < 2; ++j) {
      const std::string body =
          "post" + std::to_string(i) + "." + std::to_string(j);
      if (auto st = clients2[i]->send(span_of(body), 2s); !st.ok()) {
        return fail("post-migration send: " + st.to_string());
      }
      ledger.record_sent(fwd(i), span_of(body));
      auto got = servers2[i]->recv(2s);
      if (!got.ok()) {
        return fail("post-migration recv: " + got.status().to_string());
      }
      deliver(fwd(i), got->seq, got->body);
    }
  }

  if (auto st = ledger.check(/*require_complete=*/true); !st.ok()) {
    return fail(st.to_string());
  }
  if (auto st = check_fsm_trace(injector.transitions()); !st.ok()) {
    return fail(st.to_string());
  }

  const auto counters = net.counters();
  result.net_datagrams_dropped = counters.datagrams_dropped;
  const auto cli_stats = realm.node(node_name(2)).controller().stats();
  const auto srv_stats = ctrl1.stats();
  result.ctrl_retransmissions =
      cli_stats.ctrl_retransmissions + srv_stats.ctrl_retransmissions;
  result.stats = "group: rollbacks=" + std::to_string(rollbacks) +
                 "\nclient: " + cli_stats.to_string() +
                 "\nserver: " + srv_stats.to_string();
  result.pass = true;
  return result;
}

}  // namespace

ChaosResult run_case(const ChaosCase& chaos_case) {
  if (is_group_scenario(chaos_case.scenario)) {
    return run_group_case(chaos_case);
  }
  if (is_swarm_scenario(chaos_case.scenario)) {
    return run_swarm_case(chaos_case);
  }
  if (is_crash_scenario(chaos_case.scenario)) {
    return run_crash_case(chaos_case);
  }

  ChaosResult result;
  const auto fail = [&](const std::string& why) {
    result.pass = false;
    result.failure = why;
    result.recorder_dump = obs::dump_all();
    return result;
  };

  Injector& injector = Injector::instance();
  injector.disarm();

  net::SimNet net(chaos_case.seed);
  net.set_default_link(net::LinkConfig{.latency = 1ms});

  nsock::Realm realm;
  for (int i = 0; i < 3; ++i) {
    nsock::NodeConfig config;
    config.controller.security = false;
    config.server.rudp_config.retransmit_interval = 15ms;
    config.server.rudp_config.max_attempts = 40;
    // Decorrelated but reproducible retransmit jitter per node.
    config.server.rudp_config.jitter_seed = chaos_case.seed * 3 + i + 1;
    // XOR-FEC on the control channel keeps the rudp.sack / rudp.fast_retx
    // / rudp.fec fault sites live under the oracles.
    config.server.rudp_config.repair = net::LossRepair::kXorFec;
    realm.add_node(node_name(i), net.add_node(node_name(i)), config);
  }
  if (auto st = realm.start(); !st.ok()) {
    return fail("realm start: " + st.to_string());
  }

  const agent::AgentId cli("chaos-cli");
  const agent::AgentId srv("chaos-srv");
  realm.locations().register_agent(
      cli, realm.node(node_name(0)).server().node_info());
  realm.locations().register_agent(
      srv, realm.node(node_name(1)).server().node_info());

  auto& ctrl0 = realm.node(node_name(0)).controller();
  auto& ctrl1 = realm.node(node_name(1)).controller();
  if (auto st = ctrl1.listen(srv); !st.ok()) {
    return fail("listen: " + st.to_string());
  }
  auto client = ctrl0.connect(cli, srv);
  if (!client.ok()) return fail("connect: " + client.status().to_string());
  auto server = ctrl1.accept(srv, 5s);
  if (!server.ok()) return fail("accept: " + server.status().to_string());
  const std::uint64_t conn = (*client)->conn_id();

  DeliveryLedger ledger;
  constexpr std::uint64_t kFwd = 0, kRev = 1;

  // Phase A — traffic. Forward messages are delivered live; reverse
  // messages are left undrained so they ride the suspension buffer across
  // the migration (the resume replay path the oracles watch).
  for (int i = 0; i < chaos_case.forward_msgs; ++i) {
    const std::string body =
        "f" + std::to_string(i) + "." + std::to_string(chaos_case.seed);
    if (auto st = (*client)->send(span_of(body), 2s); !st.ok()) {
      return fail("pre-fault send: " + st.to_string());
    }
    ledger.record_sent(kFwd, span_of(body));
  }
  for (int i = 0; i < chaos_case.forward_msgs; ++i) {
    auto got = (*server)->recv(2s);
    if (!got.ok()) return fail("pre-fault recv: " + got.status().to_string());
    ledger.record_delivered(kFwd, got->seq,
                            util::ByteSpan(got->body.data(),
                                           got->body.size()));
  }
  for (int i = 0; i < chaos_case.reverse_msgs; ++i) {
    const std::string body =
        "r" + std::to_string(i) + "." + std::to_string(chaos_case.seed);
    if (auto st = (*server)->send(span_of(body), 2s); !st.ok()) {
      return fail("reverse send: " + st.to_string());
    }
    ledger.record_sent(kRev, span_of(body));
  }
  // Let the reverse frames reach the client's stream so the suspend drain
  // pulls them into the migrating session's buffer.
  std::this_thread::sleep_for(30ms);

  // Phase B — the migrations, under the armed plan.
  injector.arm(chaos_case.plan);
  util::Status cli_migrate = util::OkStatus();
  util::Status srv_migrate = util::OkStatus();
  int cli_node = 0, srv_node = 1;
  switch (chaos_case.scenario) {
    case Scenario::kSingleMigration:
      cli_migrate = migrate_agent(realm, cli, 0, 2);
      cli_node = 2;
      break;
    case Scenario::kDoubleSequential:
      cli_migrate = migrate_agent(realm, cli, 0, 2);
      cli_node = 2;
      srv_migrate = migrate_agent(realm, srv, 1, 0);
      srv_node = 0;
      break;
    case Scenario::kDoubleOverlapped: {
      std::thread mover(
          [&] { cli_migrate = migrate_agent(realm, cli, 0, 2); });
      srv_migrate = migrate_agent(realm, srv, 1, 0);
      mover.join();
      cli_node = 2;
      srv_node = 0;
      break;
    }
    default:
      // Crash, swarm, and group scenarios dispatch to their own runners
      // before this switch is reached.
      break;
  }
  injector.disarm();
  if (!cli_migrate.ok()) {
    return fail("client migration: " + cli_migrate.to_string());
  }
  if (!srv_migrate.ok()) {
    return fail("server migration: " + srv_migrate.to_string());
  }

  // Phase C — judgement. Faults have ceased; the liveness watchdog bounds
  // re-establishment, then the ledger must balance exactly once.
  nsock::SessionPtr client2 =
      realm.node(node_name(cli_node)).controller().session_by_id(conn);
  nsock::SessionPtr server2 =
      realm.node(node_name(srv_node)).controller().session_by_id(conn);
  if (!client2 || !server2) return fail("session lost across migration");
  if (auto st = await_established(*client2, 8s); !st.ok()) {
    return fail(st.to_string());
  }
  if (auto st = await_established(*server2, 8s); !st.ok()) {
    return fail(st.to_string());
  }

  while (true) {
    auto got = client2->recv(500ms);
    if (!got.ok()) break;
    ledger.record_delivered(kRev, got->seq,
                            util::ByteSpan(got->body.data(),
                                           got->body.size()));
  }

  // Post-fault sanity traffic proves the resumed connection still carries
  // data both ways.
  for (int i = 0; i < 2; ++i) {
    const std::string body = "post" + std::to_string(i);
    if (auto st = client2->send(span_of(body), 2s); !st.ok()) {
      return fail("post-fault send: " + st.to_string());
    }
    ledger.record_sent(kFwd, span_of(body));
    auto got = server2->recv(2s);
    if (!got.ok()) return fail("post-fault recv: " + got.status().to_string());
    ledger.record_delivered(kFwd, got->seq,
                            util::ByteSpan(got->body.data(),
                                           got->body.size()));
  }

  if (auto st = ledger.check(/*require_complete=*/true); !st.ok()) {
    return fail(st.to_string());
  }
  const auto trace = injector.transitions();
  if (auto st = check_fsm_trace(trace); !st.ok()) {
    return fail(st.to_string());
  }

  const auto counters = net.counters();
  result.net_datagrams_dropped = counters.datagrams_dropped;
  const auto cli_stats =
      realm.node(node_name(cli_node)).controller().stats();
  const auto srv_stats =
      realm.node(node_name(srv_node)).controller().stats();
  result.ctrl_retransmissions =
      cli_stats.ctrl_retransmissions + srv_stats.ctrl_retransmissions;
  result.stats = "client: " + cli_stats.to_string() +
                 "\nserver: " + srv_stats.to_string();
  result.pass = true;
  return result;
}

Plan minimize_plan(const ChaosCase& failing, int* reruns) {
  Plan current = failing.plan;
  bool shrunk = true;
  while (shrunk && current.rules.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < current.rules.size(); ++i) {
      Plan candidate = current;
      candidate.rules.erase(candidate.rules.begin() +
                            static_cast<std::ptrdiff_t>(i));
      ChaosCase retry = failing;
      retry.plan = candidate;
      if (reruns) ++*reruns;
      if (!run_case(retry).pass) {
        current = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return current;
}

std::vector<std::string> known_sites() {
  return {std::begin(kFaultSites), std::end(kFaultSites)};
}

Rule planted_duplicate_replay_rule() {
  Rule rule;
  rule.site = "session.resume.replay";
  rule.hit = 1;
  rule.action = Action::kDuplicate;
  return rule;
}

}  // namespace naplet::fault
