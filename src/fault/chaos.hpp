// The chaos harness: generates random (fault plan × migration scenario)
// combinations, executes them over a three-node sim realm with every
// oracle armed, and delta-debugs a failing schedule down to a minimal
// failing fault subset. Used by tools/chaos_runner and tests/fault.
//
// Determinism contract: generate_case(seed) derives everything — scenario,
// message counts, every fault rule — from util::Rng(seed) alone, so
// `chaos_runner --seed S` regenerates the identical case bit-for-bit and a
// failure reported with its seed is a complete reproduction recipe.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.hpp"
#include "util/status.hpp"

namespace naplet::fault {

enum class Scenario : std::uint8_t {
  kSingleMigration = 0,   ///< client endpoint migrates once
  kDoubleSequential = 1,  ///< client migrates, then the server migrates
  kDoubleOverlapped = 2,  ///< both endpoints migrate concurrently (glare)

  // Crash-restart scenarios: the server-side controller is killed and
  // restarted from its durable journal mid-protocol. Selected explicitly
  // (chaos_runner --scenario, tests/recovery) — generate_case never draws
  // them, so existing seed -> case mappings are unchanged.
  kCrashSuspend = 3,  ///< controller dies mid-suspend (SUS_ACK killed)
  kCrashResume = 4,   ///< controller dies while the mover's RESUME retries
  kCrashDouble = 5,   ///< crash-resume, then a second migration on top

  // Swarm scenarios: a whole host's agents move through the swarm
  // subsystem (drain coordinator + batch scheduler) instead of one-by-one
  // migrate calls. Opt-in like the crash scenarios.
  kDrainPartition = 6,    ///< drain a host while the destination cannot
                          ///< reach the peer (partition heals mid-run)
  kCascadeRebalance = 7,  ///< destination refuses its first batch
                          ///< admission; half reroutes to the fallback

  // Group-suspend scenarios: one agent with several live connections is
  // swept through the atomic group barrier (ControllerConfig::
  // group_suspend). Opt-in like the crash scenarios.
  kGroupCrashCommit = 8,   ///< mover's host dies between the group
                           ///< prepare and commit journal records;
                           ///< recovery must be all-or-nothing
  kGroupPeerRefusal = 9,   ///< one peer refuses mid-prepare under send
                           ///< load; the ENTIRE group must roll back
};

inline constexpr int kScenarioCount = 10;
/// Scenarios generate_case(seed) draws from (the crash scenarios are
/// opt-in and carry their own staged fault plans).
inline constexpr int kGeneratedScenarioCount = 3;
/// First swarm scenario.
inline constexpr int kSwarmScenarioStart = 6;
/// First group-suspend scenario (the tail of the enum).
inline constexpr int kGroupScenarioStart = 8;

[[nodiscard]] constexpr bool is_crash_scenario(Scenario s) noexcept {
  return static_cast<int>(s) >= kGeneratedScenarioCount &&
         static_cast<int>(s) < kSwarmScenarioStart;
}

[[nodiscard]] constexpr bool is_swarm_scenario(Scenario s) noexcept {
  return static_cast<int>(s) >= kSwarmScenarioStart &&
         static_cast<int>(s) < kGroupScenarioStart;
}

[[nodiscard]] constexpr bool is_group_scenario(Scenario s) noexcept {
  return static_cast<int>(s) >= kGroupScenarioStart;
}

[[nodiscard]] std::string_view to_string(Scenario scenario) noexcept;

struct ChaosCase {
  std::uint64_t seed = 0;
  Scenario scenario = Scenario::kSingleMigration;
  Plan plan;
  int forward_msgs = 12;  ///< client -> server, delivered live pre-fault
  int reverse_msgs = 8;   ///< server -> client, left in flight across the
                          ///< migration so the resume replay path is hot

  /// Crash scenarios only: true runs with the full recovery stack (durable
  /// journal, resume retries, suspend rollback, leases) and the migration
  /// must complete exactly-once across the restart; false disables all of
  /// it and the same staging must fail CLEANLY — a bounded error, not a
  /// hang or an oracle violation.
  bool recovery = true;
};

struct ChaosResult {
  bool pass = false;
  std::string failure;  ///< empty on pass; the failing oracle's message

  // What the network actually did (informational; not part of the
  // deterministic report line).
  std::uint64_t net_datagrams_dropped = 0;
  std::uint64_t ctrl_retransmissions = 0;
  std::string stats;  ///< ControllerStats::to_string() of both endpoints

  /// On failure: flight-recorder dump of every live session at the moment
  /// the oracle tripped (obs::dump_all()), printed by chaos_runner next to
  /// the minimized plan. Empty on pass.
  std::string recorder_dump;

  /// Deterministic one-line report: seed, scenario, plan, verdict.
  [[nodiscard]] std::string line(const ChaosCase& chaos_case) const;
};

/// Derive a case purely from `seed`. The generated plans stay inside the
/// survivable fault envelope (drops below the reliability layer, bounded
/// delays, duplicated control messages, killed handoff workers) so a FAIL
/// from a generated case is always a protocol bug, never an impossible ask.
[[nodiscard]] ChaosCase generate_case(std::uint64_t seed, bool light);

/// Build a crash-restart case: the scenario-specific staged fault plan
/// (killed SUS_ACK / killed handoff worker) plus the kill-and-restart
/// choreography run_case performs for crash scenarios.
[[nodiscard]] ChaosCase make_crash_case(std::uint64_t seed, Scenario scenario,
                                        bool light, bool recovery);

/// Build a swarm case: the host-drain / cascading-rebalance choreography
/// (run by run_case for swarm scenarios) plus the scenario's fault plan —
/// a failing first suspend for kDrainPartition, a refused first batch
/// admission for kCascadeRebalance.
[[nodiscard]] ChaosCase make_swarm_case(std::uint64_t seed, Scenario scenario,
                                        bool light);

/// Build a group-suspend case: a multi-connection agent swept through the
/// group barrier, with a kill in the prepare→commit journal window
/// (kGroupCrashCommit) or a refused peer mid-prepare (kGroupPeerRefusal).
/// run_case adds the crash/restart/recover (resp. rollback-under-load)
/// choreography and the group oracles: no SUSPENDED/ESTABLISHED mix after
/// recover(), a causally consistent cut, exactly-once delivery.
[[nodiscard]] ChaosCase make_group_case(std::uint64_t seed, Scenario scenario,
                                        bool light);

/// Execute one case end to end: establish, pump traffic, arm the plan, run
/// the migrations, disarm, then judge with the delivery ledger, the FSM
/// legality check, and the liveness watchdog. Uses the process-global
/// Injector; do not run cases concurrently.
[[nodiscard]] ChaosResult run_case(const ChaosCase& chaos_case);

/// Greedy delta-debugging: repeatedly drop single rules while the case
/// still fails, yielding a 1-minimal failing subset. `reruns`, when given,
/// counts how many re-executions the reduction needed.
[[nodiscard]] Plan minimize_plan(const ChaosCase& failing,
                                 int* reruns = nullptr);

/// Every injection site woven into the protocol (for --list-sites).
[[nodiscard]] std::vector<std::string> known_sites();

/// The planted exactly-once regression (duplicate replay on resume), as a
/// rule the caller can append to any plan: the delivery-ledger oracle must
/// catch it and minimize_plan must reduce a noisy schedule back to it.
[[nodiscard]] Rule planted_duplicate_replay_rule();

}  // namespace naplet::fault
