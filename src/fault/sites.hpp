// Canonical registry of fault-injection site names.
//
// Every string passed to fault::hit() / FaultInjector weaving points must
// appear here, and every entry here must be woven somewhere in src/.  The
// static-analysis gate (tools/analyze, registry pass) cross-checks this
// list against the actual call sites: an entry listed here but never woven
// is `fault-site-stale`, a woven site missing from this list is
// `fault-site-unknown`, and a repeated entry is `fault-site-duplicate`.
//
// Grammar: lowercase dotted segments, `[a-z0-9_]+(\.[a-z0-9_]+)+`.
// Control-plane sites follow `ctrl.<type>.<stage>` where <type> is the
// stable token from ctrl_site_token() (controller.cpp) and <stage> is
// `pre_send` or `on_recv`.
#pragma once

#include <cstddef>
#include <string_view>

namespace naplet::fault {

inline constexpr std::string_view kFaultSites[] = {
    // Transport (rudp.cpp weaving points).
    "rudp.send",
    "rudp.retransmit",
    "rudp.sack",
    "rudp.fast_retx",
    "rudp.fec",
    // Migration control plane.
    "redirector.handoff.accept",
    "redirector.handoff.batch",
    "session.resume.replay",
    // Swarm orchestration (src/swarm + the redirector batch exchange).
    "swarm.batch.dispatch",
    "swarm.batch.admit",
    "swarm.drain.suspend",
    "swarm.cache.lookup",
    // Whole-agent group suspend (controller_group.cpp + group/barrier.cpp).
    // NOT part of the generic ctrl.<type>.<stage> cross-product: these mark
    // the two-phase barrier protocol, not individual message hops.
    "ctrl.group.prepare",
    "ctrl.group.commit",
    "group.barrier",
    // Control messages: ctrl.<type>.<stage>, woven generically through
    // ctrl_site() in controller.cpp for every CtrlType.
    "ctrl.connect.pre_send",
    "ctrl.connect.on_recv",
    "ctrl.connect_ack.pre_send",
    "ctrl.connect_ack.on_recv",
    "ctrl.connect_reject.pre_send",
    "ctrl.connect_reject.on_recv",
    "ctrl.suspend.pre_send",
    "ctrl.suspend.on_recv",
    "ctrl.suspend_ack.pre_send",
    "ctrl.suspend_ack.on_recv",
    "ctrl.ack_wait.pre_send",
    "ctrl.ack_wait.on_recv",
    "ctrl.sus_res.pre_send",
    "ctrl.sus_res.on_recv",
    "ctrl.sus_res_ack.pre_send",
    "ctrl.sus_res_ack.on_recv",
    "ctrl.close.pre_send",
    "ctrl.close.on_recv",
    "ctrl.close_ack.pre_send",
    "ctrl.close_ack.on_recv",
    "ctrl.reject.pre_send",
    "ctrl.reject.on_recv",
    "ctrl.heartbeat.pre_send",
    "ctrl.heartbeat.on_recv",
};

inline constexpr std::size_t kFaultSiteCount =
    sizeof(kFaultSites) / sizeof(kFaultSites[0]);

}  // namespace naplet::fault
