// Deterministic fault injection for the NapletSocket protocol.
//
// The protocol code is woven with named injection sites (fault points) at
// the places the paper's correctness argument actually depends on: the
// control-channel send/receive paths (a SUS_ACK lost mid-handshake), the
// rudp retransmission loop, the redirector's handoff accept (a redirector
// dying mid-resume), and the resume replay of a migrated session's buffered
// frames. A FaultPlan is a *scripted schedule* — each rule names a site and
// fires on an exact hit count or at a fault-clock time, never on a
// probability — so every failure a chaos run finds replays bit-for-bit from
// the seed that generated the plan.
//
// Plan grammar (one rule; rules joined by ';'):
//
//   <site>@<trigger>:<action>[:<delay_ms>]
//   trigger := '#'<hit>['x'<count>]     fire on hits [hit, hit+count)
//            | 't'<ms>['x'<count>]      fire on the first <count> hits at or
//                                       after fault-clock time <ms>
//   action  := drop | delay | dup | error | kill | flip
//
//   e.g.  ctrl.suspend_ack.pre_send@#1:drop
//         rudp.retransmit@#2x3:delay:40
//         redirector.handoff.accept@#1:kill
//         session.resume.replay@#1:dup        (deliberate exactly-once
//                                              regression; oracle bait)
//
// Zero-cost when unarmed: every site is guarded by a single relaxed atomic
// load (fault::armed()); no strings are built and no locks are taken until
// a plan is armed. The data path (Session::send/recv) carries no sites at
// all, so bench/data_path_hotloop is unaffected either way.
//
// The fault clock defaults to wall milliseconds since arm(); the DES engine
// can bind virtual time instead (sim::Simulator::bind_fault_clock), which is
// what makes 't'-triggered rules DES-time triggers.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::fault {

enum class Action : std::uint8_t {
  kNone = 0,   ///< no fault; proceed normally
  kDrop,       ///< the operation silently does not happen
  kDelay,      ///< sleep delay_ms at the site, then proceed
  kDuplicate,  ///< perform the operation twice (site-defined meaning)
  kError,      ///< the operation fails with a Status error
  kKill,       ///< hard-kill the component at the site (site-defined)
  kCorrupt,    ///< flip a bit in the site's payload ("flip"; wire sites)
};

[[nodiscard]] std::string_view to_string(Action action) noexcept;

/// What a fault point should do for the current hit. kDelay has already
/// been applied (the injector sleeps before returning); sites only need to
/// implement drop/dup/error/kill.
struct Decision {
  Action action = Action::kNone;
  std::uint32_t delay_ms = 0;

  explicit operator bool() const noexcept { return action != Action::kNone; }
};

/// One scripted rule. Exactly one trigger is active: hit-count keyed
/// (at_ms < 0) or fault-clock keyed (at_ms >= 0).
struct Rule {
  std::string site;
  std::uint64_t hit = 1;    ///< 1-based hit index of the first affected hit
  std::uint64_t count = 1;  ///< consecutive hits affected
  double at_ms = -1.0;      ///< >= 0: fire on hits at/after this clock time
  Action action = Action::kDrop;
  std::uint32_t delay_ms = 0;  ///< kDelay only

  [[nodiscard]] std::string to_string() const;
  static util::StatusOr<Rule> parse(std::string_view text);
};

/// A seeded, scripted fault schedule. `seed` records provenance (the chaos
/// seed that generated the plan) and does not affect matching.
struct Plan {
  std::uint64_t seed = 0;
  std::vector<Rule> rules;

  [[nodiscard]] std::string to_string() const;  // rules joined by ';'
  static util::StatusOr<Plan> parse(std::string_view text);
};

/// One performed FSM transition, recorded by Session::advance while armed.
/// Raw uint8s (not core enums) keep this library free of a core dependency;
/// the oracle layer re-types them against the golden table.
struct TransitionRecord {
  std::uint64_t conn_id = 0;
  bool is_client = false;
  std::uint8_t from = 0;
  std::uint8_t event = 0;
  std::uint8_t to = 0;
};

// The unarmed fast path: one relaxed atomic load, shared by every site.
inline std::atomic<bool> g_armed{false};

[[nodiscard]] inline bool armed() noexcept {
  return g_armed.load(std::memory_order_relaxed);
}

/// Process-global fault registry. Arm/disarm bracket one experiment; hit
/// counters, recorded hit times, and the FSM trace all reset on arm().
class Injector {
 public:
  static Injector& instance();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Install `plan` and start counting hits. An empty plan is valid and
  /// useful: every site records (count + fault-clock time) with no faults —
  /// the observation mode the rudp backoff tests use.
  void arm(Plan plan);
  void disarm();

  /// Consult the plan for this hit of `site`. Records the hit, applies any
  /// kDelay inline (sleeping outside the registry lock), and returns the
  /// decision. Prefer the free fault::hit(), which short-circuits unarmed.
  Decision hit(std::string_view site);

  void observe_transition(const TransitionRecord& record);

  // Observability since the last arm().
  [[nodiscard]] std::uint64_t hit_count(std::string_view site) const;
  [[nodiscard]] std::vector<double> hit_times_ms(std::string_view site) const;
  [[nodiscard]] std::vector<TransitionRecord> transitions() const;
  [[nodiscard]] Plan plan() const;

  /// Replace the fault clock (nullptr restores wall-ms-since-arm). The DES
  /// engine binds its virtual now() here so 't' rules key on DES time.
  void set_time_source(std::function<double()> now_ms);
  [[nodiscard]] double now_ms() const;

 private:
  Injector() = default;

  struct SiteStats {
    std::uint64_t hits = 0;
    std::vector<double> times_ms;
  };

  mutable util::Mutex mu_{util::LockRank::kFaultInjector, "fault.injector"};
  Plan plan_ NAPLET_GUARDED_BY(mu_);
  std::vector<std::uint64_t> rule_fired_ NAPLET_GUARDED_BY(mu_);
  std::map<std::string, SiteStats, std::less<>> sites_ NAPLET_GUARDED_BY(mu_);
  std::vector<TransitionRecord> trace_ NAPLET_GUARDED_BY(mu_);
  std::function<double()> clock_ NAPLET_GUARDED_BY(mu_);
  std::int64_t arm_t0_us_ NAPLET_GUARDED_BY(mu_) = 0;
};

/// The fault point: zero-cost no-op when no plan is armed.
[[nodiscard]] inline Decision hit(std::string_view site) {
  if (!armed()) return {};
  return Injector::instance().hit(site);
}

/// FSM audit hook (see TransitionRecord). No-op when unarmed.
inline void observe_transition(std::uint64_t conn_id, bool is_client,
                               std::uint8_t from, std::uint8_t event,
                               std::uint8_t to) {
  if (!armed()) return;
  Injector::instance().observe_transition(
      TransitionRecord{conn_id, is_client, from, event, to});
}

}  // namespace naplet::fault
