#include "fault/oracle.hpp"

#include <sstream>

namespace naplet::fault {

namespace {

// FNV-1a: cheap content digest; the ledger compares digests, not bodies,
// so megabyte payload sweeps stay O(1) memory per message.
std::uint64_t digest(util::ByteSpan body) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : body) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void DeliveryLedger::record_sent(std::uint64_t stream, util::ByteSpan body) {
  util::MutexLock lock(mu_);
  StreamLedger& ledger = streams_[stream];
  ledger.sent_digests.push_back(digest(body));
  ledger.sent_stamps.push_back(next_stamp_++);
}

void DeliveryLedger::record_delivered(std::uint64_t stream, std::uint64_t seq,
                                      util::ByteSpan body) {
  util::MutexLock lock(mu_);
  streams_[stream].delivered.push_back(Delivered{seq, digest(body)});
}

util::Status DeliveryLedger::check(bool require_complete) const {
  util::MutexLock lock(mu_);
  for (const auto& [id, ledger] : streams_) {
    const auto fail = [&](std::size_t pos, const std::string& what) {
      std::ostringstream out;
      out << "ledger: stream " << id << " position " << pos << ": " << what
          << " (sent " << ledger.sent_digests.size() << ", delivered "
          << ledger.delivered.size() << ")";
      return util::Aborted(out.str());
    };
    if (ledger.delivered.size() > ledger.sent_digests.size()) {
      return fail(ledger.sent_digests.size(),
                  "delivered more messages than were sent (duplicate "
                  "delivery)");
    }
    for (std::size_t i = 0; i < ledger.delivered.size(); ++i) {
      if (i > 0 && ledger.delivered[i].seq <= ledger.delivered[i - 1].seq) {
        return fail(i, "frame seq not strictly increasing (duplicate or "
                       "reordered delivery), seq " +
                           std::to_string(ledger.delivered[i].seq) +
                           " after " +
                           std::to_string(ledger.delivered[i - 1].seq));
      }
      if (ledger.delivered[i].digest != ledger.sent_digests[i]) {
        return fail(i, "delivered body does not match the i-th sent body "
                       "(duplicate, loss, or corruption)");
      }
    }
    if (require_complete &&
        ledger.delivered.size() != ledger.sent_digests.size()) {
      return fail(ledger.delivered.size(),
                  "delivery incomplete (message lost)");
    }
  }
  return util::OkStatus();
}

util::Status DeliveryLedger::check_consistent_cut(
    std::span<const CutPoint> cut) const {
  util::MutexLock lock(mu_);
  // Frame seqs are 1-based and assigned in send order, so a stream's
  // included sends are exactly its first min(mark, sent) entries. Stamps
  // increase within each stream, so the last included entry carries the
  // stream's maximum included stamp and the first excluded entry its
  // minimum excluded stamp.
  std::uint64_t max_included = 0, max_included_stream = 0;
  std::uint64_t min_excluded = 0, min_excluded_stream = 0;
  for (const CutPoint& point : cut) {
    const auto it = streams_.find(point.stream);
    if (it == streams_.end()) continue;
    const std::vector<std::uint64_t>& stamps = it->second.sent_stamps;
    const std::size_t included = std::min<std::size_t>(
        stamps.size(), static_cast<std::size_t>(point.seq_mark));
    if (included > 0 && stamps[included - 1] > max_included) {
      max_included = stamps[included - 1];
      max_included_stream = point.stream;
    }
    if (included < stamps.size() &&
        (min_excluded == 0 || stamps[included] < min_excluded)) {
      min_excluded = stamps[included];
      min_excluded_stream = point.stream;
    }
  }
  if (min_excluded != 0 && max_included > min_excluded) {
    std::ostringstream out;
    out << "cut: inconsistent group cut: stream " << max_included_stream
        << " includes a message produced at stamp " << max_included
        << ", after stream " << min_excluded_stream
        << " excluded one produced at stamp " << min_excluded;
    return util::Aborted(out.str());
  }
  return util::OkStatus();
}

std::size_t DeliveryLedger::delivered_count(std::uint64_t stream) const {
  util::MutexLock lock(mu_);
  const auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.delivered.size();
}

std::size_t DeliveryLedger::sent_count(std::uint64_t stream) const {
  util::MutexLock lock(mu_);
  const auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.sent_digests.size();
}

util::Status check_fsm_trace(std::span<const TransitionRecord> trace) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TransitionRecord& r = trace[i];
    if (r.from >= nsock::kConnStateCount || r.to >= nsock::kConnStateCount ||
        r.event >= nsock::kConnEventCount) {
      return util::Aborted("fsm trace: record " + std::to_string(i) +
                           " is out of enum range");
    }
    const auto from = static_cast<nsock::ConnState>(r.from);
    const auto event = static_cast<nsock::ConnEvent>(r.event);
    const auto to = static_cast<nsock::ConnState>(r.to);
    const auto golden = nsock::transition(from, event);
    if (!golden || *golden != to) {
      std::ostringstream out;
      out << "fsm trace: record " << i << " conn " << r.conn_id << " ["
          << (r.is_client ? "client" : "server") << "] performed "
          << nsock::to_string(from) << " --" << nsock::to_string(event)
          << "--> " << nsock::to_string(to) << ", golden table says "
          << (golden ? nsock::to_string(*golden) : "ILLEGAL");
      return util::Aborted(out.str());
    }
  }
  return util::OkStatus();
}

}  // namespace naplet::fault
