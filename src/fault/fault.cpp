#include "fault/fault.hpp"

#include <charconv>
#include <chrono>
#include <sstream>
#include <thread>

namespace naplet::fault {

namespace {

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

util::StatusOr<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return util::InvalidArgument("bad number in fault rule: '" +
                                 std::string(text) + "'");
  }
  return value;
}

}  // namespace

std::string_view to_string(Action action) noexcept {
  switch (action) {
    case Action::kNone: return "none";
    case Action::kDrop: return "drop";
    case Action::kDelay: return "delay";
    case Action::kDuplicate: return "dup";
    case Action::kError: return "error";
    case Action::kKill: return "kill";
    case Action::kCorrupt: return "flip";
  }
  return "?";
}

std::string Rule::to_string() const {
  std::ostringstream out;
  out << site << '@';
  if (at_ms >= 0) {
    out << 't' << static_cast<std::uint64_t>(at_ms);
  } else {
    out << '#' << hit;
  }
  if (count != 1) out << 'x' << count;
  out << ':' << fault::to_string(action);
  if (action == Action::kDelay) out << ':' << delay_ms;
  return out.str();
}

util::StatusOr<Rule> Rule::parse(std::string_view text) {
  Rule rule;
  const auto at = text.find('@');
  if (at == std::string_view::npos || at == 0) {
    return util::InvalidArgument("fault rule needs '<site>@': '" +
                                 std::string(text) + "'");
  }
  rule.site = std::string(text.substr(0, at));
  std::string_view rest = text.substr(at + 1);

  const auto colon = rest.find(':');
  if (colon == std::string_view::npos) {
    return util::InvalidArgument("fault rule needs ':<action>': '" +
                                 std::string(text) + "'");
  }
  std::string_view trigger = rest.substr(0, colon);
  std::string_view action_part = rest.substr(colon + 1);

  if (trigger.empty() || (trigger[0] != '#' && trigger[0] != 't')) {
    return util::InvalidArgument("fault trigger must be '#<hit>' or 't<ms>': '" +
                                 std::string(text) + "'");
  }
  const bool timed = trigger[0] == 't';
  trigger.remove_prefix(1);
  std::string_view count_part;
  if (const auto x = trigger.find('x'); x != std::string_view::npos) {
    count_part = trigger.substr(x + 1);
    trigger = trigger.substr(0, x);
  }
  auto key = parse_u64(trigger);
  if (!key.ok()) return key.status();
  if (timed) {
    rule.at_ms = static_cast<double>(*key);
  } else {
    if (*key == 0) return util::InvalidArgument("hit index is 1-based");
    rule.hit = *key;
  }
  if (!count_part.empty()) {
    auto count = parse_u64(count_part);
    if (!count.ok()) return count.status();
    if (*count == 0) return util::InvalidArgument("rule count must be >= 1");
    rule.count = *count;
  }

  std::string_view action_name = action_part;
  std::string_view delay_part;
  if (const auto c2 = action_part.find(':'); c2 != std::string_view::npos) {
    action_name = action_part.substr(0, c2);
    delay_part = action_part.substr(c2 + 1);
  }
  if (action_name == "drop") {
    rule.action = Action::kDrop;
  } else if (action_name == "delay") {
    rule.action = Action::kDelay;
  } else if (action_name == "dup") {
    rule.action = Action::kDuplicate;
  } else if (action_name == "error") {
    rule.action = Action::kError;
  } else if (action_name == "kill") {
    rule.action = Action::kKill;
  } else if (action_name == "flip") {
    rule.action = Action::kCorrupt;
  } else {
    return util::InvalidArgument("unknown fault action: '" +
                                 std::string(action_name) + "'");
  }
  if (rule.action == Action::kDelay) {
    if (delay_part.empty()) {
      return util::InvalidArgument("delay rule needs ':<delay_ms>'");
    }
    auto delay = parse_u64(delay_part);
    if (!delay.ok()) return delay.status();
    rule.delay_ms = static_cast<std::uint32_t>(*delay);
  } else if (!delay_part.empty()) {
    return util::InvalidArgument("only delay rules take a third field");
  }
  return rule;
}

std::string Plan::to_string() const {
  std::string out;
  for (const Rule& rule : rules) {
    if (!out.empty()) out += ';';
    out += rule.to_string();
  }
  return out;
}

util::StatusOr<Plan> Plan::parse(std::string_view text) {
  Plan plan;
  while (!text.empty()) {
    const auto semi = text.find(';');
    std::string_view part =
        semi == std::string_view::npos ? text : text.substr(0, semi);
    text = semi == std::string_view::npos ? std::string_view{}
                                          : text.substr(semi + 1);
    if (part.empty()) continue;
    auto rule = Rule::parse(part);
    if (!rule.ok()) return rule.status();
    plan.rules.push_back(std::move(*rule));
  }
  return plan;
}

Injector& Injector::instance() {
  static Injector injector;
  return injector;
}

void Injector::arm(Plan plan) {
  {
    util::MutexLock lock(mu_);
    plan_ = std::move(plan);
    rule_fired_.assign(plan_.rules.size(), 0);
    sites_.clear();
    trace_.clear();
    arm_t0_us_ = wall_now_us();
  }
  g_armed.store(true, std::memory_order_release);
}

void Injector::disarm() {
  g_armed.store(false, std::memory_order_release);
}

Decision Injector::hit(std::string_view site) {
  Decision decision;
  {
    util::MutexLock lock(mu_);
    const double now = clock_ ? clock_()
                              : static_cast<double>(wall_now_us() - arm_t0_us_) /
                                    1000.0;
    auto it = sites_.find(site);
    if (it == sites_.end()) {
      it = sites_.emplace(std::string(site), SiteStats{}).first;
    }
    SiteStats& stats = it->second;
    const std::uint64_t hit_no = ++stats.hits;
    stats.times_ms.push_back(now);

    for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
      const Rule& rule = plan_.rules[i];
      if (rule.site != site) continue;
      bool fire = false;
      if (rule.at_ms >= 0) {
        fire = now >= rule.at_ms && rule_fired_[i] < rule.count;
      } else {
        fire = hit_no >= rule.hit && hit_no < rule.hit + rule.count;
      }
      if (!fire) continue;
      ++rule_fired_[i];
      decision.action = rule.action;
      decision.delay_ms = rule.delay_ms;
      break;  // first matching rule wins
    }
  }
  if (decision.action == Action::kDelay && decision.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(decision.delay_ms));
  }
  return decision;
}

void Injector::observe_transition(const TransitionRecord& record) {
  util::MutexLock lock(mu_);
  trace_.push_back(record);
}

std::uint64_t Injector::hit_count(std::string_view site) const {
  util::MutexLock lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::vector<double> Injector::hit_times_ms(std::string_view site) const {
  util::MutexLock lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? std::vector<double>{} : it->second.times_ms;
}

std::vector<TransitionRecord> Injector::transitions() const {
  util::MutexLock lock(mu_);
  return trace_;
}

Plan Injector::plan() const {
  util::MutexLock lock(mu_);
  return plan_;
}

void Injector::set_time_source(std::function<double()> now_ms) {
  util::MutexLock lock(mu_);
  clock_ = std::move(now_ms);
}

double Injector::now_ms() const {
  util::MutexLock lock(mu_);
  if (clock_) return clock_();
  return static_cast<double>(wall_now_us() - arm_t0_us_) / 1000.0;
}

}  // namespace naplet::fault
