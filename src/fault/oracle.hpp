// Invariant oracles for fault-injection runs: the checks that decide
// whether the protocol actually survived a chaos schedule.
//
//  * DeliveryLedger — exactly-once/in-order delivery, checked on both
//    endpoints across migrations. Each directed stream records the bodies
//    it sent (in send order) and the (seq, body) pairs the receiving
//    application popped; check() requires the delivered sequence to be a
//    prefix of (or, when complete, equal to) the sent sequence with
//    strictly increasing frame seqs and matching content digests. A
//    duplicate replay, a reordering, a content corruption, or a lost frame
//    all fail loudly with the offending stream and position.
//
//  * check_fsm_trace — FSM-transition legality: every transition the
//    controller performed while the injector was armed is re-validated
//    against src/core/state.hpp's golden transition() table.
//
//  * await_established — the liveness watchdog: once faults cease, the
//    connection must re-reach ESTABLISHED within a bound.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "core/state.hpp"
#include "fault/fault.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace naplet::fault {

/// Thread-safe exactly-once/in-order delivery ledger. Streams are
/// caller-chosen ids for one direction of one connection (e.g. 2*conn for
/// client->server, 2*conn+1 for server->client); the ids survive
/// migrations because the harness, not the session object, owns them.
class DeliveryLedger {
 public:
  void record_sent(std::uint64_t stream, util::ByteSpan body);
  void record_delivered(std::uint64_t stream, std::uint64_t seq,
                        util::ByteSpan body);

  /// One stream's cut point in a group suspend: the sender-declared
  /// frame-seq high-water mark (frames 1..seq_mark are inside the cut).
  struct CutPoint {
    std::uint64_t stream = 0;
    std::uint64_t seq_mark = 0;
  };

  /// Cross-connection causal consistency of a group-suspend cut. Every
  /// record_sent is stamped with a single global production counter;
  /// the cut over the given streams is consistent iff no excluded send
  /// (frame > its stream's mark) was produced BEFORE an included send on
  /// any other stream — i.e. max(included stamps) < min(excluded
  /// stamps). A violation means one member's buffer holds data the
  /// application produced after another member's cut point.
  [[nodiscard]] util::Status check_consistent_cut(
      std::span<const CutPoint> cut) const;

  /// Validate every stream. With `require_complete`, each stream must have
  /// delivered exactly what was sent; otherwise a prefix suffices (a run
  /// that legitimately abandoned tail messages).
  [[nodiscard]] util::Status check(bool require_complete = true) const;

  [[nodiscard]] std::size_t delivered_count(std::uint64_t stream) const;
  [[nodiscard]] std::size_t sent_count(std::uint64_t stream) const;

 private:
  struct Delivered {
    std::uint64_t seq;
    std::uint64_t digest;
  };
  struct StreamLedger {
    std::vector<std::uint64_t> sent_digests;
    /// Global production stamp of each sent message (parallel to
    /// sent_digests): the cross-stream happened-before order the cut
    /// oracle judges against.
    std::vector<std::uint64_t> sent_stamps;
    std::vector<Delivered> delivered;
  };

  mutable util::Mutex mu_{util::LockRank::kUnranked, "fault.ledger"};
  std::map<std::uint64_t, StreamLedger> streams_ NAPLET_GUARDED_BY(mu_);
  std::uint64_t next_stamp_ NAPLET_GUARDED_BY(mu_) = 1;
};

/// Re-validate a recorded transition trace against the golden table:
/// transition(from, event) must exist and equal `to` for every record.
[[nodiscard]] util::Status check_fsm_trace(
    std::span<const TransitionRecord> trace);

/// Liveness watchdog: the session must reach ESTABLISHED within `bound`
/// (call after disarming the injector — "once faults cease").
[[nodiscard]] inline util::Status await_established(nsock::Session& session,
                                                    util::Duration bound) {
  auto state = session.wait_state(
      [](nsock::ConnState s) { return s == nsock::ConnState::kEstablished; },
      bound);
  if (state) return util::OkStatus();
  return util::Timeout(
      "liveness: conn " + std::to_string(session.conn_id()) + " [" +
      std::string(nsock::to_string(session.state())) +
      "] did not re-reach ESTABLISHED within " +
      std::to_string(
          std::chrono::duration_cast<std::chrono::milliseconds>(bound)
              .count()) +
      " ms after faults ceased");
}

}  // namespace naplet::fault
