// Arbitrary-precision unsigned integers, sized for Diffie–Hellman work
// (512–2048 bit MODP groups). Little-endian 32-bit limbs, normalized so the
// most significant limb is nonzero (zero is the empty limb vector).
//
// Implemented from scratch: schoolbook multiply, Knuth Algorithm D division,
// left-to-right square-and-multiply modular exponentiation. Not constant
// time — acceptable for a research reproduction; noted in DESIGN.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace naplet::crypto {

class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t v);

  /// Parse a (case-insensitive) hex string, most significant digit first.
  static util::StatusOr<BigUint> from_hex(std::string_view hex);
  /// Parse big-endian bytes.
  static BigUint from_bytes(util::ByteSpan data);

  [[nodiscard]] std::string to_hex() const;
  /// Big-endian bytes, no leading zeros (empty for zero). If `min_size` is
  /// nonzero the output is left-padded with zeros to at least that size.
  [[nodiscard]] util::Bytes to_bytes(std::size_t min_size = 0) const;

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const noexcept {
    return !limbs_.empty() && (limbs_[0] & 1);
  }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;
  [[nodiscard]] bool bit(std::size_t i) const noexcept;

  [[nodiscard]] std::uint64_t to_u64() const noexcept;

  // Comparison: total order.
  [[nodiscard]] int compare(const BigUint& other) const noexcept;
  friend bool operator==(const BigUint& a, const BigUint& b) noexcept {
    return a.compare(b) == 0;
  }
  friend auto operator<=>(const BigUint& a, const BigUint& b) noexcept {
    return a.compare(b) <=> 0;
  }

  [[nodiscard]] BigUint add(const BigUint& other) const;
  /// Requires *this >= other (asserts in debug builds).
  [[nodiscard]] BigUint sub(const BigUint& other) const;
  [[nodiscard]] BigUint mul(const BigUint& other) const;
  [[nodiscard]] BigUint shift_left(std::size_t bits) const;
  [[nodiscard]] BigUint shift_right(std::size_t bits) const;

  struct DivMod;
  /// Division with remainder; error on divide-by-zero.
  [[nodiscard]] util::StatusOr<DivMod> divmod(const BigUint& divisor) const;
  [[nodiscard]] util::StatusOr<BigUint> mod(const BigUint& modulus) const;

  /// (this * other) mod m.
  [[nodiscard]] util::StatusOr<BigUint> mul_mod(const BigUint& other,
                                                const BigUint& m) const;
  /// this^exponent mod m (m must be nonzero).
  [[nodiscard]] util::StatusOr<BigUint> pow_mod(const BigUint& exponent,
                                                const BigUint& m) const;

 private:
  void normalize() noexcept;

  std::vector<std::uint32_t> limbs_;  // little-endian
};

struct BigUint::DivMod {
  BigUint quotient;
  BigUint remainder;
};

}  // namespace naplet::crypto
