// HMAC-SHA256 (RFC 2104) for control-message authentication.
//
// Every suspend/resume/close request on an established NapletSocket
// connection must carry a tag keyed by the connection's Diffie–Hellman
// session key (paper §3.3); peers reject untagged or mis-tagged requests.
#pragma once

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace naplet::crypto {

/// Compute HMAC-SHA256(key, message).
Sha256Digest hmac_sha256(util::ByteSpan key, util::ByteSpan message) noexcept;

/// Verify in constant time; false on any mismatch.
bool hmac_sha256_verify(util::ByteSpan key, util::ByteSpan message,
                        util::ByteSpan expected_tag) noexcept;

/// HKDF-style key derivation used to turn the DH shared secret into a fixed
/// 32-byte session key bound to a context label (e.g. "naplet-session").
Sha256Digest derive_key(util::ByteSpan secret, std::string_view label) noexcept;

}  // namespace naplet::crypto
