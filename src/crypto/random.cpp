#include "crypto/random.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "util/rng.hpp"

namespace naplet::crypto {

namespace {

// Reads from /dev/urandom. Returns false if the device cannot be used.
bool urandom_fill(std::uint8_t* out, std::size_t n) {
  static std::mutex mu;
  std::lock_guard lock(mu);
  static std::FILE* dev = std::fopen("/dev/urandom", "rb");
  if (dev == nullptr) return false;
  return std::fread(out, 1, n, dev) == n;
}

void fallback_fill(std::uint8_t* out, std::size_t n) {
  static std::atomic<std::uint64_t> counter{0};
  const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
  util::Rng rng(static_cast<std::uint64_t>(now) ^
                (counter.fetch_add(1) * 0x9E3779B97F4A7C15ULL));
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(rng.next_u64());
  }
}

}  // namespace

void random_bytes(std::uint8_t* out, std::size_t n) {
  if (!urandom_fill(out, n)) fallback_fill(out, n);
}

util::Bytes random_bytes(std::size_t n) {
  util::Bytes out(n);
  random_bytes(out.data(), n);
  return out;
}

std::uint64_t random_u64() {
  std::uint8_t buf[8];
  random_bytes(buf, sizeof buf);
  std::uint64_t v = 0;
  for (std::uint8_t b : buf) v = v << 8 | b;
  return v;
}

}  // namespace naplet::crypto
