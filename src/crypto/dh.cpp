#include "crypto/dh.hpp"

#include <cassert>

#include "crypto/random.hpp"

namespace naplet::crypto {

namespace {

// RFC 2409, Oakley Group 1 (768-bit).
constexpr const char* kPrime768 =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF";

// RFC 3526, Group 5 (1536-bit).
constexpr const char* kPrime1536 =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF";

// RFC 3526, Group 14 (2048-bit).
constexpr const char* kPrime2048 =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

DhParams make_params(const char* prime_hex, std::size_t key_bytes) {
  auto prime = BigUint::from_hex(prime_hex);
  assert(prime.ok());
  return DhParams{std::move(*prime), BigUint(2), key_bytes};
}

}  // namespace

const DhParams& DhParams::get(DhGroup group) {
  static const DhParams modp768 = make_params(kPrime768, 96);
  static const DhParams modp1536 = make_params(kPrime1536, 192);
  static const DhParams modp2048 = make_params(kPrime2048, 256);
  switch (group) {
    case DhGroup::kModp768: return modp768;
    case DhGroup::kModp1536: return modp1536;
    case DhGroup::kModp2048: return modp2048;
  }
  return modp2048;
}

util::StatusOr<DhKeyPair> DhKeyPair::generate(DhGroup group) {
  const DhParams& params = DhParams::get(group);

  // Private exponent: 256 random bits is ample for these group sizes.
  BigUint priv;
  do {
    priv = BigUint::from_bytes(random_bytes(32));
  } while (priv.bit_length() < 128);  // reject pathologically small draws

  auto pub = params.generator.pow_mod(priv, params.prime);
  if (!pub.ok()) return pub.status();

  return DhKeyPair(group, std::move(priv), pub->to_bytes(params.key_bytes));
}

util::StatusOr<Sha256Digest> DhKeyPair::session_key(
    util::ByteSpan peer_public) const {
  const DhParams& params = DhParams::get(group_);
  const BigUint peer = BigUint::from_bytes(peer_public);

  // Reject degenerate public values that collapse the shared secret.
  if (peer.is_zero() || peer == BigUint(1) || peer >= params.prime ||
      peer == params.prime.sub(BigUint(1))) {
    return util::InvalidArgument("degenerate DH public value");
  }

  auto shared = peer.pow_mod(private_key_, params.prime);
  if (!shared.ok()) return shared.status();

  Sha256 hasher;
  const util::Bytes secret = shared->to_bytes(params.key_bytes);
  hasher.update(util::ByteSpan(secret.data(), secret.size()));
  hasher.update(std::string_view("naplet-session-v1"));
  return hasher.finish();
}

}  // namespace naplet::crypto
