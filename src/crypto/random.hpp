// Cryptographic random bytes for DH private keys and connection nonces.
// Reads /dev/urandom; falls back to a seeded SplitMix64 stream only if the
// device is unavailable (never on a normal Linux host).
#pragma once

#include <cstddef>

#include "util/bytes.hpp"

namespace naplet::crypto {

/// Fill `out` with `n` random bytes.
void random_bytes(std::uint8_t* out, std::size_t n);

/// Convenience: n fresh random bytes.
util::Bytes random_bytes(std::size_t n);

/// Uniform random 64-bit value.
std::uint64_t random_u64();

}  // namespace naplet::crypto
