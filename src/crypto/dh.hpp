// Diffie–Hellman key agreement (paper §3.3).
//
// At connection setup, the two NapletSocket controllers run DH to establish
// a secret session key; every later suspend/resume/close request must carry
// an HMAC under that key, protecting connection migration from hijack and
// eavesdropper-driven replay.
//
// Groups are the standard MODP groups (RFC 2409 / RFC 3526) with generator
// 2. The 768-bit group keeps tests fast; 2048-bit is the secure default.
#pragma once

#include <cstdint>

#include "crypto/bignum.hpp"
#include "crypto/sha256.hpp"
#include "util/status.hpp"

namespace naplet::crypto {

/// Named MODP group.
enum class DhGroup : std::uint8_t {
  kModp768 = 1,   // RFC 2409 Oakley Group 1 — test/bench use
  kModp1536 = 5,  // RFC 3526 Group 5
  kModp2048 = 14, // RFC 3526 Group 14 — default
};

struct DhParams {
  BigUint prime;
  BigUint generator;
  std::size_t key_bytes;  // size of the wire encoding of public values

  static const DhParams& get(DhGroup group);
};

/// One side's ephemeral DH state.
class DhKeyPair {
 public:
  /// Generate a fresh private/public pair in the given group.
  static util::StatusOr<DhKeyPair> generate(DhGroup group);

  /// Public value to send to the peer (fixed-width big-endian).
  [[nodiscard]] const util::Bytes& public_value() const noexcept {
    return public_bytes_;
  }

  /// Combine with the peer's public value; returns the 32-byte session key
  /// SHA-256(shared-secret || label). Rejects degenerate peer values
  /// (0, 1, p-1, >= p) which would void the secrecy.
  [[nodiscard]] util::StatusOr<Sha256Digest> session_key(
      util::ByteSpan peer_public) const;

  [[nodiscard]] DhGroup group() const noexcept { return group_; }

 private:
  DhKeyPair(DhGroup group, BigUint private_key, util::Bytes public_bytes)
      : group_(group),
        private_key_(std::move(private_key)),
        public_bytes_(std::move(public_bytes)) {}

  DhGroup group_;
  BigUint private_key_;
  util::Bytes public_bytes_;
};

}  // namespace naplet::crypto
