#include "crypto/hmac.hpp"

#include <cstring>

namespace naplet::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;
}

Sha256Digest hmac_sha256(util::ByteSpan key, util::ByteSpan message) noexcept {
  std::uint8_t key_block[kBlockSize] = {};
  if (key.size() > kBlockSize) {
    const Sha256Digest hashed = Sha256::hash(key);
    std::memcpy(key_block, hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  std::uint8_t ipad[kBlockSize];
  std::uint8_t opad[kBlockSize];
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(util::ByteSpan(ipad, kBlockSize));
  inner.update(message);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(util::ByteSpan(opad, kBlockSize));
  outer.update(util::ByteSpan(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

bool hmac_sha256_verify(util::ByteSpan key, util::ByteSpan message,
                        util::ByteSpan expected_tag) noexcept {
  const Sha256Digest tag = hmac_sha256(key, message);
  return util::equal_constant_time(
      util::ByteSpan(tag.data(), tag.size()), expected_tag);
}

Sha256Digest derive_key(util::ByteSpan secret, std::string_view label) noexcept {
  return hmac_sha256(
      secret, util::ByteSpan(reinterpret_cast<const std::uint8_t*>(label.data()),
                             label.size()));
}

}  // namespace naplet::crypto
