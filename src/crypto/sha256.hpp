// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for: agent-ID migration priorities (paper §3.1), HMAC control-message
// authentication, and session-key derivation from the Diffie–Hellman shared
// secret (paper §3.3).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"

namespace naplet::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(util::ByteSpan data) noexcept;
  void update(std::string_view s) noexcept {
    update(util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                          s.size()));
  }

  /// Finalize and return the digest. The hasher must be reset() before reuse.
  [[nodiscard]] Sha256Digest finish() noexcept;

  /// One-shot convenience.
  static Sha256Digest hash(util::ByteSpan data) noexcept;
  static Sha256Digest hash(std::string_view s) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace naplet::crypto
