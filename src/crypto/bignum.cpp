#include "crypto/bignum.hpp"

#include <algorithm>
#include <cassert>

namespace naplet::crypto {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;

int hex_nibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

BigUint::BigUint(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigUint::normalize() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

util::StatusOr<BigUint> BigUint::from_hex(std::string_view hex) {
  if (hex.empty()) return util::InvalidArgument("empty hex string");
  BigUint out;
  // Parse from the least significant end, 8 hex digits per limb.
  std::size_t end = hex.size();
  while (end > 0) {
    const std::size_t begin = end >= 8 ? end - 8 : 0;
    std::uint32_t limb = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const int nib = hex_nibble(hex[i]);
      if (nib < 0) return util::InvalidArgument("non-hex character");
      limb = limb << 4 | static_cast<std::uint32_t>(nib);
    }
    out.limbs_.push_back(limb);
    end = begin;
  }
  out.normalize();
  return out;
}

BigUint BigUint::from_bytes(util::ByteSpan data) {
  BigUint out;
  // data is big-endian; consume from the tail 4 bytes at a time.
  std::size_t end = data.size();
  while (end > 0) {
    const std::size_t begin = end >= 4 ? end - 4 : 0;
    std::uint32_t limb = 0;
    for (std::size_t i = begin; i < end; ++i) {
      limb = limb << 8 | data[i];
    }
    out.limbs_.push_back(limb);
    end = begin;
  }
  out.normalize();
  return out;
}

std::string BigUint::to_hex() const {
  if (limbs_.empty()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(limbs_.size() * 8);
  // Most significant limb without leading zeros.
  std::uint32_t top = limbs_.back();
  bool started = false;
  for (int shift = 28; shift >= 0; shift -= 4) {
    const unsigned nib = (top >> shift) & 0xF;
    if (nib != 0 || started) {
      out.push_back(kDigits[nib]);
      started = true;
    }
  }
  for (std::size_t i = limbs_.size() - 1; i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xF]);
    }
  }
  return out;
}

util::Bytes BigUint::to_bytes(std::size_t min_size) const {
  util::Bytes out;
  if (!limbs_.empty()) {
    // Most significant limb: skip leading zero bytes.
    std::uint32_t top = limbs_.back();
    bool started = false;
    for (int shift = 24; shift >= 0; shift -= 8) {
      const std::uint8_t b = static_cast<std::uint8_t>(top >> shift);
      if (b != 0 || started) {
        out.push_back(b);
        started = true;
      }
    }
    for (std::size_t i = limbs_.size() - 1; i-- > 0;) {
      for (int shift = 24; shift >= 0; shift -= 8) {
        out.push_back(static_cast<std::uint8_t>(limbs_[i] >> shift));
      }
    }
  }
  if (out.size() < min_size) {
    out.insert(out.begin(), min_size - out.size(), 0);
  }
  return out;
}

std::size_t BigUint::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUint::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::uint64_t BigUint::to_u64() const noexcept {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigUint::compare(const BigUint& other) const noexcept {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::add(const BigUint& other) const {
  BigUint out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigUint BigUint::sub(const BigUint& other) const {
  assert(compare(other) >= 0 && "BigUint::sub underflow");
  BigUint out;
  out.limbs_.reserve(limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) diff -= other.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  out.normalize();
  return out;
}

BigUint BigUint::mul(const BigUint& other) const {
  if (is_zero() || other.is_zero()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      const std::uint64_t cur =
          out.limbs_[i + j] + a * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + other.limbs_.size();
    while (carry) {
      const std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.normalize();
  return out;
}

BigUint BigUint::shift_left(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.normalize();
  return out;
}

BigUint BigUint::shift_right(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigUint();
  const std::size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.normalize();
  return out;
}

util::StatusOr<BigUint::DivMod> BigUint::divmod(const BigUint& divisor) const {
  if (divisor.is_zero()) return util::InvalidArgument("division by zero");
  if (compare(divisor) < 0) return DivMod{BigUint(), *this};

  // Single-limb divisor: simple short division.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    BigUint q;
    q.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = rem << 32 | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.normalize();
    return DivMod{std::move(q), BigUint(rem)};
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set, making quotient-digit estimation accurate to within 2.
  const std::size_t shift = 32 - (divisor.bit_length() % 32 == 0
                                      ? 32
                                      : divisor.bit_length() % 32);
  const BigUint u = shift_left(shift);
  const BigUint v = divisor.shift_left(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // extra high limb for the algorithm
  const std::vector<std::uint32_t>& vn = v.limbs_;

  BigUint q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat from the top two limbs of the current remainder.
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t q_hat = numerator / vn[n - 1];
    std::uint64_t r_hat = numerator % vn[n - 1];

    while (q_hat >= kBase ||
           q_hat * vn[n - 2] > ((r_hat << 32) | un[j + n - 2])) {
      --q_hat;
      r_hat += vn[n - 1];
      if (r_hat >= kBase) break;
    }

    // Multiply-and-subtract q_hat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = q_hat * vn[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(un[i + j]) -
                          static_cast<std::int64_t>(product & 0xFFFFFFFF) -
                          borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      un[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t diff = static_cast<std::int64_t>(un[j + n]) -
                        static_cast<std::int64_t>(carry) - borrow;
    if (diff < 0) {
      // q_hat was one too large: add v back and decrement.
      diff += static_cast<std::int64_t>(kBase);
      --q_hat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(un[i + j]) + vn[i] + add_carry;
        un[i + j] = static_cast<std::uint32_t>(sum);
        add_carry = sum >> 32;
      }
      diff += static_cast<std::int64_t>(add_carry);
    }
    un[j + n] = static_cast<std::uint32_t>(diff);
    q.limbs_[j] = static_cast<std::uint32_t>(q_hat);
  }
  q.normalize();

  BigUint r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.normalize();
  r = r.shift_right(shift);
  return DivMod{std::move(q), std::move(r)};
}

util::StatusOr<BigUint> BigUint::mod(const BigUint& modulus) const {
  auto dm = divmod(modulus);
  if (!dm.ok()) return dm.status();
  return std::move(dm->remainder);
}

util::StatusOr<BigUint> BigUint::mul_mod(const BigUint& other,
                                         const BigUint& m) const {
  return mul(other).mod(m);
}

util::StatusOr<BigUint> BigUint::pow_mod(const BigUint& exponent,
                                         const BigUint& m) const {
  if (m.is_zero()) return util::InvalidArgument("pow_mod with zero modulus");
  if (m.bit_length() == 1) return BigUint();  // mod 1 == 0

  auto base_or = mod(m);
  if (!base_or.ok()) return base_or.status();
  BigUint base = std::move(*base_or);
  BigUint result(1);

  // Left-to-right binary exponentiation.
  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    auto sq = result.mul_mod(result, m);
    if (!sq.ok()) return sq.status();
    result = std::move(*sq);
    if (exponent.bit(i)) {
      auto mu = result.mul_mod(base, m);
      if (!mu.ok()) return mu.status();
      result = std::move(*mu);
    }
  }
  return result;
}

}  // namespace naplet::crypto
