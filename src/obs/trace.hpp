// Observability pillar 2: cross-host migration traces.
//
// A migration is one causal story told by two controllers and a redirector.
// The initiating suspend mints a 64-bit trace id; the id rides — MAC
// covered, exactly like the incarnation epoch — inside CtrlMsg/HandoffMsg,
// so every participant attributes its span events (suspend-sent,
// drain-complete, journal-commit, handoff-accept, resume-committed,
// replay-done) to the same trace without any out-of-band coordination.
//
// The sink is process-global on purpose: in-process testbeds (SimNet
// realms, the chaos harness) run every host in one process, so spans from
// both ends of a migration land in one sink and stitch by id. Timestamps
// come from a pluggable time source — wall milliseconds by default, the
// DES virtual clock when a simulator binds itself (mirroring the fault
// clock), which is what makes simulated traces deterministic and
// assertable.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::obs {

enum class SpanKind : std::uint8_t {
  kSuspendSent = 0,    ///< initiator sent SUS (trace id just minted)
  kDrainComplete,      ///< in-flight frames drained to the declared mark
  kJournalCommit,      ///< a durable commit point was recorded
  kHandoffAccept,      ///< redirector accepted the handoff request
  kResumeCommitted,    ///< RESUME handshake committed on this host
  kReplayDone,         ///< buffered/history frames replayed exactly-once
  kNote,               ///< free-form auxiliary event
};

[[nodiscard]] std::string_view to_string(SpanKind kind) noexcept;

struct SpanEvent {
  std::uint64_t trace_id = 0;
  SpanKind kind = SpanKind::kNote;
  std::uint64_t conn_id = 0;
  std::string host;    ///< node/controller that produced the event
  std::string detail;  ///< e.g. the journal commit point name
  double t_ms = 0;     ///< sink clock at record time
  std::uint64_t value = 0;  ///< kind-specific payload (bytes drained, ...)
};

/// All spans sharing one trace id, in sink arrival order.
struct Trace {
  std::uint64_t id = 0;
  std::vector<SpanEvent> spans;

  [[nodiscard]] bool has(SpanKind kind) const noexcept;
  /// A trace is complete once some host committed the resume.
  [[nodiscard]] bool complete() const noexcept {
    return has(SpanKind::kResumeCommitted);
  }
  [[nodiscard]] std::string to_json() const;
};

class TraceSink {
 public:
  static TraceSink& instance();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Record one span. Events with trace_id 0 are dropped (no trace is in
  /// flight). Stamps t_ms from the sink clock. Bounded: the oldest events
  /// are evicted past kCapacity and counted in dropped().
  void record(SpanEvent event);

  [[nodiscard]] std::vector<SpanEvent> events() const;
  /// Events grouped by id; traces ordered by first appearance.
  [[nodiscard]] std::vector<Trace> traces() const;
  /// Only the traces whose resume has committed (exportable).
  [[nodiscard]] std::vector<Trace> completed() const;
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  void clear();

  /// Replace the span clock (nullptr restores wall ms since construction).
  /// The DES engine binds its virtual now() here — see
  /// sim::Simulator::bind_trace_clock().
  void set_time_source(std::function<double()> now_ms);
  [[nodiscard]] double now_ms() const;

 private:
  TraceSink();

  static constexpr std::size_t kCapacity = 8192;

  mutable util::Mutex mu_{util::LockRank::kObsTrace, "obs.trace"};
  std::deque<SpanEvent> events_ NAPLET_GUARDED_BY(mu_);
  std::function<double()> clock_ NAPLET_GUARDED_BY(mu_);
  const std::int64_t t0_us_;  // process-start epoch, fixed in the ctor
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace naplet::obs
