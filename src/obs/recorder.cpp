#include "obs/recorder.hpp"

#include <algorithm>
#include <vector>

#include "util/clock.hpp"
#include "util/lock_rank.hpp"
#include "util/sync.hpp"

namespace naplet::obs {

namespace {

std::atomic<Namer> g_state_namer{nullptr};
std::atomic<Namer> g_event_namer{nullptr};
std::atomic<Namer> g_ctrl_namer{nullptr};
std::atomic<Namer> g_handoff_namer{nullptr};

std::string name_or_num(const std::atomic<Namer>& namer, std::uint8_t code) {
  if (Namer fn = namer.load(std::memory_order_acquire); fn != nullptr) {
    return std::string(fn(code));
  }
  return std::to_string(code);
}

// Directory of live recorders. Deliberately unranked: dump_all runs inside
// the lock-rank violation handler, where the dying thread may hold locks
// of any rank — a ranked mutex here would recurse into the validator.
struct RecorderDirectory {
  util::Mutex mu{util::LockRank::kUnranked, "recorder.directory"};
  std::vector<FlightRecorder*> live NAPLET_GUARDED_BY(mu);

  static RecorderDirectory& instance() {
    static RecorderDirectory dir;
    return dir;
  }
};

void violation_hook() { dump_all(stderr); }

}  // namespace

FlightRecorder::FlightRecorder(std::string label, std::size_t capacity)
    : label_(std::move(label)),
      capacity_(std::max<std::size_t>(capacity, 2)),
      slots_(new Slot[capacity_]) {
  auto& dir = RecorderDirectory::instance();
  util::MutexLock lock(dir.mu);
  dir.live.push_back(this);
}

FlightRecorder::~FlightRecorder() {
  auto& dir = RecorderDirectory::instance();
  util::MutexLock lock(dir.mu);
  std::erase(dir.live, this);
}

void FlightRecorder::record(Kind kind, std::uint8_t a, std::uint8_t b,
                            std::uint8_t c) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % capacity_];
  slot.t_us.store(
      static_cast<std::uint64_t>(util::RealClock::instance().now_us()),
      std::memory_order_relaxed);
  slot.packed.store(static_cast<std::uint64_t>(kind) << 56 |
                        static_cast<std::uint64_t>(a) << 48 |
                        static_cast<std::uint64_t>(b) << 40 |
                        static_cast<std::uint64_t>(c) << 32 |
                        static_cast<std::uint32_t>(seq),
                    std::memory_order_relaxed);
}

std::vector<FlightRecorder::Entry> FlightRecorder::entries() const {
  const std::uint64_t head = next_.load(std::memory_order_relaxed);
  std::vector<Entry> out;
  out.reserve(std::min<std::uint64_t>(head, capacity_));
  // Walk oldest-first: slot (head % cap) is the next to be overwritten.
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[(head + i) % capacity_];
    const std::uint64_t packed = slot.packed.load(std::memory_order_relaxed);
    if (packed == 0) continue;
    Entry e;
    e.t_ms = static_cast<double>(slot.t_us.load(std::memory_order_relaxed)) /
             1000.0;
    e.kind = static_cast<Kind>(packed >> 56);
    e.a = static_cast<std::uint8_t>(packed >> 48);
    e.b = static_cast<std::uint8_t>(packed >> 40);
    e.c = static_cast<std::uint8_t>(packed >> 32);
    e.seq = static_cast<std::uint32_t>(packed);
    out.push_back(e);
  }
  // Concurrent writers can leave mixed generations; sort by ordinal so the
  // dump reads in record order regardless.
  std::sort(out.begin(), out.end(),
            [](const Entry& x, const Entry& y) { return x.seq < y.seq; });
  return out;
}

std::string FlightRecorder::dump() const {
  const auto snapshot = entries();
  std::string out = "flight recorder [" + label_ + "]: " +
                    std::to_string(recorded()) + " events, last " +
                    std::to_string(snapshot.size()) + ":\n";
  char buf[64];
  for (const Entry& e : snapshot) {
    std::snprintf(buf, sizeof buf, "  #%u t=%.3fms ", e.seq, e.t_ms);
    out += buf;
    switch (e.kind) {
      case Kind::kFsm:
        out += "fsm " + name_or_num(g_state_namer, e.a) + " --" +
               name_or_num(g_event_namer, e.b) + "--> " +
               name_or_num(g_state_namer, e.c);
        break;
      case Kind::kCtrlSend:
      case Kind::kCtrlRecv:
        out += e.kind == Kind::kCtrlSend ? "ctrl-send " : "ctrl-recv ";
        out += e.b != 0 ? name_or_num(g_handoff_namer, e.a)
                        : name_or_num(g_ctrl_namer, e.a);
        break;
      case Kind::kNote:
        out += "note " + std::to_string(e.a) + "/" + std::to_string(e.b) +
               "/" + std::to_string(e.c);
        break;
      case Kind::kNone:
        out += "empty";
        break;
    }
    out += "\n";
  }
  return out;
}

void set_namers(Namer fsm_state, Namer fsm_event, Namer ctrl_type,
                Namer handoff_type) {
  g_state_namer.store(fsm_state, std::memory_order_release);
  g_event_namer.store(fsm_event, std::memory_order_release);
  g_ctrl_namer.store(ctrl_type, std::memory_order_release);
  g_handoff_namer.store(handoff_type, std::memory_order_release);
}

std::string dump_all() {
  auto& dir = RecorderDirectory::instance();
  std::string out;
  util::MutexLock lock(dir.mu);
  for (const FlightRecorder* rec : dir.live) {
    out += rec->dump();
  }
  return out;
}

void dump_all(std::FILE* out) {
  const std::string text = dump_all();
  std::fputs(text.c_str(), out);
  std::fflush(out);
}

void install_lock_rank_hook() {
  util::lock_rank::set_violation_hook(&violation_hook);
}

}  // namespace naplet::obs
