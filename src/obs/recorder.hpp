// Observability pillar 3: the per-session flight recorder.
//
// A bounded ring of the session's most recent FSM transitions and control
// send/recv events. The record path is lock-free — one relaxed fetch_add
// plus three relaxed stores into a fixed slot — because the FSM hook fires
// inside Session::advance while the state-cell lock (rank kStateCell) is
// held; a disabled recorder costs a single relaxed load. The ring is read
// only on failure: abort_session dumps it, the chaos harness attaches it
// to failing cases next to the minimized fault plan, and a lock-rank
// violation dumps every live recorder to stderr before aborting (see
// install_lock_rank_hook, wired through util's violation hook because util
// cannot depend on obs).
//
// Slots are triplets of relaxed atomics, so a dump racing active writers
// reads internally-consistent words (possibly of mixed generations near
// the ring head — acceptable for a diagnostic, and race-free under TSan).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace naplet::obs {

class FlightRecorder {
 public:
  enum class Kind : std::uint8_t {
    kNone = 0,  ///< empty slot marker
    kFsm,       ///< a/b/c = from-state / event / to-state
    kCtrlSend,  ///< a = CtrlType (or HandoffType with b=1)
    kCtrlRecv,  ///< a = CtrlType (or HandoffType with b=1)
    kNote,      ///< a/b/c free-form
  };

  struct Entry {
    double t_ms = 0;
    Kind kind = Kind::kNone;
    std::uint8_t a = 0;
    std::uint8_t b = 0;
    std::uint8_t c = 0;
    std::uint32_t seq = 0;  ///< global record ordinal (wrap-safe ordering)
  };

  static constexpr std::size_t kDefaultCapacity = 128;

  explicit FlightRecorder(std::string label,
                          std::size_t capacity = kDefaultCapacity);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Lock-free, allocation-free; safe under any protocol lock.
  void record(Kind kind, std::uint8_t a, std::uint8_t b, std::uint8_t c);
  void record_fsm(std::uint8_t from, std::uint8_t event, std::uint8_t to) {
    record(Kind::kFsm, from, event, to);
  }

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Oldest-first snapshot of the ring (skips empty slots).
  [[nodiscard]] std::vector<Entry> entries() const;
  /// Human-readable dump; decodes codes via the installed namers.
  [[nodiscard]] std::string dump() const;

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> t_us{0};
    std::atomic<std::uint64_t> packed{0};  // kind<<56|a<<48|b<<40|c<<32|seq
  };

  std::string label_;
  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<bool> enabled_{true};
};

/// Decode a raw code into a name for dump() (installed by the core layer:
/// obs cannot depend on the protocol enums). Must be pure and immortal.
using Namer = std::string_view (*)(std::uint8_t);

/// Install the FSM-state / FSM-event / ctrl-type / handoff-type decoders
/// used by FlightRecorder::dump and dump_all. Any may be nullptr (codes
/// print numerically).
void set_namers(Namer fsm_state, Namer fsm_event, Namer ctrl_type,
                Namer handoff_type);

/// Dump every live recorder (registered automatically by the constructor).
[[nodiscard]] std::string dump_all();
void dump_all(std::FILE* out);

/// Register dump_all(stderr) as util's lock-rank violation hook, so a
/// rank-order abort ships the recent execution history of every session.
/// Idempotent.
void install_lock_rank_hook();

}  // namespace naplet::obs
