#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace naplet::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

double HistogramSnapshot::bucket_lower(int k) noexcept {
  if (k <= 0) return 0.0;
  return std::ldexp(1.0, k - 1);  // 2^(k-1)
}

double HistogramSnapshot::bucket_upper(int k) noexcept {
  if (k <= 0) return 0.0;
  // The overflow bucket has no finite upper edge; report its lower edge so
  // percentiles degrade to a stated lower bound instead of inventing mass.
  if (k >= kHistogramBuckets - 1) return bucket_lower(k);
  return std::ldexp(1.0, k);  // 2^k
}

double HistogramSnapshot::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Target cumulative rank in [1, count].
  const double rank =
      std::max(1.0, p / 100.0 * static_cast<double>(count));
  std::uint64_t cum = 0;
  for (int k = 0; k < kHistogramBuckets; ++k) {
    const std::uint64_t n = buckets[static_cast<std::size_t>(k)];
    if (n == 0) continue;
    if (static_cast<double>(cum + n) >= rank) {
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(n);
      const double lo = bucket_lower(k);
      return lo + frac * (bucket_upper(k) - lo);
    }
    cum += n;
  }
  return bucket_upper(kHistogramBuckets - 1);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) noexcept {
  count += other.count;
  sum += other.sum;
  for (std::size_t k = 0; k < buckets.size(); ++k) {
    buckets[k] += other.buckets[k];
  }
}

const CounterSnapshot* Snapshot::counter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* Snapshot::gauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* Snapshot::histogram(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Counter& Registry::counter(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name, std::string_view unit) {
  util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
    it->second.unit = std::string(unit);
  }
  return it->second.hist;
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  util::MutexLock lock(mu_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.push_back({name, c.value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.push_back({name, g.value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, entry] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.unit = entry.unit;
    h.count = entry.hist.count();
    h.sum = entry.hist.sum();
    for (int k = 0; k < kHistogramBuckets; ++k) {
      h.buckets[static_cast<std::size_t>(k)] = entry.hist.bucket(k);
    }
    out.histograms.push_back(std::move(h));
  }
  return out;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " " + std::to_string(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    std::uint64_t cum = 0;
    for (int k = 0; k < kHistogramBuckets; ++k) {
      const std::uint64_t n = h.buckets[static_cast<std::size_t>(k)];
      cum += n;
      if (n == 0 && k != kHistogramBuckets - 1) continue;  // keep it compact
      const std::string le = k == kHistogramBuckets - 1
                                 ? "+Inf"
                                 : fmt_double(HistogramSnapshot::bucket_upper(k));
      out += h.name + "_bucket{le=\"" + le + "\"} " + std::to_string(cum) +
             "\n";
    }
    out += h.name + "_sum " + std::to_string(h.sum) + "\n";
    out += h.name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + c.name + "\":" + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + g.name + "\":" + std::to_string(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + h.name + "\":{\"unit\":\"" + h.unit +
           "\",\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"p50\":" + fmt_double(h.percentile(50)) +
           ",\"p95\":" + fmt_double(h.percentile(95)) +
           ",\"p99\":" + fmt_double(h.percentile(99)) + ",\"buckets\":[";
    for (int k = 0; k < kHistogramBuckets; ++k) {
      if (k) out += ",";
      out += std::to_string(h.buckets[static_cast<std::size_t>(k)]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace naplet::obs
