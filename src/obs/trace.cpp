#include "obs/trace.hpp"

#include <cstdio>
#include <map>

#include "util/clock.hpp"

namespace naplet::obs {

std::string_view to_string(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kSuspendSent: return "suspend-sent";
    case SpanKind::kDrainComplete: return "drain-complete";
    case SpanKind::kJournalCommit: return "journal-commit";
    case SpanKind::kHandoffAccept: return "handoff-accept";
    case SpanKind::kResumeCommitted: return "resume-committed";
    case SpanKind::kReplayDone: return "replay-done";
    case SpanKind::kNote: return "note";
  }
  return "?";
}

bool Trace::has(SpanKind kind) const noexcept {
  for (const auto& s : spans) {
    if (s.kind == kind) return true;
  }
  return false;
}

std::string Trace::to_json() const {
  char buf[64];
  std::string out = "{\"trace_id\":\"";
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  out += buf;
  out += "\",\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanEvent& s = spans[i];
    if (i) out += ",";
    std::snprintf(buf, sizeof buf, "%.6g", s.t_ms);
    out += "{\"kind\":\"" + std::string(to_string(s.kind)) +
           "\",\"host\":\"" + s.host +
           "\",\"conn\":" + std::to_string(s.conn_id) +
           ",\"t_ms\":" + buf + ",\"value\":" + std::to_string(s.value);
    if (!s.detail.empty()) out += ",\"detail\":\"" + s.detail + "\"";
    out += "}";
  }
  return out + "]}";
}

TraceSink::TraceSink() : t0_us_(util::RealClock::instance().now_us()) {}

TraceSink& TraceSink::instance() {
  static TraceSink sink;
  return sink;
}

void TraceSink::record(SpanEvent event) {
  if (event.trace_id == 0) return;
  util::MutexLock lock(mu_);
  event.t_ms = clock_ ? clock_()
                      : static_cast<double>(
                            util::RealClock::instance().now_us() - t0_us_) /
                            1000.0;
  if (events_.size() >= kCapacity) {
    events_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  events_.push_back(std::move(event));
}

std::vector<SpanEvent> TraceSink::events() const {
  util::MutexLock lock(mu_);
  return {events_.begin(), events_.end()};
}

std::vector<Trace> TraceSink::traces() const {
  std::vector<Trace> out;
  std::map<std::uint64_t, std::size_t> index;
  for (auto& event : events()) {
    auto [it, fresh] = index.try_emplace(event.trace_id, out.size());
    if (fresh) out.push_back(Trace{event.trace_id, {}});
    out[it->second].spans.push_back(std::move(event));
  }
  return out;
}

std::vector<Trace> TraceSink::completed() const {
  std::vector<Trace> out;
  for (auto& trace : traces()) {
    if (trace.complete()) out.push_back(std::move(trace));
  }
  return out;
}

void TraceSink::clear() {
  util::MutexLock lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void TraceSink::set_time_source(std::function<double()> now_ms) {
  util::MutexLock lock(mu_);
  clock_ = std::move(now_ms);
}

double TraceSink::now_ms() const {
  util::MutexLock lock(mu_);
  return clock_ ? clock_()
                : static_cast<double>(util::RealClock::instance().now_us() -
                                      t0_us_) /
                      1000.0;
}

}  // namespace naplet::obs
