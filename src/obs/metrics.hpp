// Observability pillar 1: the metrics registry.
//
// Named counters, gauges, and fixed-bucket log2 histograms. The hot path
// (Counter::add, Gauge::set, Histogram::record) is lock-free and allocation
// free — a handful of relaxed atomic operations — so protocol code records
// into pre-registered instruments with no measurable cost when nobody is
// exporting. Registration and snapshot() take the registry lock (rank
// kObsRegistry); instruments have stable addresses for the life of the
// registry, so callers cache references once and record forever.
//
// Histogram buckets are powers of two: bucket 0 holds the value 0, bucket k
// (1 <= k <= kHistogramBuckets-2) holds [2^(k-1), 2^k), and the last bucket
// is the overflow bucket for everything at or above 2^(kHistogramBuckets-2).
// Percentiles interpolate linearly inside a bucket's value range.
//
// Exporters: Prometheus text format and JSON, both rendering every
// registered metric (the generic ControllerStats::to_string() rendering is
// built on the same Snapshot, so a new metric can never be silently
// omitted from any of the three).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::obs {

/// Monotone counter. add() is lock-free and allocation free.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value (may go down). set()/add() are lock-free.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

inline constexpr int kHistogramBuckets = 40;

/// The repo's clocks report milliseconds; histograms record integer
/// microseconds. Clamps negatives to zero.
[[nodiscard]] inline std::uint64_t ms_to_us(double ms) noexcept {
  return ms <= 0 ? 0 : static_cast<std::uint64_t>(ms * 1000.0);
}

/// Fixed log2-bucket histogram. record() touches three relaxed atomics.
class Histogram {
 public:
  /// Bucket index for `v`: 0 for 0, bit_width(v) for the power-of-two
  /// range, clamped into the final overflow bucket.
  [[nodiscard]] static constexpr int bucket_of(std::uint64_t v) noexcept {
    if (v == 0) return 0;
    const int w = std::bit_width(v);
    return w < kHistogramBuckets - 1 ? w : kHistogramBuckets - 1;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(int k) const noexcept {
    return buckets_[static_cast<std::size_t>(k)].load(
        std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::string unit;  // advisory: "us", "bytes", "count"
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Inclusive lower edge of bucket k's value range.
  [[nodiscard]] static double bucket_lower(int k) noexcept;
  /// Exclusive upper edge (== lower for bucket 0 and the overflow bucket).
  [[nodiscard]] static double bucket_upper(int k) noexcept;

  /// p in [0, 100]. Linear interpolation within the target bucket's value
  /// range; the overflow bucket reports its lower edge. 0 when empty.
  [[nodiscard]] double percentile(double p) const noexcept;
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Element-wise accumulate `other` into this snapshot (cross-host or
  /// cross-run aggregation).
  void merge(const HistogramSnapshot& other) noexcept;
};

/// A consistent-enough view of every registered metric (each value is an
/// individually-atomic read; no torn values, sorted by name).
struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] const CounterSnapshot* counter(std::string_view name) const;
  [[nodiscard]] const GaugeSnapshot* gauge(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* histogram(
      std::string_view name) const;
};

/// Get-or-create registry of named instruments. Returned references stay
/// valid for the registry's lifetime (node-based storage). One registry
/// per controller keeps multi-node tests independent; Registry::global()
/// serves process-wide code with no natural owner.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::string_view unit = "us");

  [[nodiscard]] Snapshot snapshot() const;

  static Registry& global();

 private:
  struct HistogramEntry {
    std::string unit;
    Histogram hist;
  };

  mutable util::Mutex mu_{util::LockRank::kObsRegistry, "obs.registry"};
  std::map<std::string, Counter, std::less<>> counters_ NAPLET_GUARDED_BY(mu_);
  std::map<std::string, Gauge, std::less<>> gauges_ NAPLET_GUARDED_BY(mu_);
  std::map<std::string, HistogramEntry, std::less<>> histograms_
      NAPLET_GUARDED_BY(mu_);
};

/// Prometheus text exposition format (counters, gauges, and cumulative
/// histogram buckets with le="" labels).
[[nodiscard]] std::string to_prometheus(const Snapshot& snapshot);

/// JSON: {"counters":{...},"gauges":{...},"histograms":{name:{unit,count,
/// sum,p50,p95,p99,buckets:[...]}}}.
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

}  // namespace naplet::obs
