#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/sync.hpp"

namespace naplet::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::once_flag g_env_once;
// Innermost rank: any subsystem may log while holding its own locks.
Mutex g_io_mutex{LockRank::kLogger, "log.io"};

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

void init_from_env() {
  if (const char* env = std::getenv("NAPLET_LOG")) {
    g_level.store(static_cast<int>(parse_log_level(env)),
                  std::memory_order_relaxed);
  }
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  std::call_once(g_env_once, init_from_env);
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

LogLevel parse_log_level(std::string_view name) noexcept {
  auto eq = [&](std::string_view want) {
    if (name.size() != want.size()) return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
      char c = name[i];
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      if (c != want[i]) return false;
    }
    return true;
  };
  if (eq("trace")) return LogLevel::kTrace;
  if (eq("debug")) return LogLevel::kDebug;
  if (eq("info")) return LogLevel::kInfo;
  if (eq("warn") || eq("warning")) return LogLevel::kWarn;
  if (eq("error")) return LogLevel::kError;
  if (eq("off") || eq("none")) return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

void log_line(LogLevel level, std::string_view component, std::string_view msg) {
  using namespace std::chrono;
  static const auto t0 = steady_clock::now();
  const auto us = duration_cast<microseconds>(steady_clock::now() - t0).count();
  const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xFFFF;

  MutexLock lock(g_io_mutex);
  std::fprintf(stderr, "[%9.3fms %s t%04zx %.*s] %.*s\n",
               static_cast<double>(us) / 1000.0, level_tag(level), tid,
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace detail

}  // namespace naplet::util
