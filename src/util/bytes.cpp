#include "util/bytes.hpp"

#include <array>
#include <bit>

namespace naplet::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    }
    table[i] = c;
  }
  return table;
}

int hex_nibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::uint32_t crc32(ByteSpan data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (const std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFU] ^ (c >> 8U);
  }
  return c ^ 0xFFFFFFFFU;
}

std::string to_hex(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

StatusOr<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

bool equal_constant_time(ByteSpan a, ByteSpan b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void BytesWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BytesWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BytesWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void BytesWriter::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  u64(std::bit_cast<std::uint64_t>(v));
}

void BytesWriter::bytes(ByteSpan data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void BytesWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void BytesWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 24);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v >> 16);
  buf_.at(offset + 2) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 3) = static_cast<std::uint8_t>(v);
}

Status BytesReader::need(std::size_t n) const {
  if (remaining() < n) {
    return OutOfRange("buffer underflow: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()));
  }
  return OkStatus();
}

StatusOr<std::uint8_t> BytesReader::u8() {
  NAPLET_RETURN_IF_ERROR(need(1));
  return data_[pos_++];
}

StatusOr<std::uint16_t> BytesReader::u16() {
  NAPLET_RETURN_IF_ERROR(need(2));
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

StatusOr<std::uint32_t> BytesReader::u32() {
  NAPLET_RETURN_IF_ERROR(need(4));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 4;
  return v;
}

StatusOr<std::uint64_t> BytesReader::u64() {
  NAPLET_RETURN_IF_ERROR(need(8));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 8;
  return v;
}

StatusOr<std::int64_t> BytesReader::i64() {
  auto v = u64();
  if (!v.ok()) return v.status();
  return static_cast<std::int64_t>(*v);
}

StatusOr<double> BytesReader::f64() {
  auto v = u64();
  if (!v.ok()) return v.status();
  return std::bit_cast<double>(*v);
}

StatusOr<bool> BytesReader::boolean() {
  auto v = u8();
  if (!v.ok()) return v.status();
  return *v != 0;
}

StatusOr<Bytes> BytesReader::raw(std::size_t n) {
  NAPLET_RETURN_IF_ERROR(need(n));
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

StatusOr<Bytes> BytesReader::bytes() {
  auto n = u32();
  if (!n.ok()) return n.status();
  return raw(*n);
}

StatusOr<std::string> BytesReader::str() {
  auto b = bytes();
  if (!b.ok()) return b.status();
  return std::string(b->begin(), b->end());
}

Status BytesReader::skip(std::size_t n) {
  NAPLET_RETURN_IF_ERROR(need(n));
  pos_ += n;
  return OkStatus();
}

}  // namespace naplet::util
