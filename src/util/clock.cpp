#include "util/clock.hpp"

#include <thread>

namespace naplet::util {

std::int64_t RealClock::now_us() {
  using namespace std::chrono;
  return duration_cast<microseconds>(steady_clock::now().time_since_epoch())
      .count();
}

void RealClock::sleep_for(Duration d) { std::this_thread::sleep_for(d); }

RealClock& RealClock::instance() {
  static RealClock clock;
  return clock;
}

std::int64_t VirtualClock::now_us() {
  std::lock_guard lock(mu_);
  return now_us_;
}

void VirtualClock::sleep_for(Duration d) {
  std::unique_lock lock(mu_);
  const std::int64_t deadline = now_us_ + d.count();
  ++sleepers_;
  cv_.wait(lock, [&] { return now_us_ >= deadline; });
  --sleepers_;
}

void VirtualClock::advance(Duration d) {
  {
    std::lock_guard lock(mu_);
    now_us_ += d.count();
  }
  cv_.notify_all();
}

int VirtualClock::sleeper_count() const {
  std::lock_guard lock(mu_);
  return sleepers_;
}

}  // namespace naplet::util
