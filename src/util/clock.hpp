// Clock abstraction: real (steady_clock-backed) and virtual (manually
// advanced) clocks behind one interface so protocol code and the Section-5
// simulator can share timing logic and tests can run deterministically.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace naplet::util {

using Duration = std::chrono::microseconds;
using TimePoint = std::chrono::steady_clock::time_point;

inline Duration ms(std::int64_t n) { return std::chrono::milliseconds(n); }
inline Duration us(std::int64_t n) { return std::chrono::microseconds(n); }

/// Monotonic clock interface.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Microseconds since an arbitrary (per-clock) epoch.
  virtual std::int64_t now_us() = 0;
  /// Block the calling thread for (at least) `d`.
  virtual void sleep_for(Duration d) = 0;
};

/// Wall-clock backed by std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  std::int64_t now_us() override;
  void sleep_for(Duration d) override;

  /// Process-wide shared instance.
  static RealClock& instance();
};

/// Manually advanced clock for deterministic tests. sleep_for() blocks the
/// caller until another thread advances the clock past the wake time.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(std::int64_t start_us = 0) : now_us_(start_us) {}

  std::int64_t now_us() override;
  void sleep_for(Duration d) override;

  /// Advance virtual time, waking any sleepers whose deadline has passed.
  void advance(Duration d);
  /// Number of threads currently blocked in sleep_for().
  int sleeper_count() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t now_us_;
  int sleepers_ = 0;
};

/// Scoped stopwatch for instrumenting code phases (Fig. 8 breakdowns).
class Stopwatch {
 public:
  explicit Stopwatch(Clock& clock) : clock_(clock), start_us_(clock.now_us()) {}

  /// Microseconds elapsed since construction or last reset.
  [[nodiscard]] std::int64_t elapsed_us() const { return clock_.now_us() - start_us_; }
  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_us()) / 1000.0;
  }
  void reset() { start_us_ = clock_.now_us(); }

 private:
  Clock& clock_;
  std::int64_t start_us_;
};

}  // namespace naplet::util
