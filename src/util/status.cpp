#include "util/status.hpp"

namespace naplet::util {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnauthenticated: return "UNAUTHENTICATED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kProtocolError: return "PROTOCOL_ERROR";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out(naplet::util::to_string(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace naplet::util
