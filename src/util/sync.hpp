// Small thread-synchronization helpers used across the agent runtime and the
// NapletSocket controller: a closable blocking queue, a one-shot/resettable
// event, and a waitable state cell for FSM condition waits.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace naplet::util {

/// Unbounded MPMC blocking queue with close() semantics: after close(),
/// pops drain the remaining items and then return nullopt.
template <typename T>
class BlockingQueue {
 public:
  /// Returns false if the queue is closed (item dropped).
  bool push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed-and-empty.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Like pop() but gives up after `timeout`.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout,
                      [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Manual-reset event: set() releases all current and future waiters until
/// reset(). wait_for returns false on timeout.
class Event {
 public:
  void set() {
    {
      std::lock_guard lock(mu_);
      set_ = true;
    }
    cv_.notify_all();
  }

  void reset() {
    std::lock_guard lock(mu_);
    set_ = false;
  }

  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return set_; });
  }

  template <typename Rep, typename Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return set_; });
  }

  [[nodiscard]] bool is_set() const {
    std::lock_guard lock(mu_);
    return set_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool set_ = false;
};

/// A value cell whose changes can be awaited — the natural shape for
/// "wait until the connection reaches state X (or timeout)".
template <typename T>
class WaitableCell {
 public:
  explicit WaitableCell(T initial) : value_(std::move(initial)) {}

  T get() const {
    std::lock_guard lock(mu_);
    return value_;
  }

  void set(T v) {
    {
      std::lock_guard lock(mu_);
      value_ = std::move(v);
    }
    cv_.notify_all();
  }

  /// Apply a mutation under the lock, then notify waiters.
  template <typename Fn>
  void update(Fn&& fn) {
    {
      std::lock_guard lock(mu_);
      fn(value_);
    }
    cv_.notify_all();
  }

  /// Wait until pred(value) holds; returns the satisfying value.
  template <typename Pred>
  T wait(Pred&& pred) const {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return pred(value_); });
    return value_;
  }

  /// Wait with timeout; nullopt on timeout.
  template <typename Pred, typename Rep, typename Period>
  std::optional<T> wait_for(Pred&& pred,
                            std::chrono::duration<Rep, Period> timeout) const {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return pred(value_); })) {
      return std::nullopt;
    }
    return value_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  T value_;
};

}  // namespace naplet::util
