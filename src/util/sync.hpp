// Thread-synchronization layer used across the agent runtime and the
// NapletSocket controller. Two halves:
//
//  * Annotated primitives (Mutex / MutexLock / UniqueMutexLock / CondVar):
//    std::mutex + std::condition_variable wrapped with Clang
//    thread-safety capability annotations (thread_annotations.hpp) and,
//    in debug builds, runtime lock-rank validation (lock_rank.hpp). Every
//    mutex in the concurrent subsystems is one of these.
//  * Higher-level helpers built on them: a closable blocking queue, a
//    one-shot/resettable event, and a waitable state cell for FSM
//    condition waits.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/lock_rank.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::util {

/// Annotated mutex. Construct with a LockRank to opt into the global lock
/// hierarchy (debug builds abort on out-of-order acquisition, printing
/// both acquisition stacks); default-constructed mutexes are unranked and
/// only get the static Clang analysis.
class NAPLET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank, const char* name = "")
#if NAPLET_LOCK_RANK_CHECKS
      : rank_(rank), name_(name)
#endif
  {
#if !NAPLET_LOCK_RANK_CHECKS
    (void)rank;
    (void)name;
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NAPLET_ACQUIRE() {
#if NAPLET_LOCK_RANK_CHECKS
    // Validate BEFORE blocking so a would-be deadlock aborts with both
    // stacks instead of hanging.
    if (rank_ != LockRank::kUnranked) {
      lock_rank::note_acquire(this, rank_, name_);
    }
#endif
    mu_.lock();
  }

  void unlock() NAPLET_RELEASE() {
    mu_.unlock();
#if NAPLET_LOCK_RANK_CHECKS
    if (rank_ != LockRank::kUnranked) lock_rank::note_release(this);
#endif
  }

  bool try_lock() NAPLET_TRY_ACQUIRE(true) {
    const bool got = mu_.try_lock();
#if NAPLET_LOCK_RANK_CHECKS
    // try_lock cannot deadlock, so record without order validation.
    if (got && rank_ != LockRank::kUnranked) {
      lock_rank::note_acquire_unchecked(this, rank_, name_);
    }
#endif
    return got;
  }

  /// The underlying std::mutex, for CondVar's adopt-and-wait dance only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
#if NAPLET_LOCK_RANK_CHECKS
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "";
#endif
};

/// std::lock_guard equivalent for Mutex.
class NAPLET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NAPLET_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() NAPLET_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock equivalent: supports early unlock/relock (the send
/// path's lock coupling) and try_to_lock construction.
class NAPLET_SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex& mu) NAPLET_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
    owned_ = true;
  }
  UniqueMutexLock(Mutex& mu, std::try_to_lock_t) NAPLET_TRY_ACQUIRE(true, mu)
      : mu_(mu), owned_(mu.try_lock()) {}
  ~UniqueMutexLock() NAPLET_RELEASE() {
    if (owned_) mu_.unlock();
  }

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

  void lock() NAPLET_ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }
  void unlock() NAPLET_RELEASE() {
    mu_.unlock();
    owned_ = false;
  }
  [[nodiscard]] bool owns_lock() const noexcept { return owned_; }

 private:
  Mutex& mu_;
  bool owned_ = false;
};

/// Condition variable for Mutex. Waits name the Mutex itself (absl style),
/// which must be held by the caller; the guard object stays intact across
/// the wait. The debug-build rank record also stays in place: a thread
/// blocked in wait holds the lock again by the time it runs.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) NAPLET_REQUIRES(mu) {
    std::unique_lock<std::mutex> ul(mu.native(), std::adopt_lock);
    cv_.wait(ul);
    ul.release();  // ownership stays with the caller's guard
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu, std::chrono::duration<Rep, Period> d)
      NAPLET_REQUIRES(mu) {
    std::unique_lock<std::mutex> ul(mu.native(), std::adopt_lock);
    const std::cv_status st = cv_.wait_for(ul, d);
    ul.release();
    return st;
  }

  template <typename Clock, typename Dur>
  std::cv_status wait_until(Mutex& mu,
                            std::chrono::time_point<Clock, Dur> deadline)
      NAPLET_REQUIRES(mu) {
    std::unique_lock<std::mutex> ul(mu.native(), std::adopt_lock);
    const std::cv_status st = cv_.wait_until(ul, deadline);
    ul.release();
    return st;
  }

 private:
  std::condition_variable cv_;
};

/// Unbounded MPMC blocking queue with close() semantics: after close(),
/// pops drain the remaining items and then return nullopt.
template <typename T>
class BlockingQueue {
 public:
  /// Returns false if the queue is closed (item dropped).
  bool push(T item) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed-and-empty.
  std::optional<T> pop() {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) cv_.wait(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Like pop() but gives up after `timeout`.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) {
      if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) break;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_{LockRank::kQueue, "BlockingQueue"};
  CondVar cv_;
  std::deque<T> items_ NAPLET_GUARDED_BY(mu_);
  bool closed_ NAPLET_GUARDED_BY(mu_) = false;
};

/// Manual-reset event: set() releases all current and future waiters until
/// reset(). wait_for returns false on timeout.
class Event {
 public:
  void set() {
    {
      MutexLock lock(mu_);
      set_ = true;
    }
    cv_.notify_all();
  }

  void reset() {
    MutexLock lock(mu_);
    set_ = false;
  }

  void wait() {
    MutexLock lock(mu_);
    while (!set_) cv_.wait(mu_);
  }

  template <typename Rep, typename Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (!set_) {
      if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) break;
    }
    return set_;
  }

  [[nodiscard]] bool is_set() const {
    MutexLock lock(mu_);
    return set_;
  }

 private:
  mutable Mutex mu_{LockRank::kEvent, "Event"};
  CondVar cv_;
  bool set_ NAPLET_GUARDED_BY(mu_) = false;
};

/// A value cell whose changes can be awaited — the natural shape for
/// "wait until the connection reaches state X (or timeout)".
template <typename T>
class WaitableCell {
 public:
  explicit WaitableCell(T initial, LockRank rank = LockRank::kStateCell)
      : mu_(rank, "WaitableCell"), value_(std::move(initial)) {}

  T get() const {
    MutexLock lock(mu_);
    return value_;
  }

  void set(T v) {
    {
      MutexLock lock(mu_);
      value_ = std::move(v);
    }
    cv_.notify_all();
  }

  /// Apply a mutation under the lock, then notify waiters.
  template <typename Fn>
  void update(Fn&& fn) {
    {
      MutexLock lock(mu_);
      fn(value_);
    }
    cv_.notify_all();
  }

  /// Wait until pred(value) holds; returns the satisfying value.
  template <typename Pred>
  T wait(Pred&& pred) const {
    MutexLock lock(mu_);
    while (!pred(value_)) cv_.wait(mu_);
    return value_;
  }

  /// Wait with timeout; nullopt on timeout.
  template <typename Pred, typename Rep, typename Period>
  std::optional<T> wait_for(Pred&& pred,
                            std::chrono::duration<Rep, Period> timeout) const {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (!pred(value_)) {
      if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) break;
    }
    if (!pred(value_)) return std::nullopt;
    return value_;
  }

 private:
  mutable Mutex mu_;
  mutable CondVar cv_;
  T value_ NAPLET_GUARDED_BY(mu_);
};

}  // namespace naplet::util
