// Deterministic, seedable random number generation for simulation and
// tests: SplitMix64 core plus the distributions the Section-5 model needs.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace naplet::util {

/// SplitMix64 — tiny, fast, well-distributed; good enough for simulation
/// workloads (NOT for cryptography; see crypto/ for key material).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound == 0 yields 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % bound;
    std::uint64_t v;
    do {
      v = next_u64();
    } while (v >= limit);
    return v % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Exponentially distributed value with the given mean (1/rate).
  /// Mean <= 0 returns 0 (degenerate immediate event).
  double exponential(double mean) noexcept {
    if (mean <= 0) return 0.0;
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);  // avoid log(0)
    return -mean * std::log(u);
  }

  bool bernoulli(double p) noexcept { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace naplet::util
