// Runtime lock-order (deadlock) validator: every util::Mutex may register
// with a rank from the single global hierarchy below, and a thread must
// acquire ranked locks in strictly increasing rank order. A violation
// aborts the process, printing the acquisition stack of the offending lock
// AND the stack at which the conflicting lock was taken — the runtime
// counterpart of the Clang thread-safety annotations (see
// thread_annotations.hpp) and of the paper's priority-based deadlock
// avoidance for overlapped concurrent migration.
//
// Checks are compiled in when NDEBUG is not defined (Debug / Sanitize /
// Tsan build types); the RelWithDebInfo tier-1 build pays nothing.
#pragma once

#include <cstddef>

#if !defined(NDEBUG)
#define NAPLET_LOCK_RANK_CHECKS 1
#else
#define NAPLET_LOCK_RANK_CHECKS 0
#endif

namespace naplet::util {

/// The global lock hierarchy, outermost (acquired first) to innermost.
/// Gaps are deliberate so future locks can slot in without renumbering.
/// Keep this table in sync with DESIGN.md "Concurrency invariants".
enum class LockRank : int {
  kUnranked = 0,  ///< opted out of ordering checks (leaf/local locks)

  // Swarm orchestration (outermost of all): the batch scheduler, drain
  // coordinator, and caching location tier drive whole fleets of
  // migrations, calling DOWN into controller/agent-server code — so their
  // locks rank below everything they orchestrate.
  kSwarmScheduler = 4,  ///< swarm::MigrationScheduler::mu_
  kSwarmDrain = 6,      ///< swarm::DrainCoordinator::mu_
  kSwarmCache = 8,      ///< swarm::CachingLocationService::mu_

  // Group suspend (nested between swarm orchestration and the controller):
  // the coordinator registry lock is taken while looking up / cancelling a
  // group, and may then touch the group's barrier lock (cancel_member);
  // both are released before any controller or session call, so they slot
  // between the swarm tier that drives them and the controller they drive.
  kGroupCoordinator = 7,  ///< group::GroupSuspendCoordinator::mu_
  kGroupBarrier = 9,      ///< group::GroupBarrier::mu_

  // Control plane (outermost): the controller owns sessions, the agent
  // server owns residents, and both call down into session/queue locks.
  kController = 10,      ///< SocketController::mu_
  kControllerShard = 11, ///< SessionShardMap per-shard lock (nested inside
                         ///< kController when registration must be atomic
                         ///< with control state; never shard-under-shard —
                         ///< equal ranks are an inversion by design, which
                         ///< is what makes the sharding statically safe)
  kAgentServer = 12,     ///< AgentServer::mu_
  kPostOffice = 14,   ///< PostOffice::mu_ (pushes into mailbox queues)
  kRedirector = 16,   ///< Redirector::handlers_mu_
  kBus = 18,          ///< ServerBus::mu_

  // Session data path, in send/recv acquisition order (see DESIGN.md):
  // send couples write -> write_io; close_stream nests write_io -> stream;
  // readers nest read -> stream -> buffer.
  kSessionWrite = 20,    ///< Session::write_mu_
  kSessionWriteIo = 22,  ///< Session::write_io_mu_
  kSessionRead = 24,     ///< Session::read_mu_
  kSessionStream = 26,   ///< Session::stream_mu_
  kSessionBuffer = 28,   ///< Session::buf_mu_
  kSessionFlags = 30,    ///< Session::flags_mu_
  kSessionNode = 32,     ///< Session::node_mu_

  // Shared leaf-ish primitives: held only across their own tiny critical
  // sections, but the controller/session layers do call into them.
  kStateCell = 40,    ///< WaitableCell (FSM state; logs under its lock)
  kRudpChannel = 44,  ///< net::ReliableChannel::mu_ (sender window state)
  kRudpRx = 46,       ///< net::ReliableChannel::rx_mu_ (receiver reorder
                      ///< buffer / FEC groups; never nests inside mu_)
  kQueue = 60,        ///< util::BlockingQueue
  kEvent = 64,        ///< util::Event
  kSimFabric = 68,    ///< net::SimNet::Impl::mu
  kSimPipe = 70,      ///< sim Pipe / datagram inbox locks

  // Reactor core: the event loop's registration lock and the timer wheel's
  // slot lock are taken by code that may hold any lock above (a rudp
  // channel re-arms its retransmit timer under kRudpChannel; SimNet's
  // delivery path notifies the reactor under kSimPipe), and neither is
  // ever held while calling out — timer callbacks fire with the wheel
  // lock released.
  kReactor = 84,       ///< reactor::Reactor::mu_ (handler/ready-list state)
  kReactorTimer = 86,  ///< reactor::TimerWheel::mu_ (slot + cascade state)

  // The fault injector is consulted from control-plane code that may hold
  // any of the locks above (e.g. the FSM audit hook fires under the state
  // cell), so its registry lock sits just above the leaves.
  kFaultInjector = 90,  ///< fault::Injector::mu_

  // Observability: metric registration and span recording happen from
  // protocol code that may hold any lock above (journal-commit spans fire
  // under the controller lock), so these sit with the fault injector.
  // Hot-path metric *recording* is lock-free and never takes either.
  kObsRegistry = 92,  ///< obs::Registry::mu_ (registration/snapshot only)
  kObsTrace = 94,     ///< obs::TraceSink::mu_

  // Pure leaf locks: held for container operations only, never while
  // acquiring anything except (possibly) the logger.
  kRedirectorLeases = 96,  ///< Redirector::leases_mu_ (lease map ops)

  kLogger = 100,  ///< the log sink lock: innermost, everyone may log
};

constexpr bool lock_rank_checks_enabled() {
  return NAPLET_LOCK_RANK_CHECKS != 0;
}

namespace lock_rank {

/// Validate that acquiring (`mu`, `rank`) respects the hierarchy given the
/// calling thread's currently held ranked locks, then record the
/// acquisition (with a captured stack trace). Aborts on violation. Call
/// BEFORE blocking on the underlying mutex so a would-be deadlock is
/// reported instead of hung.
void note_acquire(const void* mu, LockRank rank, const char* name);

/// Record the acquisition without order validation (for try_lock, which
/// cannot deadlock). Only call after the try succeeded.
void note_acquire_unchecked(const void* mu, LockRank rank, const char* name);

/// Remove `mu` from the calling thread's held set. Unlock order need not
/// mirror acquisition order (lock coupling releases the outer lock first).
void note_release(const void* mu);

/// Number of ranked locks the calling thread currently holds (tests).
std::size_t held_count();

/// Install a hook invoked (once, re-entrancy guarded) when a rank
/// violation is detected, just before the diagnostics are printed and the
/// process aborts. The observability layer registers its flight-recorder
/// dump here so every lock-order abort ships with recent execution
/// history. util cannot depend on obs, hence the inversion. nullptr
/// uninstalls. The hook must not assume any lock is acquirable.
void set_violation_hook(void (*hook)());

}  // namespace lock_rank
}  // namespace naplet::util
