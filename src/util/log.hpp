// Minimal thread-safe leveled logger.
//
// Controlled globally via set_level() or the NAPLET_LOG environment variable
// (trace|debug|info|warn|error|off). Each line carries a monotonic timestamp
// and the logging thread's id, which makes protocol traces readable when
// several agent servers run in one process.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace naplet::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global log threshold; messages below it are discarded cheaply.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parse "trace"/"debug"/... (case-insensitive); returns kInfo on unknown.
LogLevel parse_log_level(std::string_view name) noexcept;

namespace detail {
void log_line(LogLevel level, std::string_view component, std::string_view msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogMessage() { log_line(level_, component_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace naplet::util

// Usage: NAPLET_LOG(kInfo, "controller") << "suspend conn=" << id;
#define NAPLET_LOG(level, component)                                       \
  if (::naplet::util::LogLevel::level < ::naplet::util::log_level()) {     \
  } else                                                                   \
    ::naplet::util::detail::LogMessage(::naplet::util::LogLevel::level,    \
                                       (component))
