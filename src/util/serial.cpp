#include "util/serial.hpp"

namespace naplet::util {

namespace {
// Reads via a StatusOr-returning accessor, latching errors into `status`.
template <typename T, typename Fn>
void read_into(T& out, Fn&& accessor, Status& status) {
  if (!status.ok()) return;
  auto r = accessor();
  if (!r.ok()) {
    status = r.status();
    return;
  }
  out = std::move(*r);
}
}  // namespace

void Archive::fail(std::string msg) {
  if (status_.ok()) status_ = ProtocolError(std::move(msg));
}

void Archive::field(bool& v) {
  if (is_writing()) {
    writer_->boolean(v);
  } else {
    read_into(v, [&] { return reader_->boolean(); }, status_);
  }
}

void Archive::field(std::uint8_t& v) {
  if (is_writing()) {
    writer_->u8(v);
  } else {
    read_into(v, [&] { return reader_->u8(); }, status_);
  }
}

void Archive::field(std::uint16_t& v) {
  if (is_writing()) {
    writer_->u16(v);
  } else {
    read_into(v, [&] { return reader_->u16(); }, status_);
  }
}

void Archive::field(std::uint32_t& v) {
  if (is_writing()) {
    writer_->u32(v);
  } else {
    read_into(v, [&] { return reader_->u32(); }, status_);
  }
}

void Archive::field(std::uint64_t& v) {
  if (is_writing()) {
    writer_->u64(v);
  } else {
    read_into(v, [&] { return reader_->u64(); }, status_);
  }
}

void Archive::field(std::int64_t& v) {
  if (is_writing()) {
    writer_->i64(v);
  } else {
    read_into(v, [&] { return reader_->i64(); }, status_);
  }
}

void Archive::field(double& v) {
  if (is_writing()) {
    writer_->f64(v);
  } else {
    read_into(v, [&] { return reader_->f64(); }, status_);
  }
}

void Archive::field(std::string& v) {
  if (is_writing()) {
    writer_->str(v);
  } else {
    read_into(v, [&] { return reader_->str(); }, status_);
  }
}

void Archive::field(Bytes& v) {
  if (is_writing()) {
    writer_->bytes(v);
  } else {
    read_into(v, [&] { return reader_->bytes(); }, status_);
  }
}

void Archive::field_u32_raw(std::uint32_t& v) { field(v); }

Bytes Archive::take_bytes() && {
  return std::move(owned_writer_).take();
}

const Bytes& Archive::bytes() const { return owned_writer_.data(); }

}  // namespace naplet::util
