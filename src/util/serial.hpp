// Bidirectional binary archive for agent-state migration.
//
// The paper relies on Java object serialization to carry an agent's data and
// in-flight message buffer across hosts. This is the C++ equivalent: user
// types implement a single `persist(Archive&)` method that both saves and
// restores, so the two directions can never drift apart.
//
//   struct Counter {
//     std::uint64_t count = 0;
//     std::string label;
//     void persist(naplet::util::Archive& ar) {
//       ar.field(count);
//       ar.field(label);
//     }
//   };
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace naplet::util {

/// One object that either writes fields to a buffer or reads them back,
/// chosen at construction. On read, any underflow or type mismatch latches
/// an error status; callers check status() once at the end.
class Archive {
 public:
  /// Writing archive.
  Archive() : writer_(&owned_writer_) {}
  /// Reading archive over an encoded buffer.
  explicit Archive(ByteSpan data) : reader_(data) {}

  [[nodiscard]] bool is_writing() const noexcept { return writer_ != nullptr; }
  [[nodiscard]] bool is_reading() const noexcept { return writer_ == nullptr; }

  void field(bool& v);
  void field(std::uint8_t& v);
  void field(std::uint16_t& v);
  void field(std::uint32_t& v);
  void field(std::uint64_t& v);
  void field(std::int64_t& v);
  void field(double& v);
  void field(std::string& v);
  void field(Bytes& v);

  template <typename T>
  void field(std::vector<T>& v) {
    std::uint32_t n = static_cast<std::uint32_t>(v.size());
    field_u32_raw(n);
    if (is_reading()) {
      if (!ok()) return;
      if (n > kMaxContainer) {
        fail("vector too large: " + std::to_string(n));
        return;
      }
      v.resize(n);
    }
    for (auto& e : v) dispatch(e);
  }

  template <typename K, typename V>
  void field(std::map<K, V>& m) {
    std::uint32_t n = static_cast<std::uint32_t>(m.size());
    field_u32_raw(n);
    if (is_writing()) {
      for (auto& [k, val] : m) {
        K key = k;  // map keys are const; serialize a copy
        dispatch(key);
        dispatch(val);
      }
    } else {
      if (!ok()) return;
      if (n > kMaxContainer) {
        fail("map too large: " + std::to_string(n));
        return;
      }
      m.clear();
      for (std::uint32_t i = 0; i < n && ok(); ++i) {
        K key{};
        V val{};
        dispatch(key);
        dispatch(val);
        m.emplace(std::move(key), std::move(val));
      }
    }
  }

  /// Nested user type with a persist(Archive&) method.
  template <typename T>
    requires requires(T t, Archive& a) { t.persist(a); }
  void field(T& v) {
    v.persist(*this);
  }

  [[nodiscard]] bool ok() const noexcept { return status_.ok(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  /// Finished encoded bytes (writing archives only).
  [[nodiscard]] Bytes take_bytes() &&;
  [[nodiscard]] const Bytes& bytes() const;

  /// Encode any persist()-able object to bytes.
  template <typename T>
  static Bytes encode(T& obj) {
    Archive ar;
    ar.field(obj);
    return std::move(ar).take_bytes();
  }

  /// Decode bytes into a persist()-able object.
  template <typename T>
  static Status decode(ByteSpan data, T& obj) {
    Archive ar(data);
    ar.field(obj);
    if (ar.ok() && ar.reader_->remaining() != 0) {
      return ProtocolError("trailing bytes after decode");
    }
    return ar.status();
  }

 private:
  static constexpr std::uint32_t kMaxContainer = 1u << 24;

  template <typename T>
  void dispatch(T& v) {
    field(v);
  }

  void field_u32_raw(std::uint32_t& v);
  void fail(std::string msg);

  BytesWriter owned_writer_;
  BytesWriter* writer_ = nullptr;
  std::optional<BytesReader> reader_;
  Status status_;
};

}  // namespace naplet::util
