// Growable byte buffer plus endian-stable binary reader/writer.
//
// All multi-byte integers are encoded big-endian (network order) so that
// wire formats built on BytesWriter are portable across hosts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace naplet::util {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Hex-encode a byte span ("deadbeef" style, lowercase).
std::string to_hex(ByteSpan data);

/// Decode a hex string; returns error on odd length or non-hex characters.
StatusOr<Bytes> from_hex(std::string_view hex);

/// Constant-time byte-span equality (for MAC comparison).
bool equal_constant_time(ByteSpan a, ByteSpan b) noexcept;

/// CRC-32 (IEEE 802.3, reflected) over a byte span. Shared by every wire
/// format that needs corruption detection (recovery journal/snapshot
/// records, rudp packet headers).
[[nodiscard]] std::uint32_t crc32(ByteSpan data) noexcept;

/// Appends primitive values in network byte order to an owned buffer.
class BytesWriter {
 public:
  BytesWriter() = default;
  explicit BytesWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Raw bytes, no length prefix.
  void raw(ByteSpan data) { buf_.insert(buf_.end(), data.begin(), data.end()); }
  void raw(const void* data, std::size_t n) {
    raw(ByteSpan(static_cast<const std::uint8_t*>(data), n));
  }

  /// u32 length prefix followed by bytes.
  void bytes(ByteSpan data);
  /// u32 length prefix followed by UTF-8 payload.
  void str(std::string_view s);

  [[nodiscard]] const Bytes& data() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() && noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  /// Overwrite a previously written u32 at `offset` (e.g. a patched length).
  void patch_u32(std::size_t offset, std::uint32_t v);

 private:
  Bytes buf_;
};

/// Reads primitive values in network byte order from a borrowed span.
/// All accessors return an error Status on underflow instead of UB.
class BytesReader {
 public:
  explicit BytesReader(ByteSpan data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool empty() const noexcept { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  StatusOr<std::uint8_t> u8();
  StatusOr<std::uint16_t> u16();
  StatusOr<std::uint32_t> u32();
  StatusOr<std::uint64_t> u64();
  StatusOr<std::int64_t> i64();
  StatusOr<double> f64();
  StatusOr<bool> boolean();

  /// Read exactly n raw bytes.
  StatusOr<Bytes> raw(std::size_t n);
  /// Read a u32-length-prefixed byte string.
  StatusOr<Bytes> bytes();
  /// Read a u32-length-prefixed UTF-8 string.
  StatusOr<std::string> str();

  /// Skip n bytes forward.
  Status skip(std::size_t n);

 private:
  Status need(std::size_t n) const;

  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace naplet::util
