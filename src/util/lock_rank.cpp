#include "util/lock_rank.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define NAPLET_HAVE_BACKTRACE 1
#endif
#endif
#ifndef NAPLET_HAVE_BACKTRACE
#define NAPLET_HAVE_BACKTRACE 0
#endif

namespace naplet::util::lock_rank {

namespace {

constexpr int kMaxFrames = 24;

struct Held {
  const void* mu = nullptr;
  LockRank rank = LockRank::kUnranked;
  const char* name = "";
  void* frames[kMaxFrames];
  int frame_count = 0;
};

// Per-thread stack of ranked locks currently held, in acquisition order.
thread_local std::vector<Held> t_held;

void capture(Held& h) {
#if NAPLET_HAVE_BACKTRACE
  h.frame_count = backtrace(h.frames, kMaxFrames);
#else
  h.frame_count = 0;
#endif
}

void print_stack(const char* label, void* const* frames, int count) {
  std::fprintf(stderr, "  %s:\n", label);
#if NAPLET_HAVE_BACKTRACE
  if (count > 0) {
    char** symbols = backtrace_symbols(frames, count);
    for (int i = 0; i < count; ++i) {
      std::fprintf(stderr, "    #%d %s\n", i,
                   symbols != nullptr ? symbols[i] : "<unknown>");
    }
    std::free(symbols);
    return;
  }
#else
  (void)frames;
  (void)count;
#endif
  std::fprintf(stderr, "    <no backtrace available>\n");
}

std::atomic<void (*)()> g_violation_hook{nullptr};

[[noreturn]] void die(const Held& conflicting, LockRank rank,
                      const char* name, const char* why) {
  // Fire the diagnostics hook (flight-recorder dump) exactly once, even if
  // the hook itself trips another violation on this dying thread.
  static std::atomic<bool> hook_fired{false};
  if (void (*hook)() = g_violation_hook.load(std::memory_order_acquire);
      hook != nullptr && !hook_fired.exchange(true)) {
    hook();
  }
  void* now_frames[kMaxFrames];
  int now_count = 0;
#if NAPLET_HAVE_BACKTRACE
  now_count = backtrace(now_frames, kMaxFrames);
#endif
  std::fprintf(stderr,
               "naplet: lock rank inversion (%s): acquiring \"%s\" (rank %d) "
               "while holding \"%s\" (rank %d)\n",
               why, name, static_cast<int>(rank), conflicting.name,
               static_cast<int>(conflicting.rank));
  print_stack("stack of the acquisition being attempted", now_frames,
              now_count);
  print_stack("stack where the held lock was acquired", conflicting.frames,
              conflicting.frame_count);
  std::fflush(stderr);
  std::abort();
}

void record(const void* mu, LockRank rank, const char* name) {
  Held h;
  h.mu = mu;
  h.rank = rank;
  h.name = name;
  capture(h);
  t_held.push_back(h);
}

}  // namespace

void note_acquire(const void* mu, LockRank rank, const char* name) {
  for (const Held& h : t_held) {
    if (h.mu == mu) die(h, rank, name, "recursive acquisition");
    // The hierarchy is strict: a thread may only acquire a rank greater
    // than every ranked lock it already holds.
    if (h.rank >= rank) die(h, rank, name, "rank order violated");
  }
  record(mu, rank, name);
}

void note_acquire_unchecked(const void* mu, LockRank rank, const char* name) {
  record(mu, rank, name);
}

void note_release(const void* mu) {
  // Search from the back: unlock order usually mirrors lock order, but
  // lock coupling (send: write_mu_ released before write_io_mu_) may not.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

std::size_t held_count() { return t_held.size(); }

void set_violation_hook(void (*hook)()) {
  g_violation_hook.store(hook, std::memory_order_release);
}

}  // namespace naplet::util::lock_rank
