// Lightweight Status / StatusOr error propagation for the naplet libraries.
//
// The networking and protocol layers prefer explicit status values over
// exceptions on hot paths; constructors that can fail are factored into
// factory functions returning StatusOr<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace naplet::util {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kUnauthenticated,
  kFailedPrecondition,
  kUnavailable,
  kTimeout,
  kAborted,
  kCancelled,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kIoError,
  kProtocolError,
};

/// Human-readable name of a StatusCode (stable, for logs and tests).
std::string_view to_string(StatusCode code) noexcept;

/// Value-semantic success/error result. Cheap to copy on success (no
/// allocation), carries a message only on error.
class Status {
 public:
  Status() noexcept : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "<CODE>: <message>".
  [[nodiscard]] std::string to_string() const;

  static Status Ok() noexcept { return Status(); }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() noexcept { return Status::Ok(); }

inline Status InvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status PermissionDenied(std::string msg) {
  return {StatusCode::kPermissionDenied, std::move(msg)};
}
inline Status Unauthenticated(std::string msg) {
  return {StatusCode::kUnauthenticated, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status Timeout(std::string msg) {
  return {StatusCode::kTimeout, std::move(msg)};
}
inline Status Aborted(std::string msg) {
  return {StatusCode::kAborted, std::move(msg)};
}
inline Status Cancelled(std::string msg) {
  return {StatusCode::kCancelled, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status IoError(std::string msg) {
  return {StatusCode::kIoError, std::move(msg)};
}
inline Status ProtocolError(std::string msg) {
  return {StatusCode::kProtocolError, std::move(msg)};
}

/// Either a T or an error Status. Accessing value() on error asserts in
/// debug builds; callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}      // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagate an error Status from an expression that yields a Status.
#define NAPLET_RETURN_IF_ERROR(expr)                      \
  do {                                                    \
    ::naplet::util::Status _naplet_status = (expr);       \
    if (!_naplet_status.ok()) return _naplet_status;      \
  } while (0)

}  // namespace naplet::util
