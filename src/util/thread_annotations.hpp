// Clang thread-safety-analysis attribute macros, modeled on
// absl/base/thread_annotations.h. Under Clang with -Wthread-safety these
// turn lock discipline into compile errors; on other compilers (GCC) they
// expand to nothing. See DESIGN.md "Concurrency invariants" for the lock
// hierarchy these annotations encode.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define NAPLET_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NAPLET_THREAD_ANNOTATION(x)
#endif

// A type that acts as a lock/capability (e.g. util::Mutex).
#define NAPLET_CAPABILITY(x) NAPLET_THREAD_ANNOTATION(capability(x))

// A scoped wrapper that acquires a capability on construction and releases
// it on destruction (e.g. util::MutexLock).
#define NAPLET_SCOPED_CAPABILITY NAPLET_THREAD_ANNOTATION(scoped_lockable)

// Data members that may only be touched while holding the given capability.
#define NAPLET_GUARDED_BY(x) NAPLET_THREAD_ANNOTATION(guarded_by(x))
#define NAPLET_PT_GUARDED_BY(x) NAPLET_THREAD_ANNOTATION(pt_guarded_by(x))

// Static acquisition-order edges between capabilities.
#define NAPLET_ACQUIRED_BEFORE(...) \
  NAPLET_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define NAPLET_ACQUIRED_AFTER(...) \
  NAPLET_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function-level contracts: the caller must hold / must not hold the
// capability across the call.
#define NAPLET_REQUIRES(...) \
  NAPLET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define NAPLET_REQUIRES_SHARED(...) \
  NAPLET_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define NAPLET_EXCLUDES(...) \
  NAPLET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// The function acquires / releases the capability (and does not already
// hold / keeps holding it on entry, respectively).
#define NAPLET_ACQUIRE(...) \
  NAPLET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define NAPLET_ACQUIRE_SHARED(...) \
  NAPLET_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define NAPLET_RELEASE(...) \
  NAPLET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define NAPLET_RELEASE_SHARED(...) \
  NAPLET_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// try_lock-style functions: first argument is the success return value.
#define NAPLET_TRY_ACQUIRE(...) \
  NAPLET_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// The function returns a reference to the given capability.
#define NAPLET_RETURN_CAPABILITY(x) NAPLET_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for patterns the static analysis cannot model (lock
// coupling, conditional ownership transfer). Use sparingly and leave a
// comment saying which runtime check covers the function instead.
#define NAPLET_NO_THREAD_SAFETY_ANALYSIS \
  NAPLET_THREAD_ANNOTATION(no_thread_safety_analysis)

// Runtime assertion that the capability is held (for helpers called with
// the lock already taken).
#define NAPLET_ASSERT_CAPABILITY(x) \
  NAPLET_THREAD_ANNOTATION(assert_capability(x))

// Documentation-only (expands to nothing under every compiler): states
// why a mutable member of a mutex-owning class carries no GUARDED_BY —
// set before worker threads start, internally synchronized, published
// exactly once, etc. naplet-analyze (tools/analyze) requires every such
// member to carry either a GUARDED_BY or this opt-out, so the reason
// string is load-bearing for review even though the compiler drops it.
#define NAPLET_NOT_GUARDED(reason)
