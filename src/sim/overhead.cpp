#include "sim/overhead.hpp"

#include <functional>

namespace naplet::sim {

OverheadResult simulate_overhead(const OverheadConfig& config) {
  Simulator des;
  util::Rng rng(config.seed);
  OverheadResult result;

  const double lambda = config.message_rate;
  const double mu =
      config.relative_rate > 0 ? lambda / config.relative_rate : 0.0;

  // The recurring handlers must outlive run_until: they re-schedule
  // themselves by reference.
  std::function<void()> next_data;
  std::function<void()> next_migration;
  std::function<void()> next_keepalive;

  // Poisson data-message arrivals.
  if (lambda > 0) {
    next_data = [&] {
      ++result.data_messages;
      des.schedule_in(rng.exponential(1.0 / lambda), next_data);
    };
    des.schedule_in(rng.exponential(1.0 / lambda), next_data);
  }

  // Migration events, each spending the protocol's control messages.
  if (mu > 0) {
    next_migration = [&] {
      ++result.migrations;
      result.control_messages += config.ctrl_per_migration;
      des.schedule_in(rng.exponential(1.0 / mu), next_migration);
    };
    des.schedule_in(rng.exponential(1.0 / mu), next_migration);
  }

  // Maintenance stream on the persistent control channel.
  if (config.maintenance_rate > 0) {
    next_keepalive = [&] {
      ++result.control_messages;
      des.schedule_in(rng.exponential(1.0 / config.maintenance_rate),
                      next_keepalive);
    };
    des.schedule_in(rng.exponential(1.0 / config.maintenance_rate),
                    next_keepalive);
  }

  des.run_until(config.sim_time);
  return result;
}

}  // namespace naplet::sim
