// Section-5 analytical cost model of NapletSocket connection migration.
//
// Parameters (paper's measured values as defaults):
//   Tcontrol   – one-way control-message latency          (10 ms)
//   Tsuspend   – suspend operation cost                   (27.8 ms)
//   Tresume    – resume operation cost                    (16.9 ms)
//   Ta_migrate – agent migration cost                     (220 ms)
//
// Equations:
//   (1) single migration:        Tc = Tsuspend + Tresume
//   (3) overlapped, low side:    Tsuspend_low = Tcontrol + Tsuspend + tau
//   (4) non-overlapped, 2nd mover: Tc = Tresume + Tcontrol + tau
// where tau = |t_begin_a - t_begin_b| is the suspend-request interval.
#pragma once

namespace naplet::sim {

struct CostParams {
  double t_control_ms = 10.0;
  double t_suspend_ms = 27.8;
  double t_resume_ms = 16.9;
  double t_agent_migrate_ms = 220.0;
};

/// How two migrations on the same connection interact (paper §3.1).
enum class MigrationCase {
  kSingle,         // the other endpoint was idle throughout
  kOverlapped,     // both SUS requests crossed before either ACK
  kNonOverlapped,  // second suspend issued while the first migration runs
};

class CostModel {
 public:
  explicit CostModel(CostParams params = {}) : p_(params) {}

  [[nodiscard]] const CostParams& params() const noexcept { return p_; }

  /// Classify by the suspend-request interval tau (>= 0).
  /// tau < Tcontrol  -> overlapped: the second SUS is issued before the
  ///                    first side's ACK could have been sent (§3.1)
  /// tau < Tsuspend  -> non-overlapped: the second suspend is issued while
  ///                    "response for the SUSPEND is still in progress"
  /// otherwise       -> single: the first suspend completed beforehand
  [[nodiscard]] MigrationCase classify(double tau_ms) const noexcept {
    if (tau_ms < p_.t_control_ms) return MigrationCase::kOverlapped;
    if (tau_ms < p_.t_suspend_ms) return MigrationCase::kNonOverlapped;
    return MigrationCase::kSingle;
  }

  /// Eq. (1): connection-migration cost with a single mobile endpoint.
  [[nodiscard]] double single_cost() const noexcept {
    return p_.t_suspend_ms + p_.t_resume_ms;
  }

  /// Overlapped case, high-priority agent: same as single migration.
  [[nodiscard]] double overlapped_high_cost() const noexcept {
    return single_cost();
  }

  /// Overlapped case, low-priority agent: Eq. (3) suspend cost + resume.
  [[nodiscard]] double overlapped_low_cost(double tau_ms) const noexcept {
    return p_.t_control_ms + p_.t_suspend_ms + tau_ms + p_.t_resume_ms;
  }

  /// Non-overlapped case, first mover: normal cost.
  [[nodiscard]] double non_overlapped_first_cost() const noexcept {
    return single_cost();
  }

  /// Non-overlapped case, second mover: Eq. (4) — its suspend overlaps the
  /// first agent's migration, so only resume + a control message + tau of
  /// connection-migration time remain on its critical path.
  [[nodiscard]] double non_overlapped_second_cost(double tau_ms)
      const noexcept {
    return p_.t_resume_ms + p_.t_control_ms + tau_ms;
  }

 private:
  CostParams p_;
};

}  // namespace naplet::sim
