// Control-message overhead of persistent connections (paper §5.2, Fig. 13).
//
// A connection carries data messages at rate lambda (Poisson) while its
// agent migrates at rate mu = lambda / r. Each connection migration costs a
// fixed number of protocol control messages (SUS, SUS_ACK, RES over the
// handoff, RES_ACK, and the reliability-layer acknowledgements), and the
// persistent connection additionally pays a low-rate maintenance stream
// (control-channel keepalive/timer traffic). Overhead is the fraction of
// all messages that are control messages:
//
//   overhead = control / (control + data)
//
// At r = 1 (one data message per host) the per-migration protocol cost
// alone keeps overhead above 80% regardless of rate; for larger r the
// overhead is amortized as the exchange rate grows.
#pragma once

#include <cstdint>

#include "sim/des.hpp"
#include "util/rng.hpp"

namespace naplet::sim {

struct OverheadConfig {
  double message_rate = 10.0;   // lambda: data messages per time unit
  double relative_rate = 1.0;   // r = lambda / mu
  double sim_time = 10000.0;    // virtual time units
  /// Control messages per connection migration: SUS + SUS_ACK + RES +
  /// RES_ACK + 2 reliability ACKs on the UDP channel (paper §3.5).
  std::uint32_t ctrl_per_migration = 6;
  /// Maintenance (keepalive/timer) control messages per time unit, paid
  /// whether or not data flows.
  double maintenance_rate = 1.0;
  std::uint64_t seed = 7;
};

struct OverheadResult {
  std::uint64_t data_messages = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t migrations = 0;

  [[nodiscard]] double overhead() const {
    const double total =
        static_cast<double>(data_messages + control_messages);
    return total == 0 ? 0.0
                      : static_cast<double>(control_messages) / total;
  }
};

/// Discrete-event simulation of one connection under the given rates.
OverheadResult simulate_overhead(const OverheadConfig& config);

}  // namespace naplet::sim
