#include "sim/mobility.hpp"

#include <algorithm>

namespace naplet::sim {

// The two-agent timeline admits a direct sequential walk: both agents'
// next suspend-begin times are always known (dwell is drawn at the end of
// the previous migration), so the earliest pending request can be
// processed in order and classified against the other's. This is exactly
// the event order a DES would produce, without the queue overhead.
MobilityResult simulate_mobility(const MobilityConfig& config) {
  const CostModel model(config.costs);
  const CostParams& p = config.costs;
  util::Rng rng(config.seed);

  MobilityResult result;

  double begin_a = rng.exponential(config.mean_service_a_ms);
  double begin_b = rng.exponential(config.mean_service_b_ms);

  std::uint64_t remaining = config.rounds;
  while (remaining > 0) {
    const bool a_first = begin_a <= begin_b;
    const double t_first = a_first ? begin_a : begin_b;
    const double t_second = a_first ? begin_b : begin_a;
    const double tau = t_second - t_first;
    const MigrationCase kind = model.classify(tau);

    switch (kind) {
      case MigrationCase::kSingle: {
        // Only the earlier agent migrates now; the other's request stays
        // pending and is examined on the next iteration.
        AgentStats& stats = a_first ? result.low : result.high;
        stats.migrations += 1;
        stats.single += 1;
        stats.total_cost_ms += model.single_cost();
        const double done =
            t_first + p.t_suspend_ms + p.t_agent_migrate_ms + p.t_resume_ms;
        if (a_first) {
          begin_a = done + rng.exponential(config.mean_service_a_ms);
          // A racing request from B inside our window would have been
          // classified concurrent; push B's begin past the window edge.
          begin_b = std::max(begin_b, t_first + p.t_suspend_ms);
        } else {
          begin_b = done + rng.exponential(config.mean_service_b_ms);
          begin_a = std::max(begin_a, t_first + p.t_suspend_ms);
        }
        remaining -= 1;
        break;
      }

      case MigrationCase::kOverlapped: {
        // Both requests crossed; B (high priority) wins regardless of who
        // was first (paper Fig. 4(a)).
        result.high.migrations += 1;
        result.high.overlapped += 1;
        result.high.total_cost_ms += model.overlapped_high_cost();

        result.low.migrations += 1;
        result.low.overlapped += 1;
        result.low.total_cost_ms += model.overlapped_low_cost(tau);

        // Timeline: B suspends and migrates; its SUS_RES releases A's
        // parked suspend; A then migrates and resumes the connection.
        // The agents communicate for synchronization at each host (paper
        // Fig. 11), so both dwell clocks restart when the connection is
        // re-established.
        const double b_done = begin_b + p.t_suspend_ms + p.t_agent_migrate_ms;
        const double a_done = std::max(b_done + p.t_control_ms, begin_a) +
                              p.t_agent_migrate_ms + p.t_resume_ms;
        begin_b = a_done + rng.exponential(config.mean_service_b_ms);
        begin_a = a_done + rng.exponential(config.mean_service_a_ms);
        remaining -= std::min<std::uint64_t>(2, remaining);
        break;
      }

      case MigrationCase::kNonOverlapped: {
        // First mover pays the normal cost; the second mover's suspend
        // overlaps the first's migration (Eq. 4), priority irrelevant.
        AgentStats& first_stats = a_first ? result.low : result.high;
        AgentStats& second_stats = a_first ? result.high : result.low;

        first_stats.migrations += 1;
        first_stats.non_overlapped += 1;
        first_stats.total_cost_ms += model.non_overlapped_first_cost();

        second_stats.migrations += 1;
        second_stats.non_overlapped += 1;
        second_stats.total_cost_ms += model.non_overlapped_second_cost(tau);

        // Both migrations serialize; the connection is back once the
        // second mover resumes, and both dwell clocks restart together.
        const double first_done =
            t_first + p.t_suspend_ms + p.t_agent_migrate_ms + p.t_resume_ms;
        const double second_done =
            first_done + p.t_agent_migrate_ms + p.t_resume_ms;
        begin_a = second_done + rng.exponential(config.mean_service_a_ms);
        begin_b = second_done + rng.exponential(config.mean_service_b_ms);
        remaining -= std::min<std::uint64_t>(2, remaining);
        break;
      }
    }
  }
  return result;
}

}  // namespace naplet::sim
