#include "sim/des.hpp"

#include <cassert>
#include <utility>

#include "fault/fault.hpp"
#include "obs/trace.hpp"

namespace naplet::sim {

void Simulator::bind_fault_clock() const {
  fault::Injector::instance().set_time_source([this] { return now(); });
}

void Simulator::unbind_fault_clock() {
  fault::Injector::instance().set_time_source(nullptr);
}

void Simulator::bind_trace_clock() const {
  obs::TraceSink::instance().set_time_source([this] { return now(); });
}

void Simulator::unbind_trace_clock() {
  obs::TraceSink::instance().set_time_source(nullptr);
}

void Simulator::schedule_at(double t_ms, Handler handler) {
  assert(t_ms >= now_ms_ && "scheduling into the past");
  queue_.push(Event{t_ms < now_ms_ ? now_ms_ : t_ms, next_seq_++,
                    std::move(handler)});
}

void Simulator::schedule_in(double dt_ms, Handler handler) {
  schedule_at(now_ms_ + (dt_ms < 0 ? 0 : dt_ms), std::move(handler));
}

void Simulator::run_until(double t_end_ms) {
  while (!queue_.empty() && queue_.top().time <= t_end_ms) {
    // priority_queue::top returns const&; the handler must be moved out
    // before pop, so copy the event wrapper (handler is shared_ptr-like
    // via std::function copy).
    Event event = queue_.top();
    queue_.pop();
    now_ms_ = event.time;
    ++events_processed_;
    event.handler();
  }
  if (queue_.empty() || queue_.top().time > t_end_ms) {
    if (t_end_ms > now_ms_) now_ms_ = t_end_ms;
  }
}

void Simulator::run() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ms_ = event.time;
    ++events_processed_;
    event.handler();
  }
}

}  // namespace naplet::sim
