// Minimal discrete-event simulation engine for the Section-5 performance
// model: a time-ordered event queue with virtual (simulated) time in
// milliseconds. Deterministic given deterministic handlers and RNG.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace naplet::sim {

class Simulator {
 public:
  using Handler = std::function<void()>;

  /// Current virtual time (ms).
  [[nodiscard]] double now() const noexcept { return now_ms_; }

  /// Schedule a handler at absolute virtual time `t_ms` (>= now).
  void schedule_at(double t_ms, Handler handler);
  /// Schedule `dt_ms` from now.
  void schedule_in(double dt_ms, Handler handler);

  /// Run until the queue empties or virtual time would pass `t_end_ms`.
  void run_until(double t_end_ms);
  /// Run until the queue empties.
  void run();

  /// Make this simulator's virtual clock the fault-injection clock, so
  /// 't'-triggered fault rules fire on DES time instead of wall time.
  /// Unbind (with nullptr restore semantics) before destroying the
  /// simulator; see unbind_fault_clock().
  void bind_fault_clock() const;
  /// Restore the injector's default wall clock.
  static void unbind_fault_clock();

  /// Make this simulator's virtual clock the migration-trace timestamp
  /// source, so span t_ms values are deterministic DES times instead of
  /// wall time. Unbind before destroying the simulator.
  void bind_trace_clock() const;
  /// Restore the trace sink's default wall clock.
  static void unbind_trace_clock();

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ms_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
};

}  // namespace naplet::sim
