// Monte-Carlo / discrete-event simulation of two connected mobile agents
// (paper §5.2, Figure 12).
//
// Agents A (low priority) and B (high priority) alternate between serving
// at a host for an exponentially distributed dwell time and migrating.
// Every agent migration drags a connection migration with it; when the two
// agents' suspend requests fall close together the concurrent-migration
// protocol kicks in and the per-agent connection-migration cost follows
// the Section-5 cost model (overlapped / non-overlapped / single).
#pragma once

#include <cstdint>

#include "sim/des.hpp"
#include "sim/model.hpp"
#include "util/rng.hpp"

namespace naplet::sim {

struct MobilityConfig {
  CostParams costs{};
  double mean_service_a_ms = 500;  // 1/mu_a
  double mean_service_b_ms = 500;  // 1/mu_b
  std::uint64_t rounds = 20000;    // migration events to simulate
  std::uint64_t seed = 1;
};

struct AgentStats {
  std::uint64_t migrations = 0;
  double total_cost_ms = 0;
  std::uint64_t overlapped = 0;
  std::uint64_t non_overlapped = 0;
  std::uint64_t single = 0;

  [[nodiscard]] double mean_cost_ms() const {
    return migrations == 0 ? 0.0 : total_cost_ms / static_cast<double>(migrations);
  }
};

struct MobilityResult {
  AgentStats low;   // agent A
  AgentStats high;  // agent B
};

/// Run the two-agent timeline simulation.
MobilityResult simulate_mobility(const MobilityConfig& config);

}  // namespace naplet::sim
