#include "core/session.hpp"

#include <algorithm>

#include "core/wire.hpp"
#include "net/frame.hpp"
#include "util/log.hpp"
#include "util/serial.hpp"

namespace naplet::nsock {

namespace {
constexpr util::Duration kPumpSlice = std::chrono::milliseconds(100);
constexpr util::Duration kStateWaitSlice = std::chrono::milliseconds(100);

std::int64_t now_us() { return util::RealClock::instance().now_us(); }

bool is_dead(ConnState s) { return !is_live(s); }
}  // namespace

Session::Session(std::uint64_t conn_id, std::uint64_t verifier, bool is_client,
                 agent::AgentId local_agent, agent::AgentId peer_agent)
    : conn_id_(conn_id),
      verifier_(verifier),
      is_client_(is_client),
      local_agent_(std::move(local_agent)),
      peer_agent_(std::move(peer_agent)) {}

agent::NodeInfo Session::peer_node() const {
  std::lock_guard lock(node_mu_);
  return peer_node_;
}

void Session::set_peer_node(const agent::NodeInfo& node) {
  std::lock_guard lock(node_mu_);
  peer_node_ = node;
}

util::Status Session::advance(ConnEvent event) {
  // Validate-and-swap under the cell's own lock via update().
  util::Status result = util::OkStatus();
  state_.update([&](ConnState& s) {
    auto next = transition(s, event);
    if (!next) {
      result = util::ProtocolError(
          "illegal transition: " + std::string(to_string(s)) + " on " +
          std::string(to_string(event)) + " (conn " +
          std::to_string(conn_id_) + ")");
      return;
    }
    NAPLET_LOG(kTrace, "fsm") << "conn " << conn_id_ << " ["
                              << (is_client_ ? "client" : "server") << "] "
                              << to_string(s) << " --" << to_string(event)
                              << "--> " << to_string(*next);
    s = *next;
  });
  return result;
}

void Session::attach_stream(std::shared_ptr<net::Stream> stream) {
  {
    std::lock_guard lock(stream_mu_);
    stream_ = std::move(stream);
  }
  broken_.store(false);
}

bool Session::has_stream() const {
  std::lock_guard lock(stream_mu_);
  return stream_ != nullptr;
}

void Session::close_stream() {
  std::shared_ptr<net::Stream> victim;
  {
    std::lock_guard lock(stream_mu_);
    victim = std::exchange(stream_, nullptr);
  }
  if (victim) victim->close();
}

std::shared_ptr<net::Stream> Session::stream() const {
  std::lock_guard lock(stream_mu_);
  return stream_;
}

std::uint64_t Session::sent_seq() const {
  std::lock_guard lock(write_mu_);
  return tx_seq_;
}

std::uint64_t Session::highest_rx_seq() const {
  std::lock_guard lock(buf_mu_);
  return rx_high_;
}

std::size_t Session::buffered_frames() const {
  std::lock_guard lock(buf_mu_);
  return buffer_.size();
}

Session::Flags Session::flags() const {
  std::lock_guard lock(flags_mu_);
  return flags_;
}

std::uint64_t Session::freeze_writes_and_mark() {
  // Callers set the FSM state to a non-transfer state *first*; taking the
  // write lock afterwards waits out any in-flight send, so the returned
  // mark covers every frame that was or will be written before suspension.
  std::lock_guard lock(write_mu_);
  return tx_seq_;
}

util::Status Session::send(util::ByteSpan body, util::Duration timeout) {
  const std::int64_t deadline = now_us() + timeout.count();
  for (;;) {
    {
      std::unique_lock wl(write_mu_);
      const ConnState st = state_.get();
      if (is_dead(st)) {
        return util::Aborted("connection " + std::to_string(conn_id_) +
                             " is closed");
      }
      if (can_transfer(st)) {
        auto s = stream();
        if (s != nullptr) {
          DataFrame frame{tx_seq_ + 1, util::Bytes(body.begin(), body.end())};
          const util::Bytes encoded = frame.encode();
          auto status = net::write_frame(
              *s, util::ByteSpan(encoded.data(), encoded.size()));
          if (status.ok()) {
            ++tx_seq_;
            if (history_enabled_) {
              history_bytes_ += frame.body.size();
              history_.emplace_back(frame.seq, std::move(frame.body));
              while (history_bytes_ > history_limit_bytes_ &&
                     !history_.empty()) {
                history_bytes_ -= history_.front().second.size();
                history_.pop_front();
              }
            }
            return util::OkStatus();
          }
          // The socket may have been torn down by a racing suspension;
          // re-check the state before reporting an error. An error while
          // still ESTABLISHED is an uncoordinated link failure.
          if (can_transfer(state_.get())) {
            broken_.store(true);
            return status;
          }
        }
      }
    }
    if (now_us() >= deadline) {
      return util::Timeout("send blocked (state " +
                           std::string(to_string(state_.get())) + ")");
    }
    state_.wait_for([](ConnState s) { return can_transfer(s) || is_dead(s); },
                    kStateWaitSlice);
  }
}

void Session::parse_raw_locked() {
  // Caller holds buf_mu_.
  for (;;) {
    if (rx_raw_.size() < 4) return;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len = len << 8 | rx_raw_[static_cast<std::size_t>(i)];
    if (rx_raw_.size() < 4 + static_cast<std::size_t>(len)) return;

    auto frame = DataFrame::decode(util::ByteSpan(rx_raw_.data() + 4, len));
    rx_raw_.erase(rx_raw_.begin(),
                  rx_raw_.begin() + 4 + static_cast<std::ptrdiff_t>(len));
    if (!frame.ok()) {
      NAPLET_LOG(kWarn, "session") << "conn " << conn_id_ << ": bad frame: "
                                   << frame.status().to_string();
      continue;
    }
    if (frame->seq <= rx_high_) {
      NAPLET_LOG(kDebug, "session")
          << "conn " << conn_id_ << ": duplicate frame seq " << frame->seq;
      continue;  // exactly-once: drop duplicates
    }
    rx_high_ = frame->seq;
    buffer_.push_back(BufferedFrame{frame->seq, std::move(frame->body)});
  }
}

util::StatusOr<bool> Session::pump_socket(std::int64_t deadline_us) {
  auto s = stream();
  if (s == nullptr) return util::Unavailable("no data socket");

  const std::int64_t budget_us =
      std::min<std::int64_t>(kPumpSlice.count(),
                             std::max<std::int64_t>(1, deadline_us - now_us()));
  std::uint8_t chunk[16384];
  auto n = s->read_some_for(chunk, sizeof chunk, util::us(budget_us));
  if (!n.ok()) {
    if (n.status().code() == util::StatusCode::kTimeout) return false;
    return n.status();
  }
  if (*n == 0) return util::Unavailable("data socket closed by peer");

  std::lock_guard lock(buf_mu_);
  const std::size_t frames_before = buffer_.size();
  rx_raw_.insert(rx_raw_.end(), chunk, chunk + *n);
  parse_raw_locked();
  return buffer_.size() > frames_before;
}

util::StatusOr<RecvResult> Session::recv(util::Duration timeout) {
  const std::int64_t deadline = now_us() + timeout.count();
  for (;;) {
    {
      std::lock_guard lock(buf_mu_);
      if (!buffer_.empty()) {
        BufferedFrame frame = std::move(buffer_.front());
        buffer_.pop_front();
        delivered_ = frame.seq;
        RecvResult result;
        result.body = std::move(frame.body);
        result.seq = frame.seq;
        result.from_buffer = replay_low_ != 0 && frame.seq <= replay_low_;
        return result;
      }
    }

    const ConnState st = state_.get();
    if (is_dead(st)) {
      return util::Aborted("connection " + std::to_string(conn_id_) +
                           " is closed");
    }
    if (now_us() >= deadline) return util::Timeout("recv timed out");

    if (!can_transfer(st)) {
      state_.wait_for(
          [](ConnState s) { return can_transfer(s) || is_dead(s); },
          kStateWaitSlice);
      continue;
    }

    std::lock_guard rl(read_mu_);
    auto pumped = pump_socket(deadline);
    if (!pumped.ok()) {
      // Socket gone: either a racing suspension (the state will change
      // shortly) or an uncoordinated link failure (flagged for the
      // fault-tolerance extension's repair loop; without it we keep
      // polling until the deadline, as in the paper).
      if (can_transfer(state_.get())) broken_.store(true);
      util::RealClock::instance().sleep_for(std::chrono::milliseconds(1));
      continue;
    }
  }
}

util::Status Session::drain_to_mark(std::uint64_t peer_mark,
                                    util::Duration timeout) {
  const std::int64_t deadline = now_us() + timeout.count();
  std::lock_guard rl(read_mu_);
  for (;;) {
    {
      std::lock_guard lock(buf_mu_);
      if (rx_high_ >= peer_mark) {
        // Everything in transmission is now buffered; mark the replay
        // boundary so Fig.7-style traces can distinguish buffered frames.
        replay_low_ = rx_high_;
        return util::OkStatus();
      }
    }
    if (now_us() >= deadline) {
      return util::ProtocolError(
          "drain incomplete: have seq " + std::to_string(highest_rx_seq()) +
          ", peer declared " + std::to_string(peer_mark));
    }
    auto pumped = pump_socket(deadline);
    if (!pumped.ok()) {
      // Socket closed under us while data is still missing — that would be
      // a reliability bug; report it loudly (tests assert on this).
      std::lock_guard lock(buf_mu_);
      if (rx_high_ >= peer_mark) continue;
      return util::ProtocolError("data socket lost before drain completed: " +
                                 pumped.status().to_string());
    }
  }
}

void Session::enable_history(std::size_t max_bytes) {
  std::lock_guard lock(write_mu_);
  history_enabled_ = true;
  history_limit_bytes_ = max_bytes;
}

bool Session::history_enabled() const {
  std::lock_guard lock(write_mu_);
  return history_enabled_;
}

util::StatusOr<std::vector<std::pair<std::uint64_t, util::Bytes>>>
Session::history_since(std::uint64_t after_seq) const {
  std::lock_guard lock(write_mu_);
  if (after_seq >= tx_seq_) return std::vector<std::pair<std::uint64_t, util::Bytes>>{};
  // The oldest retained frame must cover after_seq + 1.
  if (history_.empty() || history_.front().first > after_seq + 1) {
    return util::OutOfRange(
        "retransmission history no longer covers seq " +
        std::to_string(after_seq + 1) + " (oldest retained: " +
        std::to_string(history_.empty() ? 0 : history_.front().first) + ")");
  }
  std::vector<std::pair<std::uint64_t, util::Bytes>> out;
  for (const auto& [seq, body] : history_) {
    if (seq > after_seq) out.emplace_back(seq, body);
  }
  return out;
}

util::Status Session::replay_history(std::uint64_t after_seq) {
  auto frames = history_since(after_seq);
  if (!frames.ok()) return frames.status();
  if (frames->empty()) return util::OkStatus();
  auto s = stream();
  if (s == nullptr) return util::Unavailable("no data socket for replay");
  for (auto& [seq, body] : *frames) {
    const util::Bytes encoded = DataFrame{seq, std::move(body)}.encode();
    NAPLET_RETURN_IF_ERROR(net::write_frame(
        *s, util::ByteSpan(encoded.data(), encoded.size())));
  }
  NAPLET_LOG(kInfo, "session") << "conn " << conn_id_ << ": replayed "
                               << frames->size() << " frames after seq "
                               << after_seq;
  return util::OkStatus();
}

bool Session::is_broken() const { return broken_.load(); }

void Session::mark_moved() {
  close_stream();
  {
    std::lock_guard lock(buf_mu_);
    buffer_.clear();
    rx_raw_.clear();
  }
  // Internal teardown, not a protocol transition: stale holders see the
  // connection as closed and their blocked operations abort.
  state_.set(ConnState::kClosed);
  park_event_.set();
  resume_event_.set();
  responses_.close();
}

void Session::pump_available(util::Duration budget) {
  std::unique_lock rl(read_mu_, std::try_to_lock);
  if (!rl.owns_lock()) {
    // Another reader (app recv or a drain) is already pumping; let it.
    util::RealClock::instance().sleep_for(budget);
    return;
  }
  (void)pump_socket(now_us() + budget.count());
}

util::Bytes Session::export_state() const {
  util::BytesWriter w;
  w.u64(conn_id_);
  w.u64(verifier_);
  w.boolean(is_client_);
  w.str(local_agent_.name());
  w.str(peer_agent_.name());
  w.bytes(util::ByteSpan(session_key_.data(), session_key_.size()));

  {
    std::lock_guard lock(node_mu_);
    util::BytesWriter nw;
    nw.str(peer_node_.server_name);
    nw.str(peer_node_.control.host);
    nw.u16(peer_node_.control.port);
    nw.str(peer_node_.redirector.host);
    nw.u16(peer_node_.redirector.port);
    nw.str(peer_node_.migration.host);
    nw.u16(peer_node_.migration.port);
    w.bytes(util::ByteSpan(nw.data().data(), nw.data().size()));
  }

  {
    std::lock_guard lock(write_mu_);
    w.u64(tx_seq_);
  }
  {
    std::lock_guard lock(buf_mu_);
    w.u64(rx_high_);
    w.u64(delivered_);
    w.u64(replay_low_);
    w.u32(static_cast<std::uint32_t>(buffer_.size()));
    for (const auto& frame : buffer_) {
      w.u64(frame.seq);
      w.bytes(util::ByteSpan(frame.body.data(), frame.body.size()));
    }
    w.bytes(util::ByteSpan(rx_raw_.data(), rx_raw_.size()));
  }
  {
    std::lock_guard lock(flags_mu_);
    w.boolean(flags_.remote_suspended);
    w.boolean(flags_.local_suspend_parked);
    w.boolean(flags_.peer_parked);
    w.boolean(flags_.peer_waiting_resume);
    w.u64(flags_.peer_declared_seq);
  }
  return std::move(w).take();
}

util::StatusOr<SessionPtr> Session::import_state(util::ByteSpan data) {
  util::BytesReader r(data);
  auto conn_id = r.u64();
  auto verifier = r.u64();
  auto is_client = r.boolean();
  auto local_name = r.str();
  auto peer_name = r.str();
  auto key = r.bytes();
  auto node_bytes = r.bytes();
  if (!conn_id.ok() || !verifier.ok() || !is_client.ok() ||
      !local_name.ok() || !peer_name.ok() || !key.ok() || !node_bytes.ok()) {
    return util::ProtocolError("bad session header");
  }

  auto session = std::make_shared<Session>(
      *conn_id, *verifier, *is_client, agent::AgentId(std::move(*local_name)),
      agent::AgentId(std::move(*peer_name)));
  session->session_key_ = std::move(*key);

  {
    util::BytesReader nr(util::ByteSpan(node_bytes->data(), node_bytes->size()));
    agent::NodeInfo node;
    auto sn = nr.str();
    auto ch = nr.str();
    auto cp = nr.u16();
    auto rh = nr.str();
    auto rp = nr.u16();
    auto mh = nr.str();
    auto mp = nr.u16();
    if (!sn.ok() || !ch.ok() || !cp.ok() || !rh.ok() || !rp.ok() || !mh.ok() ||
        !mp.ok()) {
      return util::ProtocolError("bad peer node encoding");
    }
    node.server_name = std::move(*sn);
    node.control = {std::move(*ch), *cp};
    node.redirector = {std::move(*rh), *rp};
    node.migration = {std::move(*mh), *mp};
    session->peer_node_ = std::move(node);
  }

  auto tx_seq = r.u64();
  auto rx_high = r.u64();
  auto delivered = r.u64();
  auto replay_low = r.u64();
  auto count = r.u32();
  if (!tx_seq.ok() || !rx_high.ok() || !delivered.ok() || !replay_low.ok() ||
      !count.ok()) {
    return util::ProtocolError("bad session counters");
  }
  session->tx_seq_ = *tx_seq;
  session->rx_high_ = *rx_high;
  session->delivered_ = *delivered;
  session->replay_low_ = *replay_low;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto seq = r.u64();
    auto body = r.bytes();
    if (!seq.ok() || !body.ok()) return util::ProtocolError("bad buffered frame");
    session->buffer_.push_back(BufferedFrame{*seq, std::move(*body)});
  }
  auto raw = r.bytes();
  if (!raw.ok()) return util::ProtocolError("bad raw tail");
  session->rx_raw_ = std::move(*raw);

  auto remote_suspended = r.boolean();
  auto local_parked = r.boolean();
  auto peer_parked = r.boolean();
  auto peer_waiting = r.boolean();
  auto peer_declared = r.u64();
  if (!remote_suspended.ok() || !local_parked.ok() || !peer_parked.ok() ||
      !peer_waiting.ok() || !peer_declared.ok()) {
    return util::ProtocolError("bad session flags");
  }
  session->flags_.remote_suspended = *remote_suspended;
  session->flags_.local_suspend_parked = *local_parked;
  session->flags_.peer_parked = *peer_parked;
  session->flags_.peer_waiting_resume = *peer_waiting;
  session->flags_.peer_declared_seq = *peer_declared;

  if (r.remaining() != 0) return util::ProtocolError("trailing session bytes");

  // A migrated session lands suspended; the buffered frames are replays.
  session->state_.set(ConnState::kSuspended);
  if (!session->buffer_.empty()) {
    session->replay_low_ =
        std::max(session->replay_low_, session->buffer_.back().seq);
  }
  return session;
}

}  // namespace naplet::nsock
