#include "core/session.hpp"

#include <algorithm>
#include <thread>

#include "core/wire.hpp"
#include "fault/fault.hpp"
#include "net/frame.hpp"
#include "util/log.hpp"
#include "util/serial.hpp"

namespace naplet::nsock {

namespace {
constexpr util::Duration kPumpSlice = std::chrono::milliseconds(100);
constexpr util::Duration kStateWaitSlice = std::chrono::milliseconds(100);

std::int64_t now_us() { return util::RealClock::instance().now_us(); }

bool is_dead(ConnState s) { return !is_live(s); }

// Teach the obs flight recorder (which cannot depend on the protocol
// enums) to decode FSM and message codes in its dumps. Also hook the
// recorder dump into lock-rank violation aborts. Once per process.
void install_obs_decoders() {
  static const bool installed = [] {
    obs::set_namers(
        [](std::uint8_t s) { return to_string(static_cast<ConnState>(s)); },
        [](std::uint8_t e) { return to_string(static_cast<ConnEvent>(e)); },
        [](std::uint8_t t) { return to_string(static_cast<CtrlType>(t)); },
        [](std::uint8_t t) { return to_string(static_cast<HandoffType>(t)); });
    obs::install_lock_rank_hook();
    return true;
  }();
  (void)installed;
}

std::string recorder_label(std::uint64_t conn_id, bool is_client,
                           const agent::AgentId& local_agent) {
  return "conn " + std::to_string(conn_id) +
         (is_client ? " client " : " server ") + local_agent.name();
}
}  // namespace

Session::Session(std::uint64_t conn_id, std::uint64_t verifier, bool is_client,
                 agent::AgentId local_agent, agent::AgentId peer_agent)
    : conn_id_(conn_id),
      verifier_(verifier),
      is_client_(is_client),
      local_agent_(std::move(local_agent)),
      peer_agent_(std::move(peer_agent)),
      recorder_(recorder_label(conn_id, is_client, local_agent_)) {
  install_obs_decoders();
}

agent::NodeInfo Session::peer_node() const {
  util::MutexLock lock(node_mu_);
  return peer_node_;
}

void Session::set_peer_node(const agent::NodeInfo& node) {
  util::MutexLock lock(node_mu_);
  peer_node_ = node;
}

util::Status Session::advance(ConnEvent event) {
  // Validate-and-swap under the cell's own lock via update().
  util::Status result = util::OkStatus();
  state_.update([&](ConnState& s) {
    auto next = transition(s, event);
    if (!next) {
      result = util::ProtocolError(
          "illegal transition: " + std::string(to_string(s)) + " on " +
          std::string(to_string(event)) + " (conn " +
          std::to_string(conn_id_) + ")");
      return;
    }
    NAPLET_LOG(kTrace, "fsm") << "conn " << conn_id_ << " ["
                              << (is_client_ ? "client" : "server") << "] "
                              << to_string(s) << " --" << to_string(event)
                              << "--> " << to_string(*next);
    // Audit hook for the fault oracles: every performed transition is
    // re-validated against the golden table after a chaos run.
    fault::observe_transition(conn_id_, is_client_,
                              static_cast<std::uint8_t>(s),
                              static_cast<std::uint8_t>(event),
                              static_cast<std::uint8_t>(*next));
    // Flight-recorder hook: runs under the state-cell lock, so it must be
    // (and is) lock-free.
    recorder_.record_fsm(static_cast<std::uint8_t>(s),
                         static_cast<std::uint8_t>(event),
                         static_cast<std::uint8_t>(*next));
    s = *next;
  });
  return result;
}

void Session::attach_stream(std::shared_ptr<net::Stream> stream) {
  {
    util::MutexLock lock(stream_mu_);
    stream_ = std::move(stream);
  }
  broken_.store(false);
  // Wake readers parked on a dead socket: the replacement is here. The
  // epoch bump (under buf_mu_) makes the event durable — a reader that
  // snapshotted the epoch before this attach will not sleep through it.
  {
    util::MutexLock lock(buf_mu_);
    bump_rx_epoch_locked();
  }
  rx_cv_.notify_all();
}

bool Session::has_stream() const {
  util::MutexLock lock(stream_mu_);
  return stream_ != nullptr;
}

void Session::close_stream() {
  std::shared_ptr<net::Stream> victim;
  {
    // The io lock is held across socket writes (write_mu_ is not), so a
    // coordinated teardown must wait for any in-flight gather-write: the
    // suspension mark declared to the peer can cover exactly that frame,
    // and the peer cannot finish draining a half-written frame.
    util::MutexLock io(write_io_mu_);
    util::MutexLock lock(stream_mu_);
    victim = std::exchange(stream_, nullptr);
  }
  if (victim) victim->close();
  // Durable rx event (see attach_stream): without the epoch bump a reader
  // that decided to wait just before this close slept out its full slice.
  {
    util::MutexLock lock(buf_mu_);
    bump_rx_epoch_locked();
  }
  rx_cv_.notify_all();
}

std::shared_ptr<net::Stream> Session::stream() const {
  util::MutexLock lock(stream_mu_);
  return stream_;
}

std::uint64_t Session::sent_seq() const {
  util::MutexLock lock(write_mu_);
  return tx_seq_;
}

std::uint64_t Session::highest_rx_seq() const {
  util::MutexLock lock(buf_mu_);
  return rx_high_;
}

std::size_t Session::buffered_frames() const {
  util::MutexLock lock(buf_mu_);
  return buffer_.size();
}

std::uint64_t Session::buffered_bytes() const {
  util::MutexLock lock(buf_mu_);
  std::uint64_t total = 0;
  for (const BufferedFrame& f : buffer_) total += f.body.size();
  return total;
}

Session::Flags Session::flags() const {
  util::MutexLock lock(flags_mu_);
  return flags_;
}

std::uint64_t Session::freeze_writes_and_mark() {
  // Callers set the FSM state to a non-transfer state *first*; taking the
  // write lock afterwards serializes against sequence assignment, so the
  // returned mark covers every frame that was or will be written before
  // suspension. A send whose seq is already assigned may still be mid-
  // transfer on the socket (it holds write_io_mu_, not write_mu_) — that is
  // fine: the stream is only closed after the peer drains to this mark,
  // which requires the in-flight frame to have fully arrived.
  util::MutexLock lock(write_mu_);
  return tx_seq_;
}

// Lock coupling (write_mu_ -> write_io_mu_, with write_mu_ released
// mid-flight and conditionally re-taken on the error path) is beyond the
// static analysis; the runtime lock-rank validator covers this function in
// debug builds instead.
util::Status Session::send(util::ByteSpan body, util::Duration timeout)
    NAPLET_NO_THREAD_SAFETY_ANALYSIS {
  const std::int64_t deadline = now_us() + timeout.count();
  std::uint64_t seq = 0;  // 0 = no sequence number assigned yet
  for (;;) {
    {
      util::UniqueMutexLock wl(write_mu_);
      const ConnState st = state_.get();
      if (is_dead(st)) {
        return util::Aborted("connection " + std::to_string(conn_id_) +
                             " is closed");
      }
      if (can_transfer(st)) {
        auto s = stream();
        if (s != nullptr) {
          // Acquire the io lock while still holding write_mu_ (lock
          // coupling): socket writes happen in seq order without keeping
          // write_mu_ across the transfer.
          util::UniqueMutexLock io(write_io_mu_);
          if (seq == 0) {
            seq = ++tx_seq_;
            if (history_enabled_) {
              // Retention for retransmission is the one payload copy on
              // the send path, and only with the fault-tolerance
              // extension enabled.
              history_bytes_ += body.size();
              counters_.payload_bytes_copied.fetch_add(
                  body.size(), std::memory_order_relaxed);
              history_.emplace_back(seq, util::Bytes(body.begin(), body.end()));
              while (history_bytes_ > history_limit_bytes_ &&
                     !history_.empty()) {
                history_bytes_ -= history_.front().second.size();
                history_.pop_front();
              }
            }
          }
          wl.unlock();

          // Zero-copy framing: the 8-byte seq header lives on the stack;
          // write_frame_vectored prepends the u32 length the same way and
          // gather-writes header + caller's payload in ONE transport op.
          std::uint8_t seq_hdr[8];
          for (int i = 0; i < 8; ++i) {
            seq_hdr[i] = static_cast<std::uint8_t>(seq >> (56 - 8 * i));
          }
          const util::ByteSpan parts[2] = {util::ByteSpan(seq_hdr, 8), body};
          auto status = net::write_frame_vectored(
              *s, std::span<const util::ByteSpan>(parts, 2));
          counters_.stream_write_ops.fetch_add(1, std::memory_order_relaxed);
          io.unlock();
          if (status.ok()) return util::OkStatus();
          // The socket may have been torn down by a racing suspension;
          // re-check the state (under write_mu_, so the check is ordered
          // against freeze_writes_and_mark) before reporting an error. An
          // error while still ESTABLISHED is an uncoordinated link failure.
          wl.lock();
          if (can_transfer(state_.get())) {
            broken_.store(true);
            // A failed send must consume nothing: if no later sender
            // claimed a sequence number, roll ours back (and drop the
            // history entry) so a link-failure repair never replays a
            // frame the caller was told failed. Otherwise our seq is
            // pinned in the sequence — keep retrying the SAME frame.
            if (tx_seq_ == seq) {
              --tx_seq_;
              if (history_enabled_ && !history_.empty() &&
                  history_.back().first == seq) {
                history_bytes_ -= history_.back().second.size();
                history_.pop_back();
              }
              return status;
            }
            // Pinned seq on a broken link: pace the retry while the
            // repair loop re-establishes the stream (the state stays
            // transferable, so the wait at the bottom would not block).
            // Waiting on the state cell instead of sleeping lets a racing
            // close/abort interrupt the pacing immediately.
            wl.unlock();
            state_.wait_for([](ConnState s) { return is_dead(s); },
                            std::chrono::milliseconds(1));
          }
          // Racing suspension killed the write (or rollback was not
          // possible): the seq is already assigned (and covered by any
          // declared mark), so retry the SAME frame once re-established —
          // receiver duplicate suppression keeps delivery exactly-once
          // even if the first attempt landed.
        }
      }
    }
    if (now_us() >= deadline) {
      return util::Timeout("send blocked (state " +
                           std::string(to_string(state_.get())) + ")");
    }
    state_.wait_for([](ConnState s) { return can_transfer(s) || is_dead(s); },
                    kStateWaitSlice);
  }
}

void Session::parse_raw_locked() {
  // Caller holds buf_mu_. Complete frames are consumed through an offset
  // cursor and the raw buffer is compacted ONCE at the end — the previous
  // per-frame erase made a burst of k coalesced frames cost O(k²) moves.
  std::size_t off = 0;
  for (;;) {
    if (rx_raw_.size() - off < 4) break;
    std::uint32_t len = 0;
    for (std::size_t i = 0; i < 4; ++i) len = len << 8 | rx_raw_[off + i];
    if (rx_raw_.size() - off < 4 + static_cast<std::size_t>(len)) break;

    auto frame = DataFrame::decode(util::ByteSpan(rx_raw_.data() + off + 4, len));
    off += 4 + static_cast<std::size_t>(len);
    if (!frame.ok()) {
      NAPLET_LOG(kWarn, "session") << "conn " << conn_id_ << ": bad frame: "
                                   << frame.status().to_string();
      continue;
    }
    if (frame->seq <= rx_high_) {
      NAPLET_LOG(kDebug, "session")
          << "conn " << conn_id_ << ": duplicate frame seq " << frame->seq;
      continue;  // exactly-once: drop duplicates
    }
    rx_high_ = frame->seq;
    buffer_.push_back(BufferedFrame{frame->seq, std::move(frame->body)});
  }
  if (off > 0) {
    rx_raw_.erase(rx_raw_.begin(), rx_raw_.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

util::StatusOr<bool> Session::pump_socket(std::int64_t deadline_us) {
  auto s = stream();
  if (s == nullptr) return util::Unavailable("no data socket");

  const std::int64_t budget_us =
      std::min<std::int64_t>(kPumpSlice.count(),
                             std::max<std::int64_t>(1, deadline_us - now_us()));
  std::uint8_t chunk[16384];
  auto n = s->read_some_for(chunk, sizeof chunk, util::us(budget_us));
  counters_.stream_read_ops.fetch_add(1, std::memory_order_relaxed);
  if (!n.ok()) {
    if (n.status().code() == util::StatusCode::kTimeout) return false;
    return n.status();
  }
  if (*n == 0) return util::Unavailable("data socket closed by peer");

  bool progressed;
  {
    util::MutexLock lock(buf_mu_);
    const std::size_t frames_before = buffer_.size();
    rx_raw_.insert(rx_raw_.end(), chunk, chunk + *n);
    parse_raw_locked();
    const std::size_t added = buffer_.size() - frames_before;
    if (added > 1) {
      counters_.frames_coalesced.fetch_add(added - 1,
                                           std::memory_order_relaxed);
    }
    progressed = added > 0;
    bump_rx_epoch_locked();
  }
  // Socket bytes landed (even a partial frame is progress for a peer
  // blocked on backpressure): wake anyone waiting event-driven.
  rx_cv_.notify_all();
  return progressed;
}

util::StatusOr<RecvResult> Session::recv(util::Duration timeout) {
  const std::int64_t deadline = now_us() + timeout.count();
  for (;;) {
    std::uint64_t observed_epoch;
    {
      util::MutexLock lock(buf_mu_);
      observed_epoch = rx_epoch_;
      if (sealed_) {
        return util::Unavailable("connection " + std::to_string(conn_id_) +
                                 " has migrated; reacquire the session");
      }
      if (!buffer_.empty()) {
        BufferedFrame frame = std::move(buffer_.front());
        buffer_.pop_front();
        delivered_ = frame.seq;
        RecvResult result;
        result.body = std::move(frame.body);
        result.seq = frame.seq;
        result.from_buffer = replay_low_ != 0 && frame.seq <= replay_low_;
        return result;
      }
    }

    const ConnState st = state_.get();
    if (is_dead(st)) {
      // A graceful close drains the closer's in-flight frames into the
      // buffer before tearing the stream down (handle_cls), but the state
      // goes dead the moment CLS is processed — before that drain runs.
      // While the stream is still attached the teardown is in progress:
      // wait for the drain (epoch bump) or the detach (close_stream also
      // bumps) instead of aborting, or the peer's final frames are lost
      // to the control/data channel race.
      if (stream() == nullptr || now_us() >= deadline) {
        return util::Aborted("connection " + std::to_string(conn_id_) +
                             " is closed");
      }
      wait_rx_event(observed_epoch, deadline, kStateWaitSlice);
      continue;
    }
    if (now_us() >= deadline) return util::Timeout("recv timed out");

    if (!can_transfer(st)) {
      state_.wait_for(
          [](ConnState s) { return can_transfer(s) || is_dead(s); },
          kStateWaitSlice);
      continue;
    }

    bool socket_ok;
    {
      util::MutexLock rl(read_mu_);
      auto pumped = pump_socket(deadline);
      socket_ok = pumped.ok();
      // Socket gone: either a racing suspension (the state will change
      // shortly) or an uncoordinated link failure (flagged for the
      // fault-tolerance extension's repair loop; without it we keep
      // waiting until the deadline, as in the paper).
      if (!socket_ok && can_transfer(state_.get())) broken_.store(true);
    }
    if (!socket_ok) {
      // Event-driven wait (read_mu_ released so repairs can drain): wake
      // on attach_stream / close_stream / frame arrival. The epoch
      // snapshot from the top of the iteration makes any event since then
      // (e.g. a repair re-attaching the stream) return immediately
      // instead of sleeping out the slice.
      wait_rx_event(observed_epoch, deadline, kStateWaitSlice);
    }
  }
}

void Session::wait_rx_event(std::uint64_t observed_epoch,
                            std::int64_t deadline_us,
                            util::Duration max_slice) {
  util::MutexLock lock(buf_mu_);
  if (!buffer_.empty()) return;
  if (rx_epoch_ != observed_epoch) {
    // An rx event landed between the caller's snapshot and this wait —
    // the wakeup is delivered, not lost (and not slept through).
    counters_.recv_wakeups.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::int64_t wait_us = std::min<std::int64_t>(
      max_slice.count(), std::max<std::int64_t>(1, deadline_us - now_us()));
  if (rx_cv_.wait_for(buf_mu_, util::us(wait_us)) ==
      std::cv_status::no_timeout) {
    counters_.recv_wakeups.fetch_add(1, std::memory_order_relaxed);
  }
}

util::Status Session::drain_to_mark(std::uint64_t peer_mark,
                                    util::Duration timeout) {
  const std::int64_t deadline = now_us() + timeout.count();
  util::MutexLock rl(read_mu_);
  for (;;) {
    {
      util::MutexLock lock(buf_mu_);
      if (rx_high_ >= peer_mark) {
        // Everything in transmission is now buffered; mark the replay
        // boundary so Fig.7-style traces can distinguish buffered frames.
        replay_low_ = rx_high_;
        return util::OkStatus();
      }
    }
    if (now_us() >= deadline) {
      return util::ProtocolError(
          "drain incomplete: have seq " + std::to_string(highest_rx_seq()) +
          ", peer declared " + std::to_string(peer_mark));
    }
    auto pumped = pump_socket(deadline);
    if (!pumped.ok()) {
      // Socket closed under us while data is still missing — that would be
      // a reliability bug; report it loudly (tests assert on this).
      util::MutexLock lock(buf_mu_);
      if (rx_high_ >= peer_mark) continue;
      return util::ProtocolError("data socket lost before drain completed: " +
                                 pumped.status().to_string());
    }
  }
}

void Session::enable_history(std::size_t max_bytes) {
  util::MutexLock lock(write_mu_);
  history_enabled_ = true;
  history_limit_bytes_ = max_bytes;
}

bool Session::history_enabled() const {
  util::MutexLock lock(write_mu_);
  return history_enabled_;
}

util::StatusOr<std::vector<std::pair<std::uint64_t, util::Bytes>>>
Session::history_since(std::uint64_t after_seq) const {
  util::MutexLock lock(write_mu_);
  if (after_seq >= tx_seq_) return std::vector<std::pair<std::uint64_t, util::Bytes>>{};
  // The oldest retained frame must cover after_seq + 1.
  if (history_.empty() || history_.front().first > after_seq + 1) {
    return util::OutOfRange(
        "retransmission history no longer covers seq " +
        std::to_string(after_seq + 1) + " (oldest retained: " +
        std::to_string(history_.empty() ? 0 : history_.front().first) + ")");
  }
  std::vector<std::pair<std::uint64_t, util::Bytes>> out;
  for (const auto& [seq, body] : history_) {
    if (seq > after_seq) out.emplace_back(seq, body);
  }
  return out;
}

util::Status Session::retransmit_after(std::uint64_t after_seq) {
  auto frames = history_since(after_seq);
  if (!frames.ok()) return frames.status();
  if (frames->empty()) return util::OkStatus();
  auto s = stream();
  if (s == nullptr) return util::Unavailable("no data socket for replay");
  // Hold the io lock across the whole replay so a racing send retry
  // cannot interleave frames mid-stream.
  util::MutexLock io(write_io_mu_);
  for (auto& [seq, body] : *frames) {
    // Same vectored framing as send(): stack seq header, body straight out
    // of the history entry — no per-frame encode buffer.
    std::uint8_t seq_hdr[8];
    for (int i = 0; i < 8; ++i) {
      seq_hdr[i] = static_cast<std::uint8_t>(seq >> (56 - 8 * i));
    }
    const util::ByteSpan parts[2] = {
        util::ByteSpan(seq_hdr, 8), util::ByteSpan(body.data(), body.size())};
    NAPLET_RETURN_IF_ERROR(net::write_frame_vectored(
        *s, std::span<const util::ByteSpan>(parts, 2)));
    counters_.stream_write_ops.fetch_add(1, std::memory_order_relaxed);
    // history_since handed us copies of the retained bodies.
    counters_.payload_bytes_copied.fetch_add(body.size(),
                                             std::memory_order_relaxed);
  }
  NAPLET_LOG(kInfo, "session") << "conn " << conn_id_ << ": retransmitted "
                               << frames->size() << " frames after seq "
                               << after_seq;
  return util::OkStatus();
}

DataPathStats Session::data_stats() const {
  DataPathStats out;
  out.payload_bytes_copied =
      counters_.payload_bytes_copied.load(std::memory_order_relaxed);
  out.stream_write_ops =
      counters_.stream_write_ops.load(std::memory_order_relaxed);
  out.stream_read_ops =
      counters_.stream_read_ops.load(std::memory_order_relaxed);
  out.recv_wakeups = counters_.recv_wakeups.load(std::memory_order_relaxed);
  out.frames_coalesced =
      counters_.frames_coalesced.load(std::memory_order_relaxed);
  return out;
}

bool Session::is_broken() const { return broken_.load(); }

bool Session::admit_peer_epoch(std::uint64_t epoch) {
  if (epoch == 0) return true;  // unfenced sender
  std::uint64_t seen = peer_epoch_.load(std::memory_order_relaxed);
  while (epoch > seen) {
    if (peer_epoch_.compare_exchange_weak(seen, epoch,
                                          std::memory_order_relaxed)) {
      return true;
    }
  }
  return epoch >= seen;
}

void Session::abort_local() {
  close_stream();
  // NOT buffer_.clear() (contrast mark_moved): the session is dead but
  // frames already pulled off the wire were genuinely delivered to us;
  // recv() serves the buffer before checking liveness.
  {
    util::MutexLock lock(buf_mu_);
    bump_rx_epoch_locked();
  }
  state_.set(ConnState::kClosed);
  park_event_.set();
  resume_event_.set();
  responses_.close();
  rx_cv_.notify_all();
}

void Session::seal_buffer_for_export() {
  util::MutexLock lock(buf_mu_);
  sealed_ = true;
  bump_rx_epoch_locked();
}

void Session::mark_moved() {
  close_stream();
  {
    util::MutexLock lock(buf_mu_);
    buffer_.clear();
    rx_raw_.clear();
    bump_rx_epoch_locked();
  }
  // Internal teardown, not a protocol transition: stale holders see the
  // connection as closed and their blocked operations abort.
  state_.set(ConnState::kClosed);
  park_event_.set();
  resume_event_.set();
  responses_.close();
  rx_cv_.notify_all();
}

void Session::pump_available(util::Duration budget) {
  const std::int64_t deadline = now_us() + budget.count();
  std::uint64_t observed_epoch;
  {
    util::MutexLock lock(buf_mu_);
    observed_epoch = rx_epoch_;
  }
  util::UniqueMutexLock rl(read_mu_, std::try_to_lock);
  if (!rl.owns_lock()) {
    // Another reader (app recv or a drain) is already pumping. Wait
    // event-driven on its progress instead of sleeping the whole budget:
    // the caller (suspend/close initiator) returns to its control-response
    // queue as soon as anything moves.
    wait_rx_event(observed_epoch, deadline, budget);
    return;
  }
  (void)pump_socket(deadline);
}

util::Bytes Session::export_state() const {
  util::BytesWriter w;
  w.u64(conn_id_);
  w.u64(verifier_);
  w.boolean(is_client_);
  w.str(local_agent_.name());
  w.str(peer_agent_.name());
  w.bytes(util::ByteSpan(session_key_.data(), session_key_.size()));

  {
    util::MutexLock lock(node_mu_);
    util::BytesWriter nw;
    nw.str(peer_node_.server_name);
    nw.str(peer_node_.control.host);
    nw.u16(peer_node_.control.port);
    nw.str(peer_node_.redirector.host);
    nw.u16(peer_node_.redirector.port);
    nw.str(peer_node_.migration.host);
    nw.u16(peer_node_.migration.port);
    w.bytes(util::ByteSpan(nw.data().data(), nw.data().size()));
  }

  {
    util::MutexLock lock(write_mu_);
    w.u64(tx_seq_);
  }
  {
    util::MutexLock lock(buf_mu_);
    w.u64(rx_high_);
    w.u64(delivered_);
    w.u64(replay_low_);
    w.u32(static_cast<std::uint32_t>(buffer_.size()));
    for (const auto& frame : buffer_) {
      w.u64(frame.seq);
      w.bytes(util::ByteSpan(frame.body.data(), frame.body.size()));
    }
    w.bytes(util::ByteSpan(rx_raw_.data(), rx_raw_.size()));
  }
  {
    util::MutexLock lock(flags_mu_);
    w.boolean(flags_.remote_suspended);
    w.boolean(flags_.local_suspend_parked);
    w.boolean(flags_.peer_parked);
    w.boolean(flags_.peer_waiting_resume);
    w.u64(flags_.peer_declared_seq);
  }
  {
    // Retransmission history rides along: after a crash-restart the
    // recovered side must still be able to replay frames the peer never
    // received (the in-flight reverse traffic at crash time), or the
    // exactly-once ledger loses them.
    util::MutexLock lock(write_mu_);
    w.boolean(history_enabled_);
    w.u64(history_limit_bytes_);
    w.u32(static_cast<std::uint32_t>(history_.size()));
    for (const auto& [seq, body] : history_) {
      w.u64(seq);
      w.bytes(util::ByteSpan(body.data(), body.size()));
    }
  }
  w.u64(peer_epoch_.load(std::memory_order_relaxed));
  w.u64(trace_id_.load(std::memory_order_relaxed));
  return std::move(w).take();
}

// Populates a freshly constructed, not-yet-shared Session, so the guarded
// members are written without their locks; no other thread can see it.
util::StatusOr<SessionPtr> Session::import_state(util::ByteSpan data)
    NAPLET_NO_THREAD_SAFETY_ANALYSIS {
  util::BytesReader r(data);
  auto conn_id = r.u64();
  auto verifier = r.u64();
  auto is_client = r.boolean();
  auto local_name = r.str();
  auto peer_name = r.str();
  auto key = r.bytes();
  auto node_bytes = r.bytes();
  if (!conn_id.ok() || !verifier.ok() || !is_client.ok() ||
      !local_name.ok() || !peer_name.ok() || !key.ok() || !node_bytes.ok()) {
    return util::ProtocolError("bad session header");
  }

  auto session = std::make_shared<Session>(
      *conn_id, *verifier, *is_client, agent::AgentId(std::move(*local_name)),
      agent::AgentId(std::move(*peer_name)));
  session->session_key_ = std::move(*key);

  {
    util::BytesReader nr(util::ByteSpan(node_bytes->data(), node_bytes->size()));
    agent::NodeInfo node;
    auto sn = nr.str();
    auto ch = nr.str();
    auto cp = nr.u16();
    auto rh = nr.str();
    auto rp = nr.u16();
    auto mh = nr.str();
    auto mp = nr.u16();
    if (!sn.ok() || !ch.ok() || !cp.ok() || !rh.ok() || !rp.ok() || !mh.ok() ||
        !mp.ok()) {
      return util::ProtocolError("bad peer node encoding");
    }
    node.server_name = std::move(*sn);
    node.control = {std::move(*ch), *cp};
    node.redirector = {std::move(*rh), *rp};
    node.migration = {std::move(*mh), *mp};
    session->peer_node_ = std::move(node);
  }

  auto tx_seq = r.u64();
  auto rx_high = r.u64();
  auto delivered = r.u64();
  auto replay_low = r.u64();
  auto count = r.u32();
  if (!tx_seq.ok() || !rx_high.ok() || !delivered.ok() || !replay_low.ok() ||
      !count.ok()) {
    return util::ProtocolError("bad session counters");
  }
  session->tx_seq_ = *tx_seq;
  session->rx_high_ = *rx_high;
  session->delivered_ = *delivered;
  session->replay_low_ = *replay_low;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto seq = r.u64();
    auto body = r.bytes();
    if (!seq.ok() || !body.ok()) return util::ProtocolError("bad buffered frame");
    session->buffer_.push_back(BufferedFrame{*seq, std::move(*body)});
  }
  auto raw = r.bytes();
  if (!raw.ok()) return util::ProtocolError("bad raw tail");
  session->rx_raw_ = std::move(*raw);

  auto remote_suspended = r.boolean();
  auto local_parked = r.boolean();
  auto peer_parked = r.boolean();
  auto peer_waiting = r.boolean();
  auto peer_declared = r.u64();
  if (!remote_suspended.ok() || !local_parked.ok() || !peer_parked.ok() ||
      !peer_waiting.ok() || !peer_declared.ok()) {
    return util::ProtocolError("bad session flags");
  }
  session->flags_.remote_suspended = *remote_suspended;
  session->flags_.local_suspend_parked = *local_parked;
  session->flags_.peer_parked = *peer_parked;
  session->flags_.peer_waiting_resume = *peer_waiting;
  session->flags_.peer_declared_seq = *peer_declared;

  auto history_enabled = r.boolean();
  auto history_limit = r.u64();
  auto history_count = r.u32();
  if (!history_enabled.ok() || !history_limit.ok() || !history_count.ok()) {
    return util::ProtocolError("bad session history header");
  }
  session->history_enabled_ = *history_enabled;
  session->history_limit_bytes_ =
      static_cast<std::size_t>(*history_limit);
  for (std::uint32_t i = 0; i < *history_count; ++i) {
    auto seq = r.u64();
    auto body = r.bytes();
    if (!seq.ok() || !body.ok()) {
      return util::ProtocolError("bad history frame");
    }
    session->history_bytes_ += body->size();
    session->history_.emplace_back(*seq, std::move(*body));
  }
  auto peer_epoch = r.u64();
  if (!peer_epoch.ok()) return util::ProtocolError("bad peer epoch");
  session->peer_epoch_.store(*peer_epoch, std::memory_order_relaxed);

  auto trace_id = r.u64();
  if (!trace_id.ok()) return util::ProtocolError("bad trace id");
  session->trace_id_.store(*trace_id, std::memory_order_relaxed);

  if (r.remaining() != 0) return util::ProtocolError("trailing session bytes");

  // A migrated session lands suspended; the buffered frames are replays.
  session->state_.set(ConnState::kSuspended);
  if (!session->buffer_.empty()) {
    session->replay_low_ =
        std::max(session->replay_low_, session->buffer_.back().seq);
    if (fault::armed() && fault::hit("session.resume.replay").action ==
                              fault::Action::kDuplicate) {
      // Deliberate exactly-once regression (chaos-oracle bait): replay the
      // last buffered frame twice. Buffered frames bypass the rx_high_
      // dedup — they were already accepted once — so this duplicate WILL
      // reach the application, and the delivery ledger must catch it.
      session->buffer_.push_back(session->buffer_.back());
    }
  }
  return session;
}

}  // namespace naplet::nsock
