#include "core/wire.hpp"

#include "crypto/hmac.hpp"

namespace naplet::nsock {

namespace {

void write_node(util::BytesWriter& w, const agent::NodeInfo& node) {
  w.str(node.server_name);
  w.str(node.control.host);
  w.u16(node.control.port);
  w.str(node.redirector.host);
  w.u16(node.redirector.port);
  w.str(node.migration.host);
  w.u16(node.migration.port);
}

util::Status read_node(util::BytesReader& r, agent::NodeInfo& node) {
  auto name = r.str();
  if (!name.ok()) return name.status();
  node.server_name = std::move(*name);

  auto read_endpoint = [&r](net::Endpoint& ep) -> util::Status {
    auto host = r.str();
    if (!host.ok()) return host.status();
    auto port = r.u16();
    if (!port.ok()) return port.status();
    ep.host = std::move(*host);
    ep.port = *port;
    return util::OkStatus();
  };
  NAPLET_RETURN_IF_ERROR(read_endpoint(node.control));
  NAPLET_RETURN_IF_ERROR(read_endpoint(node.redirector));
  NAPLET_RETURN_IF_ERROR(read_endpoint(node.migration));
  return util::OkStatus();
}

}  // namespace

void persist_node(util::Archive& ar, agent::NodeInfo& node) {
  node.persist(ar);
}

std::string_view to_string(CtrlType type) noexcept {
  switch (type) {
    case CtrlType::kConnect: return "CONNECT";
    case CtrlType::kConnectAck: return "CONNECT_ACK";
    case CtrlType::kConnectReject: return "CONNECT_REJECT";
    case CtrlType::kSus: return "SUS";
    case CtrlType::kSusAck: return "SUS_ACK";
    case CtrlType::kAckWait: return "ACK_WAIT";
    case CtrlType::kSusRes: return "SUS_RES";
    case CtrlType::kSusResAck: return "SUS_RES_ACK";
    case CtrlType::kCls: return "CLS";
    case CtrlType::kClsAck: return "CLS_ACK";
    case CtrlType::kReject: return "REJECT";
    case CtrlType::kHeartbeat: return "HEARTBEAT";
  }
  return "?";
}

std::string_view to_string(HandoffType type) noexcept {
  switch (type) {
    case HandoffType::kAttach: return "ATTACH";
    case HandoffType::kAttachOk: return "ATTACH_OK";
    case HandoffType::kResume: return "RESUME";
    case HandoffType::kResumeOk: return "RESUME_OK";
    case HandoffType::kResumeWait: return "RESUME_WAIT";
    case HandoffType::kError: return "ERROR";
  }
  return "?";
}

util::Bytes CtrlMsg::mac_payload() const {
  util::BytesWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(conn_id);
  w.u64(epoch);
  w.u64(trace_id);
  w.u64(verifier);
  w.u64(sent_seq);
  w.u64(group_id);
  w.str(client_agent);
  w.str(server_agent);
  write_node(w, node);
  w.bytes(util::ByteSpan(dh_public.data(), dh_public.size()));
  w.bytes(util::ByteSpan(token.data(), token.size()));
  w.str(reason);
  return std::move(w).take();
}

util::Bytes CtrlMsg::encode() const {
  const util::Bytes payload = mac_payload();
  util::BytesWriter w(payload.size() + mac.size() + 8);
  w.raw(util::ByteSpan(payload.data(), payload.size()));
  w.bytes(util::ByteSpan(mac.data(), mac.size()));
  return std::move(w).take();
}

util::StatusOr<CtrlMsg> CtrlMsg::decode(util::ByteSpan data) {
  util::BytesReader r(data);
  CtrlMsg msg;

  auto type_byte = r.u8();
  if (!type_byte.ok()) return type_byte.status();
  if (*type_byte < static_cast<std::uint8_t>(CtrlType::kConnect) ||
      *type_byte > static_cast<std::uint8_t>(CtrlType::kHeartbeat)) {
    return util::ProtocolError("bad ctrl type " + std::to_string(*type_byte));
  }
  msg.type = static_cast<CtrlType>(*type_byte);

  auto conn_id = r.u64();
  if (!conn_id.ok()) return conn_id.status();
  msg.conn_id = *conn_id;
  auto epoch = r.u64();
  if (!epoch.ok()) return epoch.status();
  msg.epoch = *epoch;
  auto trace_id = r.u64();
  if (!trace_id.ok()) return trace_id.status();
  msg.trace_id = *trace_id;
  auto verifier = r.u64();
  if (!verifier.ok()) return verifier.status();
  msg.verifier = *verifier;
  auto sent_seq = r.u64();
  if (!sent_seq.ok()) return sent_seq.status();
  msg.sent_seq = *sent_seq;
  auto group_id = r.u64();
  if (!group_id.ok()) return group_id.status();
  msg.group_id = *group_id;

  auto client_agent = r.str();
  if (!client_agent.ok()) return client_agent.status();
  msg.client_agent = std::move(*client_agent);
  auto server_agent = r.str();
  if (!server_agent.ok()) return server_agent.status();
  msg.server_agent = std::move(*server_agent);

  NAPLET_RETURN_IF_ERROR(read_node(r, msg.node));

  auto dh_public = r.bytes();
  if (!dh_public.ok()) return dh_public.status();
  msg.dh_public = std::move(*dh_public);
  auto token = r.bytes();
  if (!token.ok()) return token.status();
  msg.token = std::move(*token);
  auto reason = r.str();
  if (!reason.ok()) return reason.status();
  msg.reason = std::move(*reason);

  auto mac = r.bytes();
  if (!mac.ok()) return mac.status();
  msg.mac = std::move(*mac);

  if (r.remaining() != 0) return util::ProtocolError("trailing ctrl bytes");
  return msg;
}

util::Bytes HandoffMsg::mac_payload() const {
  util::BytesWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(conn_id);
  w.u64(epoch);
  w.u64(trace_id);
  w.u64(verifier);
  w.u64(sent_seq);
  w.u64(recv_seq);
  w.str(agent);
  write_node(w, node);
  w.str(reason);
  return std::move(w).take();
}

util::Bytes HandoffMsg::encode() const {
  const util::Bytes payload = mac_payload();
  util::BytesWriter w(payload.size() + mac.size() + 8);
  w.raw(util::ByteSpan(payload.data(), payload.size()));
  w.bytes(util::ByteSpan(mac.data(), mac.size()));
  return std::move(w).take();
}

util::StatusOr<HandoffMsg> HandoffMsg::decode(util::ByteSpan data) {
  util::BytesReader r(data);
  HandoffMsg msg;

  auto type_byte = r.u8();
  if (!type_byte.ok()) return type_byte.status();
  if (*type_byte < static_cast<std::uint8_t>(HandoffType::kAttach) ||
      *type_byte > static_cast<std::uint8_t>(HandoffType::kError)) {
    return util::ProtocolError("bad handoff type " +
                               std::to_string(*type_byte));
  }
  msg.type = static_cast<HandoffType>(*type_byte);

  auto conn_id = r.u64();
  if (!conn_id.ok()) return conn_id.status();
  msg.conn_id = *conn_id;
  auto epoch = r.u64();
  if (!epoch.ok()) return epoch.status();
  msg.epoch = *epoch;
  auto trace_id = r.u64();
  if (!trace_id.ok()) return trace_id.status();
  msg.trace_id = *trace_id;
  auto verifier = r.u64();
  if (!verifier.ok()) return verifier.status();
  msg.verifier = *verifier;
  auto sent_seq = r.u64();
  if (!sent_seq.ok()) return sent_seq.status();
  msg.sent_seq = *sent_seq;

  auto recv_seq = r.u64();
  if (!recv_seq.ok()) return recv_seq.status();
  msg.recv_seq = *recv_seq;

  auto sender = r.str();
  if (!sender.ok()) return sender.status();
  msg.agent = std::move(*sender);

  NAPLET_RETURN_IF_ERROR(read_node(r, msg.node));

  auto reason = r.str();
  if (!reason.ok()) return reason.status();
  msg.reason = std::move(*reason);

  auto mac = r.bytes();
  if (!mac.ok()) return mac.status();
  msg.mac = std::move(*mac);

  if (r.remaining() != 0) return util::ProtocolError("trailing handoff bytes");
  return msg;
}

util::Bytes BatchHandoffMsg::encode() const {
  util::BytesWriter w;
  w.u8(kBatchHandoffMagic);
  w.u64(trace_id);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const HandoffMsg& entry : entries) {
    const util::Bytes encoded = entry.encode();
    w.bytes(util::ByteSpan(encoded.data(), encoded.size()));
  }
  return std::move(w).take();
}

util::StatusOr<BatchHandoffMsg> BatchHandoffMsg::decode(util::ByteSpan data) {
  util::BytesReader r(data);
  auto magic = r.u8();
  if (!magic.ok()) return magic.status();
  if (*magic != kBatchHandoffMagic) {
    return util::ProtocolError("bad batch handoff magic " +
                               std::to_string(*magic));
  }
  BatchHandoffMsg msg;
  auto trace_id = r.u64();
  if (!trace_id.ok()) return trace_id.status();
  msg.trace_id = *trace_id;
  auto count = r.u32();
  if (!count.ok()) return count.status();
  msg.entries.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto encoded = r.bytes();
    if (!encoded.ok()) return encoded.status();
    auto entry = HandoffMsg::decode(
        util::ByteSpan(encoded->data(), encoded->size()));
    if (!entry.ok()) return entry.status();
    msg.entries.push_back(std::move(*entry));
  }
  if (r.remaining() != 0) {
    return util::ProtocolError("trailing batch handoff bytes");
  }
  return msg;
}

util::Bytes BatchHandoffReply::encode() const {
  util::BytesWriter w;
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const Disposition& d : entries) {
    w.boolean(d.ok);
    w.str(d.reason);
  }
  return std::move(w).take();
}

util::StatusOr<BatchHandoffReply> BatchHandoffReply::decode(
    util::ByteSpan data) {
  util::BytesReader r(data);
  auto count = r.u32();
  if (!count.ok()) return count.status();
  BatchHandoffReply reply;
  reply.entries.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    Disposition d;
    auto ok = r.boolean();
    if (!ok.ok()) return ok.status();
    d.ok = *ok;
    auto reason = r.str();
    if (!reason.ok()) return reason.status();
    d.reason = std::move(*reason);
    reply.entries.push_back(std::move(d));
  }
  if (r.remaining() != 0) {
    return util::ProtocolError("trailing batch reply bytes");
  }
  return reply;
}

util::Bytes compute_mac(util::ByteSpan session_key, util::ByteSpan payload) {
  if (session_key.empty()) return {};
  const crypto::Sha256Digest tag = crypto::hmac_sha256(session_key, payload);
  return util::Bytes(tag.begin(), tag.end());
}

bool verify_mac(util::ByteSpan session_key, util::ByteSpan payload,
                util::ByteSpan tag) {
  if (session_key.empty()) return true;  // security disabled
  return crypto::hmac_sha256_verify(session_key, payload, tag);
}

util::Bytes DataFrame::encode() const {
  util::BytesWriter w(body.size() + 8);
  w.u64(seq);
  w.raw(util::ByteSpan(body.data(), body.size()));
  return std::move(w).take();
}

util::StatusOr<DataFrame> DataFrame::decode(util::ByteSpan data) {
  util::BytesReader r(data);
  auto seq = r.u64();
  if (!seq.ok()) return seq.status();
  auto body = r.raw(r.remaining());
  if (!body.ok()) return body.status();
  return DataFrame{*seq, std::move(*body)};
}

}  // namespace naplet::nsock
