#include "core/redirector.hpp"

#include "fault/fault.hpp"
#include "net/frame.hpp"
#include "util/log.hpp"

namespace naplet::nsock {

Redirector::Redirector(net::Network& network, std::uint16_t port,
                       HandoffHandler handler)
    : network_(network), port_(port), handler_(std::move(handler)) {}

Redirector::~Redirector() { stop(); }

util::Status Redirector::start() {
  auto listener = network_.listen(port_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  acceptor_ = std::thread([this] { accept_loop(); });
  return util::OkStatus();
}

void Redirector::stop() {
  if (stopped_.exchange(true)) return;
  if (listener_) listener_->close();
  if (acceptor_.joinable()) acceptor_.join();
  reap_handlers(/*all=*/true);
}

net::Endpoint Redirector::endpoint() const {
  return listener_ ? listener_->local_endpoint() : net::Endpoint{};
}

void Redirector::accept_loop() {
  while (!stopped_.load()) {
    auto accepted = listener_->accept(std::chrono::milliseconds(200));
    if (!accepted.ok()) {
      if (accepted.status().code() == util::StatusCode::kTimeout) continue;
      break;  // listener closed
    }
    std::shared_ptr<net::Stream> stream(std::move(*accepted));
    std::thread worker([this, stream]() mutable {
      auto frame = net::read_frame(*stream);
      if (!frame.ok()) {
        bad_handoffs_.fetch_add(1);
        stream->close();
        return;
      }
      auto msg = HandoffMsg::decode(util::ByteSpan(frame->data(),
                                                   frame->size()));
      if (!msg.ok()) {
        bad_handoffs_.fetch_add(1);
        NAPLET_LOG(kWarn, "redirector")
            << "bad handoff frame: " << msg.status().to_string();
        stream->close();
        return;
      }
      if (fault::armed()) {
        const fault::Decision d = fault::hit("redirector.handoff.accept");
        if (d.action == fault::Action::kKill ||
            d.action == fault::Action::kDrop ||
            d.action == fault::Action::kError) {
          // The worker dies mid-handoff: the request was read off the wire
          // but no reply will ever come. The peer's resume retry loop must
          // absorb this.
          stream->close();
          return;
        }
      }
      handler_(std::move(stream), std::move(*msg));
    });
    {
      util::MutexLock lock(handlers_mu_);
      handlers_.push_back(std::move(worker));
    }
    reap_handlers(/*all=*/false);
  }
}

void Redirector::reap_handlers(bool all) {
  std::vector<std::thread> done;
  {
    util::MutexLock lock(handlers_mu_);
    if (all) {
      done = std::exchange(handlers_, {});
    } else if (handlers_.size() > 32) {
      // Bound the backlog; joining old handlers is cheap (they are short).
      done.swap(handlers_);
    }
  }
  for (auto& t : done) {
    if (t.joinable()) t.join();
  }
}

}  // namespace naplet::nsock
