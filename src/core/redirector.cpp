#include "core/redirector.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "net/frame.hpp"
#include "obs/trace.hpp"
#include "reactor/reactor.hpp"
#include "util/log.hpp"

namespace naplet::nsock {

namespace {
std::int64_t lease_now_us() { return util::RealClock::instance().now_us(); }

// Reactor sweep cadence: a fraction of the lease TTL so an expired entry
// is evicted promptly, floored so a tiny test TTL cannot spin the wheel.
util::Duration sweep_period(const LeaseConfig& leases) {
  const auto quarter = leases.ttl / 4;
  return std::clamp<util::Duration>(quarter, std::chrono::milliseconds(10),
                                    std::chrono::milliseconds(200));
}
}  // namespace

Redirector::Redirector(net::Network& network, std::uint16_t port,
                       HandoffHandler handler, LeaseConfig leases)
    : network_(network),
      port_(port),
      handler_(std::move(handler)),
      lease_config_(leases) {}

Redirector::~Redirector() { stop(); }

util::Status Redirector::start() {
  auto listener = network_.listen(port_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  acceptor_ = std::thread([this] { accept_loop(); });
  if (reactor_ != nullptr && lease_config_.enabled) arm_sweep_timer();
  return util::OkStatus();
}

void Redirector::stop() {
  if (stopped_.exchange(true)) return;
  if (reactor_ != nullptr) {
    std::uint64_t timer;
    {
      util::MutexLock lock(handlers_mu_);
      timer = std::exchange(sweep_timer_, 0);
    }
    if (timer != 0) reactor_->cancel_timer(timer);
  }
  if (listener_) listener_->close();
  if (acceptor_.joinable()) acceptor_.join();
  reap_handlers(/*all=*/true);
}

void Redirector::arm_sweep_timer() {
  // stopped_ is re-checked under handlers_mu_ so a concurrent stop()
  // cannot cancel the OLD id and then miss a timer armed after it: stop
  // sets the flag before taking the lock, and we schedule under it.
  // The on_sweep_timer lambda fires later on the reactor loop thread,
  // after this frame (and its lock) are long gone — not recursion.
  // analyze-ignore(lock-rank-inversion)
  util::MutexLock lock(handlers_mu_);
  if (stopped_.load()) return;
  sweep_timer_ = reactor_->schedule(sweep_period(lease_config_),
                                    [this] { on_sweep_timer(); });
}

void Redirector::on_sweep_timer() {
  if (stopped_.load()) return;
  evict_expired_leases();
  arm_sweep_timer();
}

net::Endpoint Redirector::endpoint() const {
  return listener_ ? listener_->local_endpoint() : net::Endpoint{};
}

void Redirector::accept_loop() {
  while (!stopped_.load()) {
    auto accepted = listener_->accept(std::chrono::milliseconds(200));
    // The reactor sweep timer owns eviction when attached; otherwise the
    // sweep piggybacks on the accept tick as before.
    if (reactor_ == nullptr) evict_expired_leases();
    if (!accepted.ok()) {
      if (accepted.status().code() == util::StatusCode::kTimeout) continue;
      break;  // listener closed
    }
    std::shared_ptr<net::Stream> stream(std::move(*accepted));
    std::thread worker([this, stream]() mutable {
      auto frame = net::read_frame(*stream);
      if (!frame.ok()) {
        bad_handoffs_.fetch_add(1);
        stream->close();
        return;
      }
      // A batch frame announces itself with its magic first byte; route it
      // to the coalesced exchange instead of the per-connection path.
      if (!frame->empty() && (*frame)[0] == kBatchHandoffMagic) {
        auto batch = BatchHandoffMsg::decode(
            util::ByteSpan(frame->data(), frame->size()));
        if (!batch.ok()) {
          bad_handoffs_.fetch_add(1);
          NAPLET_LOG(kWarn, "redirector")
              << "bad batch handoff frame: " << batch.status().to_string();
          stream->close();
          return;
        }
        serve_batch(stream, *batch);
        return;
      }
      auto msg = HandoffMsg::decode(util::ByteSpan(frame->data(),
                                                   frame->size()));
      if (!msg.ok()) {
        bad_handoffs_.fetch_add(1);
        NAPLET_LOG(kWarn, "redirector")
            << "bad handoff frame: " << msg.status().to_string();
        stream->close();
        return;
      }
      if (fault::armed()) {
        const fault::Decision d = fault::hit("redirector.handoff.accept");
        if (d.action == fault::Action::kKill ||
            d.action == fault::Action::kDrop ||
            d.action == fault::Action::kError) {
          // The worker dies mid-handoff: the request was read off the wire
          // but no reply will ever come. The peer's resume retry loop must
          // absorb this.
          stream->close();
          return;
        }
      }
      // Lease gate: a RESUME naming a connection whose lease expired (or
      // was never registered here) must not reach the handler — the owning
      // controller is gone. The mover's retry loop refreshes the peer's
      // location and tries the live node instead.
      if (lease_config_.enabled && msg->type == HandoffType::kResume &&
          !lease_live(msg->conn_id)) {
        handoffs_fenced_.fetch_add(1);
        HandoffMsg err;
        err.type = HandoffType::kError;
        err.conn_id = msg->conn_id;
        err.reason = "no live lease for conn " + std::to_string(msg->conn_id);
        (void)net::write_frame(*stream, err.encode());
        stream->close();
        return;
      }
      // Past every gate: this handoff WILL reach the controller. (The sink
      // drops untraced messages — ATTACH carries no trace id.)
      {
        obs::SpanEvent ev;
        ev.trace_id = msg->trace_id;
        ev.kind = obs::SpanKind::kHandoffAccept;
        ev.conn_id = msg->conn_id;
        ev.host = host_label_;
        ev.detail = std::string(to_string(msg->type));
        obs::TraceSink::instance().record(std::move(ev));
      }
      handler_(std::move(stream), std::move(*msg));
    });
    {
      util::MutexLock lock(handlers_mu_);
      handlers_.push_back(std::move(worker));
    }
    reap_handlers(/*all=*/false);
  }
}

void Redirector::serve_batch(const std::shared_ptr<net::Stream>& stream,
                             const BatchHandoffMsg& batch) {
  if (fault::armed()) {
    const fault::Decision d = fault::hit("redirector.handoff.batch");
    if (d.action == fault::Action::kKill || d.action == fault::Action::kDrop ||
        d.action == fault::Action::kError) {
      // The whole exchange dies unanswered; the mover's retry loop falls
      // back to re-sending the batch (or per-agent handoffs).
      stream->close();
      return;
    }
  }
  BatchHandoffReply reply;
  reply.entries.resize(batch.entries.size());
  for (std::size_t i = 0; i < batch.entries.size(); ++i) {
    const HandoffMsg& entry = batch.entries[i];
    // Same lease fence as the per-connection path, applied entry-wise: a
    // dead lease fails ITS disposition without poisoning the batch.
    if (lease_config_.enabled && entry.type == HandoffType::kResume &&
        !lease_live(entry.conn_id)) {
      handoffs_fenced_.fetch_add(1);
      reply.entries[i].ok = false;
      reply.entries[i].reason =
          "no live lease for conn " + std::to_string(entry.conn_id);
    } else {
      reply.entries[i].ok = true;
    }
  }
  if (batch_handler_) batch_handler_(batch, reply);
  {
    obs::SpanEvent ev;
    ev.trace_id = batch.trace_id;
    ev.kind = obs::SpanKind::kHandoffAccept;
    ev.conn_id = batch.entries.empty() ? 0 : batch.entries.front().conn_id;
    ev.host = host_label_;
    ev.detail = "batch:" + std::to_string(batch.entries.size());
    obs::TraceSink::instance().record(std::move(ev));
  }
  // Count the exchange before the reply leaves: a client that has read
  // the reply must observe the counter already bumped.
  batch_exchanges_.fetch_add(1);
  (void)net::write_frame(*stream, reply.encode());
  stream->close();
}

void Redirector::register_lease(std::uint64_t conn_id) {
  if (!lease_config_.enabled) return;
  util::MutexLock lock(leases_mu_);
  leases_[conn_id] = lease_now_us() + lease_config_.ttl.count();
}

void Redirector::refresh_lease(std::uint64_t conn_id) {
  if (!lease_config_.enabled) return;
  util::MutexLock lock(leases_mu_);
  auto it = leases_.find(conn_id);
  if (it != leases_.end()) {
    it->second = lease_now_us() + lease_config_.ttl.count();
  }
}

void Redirector::release_lease(std::uint64_t conn_id) {
  if (!lease_config_.enabled) return;
  util::MutexLock lock(leases_mu_);
  leases_.erase(conn_id);
}

bool Redirector::lease_live(std::uint64_t conn_id) const {
  if (!lease_config_.enabled) return true;
  util::MutexLock lock(leases_mu_);
  auto it = leases_.find(conn_id);
  return it != leases_.end() && it->second > lease_now_us();
}

std::size_t Redirector::evict_expired_leases() {
  if (!lease_config_.enabled) return 0;
  std::size_t evicted = 0;
  const std::int64_t now = lease_now_us();
  util::MutexLock lock(leases_mu_);
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second <= now) {
      NAPLET_LOG(kInfo, "redirector")
          << "lease expired for conn " << it->first;
      it = leases_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  leases_expired_.fetch_add(evicted);
  return evicted;
}

std::size_t Redirector::lease_count() const {
  util::MutexLock lock(leases_mu_);
  return leases_.size();
}

void Redirector::reap_handlers(bool all) {
  std::vector<std::thread> done;
  {
    util::MutexLock lock(handlers_mu_);
    if (all) {
      done = std::exchange(handlers_, {});
    } else if (handlers_.size() > 32) {
      // Bound the backlog; joining old handlers is cheap (they are short).
      done.swap(handlers_);
    }
  }
  for (auto& t : done) {
    if (t.joinable()) t.join();
  }
}

}  // namespace naplet::nsock
