// SessionShardMap: the controller's N-way sharded session table
// (DESIGN.md §15). The monolithic sessions_ map under the controller
// mutex serialized every lookup on the control hot path; at 10k+
// concurrent sessions the single lock is the bottleneck. Sharding by
// conn_id spreads lookups over independent per-shard locks (rank
// kControllerShard, nested inside kController) so concurrent control
// messages for different connections never contend.
//
// Invariants:
//  * the shard of a connection is a pure function of its conn_id, so the
//    two endpoints of a same-node pair (which share a conn_id) always
//    land in the SAME shard — the "last endpoint gone" check on erase is
//    shard-local;
//  * at most one shard lock is held at a time (equal-rank shard-under-
//    shard is a static lock-order inversion by design — see §7.2);
//  * cross-shard aggregates (snapshot_all, of_agent, size) are per-shard
//    consistent, not globally atomic: each shard is observed at one
//    instant, but a session may move between observation of two shards.
//    Every caller tolerated exactly this already (the old code copied
//    the map and released the lock before acting).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agent/agent_id.hpp"
#include "core/session.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::nsock {

class SessionShardMap {
 public:
  /// `shards` is rounded up to a power of two (minimum 1) so shard
  /// selection is a mask, not a division.
  explicit SessionShardMap(int shards = 16) {
    std::size_t n = 1;
    while (n < static_cast<std::size_t>(std::max(1, shards))) n <<= 1;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    mask_ = n - 1;
  }

  SessionShardMap(const SessionShardMap&) = delete;
  SessionShardMap& operator=(const SessionShardMap&) = delete;

  /// First session with this conn id (unique in practice except when both
  /// endpoints live on one node; then map order picks the smaller agent).
  [[nodiscard]] SessionPtr find(std::uint64_t conn_id) const {
    Shard& s = shard_of(conn_id);
    util::MutexLock lock(s.mu);
    auto it = s.sessions.lower_bound({conn_id, std::string()});
    if (it == s.sessions.end() || it->first.first != conn_id) return nullptr;
    return it->second;
  }

  /// The session with this conn id whose PEER is `sender`; falls back to
  /// the sole match when `sender` is empty.
  [[nodiscard]] SessionPtr find_from(std::uint64_t conn_id,
                                     const std::string& sender) const {
    Shard& s = shard_of(conn_id);
    util::MutexLock lock(s.mu);
    SessionPtr sole;
    int matches = 0;
    for (auto it = s.sessions.lower_bound({conn_id, std::string()});
         it != s.sessions.end() && it->first.first == conn_id; ++it) {
      if (!sender.empty() && it->second->peer_agent().name() == sender) {
        return it->second;
      }
      sole = it->second;
      ++matches;
    }
    return (sender.empty() && matches == 1) ? sole : nullptr;
  }

  [[nodiscard]] bool contains_conn(std::uint64_t conn_id) const {
    Shard& s = shard_of(conn_id);
    util::MutexLock lock(s.mu);
    auto it = s.sessions.lower_bound({conn_id, std::string()});
    return it != s.sessions.end() && it->first.first == conn_id;
  }

  void insert(const SessionPtr& session) {
    Shard& s = shard_of(session->conn_id());
    util::MutexLock lock(s.mu);
    s.sessions[{session->conn_id(), session->local_agent().name()}] = session;
  }

  /// Erase one endpoint. Returns true when no endpoint with this conn_id
  /// remains (the caller releases the redirector lease exactly once).
  bool erase(std::uint64_t conn_id, const std::string& local_agent) {
    Shard& s = shard_of(conn_id);
    util::MutexLock lock(s.mu);
    s.sessions.erase({conn_id, local_agent});
    auto it = s.sessions.lower_bound({conn_id, std::string()});
    return it == s.sessions.end() || it->first.first != conn_id;
  }

  [[nodiscard]] std::vector<SessionPtr> snapshot_all() const {
    std::vector<SessionPtr> out;
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      for (const auto& [key, session] : shard->sessions) {
        out.push_back(session);
      }
    }
    return out;
  }

  /// Every session whose LOCAL endpoint is `id`, sorted by conn_id — the
  /// same deterministic sweep order the monolithic map gave for free.
  [[nodiscard]] std::vector<SessionPtr> of_agent(
      const agent::AgentId& id) const {
    std::vector<std::pair<Key, SessionPtr>> hits;
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      for (const auto& [key, session] : shard->sessions) {
        if (session->local_agent() == id) hits.emplace_back(key, session);
      }
    }
    return sorted_values(std::move(hits));
  }

  /// Remove and return every session whose local endpoint is `id`
  /// (export path), sorted by conn_id.
  std::vector<SessionPtr> extract_agent(const agent::AgentId& id) {
    std::vector<std::pair<Key, SessionPtr>> hits;
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      for (auto it = shard->sessions.begin(); it != shard->sessions.end();) {
        if (it->second->local_agent() == id) {
          hits.emplace_back(it->first, it->second);
          it = shard->sessions.erase(it);
        } else {
          ++it;
        }
      }
    }
    return sorted_values(std::move(hits));
  }

  /// Remove and return everything (controller stop).
  std::vector<SessionPtr> clear_all() {
    std::vector<SessionPtr> out;
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      for (auto& [key, session] : shard->sessions) {
        out.push_back(std::move(session));
      }
      shard->sessions.clear();
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      n += shard->sessions.size();
    }
    return n;
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Per-shard occupancy (stats / bench: hash spread sanity).
  [[nodiscard]] std::vector<std::size_t> shard_sizes() const {
    std::vector<std::size_t> out;
    out.reserve(shards_.size());
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      out.push_back(shard->sessions.size());
    }
    return out;
  }

 private:
  // Keyed by (conn_id, local agent): the two endpoints of one connection
  // may both be hosted by this controller (same-node agent pairs).
  using Key = std::pair<std::uint64_t, std::string>;

  struct Shard {
    mutable util::Mutex mu{util::LockRank::kControllerShard,
                           "controller.shard"};
    std::map<Key, SessionPtr> sessions NAPLET_GUARDED_BY(mu);
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t conn_id) const {
    // conn_ids are crypto-random (or dense small integers in tests): fold
    // the high bits in so both distributions spread.
    const std::uint64_t h = conn_id ^ (conn_id >> 17) ^ (conn_id >> 41);
    return *shards_[static_cast<std::size_t>(h) & mask_];
  }

  static std::vector<SessionPtr> sorted_values(
      std::vector<std::pair<Key, SessionPtr>> hits) {
    std::sort(hits.begin(), hits.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<SessionPtr> out;
    out.reserve(hits.size());
    for (auto& [key, session] : hits) out.push_back(std::move(session));
    return out;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t mask_ = 0;
};

}  // namespace naplet::nsock
