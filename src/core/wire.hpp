// Wire formats for the NapletSocket protocol.
//
// Two channels carry protocol messages:
//  * the UDP control channel (ServerBus kind kControl): CONNECT handshake,
//    SUS/SUS_ACK/ACK_WAIT/SUS_RES suspension protocol, CLS/CLS_ACK close;
//  * the TCP handoff stream through the redirector: ATTACH (the client's
//    "ID" message completing connection setup) and RESUME (re-binding a
//    suspended connection to a fresh data socket after migration).
//
// Every post-setup request (SUS, SUS_RES, CLS, RESUME, ATTACH) carries an
// HMAC-SHA256 tag keyed by the connection's Diffie–Hellman session key,
// computed over (type, conn_id, seq fields) — the paper's defense against
// connection hijack by an eavesdropper (§3.3). With security disabled the
// tag is empty and verification is skipped (the Table-1 "w/o security"
// baseline).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "agent/agent_id.hpp"
#include "agent/location.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace naplet::nsock {

enum class CtrlType : std::uint8_t {
  kConnect = 1,
  kConnectAck = 2,
  kConnectReject = 3,
  kSus = 4,
  kSusAck = 5,
  kAckWait = 6,
  kSusRes = 7,
  kSusResAck = 8,
  kCls = 9,
  kClsAck = 10,
  kReject = 11,  // unknown connection / bad MAC
  kHeartbeat = 12,  // fault-tolerance extension: liveness probe (the
                    // reliability layer's ACK is the liveness signal)
};

std::string_view to_string(CtrlType type) noexcept;

/// One control-channel message. Fields not used by a type stay empty/zero.
struct CtrlMsg {
  CtrlType type = CtrlType::kReject;
  std::uint64_t conn_id = 0;
  std::uint64_t epoch = 0;         // sender controller's incarnation epoch
                                   // (crash-recovery fencing; 0 = unfenced)
  std::uint64_t trace_id = 0;      // migration trace id (obs; 0 = untraced),
                                   // MAC-covered like the epoch
  std::uint64_t verifier = 0;      // client-chosen correlation id (CONNECT*)
  std::uint64_t sent_seq = 0;      // sender's data-frame high-water mark
  std::uint64_t group_id = 0;      // SUS: whole-agent group-suspend barrier
                                   // this member belongs to (0 = solo
                                   // suspend); MAC-covered. The peer
                                   // freezes ALL its sessions facing the
                                   // migrating agent on the first group
                                   // SUS, making the cut consistent across
                                   // every member connection.
  std::string client_agent;        // CONNECT
  std::string server_agent;        // CONNECT
  agent::NodeInfo node;            // sender's current service endpoints
  util::Bytes dh_public;           // CONNECT / CONNECT_ACK
  util::Bytes token;               // CONNECT: client's AuthToken encoding
  std::string reason;              // REJECT / CONNECT_REJECT
  util::Bytes mac;                 // HMAC tag (see mac_payload)

  [[nodiscard]] util::Bytes encode() const;
  static util::StatusOr<CtrlMsg> decode(util::ByteSpan data);

  /// Bytes covered by the MAC (everything except the MAC itself).
  [[nodiscard]] util::Bytes mac_payload() const;
};

enum class HandoffType : std::uint8_t {
  kAttach = 1,      // complete connection setup (the client's ID message)
  kAttachOk = 2,
  kResume = 3,      // re-bind a suspended connection after migration
  kResumeOk = 4,
  kResumeWait = 5,  // receiver has a parked suspend; resume is delayed
  kError = 6,
};

std::string_view to_string(HandoffType type) noexcept;

/// One frame on a redirector handoff stream.
struct HandoffMsg {
  HandoffType type = HandoffType::kError;
  std::uint64_t conn_id = 0;
  std::uint64_t epoch = 0;      // sender controller's incarnation epoch
  std::uint64_t trace_id = 0;   // migration trace id (obs; MAC-covered)
  std::uint64_t verifier = 0;
  std::uint64_t sent_seq = 0;   // RESUME/RESUME_OK: sender's high-water mark
  std::uint64_t recv_seq = 0;   // RESUME/RESUME_OK: sender's highest frame
                                // RECEIVED — lets the peer replay frames the
                                // sender missed (fault-tolerance extension)
  std::string agent;            // requesting agent's id (MAC-covered) — the
                                // receiver matches it against the session's
                                // peer, which pins a handoff to the right
                                // endpoint even when both live on one node
  agent::NodeInfo node;         // RESUME: mover's new endpoints
  std::string reason;           // kError
  util::Bytes mac;

  [[nodiscard]] util::Bytes encode() const;
  static util::StatusOr<HandoffMsg> decode(util::ByteSpan data);

  [[nodiscard]] util::Bytes mac_payload() const;
};

// ---- batch handoff (swarm migration) --------------------------------------
//
// A fleet rebalance resumes many connections at the destination at once;
// one redirector round trip per connection is the dominant cost at scale.
// The batch exchange coalesces them: one frame carrying N handoff entries,
// answered by one frame of per-entry dispositions (lease/route verdicts).
// Each entry keeps its own MAC — session keys differ per connection.

/// First byte of a batch frame. Deliberately outside the HandoffType range
/// so HandoffMsg::decode rejects it and the redirector can route on it.
inline constexpr std::uint8_t kBatchHandoffMagic = 0xB7;

struct BatchHandoffMsg {
  std::uint64_t trace_id = 0;  ///< the batch's migration trace id
  std::vector<HandoffMsg> entries;

  [[nodiscard]] util::Bytes encode() const;
  static util::StatusOr<BatchHandoffMsg> decode(util::ByteSpan data);
};

/// The single reply frame: one disposition per entry, in order.
struct BatchHandoffReply {
  struct Disposition {
    bool ok = false;
    std::string reason;  ///< empty when ok
  };
  std::vector<Disposition> entries;

  [[nodiscard]] util::Bytes encode() const;
  static util::StatusOr<BatchHandoffReply> decode(util::ByteSpan data);
};

/// Compute the HMAC tag for a message's payload under `session_key`
/// (empty key -> empty tag, the no-security mode).
util::Bytes compute_mac(util::ByteSpan session_key, util::ByteSpan payload);

/// Verify; with an empty session key any tag is accepted (no-security mode).
bool verify_mac(util::ByteSpan session_key, util::ByteSpan payload,
                util::ByteSpan tag);

/// Data frames on the established data socket: u64 sequence number + body,
/// wrapped in a net::write_frame length prefix by the session layer.
struct DataFrame {
  std::uint64_t seq = 0;
  util::Bytes body;

  [[nodiscard]] util::Bytes encode() const;
  static util::StatusOr<DataFrame> decode(util::ByteSpan data);
};

void persist_node(util::Archive& ar, agent::NodeInfo& node);

}  // namespace naplet::nsock
