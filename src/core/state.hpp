// NapletSocket connection state machine (paper Table 1 and Figure 3).
//
// The FSM is a pure transition function so it can be tested exhaustively
// without any I/O. The controller consults it as a guard before every state
// change; an illegal (state, event) pair is a protocol error, never UB.
//
// 14 states, extended from the TCP state machine. States in the paper's
// bold (new beyond TCP): SUS_SENT, SUS_ACKED, SUSPEND_WAIT, SUSPENDED,
// RES_SENT, RES_ACKED, RESUME_WAIT.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace naplet::nsock {

enum class ConnState : std::uint8_t {
  kClosed = 0,       // not connected
  kListen,           // ready to accept connections
  kConnectSent,      // sent a CONNECT request
  kConnectAcked,     // confirmed a CONNECT request
  kEstablished,      // normal state for data transfer
  kSusSent,          // sent a SUSPEND request
  kSusAcked,         // confirmed a SUSPEND request
  kSuspendWait,      // wait in a suspend operation (concurrent migration)
  kSuspended,        // the connection is suspended
  kResSent,          // sent a RESUME request
  kResAcked,         // confirmed a RESUME request
  kResumeWait,       // wait in a resume operation (concurrent migration)
  kCloseSent,        // sent a CLOSE request
  kCloseAcked,       // confirmed a CLOSE request
};

inline constexpr int kConnStateCount = 14;

enum class ConnEvent : std::uint8_t {
  // Application calls.
  kAppListen = 0,
  kAppConnect,
  kAppSuspend,
  kAppResume,
  kAppClose,
  // Received control / handoff messages.
  kRecvConnect,
  kRecvConnectAck,   // ACK + socket ID from the server
  kRecvAttach,       // client's ID arriving over the handoff stream
  kRecvSus,
  kRecvSusAck,
  kRecvAckWait,      // peer delays our suspend (overlapped migration)
  kRecvSusRes,       // peer finished migrating; our parked suspend continues
  kRecvResume,       // peer reconnects through our redirector
  kRecvResumeOk,
  kRecvResumeWait,   // peer has a parked suspend; our resume is delayed
  kRecvCls,
  kRecvClsAck,
  kRecvReject,
  // Internal completions.
  kExecSuspended,    // drain finished, data socket closed
  kExecResumed,      // new data socket installed
  kExecClosed,
  kTimeout,
  // Crash-recovery extension: a suspend handshake died mid-flight (no
  // SUS response, peer unreachable) and the data stream is still intact —
  // roll back to ESTABLISHED instead of wedging in a local-only suspend.
  kSuspendAbort,
};

inline constexpr int kConnEventCount = 23;

[[nodiscard]] std::string_view to_string(ConnState state) noexcept;
[[nodiscard]] std::string_view to_string(ConnEvent event) noexcept;

/// The pure transition function. nullopt = illegal event in this state.
/// A returned state equal to the input state is a legal self-transition
/// (e.g. a concurrent SUS arriving while we are in kSusSent).
[[nodiscard]] std::optional<ConnState> transition(ConnState state,
                                                  ConnEvent event) noexcept;

/// True if the state permits application data transfer.
[[nodiscard]] constexpr bool can_transfer(ConnState state) noexcept {
  return state == ConnState::kEstablished;
}

/// True for states from which the connection can still become established
/// again (i.e. not closed / closing).
[[nodiscard]] constexpr bool is_live(ConnState state) noexcept {
  return state != ConnState::kClosed && state != ConnState::kCloseSent &&
         state != ConnState::kCloseAcked;
}

}  // namespace naplet::nsock
