// Byte-stream adapters over a NapletSocket session — the paper's actual
// programming interface (NapletSocket "resembles Java Socket in semantics",
// i.e. agents read and write byte streams through NapletInputStream /
// NapletOutputStream, §2.1/§3.1).
//
// The session layer transports discrete sequence-numbered messages; these
// adapters present them as a continuous byte stream:
//
//  * NapletOutputStream buffers writes and flushes them as one message at
//    a threshold (or explicitly) — small writes don't pay per-message cost;
//  * NapletInputStream reads across message boundaries, holding the unread
//    tail of the last message.
//
// Both adapters are persist()-able: an agent that migrates mid-stream
// stores the adapter in its own persist() and reconstructs it over the
// reattached socket — the buffered tail travels with the agent exactly
// like the session's own NapletInputStream buffer.
#pragma once

#include "core/naplet_socket.hpp"

namespace naplet::nsock {

class NapletOutputStream {
 public:
  /// `flush_threshold`: buffered bytes that trigger an automatic flush.
  explicit NapletOutputStream(std::size_t flush_threshold = 8192)
      : flush_threshold_(flush_threshold) {}

  /// Bind to (or rebind after migration to) a live socket handle.
  void bind(NapletSocket* socket) { socket_ = socket; }

  /// Buffer `data`; flushes automatically when the threshold is reached.
  util::Status write(util::ByteSpan data);
  util::Status write(std::string_view text) {
    return write(util::ByteSpan(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }

  /// Send everything buffered as one message (no-op when empty).
  util::Status flush();

  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

  /// Carry unflushed bytes across a migration hop.
  void persist(util::Archive& ar) {
    std::uint64_t threshold = flush_threshold_;
    ar.field(threshold);
    flush_threshold_ = static_cast<std::size_t>(threshold);
    ar.field(buffer_);
  }

 private:
  NapletSocket* socket_ = nullptr;  // not owned; rebind() after each hop
  std::size_t flush_threshold_;
  util::Bytes buffer_;
};

class NapletInputStream {
 public:
  NapletInputStream() = default;

  void bind(NapletSocket* socket) { socket_ = socket; }

  /// Read up to `max` bytes (at least 1 unless timeout/closed): first from
  /// the held tail, then from the next message.
  util::StatusOr<std::size_t> read(std::uint8_t* out, std::size_t max,
                                   util::Duration timeout);

  /// Read exactly `n` bytes or fail (kTimeout / kAborted).
  util::Status read_exact(std::uint8_t* out, std::size_t n,
                          util::Duration timeout);

  /// Bytes available without touching the socket.
  [[nodiscard]] std::size_t buffered() const {
    return tail_.size() - tail_offset_;
  }

  /// Carry the unread tail across a migration hop.
  void persist(util::Archive& ar);

 private:
  NapletSocket* socket_ = nullptr;
  util::Bytes tail_;
  std::size_t tail_offset_ = 0;
};

}  // namespace naplet::nsock
