// Structured controller statistics for operators, examples, and benches:
// a consistent snapshot of the connection table plus every protocol
// counter, with a printable rendering.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/state.hpp"
#include "obs/metrics.hpp"

namespace naplet::nsock {

struct ControllerStats {
  std::size_t sessions = 0;
  std::array<std::size_t, kConnStateCount> by_state{};
  std::size_t listening_agents = 0;
  std::size_t migrating_agents = 0;
  /// Per-shard session-table occupancy (DESIGN.md §15): hash-spread
  /// sanity for operators and the fleet-churn bench.
  std::vector<std::size_t> shard_sessions{};

  std::uint64_t mac_rejections = 0;
  std::uint64_t access_denials = 0;
  std::uint64_t links_repaired = 0;
  std::uint64_t peers_declared_dead = 0;

  // Crash-recovery extension counters.
  std::uint64_t epoch = 0;
  std::uint64_t sessions_recovered = 0;
  std::uint64_t resume_retries = 0;
  std::uint64_t epoch_fenced = 0;
  std::uint64_t leases = 0;
  std::uint64_t leases_expired = 0;
  std::uint64_t handoffs_fenced = 0;

  // Reliability-layer (control channel) counters.
  std::uint64_t ctrl_messages_sent = 0;
  std::uint64_t ctrl_retransmissions = 0;
  std::uint64_t ctrl_duplicates_dropped = 0;

  // Network-fabric fault counters (net::NetworkCounters). Zero on backends
  // without fault modeling (TcpNetwork).
  std::uint64_t net_datagrams_dropped = 0;
  std::uint64_t net_partition_events = 0;
  std::uint64_t net_partitions_active = 0;
  std::uint64_t net_streams_severed = 0;

  // Data-path counters, aggregated over the CURRENT session table (a
  // session removed on close takes its counters with it). See
  // nsock::DataPathStats for field meanings.
  std::uint64_t data_payload_bytes_copied = 0;
  std::uint64_t data_stream_write_ops = 0;
  std::uint64_t data_stream_read_ops = 0;
  std::uint64_t data_recv_wakeups = 0;
  std::uint64_t data_frames_coalesced = 0;

  // Full registry snapshot: every counter, gauge, and histogram the
  // controller registered. to_string() renders it generically, so a newly
  // registered metric shows up with no rendering change.
  obs::Snapshot metrics;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace naplet::nsock
