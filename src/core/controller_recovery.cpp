// SocketController — fault-tolerance extension (paper §7 future work).
//
// The paper's mechanism assumes every data-socket teardown is coordinated
// by the suspension protocol; link or host failures are explicitly left to
// future work. This extension adds:
//
//  * broken-link detection: a read EOF / write error on the data socket
//    while ESTABLISHED marks the session broken;
//  * automatic repair: the repair loop force-suspends a broken session
//    locally (via the FSM's timeout arcs) and re-runs the resume handshake;
//    both sides exchange their receive high-water marks and replay missed
//    frames from the bounded retransmission history, preserving
//    exactly-once delivery even though no drain could run;
//  * host-failure detection: periodic HEARTBEAT control messages; the
//    reliability layer's ACK is the liveness signal. After `miss_threshold`
//    consecutive unacknowledged probes the peer is declared dead and the
//    session is aborted locally, releasing any blocked callers.
//
// Everything here is gated behind ControllerConfig::failure_recovery.
#include "core/controller.hpp"
#include "util/log.hpp"

namespace naplet::nsock {

void SocketController::repair_loop() {
  const FailureRecoveryConfig& fr = config_.failure_recovery;
  while (!stopped_.load()) {
    // stop() sets the event: the loop wakes immediately instead of
    // finishing its probe-interval sleep.
    if (stop_event_.wait_for(fr.probe_interval)) break;
    if (stopped_.load()) break;

    const std::vector<SessionPtr> sessions = sessions_.snapshot_all();

    // Lease upkeep runs even when failure recovery proper is off (the
    // thread is also spawned for lease-only configurations).
    if (config_.redirector_leases.enabled && redirector_) {
      for (const SessionPtr& session : sessions) {
        redirector_->refresh_lease(session->conn_id());
      }
    }
    if (!fr.enabled) continue;

    for (const SessionPtr& session : sessions) {
      if (stopped_.load()) break;
      if (session->state() == ConnState::kEstablished &&
          session->is_broken() &&
          !agent_is_migrating(session->local_agent())) {
        repair_session(session);
      }
    }
    probe_peers();
  }
}

void SocketController::repair_session(const SessionPtr& session) {
  NAPLET_LOG(kWarn, "recovery")
      << "conn " << session->conn_id()
      << ": data socket lost outside the protocol; repairing";

  // Force a local suspension through the FSM's legal timeout arcs, then
  // re-run resume. Only proceed if the session is still established (the
  // peer's repair may already be re-attaching through our redirector).
  if (!session->advance(ConnEvent::kAppSuspend).ok()) return;
  session->close_stream();
  if (!session->advance(ConnEvent::kTimeout).ok()) return;  // -> SUSPENDED

  auto status = do_resume(session);
  if (status.ok()) {
    links_repaired_.add(1);
    NAPLET_LOG(kInfo, "recovery")
        << "conn " << session->conn_id() << ": link repaired";
  } else {
    NAPLET_LOG(kWarn, "recovery")
        << "conn " << session->conn_id()
        << ": repair failed: " << status.to_string();
  }
}

void SocketController::probe_peers() {
  const FailureRecoveryConfig& fr = config_.failure_recovery;
  const std::vector<SessionPtr> sessions = sessions_.snapshot_all();

  std::vector<SessionPtr> dead;
  for (const SessionPtr& session : sessions) {
    if (stopped_.load()) return;
    if (session->state() != ConnState::kEstablished) continue;
    if (agent_is_migrating(session->local_agent())) continue;

    // The reliability layer's ACK doubles as the liveness signal: a send
    // that exhausts its retransmissions is a missed heartbeat. Probes get
    // their own short deadline — one dead peer must not stall the whole
    // round for the full ctrl_response_timeout.
    CtrlMsg probe;
    probe.type = CtrlType::kHeartbeat;
    probe.conn_id = session->conn_id();
    const auto status = send_session_ctrl(session->peer_node().control, probe,
                                          *session, fr.probe_timeout);

    util::MutexLock lock(mu_);
    if (status.ok()) {
      heartbeat_misses_.erase(session->conn_id());
      continue;
    }
    const int misses = ++heartbeat_misses_[session->conn_id()];
    if (misses >= fr.miss_threshold) {
      heartbeat_misses_.erase(session->conn_id());
      NAPLET_LOG(kError, "recovery")
          << "conn " << session->conn_id() << ": peer "
          << session->peer_agent().name() << " unresponsive after " << misses
          << " probes; declaring dead";
      dead.push_back(session);
    }
  }

  for (const SessionPtr& session : dead) {
    peers_declared_dead_.add(1);
    abort_session(session);
  }
}

void SocketController::abort_session(const SessionPtr& session) {
  // If this connection is a member of an in-flight group prepare, veto
  // the group FIRST: the barrier fails, every parked prepare worker wakes
  // within its poll slice, and the coordinator rolls the whole group back
  // — an abort racing the barrier must never leave it waiting for a
  // member that will not arrive.
  (void)group_coordinator_.cancel_member(session->conn_id(),
                                         "session aborted");
  // Deregister first so that by the time waiters observe CLOSED the
  // controller's books are already consistent.
  remove_session(session);
  journal_remove(recovery::CommitPoint::kClosed, session->conn_id());
  // abort_local forces CLOSED from ANY state (the old advance(kAppClose)
  // path only worked from ESTABLISHED/SUSPENDED, leaving resume waiters in
  // RES_SENT/RESUME_WAIT to hang until io_timeout) and wakes every parked
  // sender, receiver, and resume waiter with kAborted.
  session->abort_local();
  session->park_event().set();
  session->resume_event().set();
  // Ship the session's recent history with the abort. This runs with NO
  // controller or session locks held (dump() iterates lock-free slots), so
  // a slow stderr cannot delay the waiters woken above.
  NAPLET_LOG(kError, "recovery")
      << "conn " << session->conn_id()
      << ": aborted; flight recorder follows\n"
      << session->recorder().dump();
}

util::Status SocketController::recover() {
  if (!store_) {
    return util::FailedPrecondition(
        "recover() requires durability.enabled and a started controller");
  }
  if (store_->degraded()) {
    NAPLET_LOG(kWarn, "recovery")
        << "recovering from degraded store: " << store_->degraded_note();
  }
  std::size_t restored = 0;
  std::size_t failed = 0;
  const std::map<std::uint64_t, util::Bytes> recovered = store_->recovered();
  for (const auto& [conn_id, blob] : recovered) {
    auto session =
        Session::import_state(util::ByteSpan(blob.data(), blob.size()));
    if (!session.ok()) {
      ++failed;
      NAPLET_LOG(kError, "recovery")
          << "conn " << conn_id
          << ": journal blob unusable: " << session.status().to_string();
      continue;
    }
    if (config_.failure_recovery.enabled) {
      (*session)->enable_history(config_.failure_recovery.history_bytes);
    }
    // The session lands SUSPENDED with its sealed input buffer; the peer's
    // resume retry finds it through the (re-registered) redirector lease.
    insert_session(*session);
    sessions_recovered_.add(1);
    ++restored;
  }
  NAPLET_LOG(kInfo, "recovery")
      << "recovered " << restored << " session(s) at epoch " << epoch_.load()
      << (failed != 0 ? " (" + std::to_string(failed) + " unusable)" : "");
  if (failed != 0 && restored == 0) {
    return util::ProtocolError("no journaled session could be restored");
  }
  return util::OkStatus();
}

}  // namespace naplet::nsock
