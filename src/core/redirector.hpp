// Redirector: the per-host shared TCP acceptor for socket handoff
// (paper §3.4, Figure 6).
//
// A client (or a resuming mover) connects to the redirector and sends one
// handoff frame naming the connection. The redirector routes the accepted
// socket to the controller, which hands it to the right NapletServerSocket
// or suspended session — saving the name/port query round trip and the
// per-agent port table the paper describes.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/wire.hpp"
#include "net/transport.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::reactor {
class Reactor;
}  // namespace naplet::reactor

namespace naplet::nsock {

/// Crash-recovery extension: redirector entries become leases. The owning
/// controller registers a lease per connection and refreshes it from its
/// repair loop; entries whose lease expires (host crashed and never came
/// back) are evicted by the accept-loop sweep, and a RESUME naming an
/// expired/unknown lease is answered with kError instead of being routed
/// into a dead controller.
struct LeaseConfig {
  bool enabled = false;
  util::Duration ttl{std::chrono::seconds(3)};
};

class Redirector {
 public:
  /// Handler owns the stream; it validates, replies on the stream, and
  /// either installs it as a data socket or closes it.
  using HandoffHandler =
      std::function<void(std::shared_ptr<net::Stream>, HandoffMsg)>;

  /// Batch exchange handler: called once per batch frame AFTER the lease
  /// gate pre-filled `reply` (fenced entries are already marked not-ok).
  /// It may refine any disposition; the redirector then writes the single
  /// reply frame and closes the stream. When unset, the pre-filled
  /// dispositions are answered as-is — a coalesced lease/route check.
  using BatchHandler =
      std::function<void(const BatchHandoffMsg&, BatchHandoffReply&)>;

  Redirector(net::Network& network, std::uint16_t port,
             HandoffHandler handler, LeaseConfig leases = {});
  ~Redirector();

  Redirector(const Redirector&) = delete;
  Redirector& operator=(const Redirector&) = delete;

  util::Status start();
  void stop();

  /// Host name used to attribute handoff-accept trace spans. Set once,
  /// before start().
  void set_host_label(std::string host) { host_label_ = std::move(host); }

  /// Install the batch exchange handler. Set once, before start().
  void set_batch_handler(BatchHandler handler) {
    batch_handler_ = std::move(handler);
  }

  /// Serve lease eviction from a repeating reactor timer instead of
  /// piggybacking on the 200ms accept tick (DESIGN.md §15). Call before
  /// start(); the owner must stop() this redirector BEFORE stopping the
  /// reactor (stop cancels the sweep timer).
  void attach_reactor(reactor::Reactor* r) { reactor_ = r; }

  [[nodiscard]] net::Endpoint endpoint() const;

  /// Handoffs whose first frame was malformed (observability).
  [[nodiscard]] std::uint64_t bad_handoffs() const {
    return bad_handoffs_.load();
  }

  /// Batch exchanges served (each one coalesces N per-agent round trips).
  [[nodiscard]] std::uint64_t batch_exchanges() const {
    return batch_exchanges_.load();
  }

  // ---- lease table ----

  /// Register (or re-arm) the lease for `conn_id`. No-op when disabled.
  void register_lease(std::uint64_t conn_id);
  /// Extend the lease for `conn_id`; no-op if absent or disabled.
  void refresh_lease(std::uint64_t conn_id);
  /// Drop the lease (connection closed or exported away).
  void release_lease(std::uint64_t conn_id);
  /// True when the lease exists and has not expired (always true when
  /// leasing is disabled — the gate is opt-in).
  [[nodiscard]] bool lease_live(std::uint64_t conn_id) const;
  /// Drop every expired entry; returns how many were evicted. Called from
  /// the accept-loop tick, public for tests.
  std::size_t evict_expired_leases();

  [[nodiscard]] std::size_t lease_count() const;
  [[nodiscard]] std::uint64_t leases_expired() const {
    return leases_expired_.load();
  }
  [[nodiscard]] std::uint64_t handoffs_fenced() const {
    return handoffs_fenced_.load();
  }

 private:
  void accept_loop();
  void reap_handlers(bool all);
  /// Schedule (or re-schedule) the reactor lease sweep; no-op once
  /// stopped. Runs on the reactor loop.
  void arm_sweep_timer();
  void on_sweep_timer();

  void serve_batch(const std::shared_ptr<net::Stream>& stream,
                   const BatchHandoffMsg& batch);

  net::Network& network_;
  std::uint16_t port_ NAPLET_NOT_GUARDED("set at construction, immutable");
  HandoffHandler handler_ NAPLET_NOT_GUARDED(
      "set at construction, immutable while the acceptor runs");
  BatchHandler batch_handler_ NAPLET_NOT_GUARDED(
      "written before start(), read-only by workers");
  LeaseConfig lease_config_ NAPLET_NOT_GUARDED(
      "set at construction, immutable");
  std::string host_label_ NAPLET_NOT_GUARDED(
      "written before start(), read-only by workers");

  net::ListenerPtr listener_ NAPLET_NOT_GUARDED(
      "created in start() before the acceptor thread; Listener is "
      "internally synchronized");
  reactor::Reactor* reactor_ NAPLET_NOT_GUARDED(
      "set before start(), immutable while running") = nullptr;
  std::thread acceptor_;
  util::Mutex handlers_mu_{util::LockRank::kRedirector, "redirector"};
  std::vector<std::thread> handlers_ NAPLET_GUARDED_BY(handlers_mu_);
  /// Live sweep-timer id (reactor::TimerId); 0 when unarmed. Guarded by
  /// handlers_mu_ so stop() and the re-arming callback serialize.
  std::uint64_t sweep_timer_ NAPLET_GUARDED_BY(handlers_mu_) = 0;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> bad_handoffs_{0};
  std::atomic<std::uint64_t> batch_exchanges_{0};

  // Leaf lock: held only for map operations, never across handler_ or
  // any stream I/O.
  mutable util::Mutex leases_mu_{util::LockRank::kRedirectorLeases,
                                 "redirector.leases"};
  std::map<std::uint64_t, std::int64_t> leases_  // conn_id -> expiry (us)
      NAPLET_GUARDED_BY(leases_mu_);
  std::atomic<std::uint64_t> leases_expired_{0};
  std::atomic<std::uint64_t> handoffs_fenced_{0};
};

}  // namespace naplet::nsock
