// Redirector: the per-host shared TCP acceptor for socket handoff
// (paper §3.4, Figure 6).
//
// A client (or a resuming mover) connects to the redirector and sends one
// handoff frame naming the connection. The redirector routes the accepted
// socket to the controller, which hands it to the right NapletServerSocket
// or suspended session — saving the name/port query round trip and the
// per-agent port table the paper describes.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/wire.hpp"
#include "net/transport.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::nsock {

class Redirector {
 public:
  /// Handler owns the stream; it validates, replies on the stream, and
  /// either installs it as a data socket or closes it.
  using HandoffHandler =
      std::function<void(std::shared_ptr<net::Stream>, HandoffMsg)>;

  Redirector(net::Network& network, std::uint16_t port,
             HandoffHandler handler);
  ~Redirector();

  Redirector(const Redirector&) = delete;
  Redirector& operator=(const Redirector&) = delete;

  util::Status start();
  void stop();

  [[nodiscard]] net::Endpoint endpoint() const;

  /// Handoffs whose first frame was malformed (observability).
  [[nodiscard]] std::uint64_t bad_handoffs() const {
    return bad_handoffs_.load();
  }

 private:
  void accept_loop();
  void reap_handlers(bool all);

  net::Network& network_;
  std::uint16_t port_;
  HandoffHandler handler_;

  net::ListenerPtr listener_;
  std::thread acceptor_;
  util::Mutex handlers_mu_{util::LockRank::kRedirector, "redirector"};
  std::vector<std::thread> handlers_ NAPLET_GUARDED_BY(handlers_mu_);
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> bad_handoffs_{0};
};

}  // namespace naplet::nsock
