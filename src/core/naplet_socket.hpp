// Public NapletSocket API (paper §2.1): agent-oriented socket classes that
// resemble Socket/ServerSocket in semantics, plus the suspend()/resume()
// methods that make connection migration explicit when an agent wants
// manual control. Most agents never call suspend/resume themselves — the
// docking system drives them transparently around each hop.
//
//   // server agent
//   NapletServerSocket listener(ctx);           // LISTEN
//   auto conn = listener.accept(5s);            // ESTABLISHED
//   auto msg  = conn->recv(1s);
//
//   // client agent
//   auto conn = NapletSocket::open(ctx, AgentId("server-agent"));
//   conn->send("hello");
//
// Connections address *agents*, not (host, port) pairs: agents are not
// allowed to pick ports (access control assigns all socket resources), and
// the location service resolves the peer agent's current host at connect
// time. After setup, all traffic flows over the connection regardless of
// where either agent migrates.
#pragma once

#include <memory>
#include <string_view>

#include "agent/agent.hpp"
#include "core/controller.hpp"

namespace naplet::nsock {

/// An established agent-to-agent connection. Thread-compatible: one logical
/// owner (the agent) calls send/recv; the controller manages migration
/// concurrently under the hood.
class NapletSocket {
 public:
  /// Active open from the calling agent to `peer` (anywhere in the realm).
  static util::StatusOr<std::unique_ptr<NapletSocket>> open(
      agent::AgentContext& ctx, const agent::AgentId& peer,
      ConnectBreakdown* breakdown = nullptr);

  /// Re-acquire a connection handle after a migration hop. The connection
  /// itself migrated with the agent (the docking system suspended, shipped
  /// and resumed it); the agent persists the conn_id in its state and calls
  /// this from run() on the new host. Fails if the connection does not
  /// exist here or belongs to a different agent.
  static util::StatusOr<std::unique_ptr<NapletSocket>> reattach(
      agent::AgentContext& ctx, std::uint64_t conn_id);

  /// Send one message. Blocks through suspensions (up to the controller's
  /// io_timeout) — from the application's view the connection never breaks.
  util::Status send(util::ByteSpan data);
  util::Status send(std::string_view text);

  /// Receive one message (buffer first, then socket; exactly-once).
  util::StatusOr<RecvResult> recv(util::Duration timeout);

  /// Explicit connection-migration control (paper §2.1).
  util::Status suspend();
  util::Status resume();

  /// Graceful close (CLS/CLS_ACK).
  util::Status close();

  [[nodiscard]] ConnState state() const { return session_->state(); }
  [[nodiscard]] const agent::AgentId& peer() const {
    return session_->peer_agent();
  }
  [[nodiscard]] std::uint64_t conn_id() const { return session_->conn_id(); }

  /// The underlying session (tests, benches, advanced use).
  [[nodiscard]] const SessionPtr& session() const { return session_; }

  NapletSocket(SocketController& controller, SessionPtr session)
      : controller_(&controller), session_(std::move(session)) {}

 private:
  SocketController* controller_;
  SessionPtr session_;
};

/// Passive endpoint: accepts NapletSocket connections addressed to the
/// owning agent. Closing (or destroying) it stops accepting; established
/// connections are unaffected.
class NapletServerSocket {
 public:
  /// Begin listening as the calling agent. Fails if already listening or
  /// the agent lacks the use-naplet-socket permission.
  static util::StatusOr<std::unique_ptr<NapletServerSocket>> open(
      agent::AgentContext& ctx);

  ~NapletServerSocket();
  NapletServerSocket(const NapletServerSocket&) = delete;
  NapletServerSocket& operator=(const NapletServerSocket&) = delete;

  /// Accept the next inbound connection.
  util::StatusOr<std::unique_ptr<NapletSocket>> accept(util::Duration timeout);

  void close();

  NapletServerSocket(SocketController& controller, agent::AgentId self)
      : controller_(&controller), self_(std::move(self)) {}

 private:
  SocketController* controller_;
  agent::AgentId self_;
  bool closed_ = false;
};

/// Fetch the controller middleware from an agent context; nullptr when the
/// hosting server has no NapletSocket support.
SocketController* controller_of(agent::AgentContext& ctx);

}  // namespace naplet::nsock
