#include "core/stats.hpp"

#include <algorithm>
#include <sstream>

namespace naplet::nsock {

std::string ControllerStats::to_string() const {
  std::ostringstream out;
  out << "sessions=" << sessions;
  bool any = false;
  for (int i = 0; i < kConnStateCount; ++i) {
    if (by_state[static_cast<std::size_t>(i)] == 0) continue;
    out << (any ? "," : " [") << ::naplet::nsock::to_string(
                                      static_cast<ConnState>(i))
        << ":" << by_state[static_cast<std::size_t>(i)];
    any = true;
  }
  if (any) out << "]";
  if (!shard_sessions.empty()) {
    std::size_t max_shard = 0;
    for (std::size_t n : shard_sessions) max_shard = std::max(max_shard, n);
    out << " shards{n=" << shard_sessions.size() << ",max=" << max_shard
        << "}";
  }
  out << " listeners=" << listening_agents
      << " migrating=" << migrating_agents
      << " mac_rej=" << mac_rejections << " denials=" << access_denials
      << " repairs=" << links_repaired << " dead_peers=" << peers_declared_dead
      << " epoch=" << epoch << " recovered=" << sessions_recovered
      << " resume_retries=" << resume_retries << " fenced=" << epoch_fenced
      << " leases{live=" << leases << ",expired=" << leases_expired
      << ",fenced=" << handoffs_fenced << "}"
      << " ctrl{sent=" << ctrl_messages_sent
      << ",retx=" << ctrl_retransmissions
      << ",dups=" << ctrl_duplicates_dropped << "}"
      << " net{dropped=" << net_datagrams_dropped
      << ",partitions=" << net_partition_events
      << "(active " << net_partitions_active << ")"
      << ",severed=" << net_streams_severed << "}"
      << " data{copied=" << data_payload_bytes_copied
      << ",writes=" << data_stream_write_ops
      << ",reads=" << data_stream_read_ops
      << ",wakeups=" << data_recv_wakeups
      << ",coalesced=" << data_frames_coalesced << "}";

  // Generic snapshot rendering: every registered metric appears by name,
  // so a metric added anywhere in the controller cannot be silently
  // missing here (metrics_render_test pins this invariant).
  if (!metrics.counters.empty() || !metrics.gauges.empty() ||
      !metrics.histograms.empty()) {
    out << "\nmetrics:";
    for (const auto& c : metrics.counters) {
      out << " " << c.name << "=" << c.value;
    }
    for (const auto& g : metrics.gauges) {
      out << " " << g.name << "=" << g.value;
    }
    for (const auto& h : metrics.histograms) {
      out << " " << h.name << "{n=" << h.count;
      if (h.count != 0) {
        out << ",p50=" << h.percentile(50) << ",p95=" << h.percentile(95)
            << ",p99=" << h.percentile(99);
      }
      out << "," << h.unit << "}";
    }
  }
  return out.str();
}

}  // namespace naplet::nsock
