#include "core/controller.hpp"

#include <algorithm>

#include "crypto/random.hpp"
#include "fault/fault.hpp"
#include "net/frame.hpp"
#include "reactor/reactor.hpp"
#include "util/log.hpp"

namespace naplet::nsock {

namespace {

// Stable lowercase tokens for fault-injection site names (the wire-level
// to_string() renderings are display strings, not identifiers).
std::string_view ctrl_site_token(CtrlType type) {
  switch (type) {
    case CtrlType::kConnect: return "connect";
    case CtrlType::kConnectAck: return "connect_ack";
    case CtrlType::kConnectReject: return "connect_reject";
    case CtrlType::kSus: return "suspend";
    case CtrlType::kSusAck: return "suspend_ack";
    case CtrlType::kAckWait: return "ack_wait";
    case CtrlType::kSusRes: return "sus_res";
    case CtrlType::kSusResAck: return "sus_res_ack";
    case CtrlType::kCls: return "close";
    case CtrlType::kClsAck: return "close_ack";
    case CtrlType::kReject: return "reject";
    case CtrlType::kHeartbeat: return "heartbeat";
  }
  return "unknown";
}

std::string ctrl_site(CtrlType type, std::string_view stage) {
  std::string site = "ctrl.";
  site += ctrl_site_token(type);
  site += '.';
  site += stage;
  return site;
}

}  // namespace

// ===========================================================================
// Lifecycle

SocketController::SocketController(agent::AgentServer& server,
                                   ControllerConfig config)
    : server_(server),
      config_(config),
      sessions_(config_.reactor.shards),
      mac_rejections_(registry_.counter("mac_rejections")),
      access_denials_(registry_.counter("access_denials")),
      links_repaired_(registry_.counter("links_repaired")),
      peers_declared_dead_(registry_.counter("peers_declared_dead")),
      sessions_recovered_(registry_.counter("sessions_recovered")),
      resume_retries_(registry_.counter("resume_retries")),
      epoch_fenced_(registry_.counter("epoch_fenced")),
      group_rollbacks_(registry_.counter("group_rollbacks")),
      hist_suspend_us_(registry_.histogram("nsock_suspend_latency_us")),
      hist_drain_us_(registry_.histogram("nsock_drain_time_us")),
      hist_handoff_us_(registry_.histogram("nsock_handoff_time_us")),
      hist_resume_us_(registry_.histogram("nsock_resume_latency_us")),
      hist_replay_bytes_(
          registry_.histogram("nsock_replayed_buffer_bytes", "bytes")),
      hist_connect_total_us_(registry_.histogram("nsock_connect_total_us")),
      hist_connect_management_us_(
          registry_.histogram("nsock_connect_management_us")),
      hist_connect_security_us_(
          registry_.histogram("nsock_connect_security_us")),
      hist_connect_key_exchange_us_(
          registry_.histogram("nsock_connect_key_exchange_us")),
      hist_connect_handshake_us_(
          registry_.histogram("nsock_connect_handshake_us")),
      hist_connect_open_us_(
          registry_.histogram("nsock_connect_open_socket_us")),
      hist_group_prepare_us_(
          registry_.histogram("nsock_group_prepare_us")),
      hist_group_commit_us_(registry_.histogram("nsock_group_commit_us")),
      hist_group_rollback_us_(
          registry_.histogram("nsock_group_rollback_us")),
      hist_group_suspend_us_(
          registry_.histogram("nsock_group_suspend_us")) {}

SocketController::~SocketController() { stop(); }

util::Status SocketController::start() {
  if (started_.exchange(true)) return util::OkStatus();

  // Durability first: the incarnation epoch must be known before the first
  // outbound message is stamped.
  if (config_.durability.enabled) {
    recovery::DurableStoreOptions opts;
    opts.dir = config_.durability.dir;
    opts.compact_every = config_.durability.compact_every;
    auto store = std::make_unique<recovery::DurableStore>(opts);
    if (auto st = store->open(); !st.ok()) return st;
    store_ = std::move(store);
    epoch_.store(store_->epoch());
    if (store_->degraded()) {
      NAPLET_LOG(kWarn, "recovery")
          << "durable store degraded: " << store_->degraded_note();
    }
  }

  // Event loop before any component that registers with it. Instrument
  // registration happens here (not the ctor) so the registry only carries
  // reactor metrics when the reactor actually runs.
  if (config_.reactor.enabled) {
    reactor_ = std::make_unique<reactor::Reactor>();
    reactor_->bind_instruments(reactor::ReactorInstruments{
        .loop_lag_us = &registry_.histogram("reactor_loop_lag_us"),
        .dispatch_batch =
            &registry_.histogram("reactor_dispatch_batch", "count"),
    });
    NAPLET_RETURN_IF_ERROR(reactor_->start());
  }

  redirector_ = std::make_unique<Redirector>(
      server_.network(), config_.redirector_port,
      [this](std::shared_ptr<net::Stream> stream, HandoffMsg msg) {
        on_handoff(std::move(stream), std::move(msg));
      },
      config_.redirector_leases);
  redirector_->set_host_label(server_.node_info().server_name);
  if (reactor_) redirector_->attach_reactor(reactor_.get());
  NAPLET_RETURN_IF_ERROR(redirector_->start());

  server_.bus().subscribe(
      agent::BusKind::kControl,
      [this](const net::Endpoint& from, util::ByteSpan payload) {
        on_ctrl(from, payload);
      });
  server_.bus().channel().bind_instruments(net::RudpInstruments{
      .rtt_us = &registry_.histogram("rudp_rtt_us"),
      .retransmits_per_send =
          &registry_.histogram("rudp_retransmits_per_send", "count"),
      .window_inflight = &registry_.gauge("rudp_window_inflight"),
      .sack_blocks = &registry_.counter("rudp_sack_blocks"),
      .fast_retransmits = &registry_.counter("rudp_fast_retransmits"),
      .fec_repairs = &registry_.counter("rudp_fec_repairs"),
  });
  // Readiness-driven control channel: the rudp retransmission scan and
  // receive path move onto the reactor, retiring two blocking threads.
  if (reactor_) server_.bus().channel().attach_reactor(reactor_.get());
  server_.set_redirector_endpoint(redirector_->endpoint());
  server_.set_migrator(this);
  server_.register_service(kServiceName, this);
  // The repair loop doubles as the lease refresher, so it also runs when
  // only leasing is on.
  if (config_.failure_recovery.enabled || config_.redirector_leases.enabled) {
    repair_thread_ = std::thread([this] { repair_loop(); });
  }
  return util::OkStatus();
}

void SocketController::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  stop_event_.set();  // wake every retry/backoff pause in flight
  const std::vector<SessionPtr> sessions = sessions_.clear_all();
  {
    util::MutexLock lock(mu_);
    for (auto& [id, queue] : accept_queues_) queue->close();
    accept_queues_.clear();
  }
  for (const SessionPtr& session : sessions) {
    session->close_stream();
    session->park_event().set();
    session->resume_event().set();
    session->responses().close();
  }
  if (redirector_) redirector_->stop();
  if (repair_thread_.joinable()) repair_thread_.join();
  if (reactor_) {
    // Every reactor user detaches before the loop stops: the redirector's
    // sweep timer is already cancelled (stop above), the repair loop has
    // exited, and the channel quiesces its handlers here.
    server_.bus().channel().detach_reactor();
    reactor_->stop();
  }
  std::vector<PrefreezeWatchdog> watchdogs;
  {
    util::MutexLock lock(mu_);
    watchdogs = std::exchange(prefreeze_watchdogs_, {});
  }
  for (PrefreezeWatchdog& w : watchdogs) {
    if (w.thread.joinable()) w.thread.join();
  }
}

agent::NodeInfo SocketController::self_node() const {
  return server_.node_info();
}

// ===========================================================================
// Small helpers

util::Status SocketController::send_ctrl(const net::Endpoint& dest,
                                         CtrlMsg& msg,
                                         util::ByteSpan session_key,
                                         util::Duration max_wait) {
  bool duplicate = false;
  if (fault::armed()) {
    const fault::Decision d = fault::hit(ctrl_site(msg.type, "pre_send"));
    switch (d.action) {
      case fault::Action::kDrop:
      case fault::Action::kKill:
        // The message vanishes before the reliability layer ever sees it —
        // a software failure no retransmission can paper over.
        return util::OkStatus();
      case fault::Action::kError:
        return util::Unavailable("fault: ctrl " +
                                 std::string(ctrl_site_token(msg.type)) +
                                 " send errored");
      case fault::Action::kDuplicate:
        duplicate = true;
        break;
      default:
        break;
    }
  }
  msg.node = self_node();
  msg.epoch = epoch_.load();
  const util::Bytes payload = msg.mac_payload();
  msg.mac = compute_mac(session_key,
                        util::ByteSpan(payload.data(), payload.size()));
  const util::Bytes encoded = msg.encode();
  if (duplicate) {
    // Two independent rudp sends: the receiver sees two distinct reliable
    // messages with identical protocol content (stressing its duplicate
    // handling, which the per-seq rudp dedup cannot cover).
    (void)server_.bus().send(dest, agent::BusKind::kControl,
                             util::ByteSpan(encoded.data(), encoded.size()),
                             max_wait);
  }
  return server_.bus().send(dest, agent::BusKind::kControl,
                            util::ByteSpan(encoded.data(), encoded.size()),
                            max_wait);
}

util::Status SocketController::send_session_ctrl(const net::Endpoint& dest,
                                                 CtrlMsg& msg,
                                                 const Session& session,
                                                 util::Duration max_wait) {
  // Sender identity rides in client_agent for post-setup messages so the
  // receiver can address the right endpoint's session (it is MAC-covered).
  msg.client_agent = session.local_agent().name();
  // Default trace attribution: this session's own migration. Handlers that
  // reply to the PEER's migration set msg.trace_id explicitly beforehand.
  if (msg.trace_id == 0) msg.trace_id = session.trace_id();
  session.recorder().record(obs::FlightRecorder::Kind::kCtrlSend,
                            static_cast<std::uint8_t>(msg.type), 0, 0);
  return send_ctrl(dest, msg,
                   util::ByteSpan(session.session_key().data(),
                                  session.session_key().size()),
                   max_wait);
}

util::Status SocketController::reply_handoff(net::Stream& stream,
                                             HandoffMsg msg,
                                             util::ByteSpan session_key) {
  msg.node = self_node();
  msg.epoch = epoch_.load();
  const util::Bytes payload = msg.mac_payload();
  msg.mac = compute_mac(session_key,
                        util::ByteSpan(payload.data(), payload.size()));
  const util::Bytes encoded = msg.encode();
  return net::write_frame(stream,
                          util::ByteSpan(encoded.data(), encoded.size()));
}

SessionPtr SocketController::find_session(std::uint64_t conn_id) const {
  return sessions_.find(conn_id);
}

SessionPtr SocketController::find_session_from(
    std::uint64_t conn_id, const std::string& sender) const {
  // Tolerating a missing sender only on an unambiguous match is the shard
  // map's contract too.
  return sessions_.find_from(conn_id, sender);
}

void SocketController::insert_session(const SessionPtr& session) {
  sessions_.insert(session);
  if (redirector_) redirector_->register_lease(session->conn_id());
}

void SocketController::remove_session(const SessionPtr& session) {
  // Same-node pairs share a conn_id (and therefore a shard): only drop
  // the lease once the LAST endpoint is gone.
  const bool gone = sessions_.erase(session->conn_id(),
                                    session->local_agent().name());
  if (gone && redirector_) redirector_->release_lease(session->conn_id());
}

void SocketController::journal_commit(recovery::CommitPoint point,
                                      const SessionPtr& session) {
  // The span marks the commit POINT being reached; it is emitted even when
  // durability is off so traces have the same shape either way. Drain
  // commits belong to the peer's migration trace; the rest to our own.
  const std::uint64_t trace =
      point == recovery::CommitPoint::kDrainComplete
          ? (session->peer_trace_id() != 0 ? session->peer_trace_id()
                                           : session->trace_id())
          : (session->trace_id() != 0 ? session->trace_id()
                                      : session->peer_trace_id());
  span(trace, obs::SpanKind::kJournalCommit, *session,
       std::string(to_string(point)));
  if (!store_) return;
  // Serialize outside any lock: export_state takes the session's own locks
  // and the store serializes its file writes itself.
  const util::Bytes blob = session->export_state();
  if (auto st = store_->record(point, session->conn_id(),
                               util::ByteSpan(blob.data(), blob.size()));
      !st.ok()) {
    NAPLET_LOG(kError, "recovery")
        << "journal append failed at " << to_string(point) << " for conn "
        << session->conn_id() << ": " << st.to_string();
  }
}

void SocketController::journal_remove(recovery::CommitPoint point,
                                      std::uint64_t conn_id) {
  if (!store_) return;
  if (auto st = store_->record(point, conn_id, {}); !st.ok()) {
    NAPLET_LOG(kError, "recovery")
        << "journal removal failed at " << to_string(point) << " for conn "
        << conn_id << ": " << st.to_string();
  }
}

void SocketController::span(std::uint64_t trace_id, obs::SpanKind kind,
                            const Session& session, std::string detail,
                            std::uint64_t value) const {
  if (trace_id == 0) return;
  obs::SpanEvent ev;
  ev.trace_id = trace_id;
  ev.kind = kind;
  ev.conn_id = session.conn_id();
  ev.host = server_.node_info().server_name;
  ev.detail = std::move(detail);
  ev.value = value;
  obs::TraceSink::instance().record(std::move(ev));
}

std::string SocketController::recorder_dumps() const {
  std::string out;
  for (const auto& session : sessions_.snapshot_all()) {
    out += session->recorder().dump();
  }
  return out;
}

bool SocketController::admit_epoch(Session& session, const CtrlMsg& msg) {
  if (session.admit_peer_epoch(msg.epoch)) return true;
  epoch_fenced_.add(1);
  NAPLET_LOG(kWarn, "recovery")
      << "conn " << msg.conn_id << ": dropping stale "
      << to_string(msg.type) << " from epoch " << msg.epoch << " (seen "
      << session.peer_epoch() << ")";
  return false;
}

std::vector<SessionPtr> SocketController::sessions_of(
    const agent::AgentId& id) const {
  return sessions_.of_agent(id);  // sorted by conn_id (deterministic sweep)
}

bool SocketController::agent_is_migrating(const agent::AgentId& id) const {
  util::MutexLock lock(mu_);
  return migrating_agents_.contains(id);
}

std::size_t SocketController::session_count() const {
  return sessions_.size();
}

ControllerStats SocketController::stats() const {
  ControllerStats out;
  const std::vector<SessionPtr> sessions = sessions_.snapshot_all();
  out.sessions = sessions.size();
  for (const SessionPtr& session : sessions) {
    ++out.by_state[static_cast<std::size_t>(session->state())];
    const DataPathStats dp = session->data_stats();
    out.data_payload_bytes_copied += dp.payload_bytes_copied;
    out.data_stream_write_ops += dp.stream_write_ops;
    out.data_stream_read_ops += dp.stream_read_ops;
    out.data_recv_wakeups += dp.recv_wakeups;
    out.data_frames_coalesced += dp.frames_coalesced;
  }
  out.shard_sessions = sessions_.shard_sizes();
  {
    util::MutexLock lock(mu_);
    out.listening_agents = accept_queues_.size();
    out.migrating_agents = migrating_agents_.size();
  }
  out.mac_rejections = mac_rejections_.value();
  out.access_denials = access_denials_.value();
  out.links_repaired = links_repaired_.value();
  out.peers_declared_dead = peers_declared_dead_.value();
  out.epoch = epoch_.load();
  out.sessions_recovered = sessions_recovered_.value();
  out.resume_retries = resume_retries_.value();
  out.epoch_fenced = epoch_fenced_.value();
  if (redirector_) {
    out.leases = redirector_->lease_count();
    out.leases_expired = redirector_->leases_expired();
    out.handoffs_fenced = redirector_->handoffs_fenced();
  }
  // Mirror externally-owned instantaneous values into gauges so the
  // snapshot (and the Prometheus/JSON exports built from it) is complete.
  registry_.gauge("sessions").set(static_cast<std::int64_t>(out.sessions));
  registry_.gauge("listening_agents")
      .set(static_cast<std::int64_t>(out.listening_agents));
  registry_.gauge("migrating_agents")
      .set(static_cast<std::int64_t>(out.migrating_agents));
  registry_.gauge("redirector_leases")
      .set(static_cast<std::int64_t>(out.leases));
  out.metrics = registry_.snapshot();
  auto& channel = server_.bus().channel();
  out.ctrl_messages_sent = channel.messages_sent();
  out.ctrl_retransmissions = channel.retransmissions();
  out.ctrl_duplicates_dropped = channel.duplicates_dropped();
  const net::NetworkCounters net = server_.network().counters();
  out.net_datagrams_dropped = net.datagrams_dropped;
  out.net_partition_events = net.partition_events;
  out.net_partitions_active = net.partitions_active;
  out.net_streams_severed = net.streams_severed;
  return out;
}

// ===========================================================================
// Bus dispatch

void SocketController::on_ctrl(const net::Endpoint& from,
                               util::ByteSpan payload) {
  auto msg = CtrlMsg::decode(payload);
  if (!msg.ok()) {
    NAPLET_LOG(kWarn, "controller")
        << "bad ctrl message from " << from.to_string() << ": "
        << msg.status().to_string();
    return;
  }
  if (fault::armed()) {
    const fault::Decision d = fault::hit(ctrl_site(msg->type, "on_recv"));
    if (d.action == fault::Action::kDrop || d.action == fault::Action::kKill ||
        d.action == fault::Action::kError) {
      // Receiver-side processing failure: the reliability layer already
      // ACKed the datagram, so the sender will NOT retransmit — this is
      // loss above rudp, the kind only protocol-level timeouts recover.
      return;
    }
  }
  if (msg->conn_id != 0) {
    if (SessionPtr session =
            find_session_from(msg->conn_id, msg->client_agent)) {
      session->recorder().record(obs::FlightRecorder::Kind::kCtrlRecv,
                                 static_cast<std::uint8_t>(msg->type), 0, 0);
    }
  }
  switch (msg->type) {
    case CtrlType::kConnect:
      handle_connect(from, std::move(*msg));
      return;
    case CtrlType::kConnectAck:
    case CtrlType::kConnectReject:
      handle_connect_reply(std::move(*msg));
      return;
    case CtrlType::kSus:
      handle_sus(std::move(*msg));
      return;
    case CtrlType::kSusAck:
    case CtrlType::kAckWait:
      handle_sus_response(std::move(*msg));
      return;
    case CtrlType::kSusRes:
      handle_sus_res(std::move(*msg));
      return;
    case CtrlType::kCls:
      handle_cls(std::move(*msg));
      return;
    case CtrlType::kClsAck:
    case CtrlType::kSusResAck:
      handle_simple_ack(std::move(*msg));
      return;
    case CtrlType::kReject: {
      NAPLET_LOG(kDebug, "controller")
          << "peer rejected conn " << msg->conn_id << ": " << msg->reason;
      // Route to the waiting operation: "unknown connection" usually means
      // the peer agent is mid-transit (its session exported but not yet
      // imported), and the initiator should refresh its location and retry
      // rather than waiting out the full response timeout.
      if (SessionPtr session =
              find_session_from(msg->conn_id, msg->client_agent)) {
        session->responses().push(Session::CtrlResponse{
            static_cast<std::uint8_t>(CtrlType::kReject), 0});
      }
      return;
    }
    case CtrlType::kHeartbeat:
      // Liveness probe: the reliability layer already ACKed it; nothing
      // else to do (fault-tolerance extension).
      return;
  }
}

void SocketController::on_handoff(std::shared_ptr<net::Stream> stream,
                                  HandoffMsg msg) {
  if (SessionPtr session = find_session_from(msg.conn_id, msg.agent)) {
    session->recorder().record(obs::FlightRecorder::Kind::kCtrlRecv,
                               static_cast<std::uint8_t>(msg.type), 1, 0);
  }
  switch (msg.type) {
    case HandoffType::kAttach:
      handle_attach(std::move(stream), std::move(msg));
      return;
    case HandoffType::kResume:
      handle_resume_request(std::move(stream), std::move(msg));
      return;
    default:
      stream->close();
      return;
  }
}

// ===========================================================================
// Connection setup (paper §2.2 "Open a connection", §3.4 socket handoff)

util::StatusOr<SessionPtr> SocketController::connect(
    const agent::AgentId& self, const agent::AgentId& peer,
    ConnectBreakdown* breakdown) {
  util::RealClock& clock = util::RealClock::instance();
  ConnectBreakdown local_breakdown;
  ConnectBreakdown& bd = breakdown != nullptr ? *breakdown : local_breakdown;
  bd = ConnectBreakdown{};
  util::Stopwatch sw(clock);

  // [management] correlation state for the CONNECT reply.
  const std::uint64_t verifier = crypto::random_u64();
  auto pending = std::make_shared<PendingConnect>();
  {
    util::MutexLock lock(mu_);
    pending_connects_[verifier] = pending;
  }
  auto cleanup_pending = [&] {
    util::MutexLock lock(mu_);
    pending_connects_.erase(verifier);
  };
  bd.management_ms += sw.elapsed_ms();

  // [security check] local authorization + credential issuance. The server
  // side's authenticate/authorize runs inside the handshake round trip.
  sw.reset();
  util::Bytes token_bytes;
  if (config_.security) {
    auto allowed = server_.access().check(
        agent::Subject{agent::Subject::Kind::kAgent, self.name()},
        agent::Permission::kUseNapletSocket);
    if (!allowed.ok()) {
      access_denials_.add(1);
      cleanup_pending();
      return allowed;
    }
    agent::AuthToken token = server_.access().issue_token(self);
    util::Archive ar;
    ar.field(token);
    token_bytes = std::move(ar).take_bytes();
  }
  bd.security_check_ms += sw.elapsed_ms();

  // [key exchange] our half of Diffie–Hellman.
  sw.reset();
  std::optional<crypto::DhKeyPair> dh;
  if (config_.security) {
    auto keypair = crypto::DhKeyPair::generate(config_.dh_group);
    if (!keypair.ok()) {
      cleanup_pending();
      return keypair.status();
    }
    dh = std::move(*keypair);
  }
  bd.key_exchange_ms += sw.elapsed_ms();

  // [handshake] locate the peer and run the CONNECT round trip.
  sw.reset();
  auto peer_node = server_.locations().lookup(peer, config_.connect_timeout);
  if (!peer_node.ok()) {
    cleanup_pending();
    return peer_node.status();
  }
  CtrlMsg req;
  req.type = CtrlType::kConnect;
  req.verifier = verifier;
  req.client_agent = self.name();
  req.server_agent = peer.name();
  if (dh) req.dh_public = dh->public_value();
  req.token = token_bytes;
  if (auto st = send_ctrl(peer_node->control, req, {}); !st.ok()) {
    cleanup_pending();
    return st;
  }
  if (!pending->done.wait_for(config_.connect_timeout)) {
    cleanup_pending();
    return util::Timeout("no CONNECT reply from " + peer.name());
  }
  cleanup_pending();
  if (!pending->status.ok()) return pending->status;
  bd.handshake_ms += sw.elapsed_ms();

  // [key exchange] derive the session key from the server's public value.
  sw.reset();
  util::Bytes session_key;
  if (dh) {
    auto key = dh->session_key(util::ByteSpan(
        pending->server_dh_public.data(), pending->server_dh_public.size()));
    if (!key.ok()) return key.status();
    session_key.assign(key->begin(), key->end());
  }
  bd.key_exchange_ms += sw.elapsed_ms();

  // [management] build the client-side session.
  sw.reset();
  auto session = std::make_shared<Session>(pending->conn_id, verifier,
                                           /*is_client=*/true, self, peer);
  session->set_peer_node(pending->server_node);
  session->set_session_key(session_key);
  if (config_.failure_recovery.enabled) {
    session->enable_history(config_.failure_recovery.history_bytes);
  }
  NAPLET_RETURN_IF_ERROR(session->advance(ConnEvent::kAppConnect));
  bd.management_ms += sw.elapsed_ms();

  // [open socket] raw TCP to the server's redirector.
  sw.reset();
  auto stream = server_.network().connect(pending->server_node.redirector,
                                          config_.connect_timeout);
  if (!stream.ok()) return stream.status();
  std::shared_ptr<net::Stream> data_socket(std::move(*stream));
  bd.open_socket_ms += sw.elapsed_ms();

  // [handshake] complete setup by sending our ID over the handoff stream.
  sw.reset();
  HandoffMsg attach;
  attach.type = HandoffType::kAttach;
  attach.conn_id = pending->conn_id;
  attach.verifier = verifier;
  attach.agent = self.name();
  if (auto st = reply_handoff(*data_socket, attach,
                              util::ByteSpan(session_key.data(),
                                             session_key.size()));
      !st.ok()) {
    return st;
  }
  auto reply_frame = net::read_frame(*data_socket);
  if (!reply_frame.ok()) return reply_frame.status();
  auto reply = HandoffMsg::decode(
      util::ByteSpan(reply_frame->data(), reply_frame->size()));
  if (!reply.ok()) return reply.status();
  if (reply->type != HandoffType::kAttachOk) {
    return util::PermissionDenied("attach rejected: " + reply->reason);
  }
  bd.handshake_ms += sw.elapsed_ms();

  // [management] finalize and register.
  sw.reset();
  session->attach_stream(std::move(data_socket));
  NAPLET_RETURN_IF_ERROR(session->advance(ConnEvent::kRecvConnectAck));
  insert_session(session);
  journal_commit(recovery::CommitPoint::kConnectEstablished, session);
  bd.management_ms += sw.elapsed_ms();

  hist_connect_management_us_.record(obs::ms_to_us(bd.management_ms));
  hist_connect_security_us_.record(obs::ms_to_us(bd.security_check_ms));
  hist_connect_key_exchange_us_.record(obs::ms_to_us(bd.key_exchange_ms));
  hist_connect_handshake_us_.record(obs::ms_to_us(bd.handshake_ms));
  hist_connect_open_us_.record(obs::ms_to_us(bd.open_socket_ms));
  hist_connect_total_us_.record(obs::ms_to_us(bd.total_ms()));
  return session;
}

void SocketController::handle_connect(const net::Endpoint& from,
                                      CtrlMsg msg) {
  CtrlMsg reply;
  reply.verifier = msg.verifier;

  const net::Endpoint reply_to =
      msg.node.control.port != 0 ? msg.node.control : from;

  auto reject = [&](util::Status why) {
    access_denials_.add(1);
    reply.type = CtrlType::kConnectReject;
    reply.reason = why.to_string();
    (void)send_ctrl(reply_to, reply, {});
  };

  // Target agent must be listening here.
  const agent::AgentId target(msg.server_agent);
  std::shared_ptr<util::BlockingQueue<SessionPtr>> queue;
  {
    util::MutexLock lock(mu_);
    auto it = accept_queues_.find(target);
    if (it != accept_queues_.end()) queue = it->second;
  }
  if (queue == nullptr) {
    reject(util::NotFound("agent '" + msg.server_agent +
                          "' is not listening on this server"));
    return;
  }

  // Security: authenticate the client's token, authorize the request, and
  // run our half of the key exchange (paper Fig. 8's dominant cost).
  util::Bytes session_key;
  util::Bytes server_dh_public;
  if (config_.security) {
    agent::AuthToken token;
    if (auto st = util::Archive::decode(
            util::ByteSpan(msg.token.data(), msg.token.size()), token);
        !st.ok() || msg.token.empty()) {
      reject(util::Unauthenticated("missing or malformed credential"));
      return;
    }
    auto subject = server_.access().authenticate(token);
    if (!subject.ok()) {
      reject(subject.status());
      return;
    }
    if (subject->name != msg.client_agent) {
      reject(util::Unauthenticated("credential/agent mismatch"));
      return;
    }
    if (auto st = server_.access().check(
            *subject, agent::Permission::kUseNapletSocket);
        !st.ok()) {
      reject(st);
      return;
    }

    auto dh = crypto::DhKeyPair::generate(config_.dh_group);
    if (!dh.ok()) {
      reject(dh.status());
      return;
    }
    auto key = dh->session_key(
        util::ByteSpan(msg.dh_public.data(), msg.dh_public.size()));
    if (!key.ok()) {
      reject(key.status());
      return;
    }
    session_key.assign(key->begin(), key->end());
    server_dh_public = dh->public_value();
  }

  // Allocate the connection and park it until the client's ATTACH arrives.
  // (The uniqueness probe and the insert below are not atomic, but ids are
  // 64-bit crypto-random — a collision with a CONCURRENT allocation is
  // beyond negligible; the probe only guards against reusing a live id.)
  std::uint64_t conn_id;
  do {
    conn_id = crypto::random_u64();
  } while (conn_id == 0 || sessions_.contains_conn(conn_id));
  auto session = std::make_shared<Session>(conn_id, msg.verifier,
                                           /*is_client=*/false, target,
                                           agent::AgentId(msg.client_agent));
  session->set_peer_node(msg.node);
  session->set_session_key(std::move(session_key));
  if (config_.failure_recovery.enabled) {
    session->enable_history(config_.failure_recovery.history_bytes);
  }
  (void)session->advance(ConnEvent::kAppListen);
  (void)session->advance(ConnEvent::kRecvConnect);  // -> CONNECT_ACKED
  insert_session(session);

  reply.type = CtrlType::kConnectAck;
  reply.conn_id = conn_id;
  reply.dh_public = server_dh_public;
  if (auto st = send_ctrl(reply_to, reply, {}); !st.ok()) {
    NAPLET_LOG(kWarn, "controller")
        << "CONNECT_ACK send failed: " << st.to_string();
    remove_session(session);
  }
}

void SocketController::handle_connect_reply(CtrlMsg msg) {
  std::shared_ptr<PendingConnect> pending;
  {
    util::MutexLock lock(mu_);
    auto it = pending_connects_.find(msg.verifier);
    if (it == pending_connects_.end()) return;  // late/duplicate reply
    pending = it->second;
  }
  if (msg.type == CtrlType::kConnectReject) {
    pending->status = util::PermissionDenied(msg.reason);
  } else {
    pending->conn_id = msg.conn_id;
    pending->server_dh_public = std::move(msg.dh_public);
    pending->server_node = msg.node;
  }
  pending->done.set();
}

void SocketController::handle_attach(std::shared_ptr<net::Stream> stream,
                                     HandoffMsg msg) {
  auto fail = [&](const std::string& reason) {
    HandoffMsg err;
    err.type = HandoffType::kError;
    err.conn_id = msg.conn_id;
    err.reason = reason;
    (void)reply_handoff(*stream, err, {});
    stream->close();
  };

  SessionPtr session = find_session_from(msg.conn_id, msg.agent);
  if (session == nullptr) {
    fail("unknown connection");
    return;
  }
  if (msg.verifier != session->verifier()) {
    fail("verifier mismatch");
    return;
  }
  const util::Bytes payload = msg.mac_payload();
  if (!verify_mac(util::ByteSpan(session->session_key().data(),
                                 session->session_key().size()),
                  util::ByteSpan(payload.data(), payload.size()),
                  util::ByteSpan(msg.mac.data(), msg.mac.size()))) {
    mac_rejections_.add(1);
    fail("MAC verification failed");
    return;
  }
  if (session->state() != ConnState::kConnectAcked) {
    fail("connection not awaiting attach");
    return;
  }

  session->attach_stream(stream);
  HandoffMsg ok;
  ok.type = HandoffType::kAttachOk;
  ok.conn_id = msg.conn_id;
  if (auto st = reply_handoff(*stream, ok,
                              util::ByteSpan(session->session_key().data(),
                                             session->session_key().size()));
      !st.ok()) {
    session->close_stream();
    return;
  }
  (void)session->advance(ConnEvent::kRecvAttach);  // -> ESTABLISHED

  std::shared_ptr<util::BlockingQueue<SessionPtr>> queue;
  {
    util::MutexLock lock(mu_);
    auto it = accept_queues_.find(session->local_agent());
    if (it != accept_queues_.end()) queue = it->second;
  }
  if (queue != nullptr) {
    journal_commit(recovery::CommitPoint::kConnectEstablished, session);
    queue->push(session);
  } else {
    // The listener vanished between CONNECT and ATTACH; tear down.
    NAPLET_LOG(kWarn, "controller")
        << "listener gone for conn " << msg.conn_id << "; closing";
    session->close_stream();
  }
}

// ===========================================================================
// Listen / accept

util::Status SocketController::listen(const agent::AgentId& self) {
  if (config_.security) {
    auto allowed = server_.access().check(
        agent::Subject{agent::Subject::Kind::kAgent, self.name()},
        agent::Permission::kUseNapletSocket);
    if (!allowed.ok()) {
      access_denials_.add(1);
      return allowed;
    }
  }
  util::MutexLock lock(mu_);
  if (accept_queues_.contains(self)) {
    return util::AlreadyExists("agent already listening: " + self.name());
  }
  accept_queues_[self] = std::make_shared<util::BlockingQueue<SessionPtr>>();
  return util::OkStatus();
}

util::Status SocketController::unlisten(const agent::AgentId& self) {
  std::shared_ptr<util::BlockingQueue<SessionPtr>> queue;
  {
    util::MutexLock lock(mu_);
    auto it = accept_queues_.find(self);
    if (it == accept_queues_.end()) {
      return util::NotFound("agent not listening: " + self.name());
    }
    queue = it->second;
    accept_queues_.erase(it);
  }
  queue->close();
  return util::OkStatus();
}

bool SocketController::is_listening(const agent::AgentId& self) const {
  util::MutexLock lock(mu_);
  return accept_queues_.contains(self);
}

util::StatusOr<SessionPtr> SocketController::accept(const agent::AgentId& self,
                                                    util::Duration timeout) {
  std::shared_ptr<util::BlockingQueue<SessionPtr>> queue;
  {
    util::MutexLock lock(mu_);
    auto it = accept_queues_.find(self);
    if (it == accept_queues_.end()) {
      return util::FailedPrecondition("agent not listening: " + self.name());
    }
    queue = it->second;
  }
  auto session = queue->pop_for(timeout);
  if (!session) {
    return queue->closed()
               ? util::Cancelled("listener closed")
               : util::Timeout("accept timed out for " + self.name());
  }
  return *session;
}

}  // namespace naplet::nsock
