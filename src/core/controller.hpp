// SocketController: the NapletSocket management component (paper §2.1).
//
// One controller per agent server, shared by all of that server's
// NapletSockets. It owns:
//  * connection setup — the CONNECT/ACK+ID/ID handshake, agent-oriented
//    access control, and Diffie–Hellman session-key establishment;
//  * the suspension protocol — SUS/SUS_ACK/ACK_WAIT/SUS_RES with the
//    overlapped and non-overlapped concurrent-migration rules and
//    hash-priority arbitration (§3.1) plus the multi-connection sweep
//    rules (§3.2);
//  * resume — data-socket re-binding through the peer's redirector,
//    including the RESUME_WAIT delays and location-service fallback when
//    the last-known peer address is stale;
//  * close — CLS/CLS_ACK;
//  * the ConnectionMigrator hooks the docking system calls around hops.
#pragma once

#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "agent/agent_server.hpp"
#include "core/redirector.hpp"
#include "core/session.hpp"
#include "core/session_shards.hpp"
#include "core/stats.hpp"
#include "core/wire.hpp"
#include "crypto/dh.hpp"
#include "group/coordinator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "recovery/journal.hpp"

namespace naplet::reactor {
class Reactor;
}  // namespace naplet::reactor

namespace naplet::nsock {

/// Fault-tolerance extension (the paper's §7 future work): detection and
/// recovery from link/host failures. Off by default — the paper's protocol
/// assumes coordinated suspensions only.
struct FailureRecoveryConfig {
  bool enabled = false;
  /// Repair-loop cadence: scan for broken data sockets, probe idle peers.
  util::Duration probe_interval{std::chrono::milliseconds(200)};
  /// Consecutive unacknowledged heartbeats before a peer is declared dead
  /// and its sessions aborted.
  int miss_threshold = 3;
  /// Per-session bound on the sent-frame retransmission history that makes
  /// uncoordinated stream loss recoverable without data loss.
  std::size_t history_bytes = 1 << 20;
  /// Liveness probes get their own short reliability deadline instead of
  /// inheriting ctrl_response_timeout: one dead peer must not stall the
  /// whole probe round for seconds.
  util::Duration probe_timeout{std::chrono::milliseconds(300)};
};

/// Crash-recovery extension: fsync'd write-ahead journal of session state
/// at protocol commit points, replayed by SocketController::recover() after
/// a controller restart. Off by default.
struct DurabilityConfig {
  bool enabled = false;
  /// Directory holding journal.nplj + snapshot.npls for this controller.
  std::string dir;
  /// Journal appends between snapshot compactions.
  std::uint64_t compact_every = 64;
};

/// Event-driven reactor core (DESIGN.md §15). The session table is ALWAYS
/// sharded (`shards` per-shard locks, rank kControllerShard); `enabled`
/// additionally moves the controller onto one epoll/timer-wheel event
/// loop: the control channel's retransmission scan and receive path run
/// from reactor timers and fd readiness instead of two blocking threads,
/// and the redirector's lease eviction serves from the same wheel. The
/// blocking public API (connect/suspend/resume/close) is unchanged.
struct ReactorConfig {
  bool enabled = false;
  /// Session-table shard count; rounded up to a power of two.
  int shards = 16;
};

struct ControllerConfig {
  /// Security on: authenticate + authorize at connect, DH session keys,
  /// HMAC-verified control messages. Off: the Table-1 "w/o security" mode.
  bool security = true;
  crypto::DhGroup dh_group = crypto::DhGroup::kModp768;
  std::uint16_t redirector_port = 0;
  FailureRecoveryConfig failure_recovery{};
  /// Crash-recovery extension: durable journal + restart recovery.
  DurabilityConfig durability{};
  /// Crash-recovery extension: redirector entries become leases with this
  /// policy (refreshed by the repair loop, evicted on expiry).
  LeaseConfig redirector_leases{};
  /// Resume attempts before giving up. 1 = the paper's single-shot resume;
  /// higher values retry with capped exponential backoff, absorbing a peer
  /// controller that is restarting from its journal.
  int resume_max_attempts = 1;
  util::Duration resume_retry_backoff{std::chrono::milliseconds(100)};
  double resume_retry_multiplier = 2.0;
  util::Duration resume_retry_cap{std::chrono::seconds(2)};
  /// When a suspend handshake dies mid-flight (no SUS response) but the
  /// data stream is still healthy, roll back to ESTABLISHED instead of the
  /// fail-safe local suspension.
  bool suspend_rollback = false;
  /// Atomic whole-agent group suspend: prepare_migration sweeps ALL of an
  /// agent's established connections into SUSPENDED behind one barrier
  /// (consistent cross-connection cut) with a two-phase journal commit and
  /// full-group rollback on any member failure. Off = the paper's serial
  /// §3.2 sweep.
  bool group_suspend = false;
  /// Phase-1 bound: how long the group coordinator waits for every member
  /// to reach the barrier before failing the whole group.
  util::Duration group_prepare_timeout{std::chrono::seconds(8)};

  util::Duration ctrl_response_timeout{std::chrono::seconds(5)};
  util::Duration connect_timeout{std::chrono::seconds(5)};
  util::Duration resume_timeout{std::chrono::seconds(10)};
  util::Duration drain_timeout{std::chrono::seconds(5)};
  /// How long a parked suspend waits for the peer's migration to finish.
  util::Duration park_timeout{std::chrono::seconds(30)};
  /// Default application send/recv blocking bound.
  util::Duration io_timeout{std::chrono::seconds(30)};
  /// Event-driven reactor core + session-table sharding (DESIGN.md §15).
  ReactorConfig reactor{};
};

/// Client-observed phase breakdown of one connection setup (Figure 8).
struct ConnectBreakdown {
  double management_ms = 0;
  double security_check_ms = 0;  // authentication + authorization
  double key_exchange_ms = 0;    // DH generate + shared-secret derivation
  double handshake_ms = 0;       // control-channel and handoff round trips
  double open_socket_ms = 0;     // raw TCP connect to the redirector

  [[nodiscard]] double total_ms() const {
    return management_ms + security_check_ms + key_exchange_ms +
           handshake_ms + open_socket_ms;
  }
};

class SocketController final : public agent::ConnectionMigrator {
 public:
  SocketController(agent::AgentServer& server, ControllerConfig config = {});
  ~SocketController() override;

  SocketController(const SocketController&) = delete;
  SocketController& operator=(const SocketController&) = delete;

  /// Start the redirector, subscribe to the control bus, and register this
  /// controller as the server's migrator + the "napletsocket" service.
  util::Status start();
  void stop();

  [[nodiscard]] net::Endpoint redirector_endpoint() const {
    return redirector_ ? redirector_->endpoint() : net::Endpoint{};
  }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }
  [[nodiscard]] agent::AgentServer& server() { return server_; }

  // ---- agent-facing operations (wrapped by NapletSocket classes) ----

  /// Active open from `self` to `peer` (paper Fig. 6 flow). On success the
  /// session is ESTABLISHED. `breakdown` (optional) receives phase timings.
  util::StatusOr<SessionPtr> connect(const agent::AgentId& self,
                                     const agent::AgentId& peer,
                                     ConnectBreakdown* breakdown = nullptr);

  /// Passive open: make `self` accept NapletSocket connections.
  util::Status listen(const agent::AgentId& self);
  util::Status unlisten(const agent::AgentId& self);
  [[nodiscard]] bool is_listening(const agent::AgentId& self) const;

  /// Accept the next established inbound connection for `self`.
  util::StatusOr<SessionPtr> accept(const agent::AgentId& self,
                                    util::Duration timeout);

  /// Suspend a connection (explicit application control, paper §2.1).
  util::Status suspend(const SessionPtr& session);
  /// Resume a suspended connection (reconnect through the peer redirector).
  util::Status resume(const SessionPtr& session);
  /// Close from ESTABLISHED or SUSPENDED.
  util::Status close(const SessionPtr& session);

  /// Atomic whole-agent group suspend (the group_suspend config path,
  /// also reachable directly): sweep every established connection of `id`
  /// into SUSPENDED as one barrier operation with a two-phase journal
  /// commit. On any member failure the ENTIRE group rolls back to
  /// ESTABLISHED with blocked senders/receivers woken. Public so tests
  /// and tools can drive the group path without a full migration.
  util::Status group_suspend(const agent::AgentId& id);

  /// In-flight group-suspend registry (tests: barrier/cancel visibility).
  [[nodiscard]] group::GroupSuspendCoordinator& group_coordinator() {
    return group_coordinator_;
  }
  [[nodiscard]] std::uint64_t group_rollbacks() const {
    return group_rollbacks_.value();
  }

  /// Crash-recovery extension: replay the durable journal after a restart.
  /// Every recorded session is reconstructed in SUSPENDED with its sealed
  /// input buffer and re-registered (sessions table + redirector lease) so
  /// peer RESUME retries find it. Requires durability.enabled; call after
  /// start().
  util::Status recover();

  /// Abort a session locally without a close handshake: all blocked
  /// send()/recv()/resume() waiters wake with kAborted. Public so tests and
  /// tools can exercise the peer-declared-dead path directly.
  void abort(const SessionPtr& session) { abort_session(session); }

  // ---- ConnectionMigrator ----

  util::Status prepare_migration(const agent::AgentId& id) override;
  util::Bytes export_sessions(const agent::AgentId& id) override;
  util::Status import_sessions(const agent::AgentId& id,
                               util::ByteSpan data) override;
  util::Status complete_migration(const agent::AgentId& id) override;
  void close_all(const agent::AgentId& id) override;

  // ---- observability ----

  /// Look up a live session by connection id (tests, benches, tooling).
  [[nodiscard]] SessionPtr session_by_id(std::uint64_t conn_id) const {
    return find_session(conn_id);
  }

  [[nodiscard]] std::size_t session_count() const;
  [[nodiscard]] std::uint64_t mac_rejections() const {
    return mac_rejections_.value();
  }
  [[nodiscard]] std::uint64_t access_denials() const {
    return access_denials_.value();
  }
  /// Consistent snapshot of the connection table and every counter.
  [[nodiscard]] ControllerStats stats() const;

  /// This controller's metric registry: counters/gauges/histograms for
  /// every protocol phase. Per-controller (not process-global) so multi-
  /// node testbeds in one process stay independent.
  [[nodiscard]] obs::Registry& metrics() noexcept { return registry_; }

  /// Concatenated flight-recorder dumps of every live session (failure
  /// diagnostics: the chaos harness attaches this to failing cases).
  [[nodiscard]] std::string recorder_dumps() const;

  /// Fault-tolerance extension counters.
  [[nodiscard]] std::uint64_t links_repaired() const {
    return links_repaired_.value();
  }
  [[nodiscard]] std::uint64_t peers_declared_dead() const {
    return peers_declared_dead_.value();
  }

  /// Crash-recovery extension counters.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_.load(); }
  [[nodiscard]] std::uint64_t sessions_recovered() const {
    return sessions_recovered_.value();
  }
  [[nodiscard]] std::uint64_t resume_retries() const {
    return resume_retries_.value();
  }
  [[nodiscard]] std::uint64_t epoch_fenced() const {
    return epoch_fenced_.value();
  }
  [[nodiscard]] const recovery::DurableStore* durable_store() const {
    return store_.get();
  }
  [[nodiscard]] Redirector* redirector() { return redirector_.get(); }

  /// Service name under which the controller registers with the server.
  static constexpr const char* kServiceName = "napletsocket";

 private:
  struct PendingConnect {
    util::Event done;
    util::Status status = util::OkStatus();
    std::uint64_t conn_id = 0;
    util::Bytes server_dh_public;
    agent::NodeInfo server_node;
  };

  // Bus / handoff entry points.
  void on_ctrl(const net::Endpoint& from, util::ByteSpan payload);
  void on_handoff(std::shared_ptr<net::Stream> stream, HandoffMsg msg);

  // Control-message handlers.
  void handle_connect(const net::Endpoint& from, CtrlMsg msg);
  void handle_connect_reply(CtrlMsg msg);
  void handle_sus(CtrlMsg msg);
  void handle_sus_response(CtrlMsg msg);  // SUS_ACK / ACK_WAIT
  void handle_sus_res(CtrlMsg msg);
  void handle_cls(CtrlMsg msg);
  void handle_simple_ack(CtrlMsg msg);    // CLS_ACK / SUS_RES_ACK

  // Handoff handlers.
  void handle_attach(std::shared_ptr<net::Stream> stream, HandoffMsg msg);
  void handle_resume_request(std::shared_ptr<net::Stream> stream,
                             HandoffMsg msg);

  // Internals. `max_wait` (0 = unbounded) caps the reliability layer's
  // retransmission loop — used by liveness probes so a dead peer costs at
  // most probe_timeout per round.
  util::Status send_ctrl(const net::Endpoint& dest, CtrlMsg& msg,
                         util::ByteSpan session_key,
                         util::Duration max_wait = {});
  /// Stamp the sender agent + MAC from `session` and send to `dest`.
  util::Status send_session_ctrl(const net::Endpoint& dest, CtrlMsg& msg,
                                 const Session& session,
                                 util::Duration max_wait = {});
  util::Status reply_handoff(net::Stream& stream, HandoffMsg msg,
                             util::ByteSpan session_key);
  /// First session with this conn id (tests/tools; unique in practice
  /// except when both endpoints live on one node).
  [[nodiscard]] SessionPtr find_session(std::uint64_t conn_id) const;
  /// The session with this conn id whose PEER is `sender` — the correct
  /// target for a message sent by `sender`. Falls back to the sole match
  /// when `sender` is empty.
  [[nodiscard]] SessionPtr find_session_from(std::uint64_t conn_id,
                                             const std::string& sender) const;
  void insert_session(const SessionPtr& session);
  void remove_session(const SessionPtr& session);
  [[nodiscard]] std::vector<SessionPtr> sessions_of(
      const agent::AgentId& id) const;
  [[nodiscard]] bool agent_is_migrating(const agent::AgentId& id) const;
  /// The §3.2 sweep step for one connection during prepare_migration.
  util::Status suspend_for_migration(const SessionPtr& session,
                                     const agent::AgentId& id);
  /// Active suspend from ESTABLISHED (shared by app suspend + migration).
  util::Status active_suspend(const SessionPtr& session);
  /// Complete a passive suspension (drain + close) after agreeing to SUS.
  void finish_passive_suspend(const SessionPtr& session,
                              std::uint64_t peer_mark);
  /// Reconnect a suspended session through the peer's redirector, retrying
  /// up to resume_max_attempts with capped exponential backoff.
  util::Status do_resume(const SessionPtr& session);
  /// One resume attempt (the paper's single-shot flow).
  util::Status do_resume_once(const SessionPtr& session);

  // Group-suspend internals (controller_group.cpp).
  /// The whole sweep: freeze members, run phase 1 workers, then commit or
  /// roll back. Called with the agent already marked migrating.
  util::Status group_suspend_sweep(const agent::AgentId& id,
                                   const std::vector<SessionPtr>& members);
  /// Phase-1 worker body for one member: send SUS with the group id, wait
  /// for the ack, drain to the peer's mark, arrive at the barrier.
  util::Status group_prepare_member(const SessionPtr& session,
                                    const std::shared_ptr<group::GroupBarrier>&
                                        barrier);
  /// Roll the entire group back after a phase-1 failure or commit abort.
  void group_rollback(const std::vector<SessionPtr>& members,
                      std::uint64_t group_id, const std::string& reason);
  /// Peer side of the consistent cut: on the first SUS carrying a group
  /// id, pre-freeze every OTHER established session facing the migrating
  /// agent so nothing written after the first member's cut can slip into
  /// a later member's buffer. A watchdog reverts orphaned pre-freezes.
  void group_freeze_inbound(const SessionPtr& trigger, const CtrlMsg& msg);
  /// Watchdog body: revert still-pre-frozen sessions of `peer_agent` to
  /// ESTABLISHED if their own group SUS never arrives within the bound.
  void group_prefreeze_watchdog(std::string peer_agent,
                                std::vector<std::uint64_t> conn_ids);

  /// Wait on session.responses() for one of `want`, discarding stale
  /// response types. Shared by the suspend/close/resume waiters in
  /// controller_ops.cpp and the group prepare workers.
  static std::optional<Session::CtrlResponse> wait_response(
      Session& session, std::initializer_list<CtrlType> want,
      util::Duration timeout);

  // Crash-recovery extension internals.
  /// Journal the session's current state at a protocol commit point.
  void journal_commit(recovery::CommitPoint point, const SessionPtr& session);
  /// Journal that the connection left this controller (close / export).
  void journal_remove(recovery::CommitPoint point, std::uint64_t conn_id);
  /// Epoch fence: admit `msg` only if its incarnation epoch is not older
  /// than the highest this session has seen from the peer. Returns false
  /// (and counts) for stale pre-crash messages, which the caller drops.
  bool admit_epoch(Session& session, const CtrlMsg& msg);

  [[nodiscard]] agent::NodeInfo self_node() const;

  /// Record a migration span event into the process trace sink, attributed
  /// to `trace_id` (dropped when 0) with this controller's node as host.
  void span(std::uint64_t trace_id, obs::SpanKind kind, const Session& session,
            std::string detail = {}, std::uint64_t value = 0) const;

  // Fault-tolerance extension internals.
  void repair_loop();
  void repair_session(const SessionPtr& session);
  void probe_peers();
  /// Abort a session locally (peer declared dead): no handshake, waiters
  /// released, registry entry dropped.
  void abort_session(const SessionPtr& session);

  agent::AgentServer& server_;
  ControllerConfig config_ NAPLET_NOT_GUARDED("set at construction, "
                                              "immutable");
  std::unique_ptr<Redirector> redirector_ NAPLET_NOT_GUARDED(
      "created in start() before worker threads; the Redirector is "
      "internally synchronized");
  /// Event loop (reactor.enabled): owns the epoll loop + timer wheel that
  /// drive the control channel and the redirector lease sweep. Created in
  /// start() before any worker; stopped AFTER every user detaches.
  std::unique_ptr<reactor::Reactor> reactor_ NAPLET_NOT_GUARDED(
      "created in start() before worker threads; the Reactor is "
      "internally synchronized");

  // Observability. The registry owns every instrument; the references
  // below are cached registrations, so hot-path recording is lock-free.
  // Declared before the references (member initialization order).
  // mutable: stats() const mirrors externally-owned values (session table,
  // redirector leases) into gauges right before taking a snapshot.
  mutable obs::Registry registry_;

  // Outermost rank in the lock hierarchy (see DESIGN.md "Concurrency
  // invariants"): held while calling into session state cells and accept
  // queues, never the other way around.
  mutable util::Mutex mu_{util::LockRank::kController, "controller"};
  // Sharded session table (DESIGN.md §15): per-shard locks at rank
  // kControllerShard, legal to take with or without mu_ held.
  SessionShardMap sessions_ NAPLET_NOT_GUARDED(
      "internally synchronized per-shard (rank kControllerShard)");
  std::map<agent::AgentId,
           std::shared_ptr<util::BlockingQueue<SessionPtr>>>
      accept_queues_ NAPLET_GUARDED_BY(mu_);
  std::map<std::uint64_t, std::shared_ptr<PendingConnect>> pending_connects_
      NAPLET_GUARDED_BY(mu_);
  std::set<agent::AgentId> migrating_agents_ NAPLET_GUARDED_BY(mu_);

  // Group-suspend state. The coordinator registry is internally
  // synchronized (ranks 7/9, below mu_'s 10 — group code always releases
  // them before touching controller state). Watchdog threads revert
  // orphaned peer-side pre-freezes; finished entries are reaped on the
  // next spawn and all are joined in stop().
  group::GroupSuspendCoordinator group_coordinator_ NAPLET_NOT_GUARDED(
      "internally synchronized behind its own rank-7 registry mutex");
  struct PrefreezeWatchdog {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<PrefreezeWatchdog> prefreeze_watchdogs_ NAPLET_GUARDED_BY(mu_);
  /// Monotonic group-id source (combined with the epoch on the wire).
  std::atomic<std::uint64_t> next_group_id_{1};

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  /// Set once by stop(): every retry/backoff pause in the operation paths
  /// waits on this instead of sleeping, so shutdown interrupts them
  /// immediately (a woken waiter returns kCancelled).
  util::Event stop_event_;
  obs::Counter& mac_rejections_;
  obs::Counter& access_denials_;

  // Fault-tolerance extension state.
  std::thread repair_thread_;
  std::map<std::uint64_t, int> heartbeat_misses_
      NAPLET_GUARDED_BY(mu_);  // conn_id -> misses
  obs::Counter& links_repaired_;
  obs::Counter& peers_declared_dead_;

  // Crash-recovery extension state. The store serializes its own writes;
  // journal_commit never runs under mu_.
  std::unique_ptr<recovery::DurableStore> store_ NAPLET_NOT_GUARDED(
      "created in start() before worker threads; the store is internally "
      "synchronized");
  /// This controller's incarnation epoch, stamped into every outbound
  /// control/handoff message. 1 without durability; from the store (strictly
  /// above every pre-crash epoch) with it.
  std::atomic<std::uint64_t> epoch_{1};
  obs::Counter& sessions_recovered_;
  obs::Counter& resume_retries_;
  obs::Counter& epoch_fenced_;
  obs::Counter& group_rollbacks_;

  // Latency / size distributions (paper §4.2 phases + the extensions).
  obs::Histogram& hist_suspend_us_;
  obs::Histogram& hist_drain_us_;
  obs::Histogram& hist_handoff_us_;
  obs::Histogram& hist_resume_us_;
  obs::Histogram& hist_replay_bytes_;
  obs::Histogram& hist_connect_total_us_;
  obs::Histogram& hist_connect_management_us_;
  obs::Histogram& hist_connect_security_us_;
  obs::Histogram& hist_connect_key_exchange_us_;
  obs::Histogram& hist_connect_handshake_us_;
  obs::Histogram& hist_connect_open_us_;
  // Group-suspend phase breakdown (prepare = SUS fan-out to barrier,
  // commit = journal pair, rollback = full-group revert, suspend = whole
  // group_suspend() makespan).
  obs::Histogram& hist_group_prepare_us_;
  obs::Histogram& hist_group_commit_us_;
  obs::Histogram& hist_group_rollback_us_;
  obs::Histogram& hist_group_suspend_us_;
};

}  // namespace naplet::nsock
