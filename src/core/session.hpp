// Per-connection session state: the data socket, the NapletInputStream
// replay buffer, sequence bookkeeping for exactly-once delivery, the FSM
// state cell, and the concurrent-migration flags.
//
// Exactly-once design (paper §3.1):
//  * every data message is framed with a monotonically increasing u64 seq;
//  * suspend drains all in-flight frames into the input buffer using the
//    peer's declared high-water mark (carried on SUS/SUS_ACK), so nothing
//    in transmission is lost when the data socket closes;
//  * the buffer migrates with the agent; after resume, reads are served
//    from the buffer until exhausted, then from the new socket;
//  * frames with seq <= the highest already received are duplicates and
//    are dropped, so delivery is exactly-once even across resume races.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "agent/agent_id.hpp"
#include "agent/location.hpp"
#include "core/state.hpp"
#include "net/transport.hpp"
#include "obs/recorder.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::nsock {

class Session;
using SessionPtr = std::shared_ptr<Session>;

/// Result of a receive, with provenance for observability (Fig. 7 traces
/// distinguish socket reads from buffer replays).
struct RecvResult {
  util::Bytes body;
  std::uint64_t seq = 0;
  bool from_buffer = false;
};

/// Snapshot of one session's data-path counters. All values are monotone;
/// the controller aggregates them across sessions into ControllerStats.
struct DataPathStats {
  /// Heap copies made of send()-path payload bytes. Zero in steady state:
  /// the vectored path frames straight from the caller's span. Non-zero
  /// only for the retransmission history (retention + replay copies).
  std::uint64_t payload_bytes_copied = 0;
  std::uint64_t stream_write_ops = 0;   // transport writes (syscalls on TCP)
  std::uint64_t stream_read_ops = 0;    // transport reads (syscalls on TCP)
  std::uint64_t recv_wakeups = 0;       // event-driven wakeups delivered to
                                        // blocked readers (vs. poll sleeps)
  std::uint64_t frames_coalesced = 0;   // frames parsed beyond the first
                                        // out of a single transport read
};

class Session {
 public:
  Session(std::uint64_t conn_id, std::uint64_t verifier, bool is_client,
          agent::AgentId local_agent, agent::AgentId peer_agent);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- identity ----
  [[nodiscard]] std::uint64_t conn_id() const noexcept { return conn_id_; }
  [[nodiscard]] std::uint64_t verifier() const noexcept { return verifier_; }
  [[nodiscard]] bool is_client() const noexcept { return is_client_; }
  [[nodiscard]] const agent::AgentId& local_agent() const noexcept {
    return local_agent_;
  }
  [[nodiscard]] const agent::AgentId& peer_agent() const noexcept {
    return peer_agent_;
  }

  /// True if the local agent outranks the peer for concurrent migration.
  [[nodiscard]] bool local_has_priority() const {
    return local_agent_.outranks(peer_agent_);
  }

  [[nodiscard]] agent::NodeInfo peer_node() const;
  void set_peer_node(const agent::NodeInfo& node);

  [[nodiscard]] const util::Bytes& session_key() const noexcept {
    return session_key_;
  }
  void set_session_key(util::Bytes key) { session_key_ = std::move(key); }

  // ---- FSM ----

  [[nodiscard]] ConnState state() const { return state_.get(); }

  /// Validate `event` against the transition table and apply it.
  /// kProtocolError on an illegal transition (state unchanged).
  util::Status advance(ConnEvent event);

  /// Wait until the state satisfies `pred`; nullopt on timeout.
  template <typename Pred>
  std::optional<ConnState> wait_state(Pred&& pred, util::Duration timeout) {
    return state_.wait_for(std::forward<Pred>(pred), timeout);
  }

  // ---- data path ----

  /// Install a (new) data socket. Does not change the FSM state.
  void attach_stream(std::shared_ptr<net::Stream> stream);
  [[nodiscard]] bool has_stream() const;
  void close_stream();

  /// Send one message; blocks while the connection is suspended (the paper:
  /// no data can be exchanged in SUSPENDED) until re-established, the
  /// connection dies (kAborted), or `timeout` passes.
  util::Status send(util::ByteSpan body, util::Duration timeout);

  /// Receive one message: buffer first, then socket. Blocks across
  /// suspension like send().
  util::StatusOr<RecvResult> recv(util::Duration timeout);

  // ---- suspension support (controller-driven) ----

  /// Atomically block writers and return the send high-water mark to
  /// declare in SUS / SUS_ACK. Idempotent while suspended.
  std::uint64_t freeze_writes_and_mark();

  /// Pull frames off the socket into the buffer until the peer's declared
  /// mark is reached (or timeout). Tolerates an already-closed socket if
  /// the mark was already reached.
  util::Status drain_to_mark(std::uint64_t peer_mark, util::Duration timeout);

  /// Opportunistically pull whatever is on the socket into the buffer for
  /// up to `budget`. Used by the suspend initiator while it waits for the
  /// peer's SUS_ACK: the peer's reply is produced only after it freezes
  /// its writers, and a writer blocked on TCP backpressure needs US to
  /// keep draining — otherwise handshake and data path deadlock.
  void pump_available(util::Duration budget);

  [[nodiscard]] std::uint64_t sent_seq() const;
  [[nodiscard]] std::uint64_t highest_rx_seq() const;
  [[nodiscard]] std::size_t buffered_frames() const;
  /// Total body bytes currently parked in the replay buffer.
  [[nodiscard]] std::uint64_t buffered_bytes() const;

  /// Data-path observability counters (see DataPathStats).
  [[nodiscard]] DataPathStats data_stats() const;

  // ---- observability (obs subsystem) ----
  //
  // trace_id: the migration trace this session's *own* suspend minted
  // (stamped into outgoing SUS/RESUME). peer_trace_id: the trace of the
  // peer's in-flight migration (adopted from an incoming SUS), kept
  // separate so an overlapped double migration attributes each side's
  // spans to the right trace.

  [[nodiscard]] std::uint64_t trace_id() const noexcept {
    return trace_id_.load(std::memory_order_relaxed);
  }
  void set_trace_id(std::uint64_t id) noexcept {
    trace_id_.store(id, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peer_trace_id() const noexcept {
    return peer_trace_id_.load(std::memory_order_relaxed);
  }
  void set_peer_trace_id(std::uint64_t id) noexcept {
    peer_trace_id_.store(id, std::memory_order_relaxed);
  }

  /// Bounded ring of recent FSM transitions and ctrl send/recv events;
  /// dumped on abort, chaos-oracle failure, and lock-rank violations.
  /// Returned mutable even from const contexts: recording is pure
  /// instrumentation, not logical session state (recorder_ is mutable).
  [[nodiscard]] obs::FlightRecorder& recorder() const noexcept {
    return recorder_;
  }

  // ---- concurrent-migration flags (paper §3.1, §3.2) ----

  struct Flags {
    bool remote_suspended = false;   // peer initiated the suspension
    bool local_suspend_parked = false;  // our suspend op is blocked
    bool peer_parked = false;        // we ACK_WAIT'ed the peer: owe SUS_RES
    bool peer_waiting_resume = false;  // peer RESUMEd into our parked
                                       // suspend: we owe the reconnect
    bool group_prefrozen = false;    // frozen ahead of our own SUS by a
                                     // peer's group sweep (consistent cut);
                                     // cleared when that SUS arrives, or
                                     // reverted by the pre-freeze watchdog.
                                     // Transient — never persisted.
    std::uint64_t peer_declared_seq = 0;
  };

  /// Read or mutate flags under the flag lock.
  [[nodiscard]] Flags flags() const;
  template <typename Fn>
  void update_flags(Fn&& fn) {
    util::MutexLock lock(flags_mu_);
    fn(flags_);
  }

  /// Parked local suspend operations wait on this event (released by
  /// SUS_RES or a peer RESUME that we answer with RESUME_WAIT).
  util::Event& park_event() { return park_event_; }
  /// Parked local resume operations wait on this one.
  util::Event& resume_event() { return resume_event_; }

  /// Control responses (SUS_ACK / ACK_WAIT / SUS_RES_ACK / CLS_ACK) routed
  /// from the bus handler to the blocked initiating operation.
  struct CtrlResponse {
    std::uint8_t type = 0;      // CtrlType value
    std::uint64_t sent_seq = 0; // responder's declared high-water mark
  };
  util::BlockingQueue<CtrlResponse>& responses() { return responses_; }

  // ---- fault-tolerance extension (paper §7 future work) ----
  //
  // With history enabled, sent frames are retained (bounded) so that after
  // an UNCOORDINATED stream loss — where the suspend protocol could not
  // flush — a resume can replay everything the peer missed. The receiver's
  // duplicate suppression makes the replay idempotent.

  /// Enable sent-frame retention, bounded to ~`max_bytes` of bodies.
  void enable_history(std::size_t max_bytes);
  [[nodiscard]] bool history_enabled() const;

  /// Frames with seq > `after_seq`, oldest first. If the span is no longer
  /// fully retained (evicted by the bound), kOutOfRange.
  [[nodiscard]] util::StatusOr<std::vector<std::pair<std::uint64_t, util::Bytes>>>
  history_since(std::uint64_t after_seq) const;

  /// Re-send retained frames with seq > `after_seq` on the attached stream
  /// (original sequence numbers; receiver dedup keeps this exactly-once).
  /// No-op (kOk) when `after_seq >= sent_seq()` — nothing to retransmit.
  util::Status retransmit_after(std::uint64_t after_seq);

  /// True once the data socket failed outside the suspension protocol
  /// (read EOF / write error while ESTABLISHED). Cleared by attach_stream.
  [[nodiscard]] bool is_broken() const;

  // ---- crash-recovery extension: incarnation-epoch fencing ----
  //
  // Each controller stamps its incarnation epoch into every control and
  // handoff message. A message from an epoch older than the highest seen
  // for this session is pre-crash traffic and must be dropped, or a
  // delayed pre-crash SUS/RESUME could drive the post-recovery FSM.

  /// Record `epoch` as seen from the peer; false when it is older than the
  /// high-water mark (the message must be fenced). Epoch 0 (legacy /
  /// fencing disabled) always admits.
  bool admit_peer_epoch(std::uint64_t epoch);
  [[nodiscard]] std::uint64_t peer_epoch() const noexcept {
    return peer_epoch_.load(std::memory_order_relaxed);
  }

  /// Force-kill the session locally when the peer is declared dead: tear
  /// down the stream and drive the state to CLOSED regardless of where the
  /// FSM was, so every blocked send()/recv()/resume waiter wakes with
  /// kAborted instead of hanging out its full timeout. Unlike mark_moved()
  /// the buffer survives — already-received frames stay readable.
  void abort_local();

  // ---- migration serialization ----

  /// Serialize the suspended session (state must be SUSPENDED or
  /// SUSPEND_WAIT-adjacent; the socket must already be closed).
  [[nodiscard]] util::Bytes export_state() const;
  static util::StatusOr<SessionPtr> import_state(util::ByteSpan data);

  /// Stop serving the replay buffer to local readers, atomically with
  /// respect to in-flight recv() pops. Call BEFORE export_state(): a frame
  /// popped after the export snapshot but before mark_moved() would be
  /// delivered here AND replayed by the imported clone — a duplicate.
  /// Sealing under the buffer lock closes that window: every pop either
  /// lands before the seal (and is absent from the snapshot) or fails.
  void seal_buffer_for_export();

  /// Neutralize this object after its state has been exported: the session
  /// now lives in the imported clone, and any stale handle still pointing
  /// here must observe a dead connection — NOT deliver from the old buffer
  /// (that would duplicate what the clone replays). Idempotent.
  void mark_moved();

 private:
  struct BufferedFrame {
    std::uint64_t seq;
    util::Bytes body;
  };

  /// Read one complete frame from the socket into rx_raw_/buffer, honoring
  /// `deadline_us`. Returns true if a frame was appended.
  util::StatusOr<bool> pump_socket(std::int64_t deadline_us);
  /// Parse any complete frames out of rx_raw_ into the buffer.
  void parse_raw_locked() NAPLET_REQUIRES(buf_mu_);
  /// Block until an rx event (bytes/frames/stream change) newer than
  /// `observed_epoch`, or min(deadline, now + max_slice). Snapshot the
  /// epoch (under buf_mu_) BEFORE probing the state that made you wait:
  /// any event between the snapshot and the wait returns immediately, so
  /// no notification can be lost. The slice is only a safety net.
  void wait_rx_event(std::uint64_t observed_epoch, std::int64_t deadline_us,
                     util::Duration max_slice);
  /// Record an rx event (and wake waiters): bytes/frames arrived or the
  /// stream was attached/closed.
  void bump_rx_epoch_locked() NAPLET_REQUIRES(buf_mu_) { ++rx_epoch_; }

  std::shared_ptr<net::Stream> stream() const;

  // identity (fixed at construction / import, before the session is
  // published to other threads)
  const std::uint64_t conn_id_;
  const std::uint64_t verifier_;
  const bool is_client_;
  const agent::AgentId local_agent_;
  const agent::AgentId peer_agent_;
  util::Bytes session_key_ NAPLET_NOT_GUARDED(
      "written during handshake/import before the session is published; "
      "read-only afterwards");

  mutable util::Mutex node_mu_{util::LockRank::kSessionNode, "session.node"};
  agent::NodeInfo peer_node_ NAPLET_GUARDED_BY(node_mu_);

  util::WaitableCell<ConnState> state_{ConnState::kClosed};

  // data path
  mutable util::Mutex stream_mu_{util::LockRank::kSessionStream,
                                 "session.stream"};
  std::shared_ptr<net::Stream> stream_ NAPLET_GUARDED_BY(stream_mu_);

  // Two-lock send path: write_mu_ serializes sequence assignment and the
  // history ring (held only briefly), write_io_mu_ serializes the socket
  // write itself. The io lock is acquired WHILE HOLDING write_mu_ (lock
  // coupling), which pins socket-write order to seq order; write_mu_ is
  // then dropped, so freeze_writes_and_mark / sent_seq / export never wait
  // out the transfer of a large frame.
  mutable util::Mutex write_mu_{util::LockRank::kSessionWrite,
                                "session.write"};
  mutable util::Mutex write_io_mu_{util::LockRank::kSessionWriteIo,
                                   "session.write_io"};
  std::uint64_t tx_seq_ NAPLET_GUARDED_BY(write_mu_) = 0;  // last assigned seq

  // Retransmission history (guarded by write_mu_).
  bool history_enabled_ NAPLET_GUARDED_BY(write_mu_) = false;
  std::size_t history_limit_bytes_ NAPLET_GUARDED_BY(write_mu_) = 0;
  std::size_t history_bytes_ NAPLET_GUARDED_BY(write_mu_) = 0;
  std::deque<std::pair<std::uint64_t, util::Bytes>> history_
      NAPLET_GUARDED_BY(write_mu_);

  std::atomic<bool> broken_{false};

  // Highest controller-incarnation epoch seen from the peer (fencing).
  std::atomic<std::uint64_t> peer_epoch_{0};

  // Migration trace attribution (see the observability accessors above).
  std::atomic<std::uint64_t> trace_id_{0};
  std::atomic<std::uint64_t> peer_trace_id_{0};
  mutable obs::FlightRecorder recorder_;

  // serializes socket readers
  mutable util::Mutex read_mu_{util::LockRank::kSessionRead, "session.read"};
  // guards buffer + rx bookkeeping
  mutable util::Mutex buf_mu_{util::LockRank::kSessionBuffer,
                              "session.buffer"};
  // Event-driven receive (replaces the old 1 ms sleep-polls): every rx
  // event — bytes/frames arriving, stream attach/close, migration seal —
  // increments rx_epoch_ under buf_mu_ and notifies rx_cv_. Waiters
  // snapshot the epoch before deciding to wait (see wait_rx_event), which
  // closes the lost-wakeup window a bare notify_all left open for
  // attach/close events that change no buffer state.
  mutable util::CondVar rx_cv_;
  std::uint64_t rx_epoch_ NAPLET_GUARDED_BY(buf_mu_) = 0;
  std::deque<BufferedFrame> buffer_ NAPLET_GUARDED_BY(buf_mu_);
  bool sealed_ NAPLET_GUARDED_BY(buf_mu_) = false;  // seal_buffer_for_export
  // unparsed bytes (partial frame tail)
  util::Bytes rx_raw_ NAPLET_GUARDED_BY(buf_mu_);
  // highest frame seq pulled off the wire
  std::uint64_t rx_high_ NAPLET_GUARDED_BY(buf_mu_) = 0;
  // highest seq handed to the application
  std::uint64_t delivered_ NAPLET_GUARDED_BY(buf_mu_) = 0;
  // frames with seq <= this were buffered across a suspension (Fig. 7
  // provenance)
  std::uint64_t replay_low_ NAPLET_GUARDED_BY(buf_mu_) = 0;

  // Lock-free data-path counters (see DataPathStats for field meanings).
  struct Counters {
    std::atomic<std::uint64_t> payload_bytes_copied{0};
    std::atomic<std::uint64_t> stream_write_ops{0};
    std::atomic<std::uint64_t> stream_read_ops{0};
    std::atomic<std::uint64_t> recv_wakeups{0};
    std::atomic<std::uint64_t> frames_coalesced{0};
  };
  mutable Counters counters_;

  mutable util::Mutex flags_mu_{util::LockRank::kSessionFlags,
                                "session.flags"};
  Flags flags_ NAPLET_GUARDED_BY(flags_mu_);
  util::Event park_event_;
  util::Event resume_event_;
  util::BlockingQueue<CtrlResponse> responses_;
};

}  // namespace naplet::nsock
