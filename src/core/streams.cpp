#include "core/streams.hpp"

#include <algorithm>
#include <cstring>

namespace naplet::nsock {

util::Status NapletOutputStream::write(util::ByteSpan data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  if (buffer_.size() >= flush_threshold_) return flush();
  return util::OkStatus();
}

util::Status NapletOutputStream::flush() {
  if (buffer_.empty()) return util::OkStatus();
  if (socket_ == nullptr) {
    return util::FailedPrecondition("output stream not bound to a socket");
  }
  NAPLET_RETURN_IF_ERROR(
      socket_->send(util::ByteSpan(buffer_.data(), buffer_.size())));
  buffer_.clear();
  return util::OkStatus();
}

util::StatusOr<std::size_t> NapletInputStream::read(std::uint8_t* out,
                                                    std::size_t max,
                                                    util::Duration timeout) {
  if (max == 0) return std::size_t{0};

  // Serve the held tail first (never blocks).
  if (tail_offset_ < tail_.size()) {
    const std::size_t take = std::min(max, tail_.size() - tail_offset_);
    std::memcpy(out, tail_.data() + tail_offset_, take);
    tail_offset_ += take;
    if (tail_offset_ == tail_.size()) {
      tail_.clear();
      tail_offset_ = 0;
    }
    return take;
  }

  if (socket_ == nullptr) {
    return util::FailedPrecondition("input stream not bound to a socket");
  }
  auto message = socket_->recv(timeout);
  if (!message.ok()) return message.status();

  const std::size_t take = std::min(max, message->body.size());
  std::memcpy(out, message->body.data(), take);
  if (take < message->body.size()) {
    tail_.assign(message->body.begin() + static_cast<std::ptrdiff_t>(take),
                 message->body.end());
    tail_offset_ = 0;
  }
  return take;
}

util::Status NapletInputStream::read_exact(std::uint8_t* out, std::size_t n,
                                           util::Duration timeout) {
  const std::int64_t deadline =
      util::RealClock::instance().now_us() + timeout.count();
  std::size_t got = 0;
  while (got < n) {
    const std::int64_t remaining =
        deadline - util::RealClock::instance().now_us();
    if (remaining <= 0) {
      return util::Timeout("read_exact got " + std::to_string(got) + "/" +
                           std::to_string(n) + " bytes");
    }
    auto chunk = read(out + got, n - got, util::us(remaining));
    if (!chunk.ok()) return chunk.status();
    got += *chunk;
  }
  return util::OkStatus();
}

void NapletInputStream::persist(util::Archive& ar) {
  if (ar.is_writing()) {
    // Compact: only the unread part travels.
    util::Bytes unread(tail_.begin() + static_cast<std::ptrdiff_t>(tail_offset_),
                       tail_.end());
    ar.field(unread);
  } else {
    ar.field(tail_);
    tail_offset_ = 0;
  }
}

}  // namespace naplet::nsock
