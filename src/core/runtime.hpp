// NapletRuntime: the composition root that wires one AgentServer together
// with its SocketController — the "Naplet node" a deployment runs per host.
// Also provides Realm, a convenience for tests/benches/examples that stands
// up several nodes sharing a location service and realm key.
#pragma once

#include <memory>
#include <vector>

#include "agent/agent_server.hpp"
#include "core/controller.hpp"

namespace naplet::nsock {

struct NodeConfig {
  agent::AgentServerConfig server;
  ControllerConfig controller;
};

/// One agent server + its NapletSocket controller, started together.
class NapletRuntime {
 public:
  NapletRuntime(net::NetworkPtr network, agent::LocationService& locations,
                NodeConfig config);
  ~NapletRuntime();

  NapletRuntime(const NapletRuntime&) = delete;
  NapletRuntime& operator=(const NapletRuntime&) = delete;

  util::Status start();
  void stop();

  [[nodiscard]] agent::AgentServer& server() { return *server_; }
  [[nodiscard]] SocketController& controller() { return *controller_; }
  [[nodiscard]] const std::string& name() const { return server_->name(); }

 private:
  std::unique_ptr<agent::AgentServer> server_;
  std::unique_ptr<SocketController> controller_;
  bool started_ = false;
};

/// A set of nodes sharing one directory and realm key — a whole testbed in
/// a few lines:
///
///   Realm realm;                                  // TCP loopback
///   realm.add_node("alpha");
///   realm.add_node("beta");
///   realm.start();
///   realm.node("alpha").server().launch(...);
class Realm {
 public:
  /// Uses TCP loopback when `network` is null.
  explicit Realm(net::NetworkPtr network = nullptr);
  ~Realm();

  /// Add a node before start(); returns it for config tweaks.
  NapletRuntime& add_node(const std::string& name, NodeConfig config = {});
  /// Add a node bound to a specific Network (e.g. a SimNet node).
  NapletRuntime& add_node(const std::string& name, net::NetworkPtr network,
                          NodeConfig config = {});
  /// Stop and destroy a node — the crash-restart model for recovery tests:
  /// remove_node then add_node with the same name (and a durable journal
  /// dir) is a controller restart. No-op for unknown names.
  void remove_node(const std::string& name);

  util::Status start();
  void stop();

  [[nodiscard]] NapletRuntime& node(const std::string& name);
  /// Names of all live nodes, in creation order (e.g. for collecting
  /// per-node diagnostics such as flight-recorder dumps).
  [[nodiscard]] std::vector<std::string> node_names() const;
  [[nodiscard]] agent::LocationService& locations() { return locations_; }
  [[nodiscard]] const util::Bytes& realm_key() const { return realm_key_; }

 private:
  net::NetworkPtr default_network_;
  agent::LocationService locations_;
  util::Bytes realm_key_;
  std::vector<std::unique_ptr<NapletRuntime>> nodes_;
};

}  // namespace naplet::nsock
