// SocketController — suspension, resume, close, and the ConnectionMigrator
// hooks (paper §2.2 suspend/resume/close, §3.1 concurrent migration,
// §3.2 multiple connections). Split from controller.cpp for readability.
#include <algorithm>

#include "core/controller.hpp"
#include "crypto/random.hpp"
#include "fault/fault.hpp"
#include "net/frame.hpp"
#include "util/log.hpp"

namespace naplet::nsock {

namespace {

constexpr util::Duration kRetrySleep = std::chrono::milliseconds(20);
constexpr util::Duration kStatePollSlice = std::chrono::milliseconds(50);

std::int64_t now_us() { return util::RealClock::instance().now_us(); }

bool verify_session_mac(Session& session, const CtrlMsg& msg) {
  const util::Bytes payload = msg.mac_payload();
  return verify_mac(util::ByteSpan(session.session_key().data(),
                                   session.session_key().size()),
                    util::ByteSpan(payload.data(), payload.size()),
                    util::ByteSpan(msg.mac.data(), msg.mac.size()));
}

}  // namespace

std::optional<Session::CtrlResponse> SocketController::wait_response(
    Session& session, std::initializer_list<CtrlType> want,
    util::Duration timeout) {
  const std::int64_t deadline = now_us() + timeout.count();
  for (;;) {
    const std::int64_t remaining = deadline - now_us();
    if (remaining <= 0) return std::nullopt;
    auto resp = session.responses().pop_for(util::us(remaining));
    if (!resp) return std::nullopt;
    for (CtrlType t : want) {
      if (resp->type == static_cast<std::uint8_t>(t)) return resp;
    }
    NAPLET_LOG(kDebug, "controller")
        << "conn " << session.conn_id() << ": discarding stale response type "
        << static_cast<int>(resp->type);
  }
}

// ===========================================================================
// Suspension — active side

util::Status SocketController::suspend(const SessionPtr& session) {
  if (session == nullptr) return util::InvalidArgument("null session");
  const ConnState st = session->state();
  if (st == ConnState::kEstablished) return active_suspend(session);
  if (st == ConnState::kSuspended || st == ConnState::kSuspendWait) {
    return suspend_for_migration(session, session->local_agent());
  }
  if (st == ConnState::kSusAcked) {
    // A passive suspension is mid-drain; wait for it to settle, then the
    // connection is suspended (remotely) and §3.2 rules apply.
    session->wait_state(
        [](ConnState s) { return s != ConnState::kSusAcked; },
        config_.ctrl_response_timeout);
    return suspend(session);
  }
  return util::FailedPrecondition(
      "cannot suspend from state " + std::string(to_string(st)));
}

util::Status SocketController::active_suspend(const SessionPtr& session) {
  NAPLET_RETURN_IF_ERROR(session->advance(ConnEvent::kAppSuspend));
  // Mint this migration's trace id (| 1 so it can never be the "untraced"
  // zero); every span and protocol message of this round carries it.
  session->set_trace_id(crypto::random_u64() | 1);
  util::Stopwatch suspend_sw(util::RealClock::instance());
  // This is OUR suspension round: bookkeeping from any previous round is
  // obsolete. (Clearing here also closes a scheduling window where the
  // resume handler's own clear lands after this suspend has begun.)
  session->update_flags([](Session::Flags& f) {
    f.remote_suspended = false;
    f.peer_waiting_resume = false;
  });
  const std::uint64_t mark = session->freeze_writes_and_mark();

  CtrlMsg sus;
  sus.type = CtrlType::kSus;
  sus.conn_id = session->conn_id();
  sus.sent_seq = mark;
  // Best-effort: if the peer controller restarted since we last heard from
  // it, its control endpoint is stale and this send times out — the resend
  // loop below refreshes the location and tries again, so a send failure
  // here must not abort the suspension outright.
  if (auto st = send_session_ctrl(session->peer_node().control, sus, *session);
      !st.ok()) {
    NAPLET_LOG(kDebug, "controller")
        << "conn " << session->conn_id()
        << ": initial SUS send failed (" << st.to_string()
        << "); retrying via location refresh";
  }
  span(session->trace_id(), obs::SpanKind::kSuspendSent, *session, "SUS",
       mark);

  // Wait for the peer's reply while KEEPING OUR RECEIVE SIDE DRAINING:
  // the peer can only reply after freezing its writers, and one of those
  // writers may be blocked on TCP backpressure that only our reads can
  // relieve (the application reader is already parked on the state cell).
  // A REJECT means the peer's session is mid-transit (exported, not yet
  // imported at its destination): refresh the peer's location and resend.
  std::optional<Session::CtrlResponse> resp;
  {
    const std::int64_t now0 = util::RealClock::instance().now_us();
    const std::int64_t deadline = now0 + config_.ctrl_response_timeout.count();
    // Unprompted resend cadence: the peer controller may have crashed and
    // restarted at a new control endpoint, in which case no REJECT ever
    // arrives — periodically refresh its location and send the SUS again
    // (the peer's duplicate-SUS path re-acks harmlessly if both land).
    const std::int64_t resend_every = std::max<std::int64_t>(
        std::chrono::microseconds(std::chrono::milliseconds(250)).count(),
        config_.ctrl_response_timeout.count() / 4);
    std::int64_t next_resend = now0 + resend_every;
    while (util::RealClock::instance().now_us() < deadline) {
      resp = wait_response(
          *session,
          {CtrlType::kSusAck, CtrlType::kAckWait, CtrlType::kReject},
          std::chrono::milliseconds(20));
      if (resp &&
          resp->type == static_cast<std::uint8_t>(CtrlType::kReject)) {
        resp.reset();
        // Interruptible pause: stop() sets the event and this suspension
        // unwinds immediately instead of finishing its retry budget.
        if (stop_event_.wait_for(kRetrySleep)) {
          return util::Cancelled("controller stopping");
        }
        if (auto fresh =
                server_.locations().try_lookup(session->peer_agent())) {
          session->set_peer_node(*fresh);
        }
        (void)send_session_ctrl(session->peer_node().control, sus, *session);
        continue;
      }
      if (resp) break;
      if (util::RealClock::instance().now_us() >= next_resend) {
        next_resend = util::RealClock::instance().now_us() + resend_every;
        if (auto fresh =
                server_.locations().try_lookup(session->peer_agent())) {
          session->set_peer_node(*fresh);
        }
        // Bounded so a still-dead endpoint cannot eat the whole deadline.
        (void)send_session_ctrl(session->peer_node().control, sus, *session,
                                util::us(resend_every));
      }
      session->pump_available(std::chrono::milliseconds(20));
    }
  }
  if (!resp) {
    if (config_.suspend_rollback && session->has_stream() &&
        !session->is_broken()) {
      // The handshake died (peer controller crashed or SUS lost above the
      // reliability layer) but the data stream is healthy: roll back to
      // ESTABLISHED so the application keeps running; the caller retries
      // the migration once the peer recovers.
      (void)session->advance(ConnEvent::kSuspendAbort);
      return util::Timeout("no SUS response for conn " +
                           std::to_string(session->conn_id()) +
                           "; rolled back to ESTABLISHED");
    }
    // Peer unreachable: fail-safe local suspension (the FSM's timeout arc).
    (void)session->advance(ConnEvent::kTimeout);
    session->close_stream();
    return util::Timeout("no SUS response for conn " +
                         std::to_string(session->conn_id()));
  }

  // Both replies carry the peer's declared high-water mark: pull every
  // in-flight frame into the input buffer before closing the socket.
  util::Stopwatch drain_sw(util::RealClock::instance());
  auto drained = session->drain_to_mark(resp->sent_seq, config_.drain_timeout);
  session->close_stream();
  hist_drain_us_.record(obs::ms_to_us(drain_sw.elapsed_ms()));
  if (drained.ok()) {
    const std::uint64_t buffered = session->buffered_bytes();
    hist_replay_bytes_.record(buffered);
    span(session->trace_id(), obs::SpanKind::kDrainComplete, *session,
         "active", buffered);
  }

  if (resp->type == static_cast<std::uint8_t>(CtrlType::kSusAck)) {
    NAPLET_RETURN_IF_ERROR(session->advance(ConnEvent::kRecvSusAck));
    if (drained.ok()) {
      journal_commit(recovery::CommitPoint::kSuspendCommitted, session);
      hist_suspend_us_.record(obs::ms_to_us(suspend_sw.elapsed_ms()));
    }
    return drained;
  }

  // ACK_WAIT: overlapped concurrent migration and the peer outranks us
  // (paper Fig. 4(a), low-priority side). Park until its SUS_RES.
  NAPLET_RETURN_IF_ERROR(session->advance(ConnEvent::kRecvAckWait));
  session->update_flags([](Session::Flags& f) {
    f.local_suspend_parked = true;
  });
  const bool released = session->park_event().wait_for(config_.park_timeout);
  session->park_event().reset();
  session->update_flags([](Session::Flags& f) {
    f.local_suspend_parked = false;
  });
  if (!drained.ok()) return drained;
  if (!released) {
    return util::Timeout("parked suspend not released for conn " +
                         std::to_string(session->conn_id()));
  }
  journal_commit(recovery::CommitPoint::kSuspendCommitted, session);
  hist_suspend_us_.record(obs::ms_to_us(suspend_sw.elapsed_ms()));
  return util::OkStatus();
}

// ===========================================================================
// Suspension — passive side (bus thread)

void SocketController::handle_sus(CtrlMsg msg) {
  SessionPtr session = find_session_from(msg.conn_id, msg.client_agent);
  CtrlMsg reply;
  reply.conn_id = msg.conn_id;
  // Replies belong to the PEER's migration trace, not our own.
  reply.trace_id = msg.trace_id;

  if (session == nullptr) {
    reply.type = CtrlType::kReject;
    reply.reason = "unknown connection";
    (void)send_ctrl(msg.node.control, reply, {});
    return;
  }
  if (!verify_session_mac(*session, msg)) {
    mac_rejections_.add(1);
    reply.type = CtrlType::kReject;
    reply.reason = "MAC verification failed";
    (void)send_ctrl(msg.node.control, reply, {});
    return;
  }
  if (!admit_epoch(*session, msg)) return;
  if (msg.trace_id != 0) session->set_peer_trace_id(msg.trace_id);
  session->set_peer_node(msg.node);
  const util::ByteSpan key(session->session_key().data(),
                           session->session_key().size());

  // A SUS may land while a resume is one step from completion (RES_ACKED
  // or RES_SENT about to see its RESUME_OK); wait briefly for that to
  // settle rather than rejecting a legitimate request. The wait is capped
  // tightly: this runs on the controller's single dispatch thread, and a
  // long block would head-of-line-delay every other connection's control
  // traffic. If it does not settle, the sender's retry loop covers it.
  if (session->state() == ConnState::kResAcked ||
      session->state() == ConnState::kResSent) {
    session->wait_state(
        [](ConnState s) {
          return s != ConnState::kResAcked && s != ConnState::kResSent;
        },
        std::chrono::milliseconds(250));
  }

  const ConnState st = session->state();
  switch (st) {
    case ConnState::kEstablished: {
      if (msg.group_id != 0) {
        // Group-suspend prepare: the peer is sweeping its whole agent.
        // A refusal here (injected or policy) vetoes the ENTIRE group —
        // the coordinator rolls every member back (chaos scenario 9).
        const fault::Decision d = fault::hit("ctrl.group.prepare");
        if (d.action == fault::Action::kError ||
            d.action == fault::Action::kKill) {
          reply.type = CtrlType::kReject;
          reply.reason = "fault: group prepare refused";
          (void)send_session_ctrl(msg.node.control, reply, *session);
          return;
        }
      }
      // Normal passive suspension (paper §2.2).
      (void)session->advance(ConnEvent::kRecvSus);  // -> SUS_ACKED
      const std::uint64_t mark = session->freeze_writes_and_mark();
      session->update_flags([&](Session::Flags& f) {
        f.remote_suspended = true;
        f.peer_declared_seq = msg.sent_seq;
      });
      // Consistent cut: before acknowledging the FIRST member of a group
      // sweep, freeze every OTHER established session facing the
      // migrating agent, so no later member's buffer can contain data the
      // application produced after this member's cut point.
      if (msg.group_id != 0) group_freeze_inbound(session, msg);
      reply.type = CtrlType::kSusAck;
      reply.sent_seq = mark;
      (void)send_session_ctrl(msg.node.control, reply, *session);
      finish_passive_suspend(session, msg.sent_seq);
      return;
    }

    case ConnState::kSusSent: {
      // Overlapped concurrent migration (paper Fig. 4(a)): our SUS and the
      // peer's crossed. Priority (agent-ID hash) breaks the tie.
      const std::uint64_t mark = session->sent_seq();  // frozen already
      if (session->local_has_priority()) {
        // We win: delay the peer with ACK_WAIT and note that we owe it a
        // SUS_RES once our migration completes.
        session->update_flags([&](Session::Flags& f) {
          f.peer_parked = true;
          f.peer_declared_seq = msg.sent_seq;
        });
        reply.type = CtrlType::kAckWait;
        reply.sent_seq = mark;
        (void)send_session_ctrl(msg.node.control, reply, *session);
      } else {
        // Low priority always acknowledges (paper: "side A always
        // acknowledges a SUSPEND request since it has a low priority").
        session->update_flags([&](Session::Flags& f) {
          f.remote_suspended = true;
          f.peer_declared_seq = msg.sent_seq;
        });
        reply.type = CtrlType::kSusAck;
        reply.sent_seq = mark;
        (void)send_session_ctrl(msg.node.control, reply, *session);
        // Our own active_suspend drains and closes once ACK_WAIT arrives.
      }
      return;
    }

    case ConnState::kSusAcked: {
      // Pre-frozen group member: group_freeze_inbound froze this session
      // ahead of its own SUS (consistent cut). That SUS has now arrived —
      // acknowledge with the pre-freeze mark and complete the passive
      // suspension that was deferred until the peer actually asked.
      if (session->flags().group_prefrozen) {
        session->update_flags([&](Session::Flags& f) {
          f.group_prefrozen = false;
          f.peer_declared_seq = msg.sent_seq;
        });
        reply.type = CtrlType::kSusAck;
        reply.sent_seq = session->sent_seq();
        (void)send_session_ctrl(msg.node.control, reply, *session);
        finish_passive_suspend(session, msg.sent_seq);
        return;
      }
      [[fallthrough]];
    }
    case ConnState::kSuspended:
    case ConnState::kSuspendWait: {
      // Duplicate SUS (a lost ACK was retransmitted around): re-acknowledge.
      reply.type = CtrlType::kSusAck;
      reply.sent_seq = session->sent_seq();
      (void)send_session_ctrl(msg.node.control, reply, *session);
      return;
    }

    case ConnState::kResumeWait: {
      // Our resume was parked awaiting the peer's reconnect, but the peer
      // is suspending again instead (another migration round began). Its
      // suspension supersedes the parked resume: accept it — we are
      // already quiesced (no data socket) — and wake the parked waiter,
      // whose resume completes as a passive suspension.
      (void)session->advance(ConnEvent::kRecvSus);  // -> SUSPENDED
      session->update_flags([&](Session::Flags& f) {
        f.remote_suspended = true;
        f.peer_declared_seq = msg.sent_seq;
      });
      reply.type = CtrlType::kSusAck;
      reply.sent_seq = session->sent_seq();
      (void)send_session_ctrl(msg.node.control, reply, *session);
      session->resume_event().set();
      return;
    }

    default: {
      reply.type = CtrlType::kReject;
      reply.reason = "SUS in state " + std::string(to_string(st));
      (void)send_session_ctrl(msg.node.control, reply, *session);
      return;
    }
  }
}

void SocketController::finish_passive_suspend(const SessionPtr& session,
                                              std::uint64_t peer_mark) {
  util::Stopwatch drain_sw(util::RealClock::instance());
  auto drained = session->drain_to_mark(peer_mark, config_.drain_timeout);
  if (!drained.ok()) {
    NAPLET_LOG(kError, "controller")
        << "conn " << session->conn_id()
        << ": passive drain failed: " << drained.to_string();
  }
  session->close_stream();
  hist_drain_us_.record(obs::ms_to_us(drain_sw.elapsed_ms()));
  (void)session->advance(ConnEvent::kExecSuspended);  // -> SUSPENDED
  if (drained.ok()) {
    const std::uint64_t buffered = session->buffered_bytes();
    hist_replay_bytes_.record(buffered);
    span(session->peer_trace_id(), obs::SpanKind::kDrainComplete, *session,
         "passive", buffered);
    journal_commit(recovery::CommitPoint::kDrainComplete, session);
  }
}

void SocketController::handle_sus_response(CtrlMsg msg) {
  SessionPtr session = find_session_from(msg.conn_id, msg.client_agent);
  if (session == nullptr) return;
  if (!verify_session_mac(*session, msg)) {
    mac_rejections_.add(1);
    return;
  }
  if (!admit_epoch(*session, msg)) return;
  session->set_peer_node(msg.node);
  session->responses().push(Session::CtrlResponse{
      static_cast<std::uint8_t>(msg.type), msg.sent_seq});
}

void SocketController::handle_sus_res(CtrlMsg msg) {
  SessionPtr session = find_session_from(msg.conn_id, msg.client_agent);
  if (session == nullptr) return;
  if (!verify_session_mac(*session, msg)) {
    mac_rejections_.add(1);
    return;
  }
  if (!admit_epoch(*session, msg)) return;
  // The peer has landed; record its new endpoints and release our parked
  // suspend (paper Fig. 4(a): SUS_RES -> SUS_RES_ACK).
  session->set_peer_node(msg.node);
  if (session->state() == ConnState::kSuspendWait) {
    (void)session->advance(ConnEvent::kRecvSusRes);  // -> SUSPENDED
  }
  session->update_flags([](Session::Flags& f) { f.remote_suspended = false; });

  CtrlMsg ack;
  ack.type = CtrlType::kSusResAck;
  ack.conn_id = msg.conn_id;
  (void)send_session_ctrl(msg.node.control, ack, *session);
  session->park_event().set();
}

void SocketController::handle_simple_ack(CtrlMsg msg) {
  SessionPtr session = find_session_from(msg.conn_id, msg.client_agent);
  if (session == nullptr) return;
  if (!verify_session_mac(*session, msg)) {
    mac_rejections_.add(1);
    return;
  }
  if (!admit_epoch(*session, msg)) return;
  session->responses().push(Session::CtrlResponse{
      static_cast<std::uint8_t>(msg.type), msg.sent_seq});
}

// ===========================================================================
// Resume

util::Status SocketController::resume(const SessionPtr& session) {
  if (session == nullptr) return util::InvalidArgument("null session");
  return do_resume(session);
}

util::Status SocketController::do_resume(const SessionPtr& session) {
  // Crash-recovery extension: a resume that times out because the peer
  // controller is mid-restart (replaying its journal) is retried with
  // capped exponential backoff. resume_max_attempts == 1 is the paper's
  // single-shot behavior.
  util::Duration backoff = config_.resume_retry_backoff;
  util::Stopwatch resume_sw(util::RealClock::instance());
  for (int attempt = 1;; ++attempt) {
    util::Status status = do_resume_once(session);
    if (status.ok()) {
      hist_resume_us_.record(obs::ms_to_us(resume_sw.elapsed_ms()));
      return status;
    }
    if (attempt >= config_.resume_max_attempts) return status;
    if (status.code() != util::StatusCode::kTimeout ||
        session->state() != ConnState::kSuspended) {
      return status;  // only a timed-out, still-resumable session retries
    }
    resume_retries_.add(1);
    NAPLET_LOG(kInfo, "recovery")
        << "conn " << session->conn_id() << ": resume attempt " << attempt
        << " timed out; retrying in " << backoff.count() / 1000 << "ms";
    if (stop_event_.wait_for(backoff)) {
      return util::Cancelled("controller stopping");
    }
    backoff = std::min(
        config_.resume_retry_cap,
        util::Duration(static_cast<std::int64_t>(
            static_cast<double>(backoff.count()) *
            config_.resume_retry_multiplier)));
  }
}

util::Status SocketController::do_resume_once(const SessionPtr& session) {
  const ConnState st = session->state();
  if (st == ConnState::kEstablished) return util::OkStatus();
  if (st == ConnState::kResumeWait) {
    // Parked resume: the peer owes us the reconnect (paper Fig. 4(b)) —
    // unless it begins another suspension first, which supersedes the
    // parked resume and leaves us passively SUSPENDED (also success: the
    // peer reconnects after its own migration).
    auto final_state = session->wait_state(
        [](ConnState s) {
          return s == ConnState::kEstablished || !is_live(s) ||
                 s == ConnState::kSuspended;
        },
        config_.resume_timeout);
    if (final_state && (*final_state == ConnState::kEstablished ||
                        (*final_state == ConnState::kSuspended &&
                         session->flags().remote_suspended))) {
      return util::OkStatus();
    }
    return util::Timeout("parked resume not completed for conn " +
                         std::to_string(session->conn_id()));
  }
  if (st != ConnState::kSuspended) {
    return util::FailedPrecondition(
        "cannot resume from state " + std::string(to_string(st)));
  }

  NAPLET_RETURN_IF_ERROR(session->advance(ConnEvent::kAppResume));
  const std::int64_t deadline = now_us() + config_.resume_timeout.count();

  // Escalating retry pacing: the common first failure is the peer still
  // settling (its passive suspend draining, or a location entry one step
  // stale), which resolves within a few ms. Start small and escalate to
  // the old fixed 20ms only if the peer stays unreachable.
  // Pauses wait on stop_event_ so a controller shutdown interrupts the
  // retry loop instead of letting it run out its deadline.
  util::Duration retry_pause = std::chrono::milliseconds(2);
  const auto pause_and_escalate = [&retry_pause, this] {
    const bool stopping = stop_event_.wait_for(retry_pause);
    retry_pause = std::min(kRetrySleep, retry_pause * 2);
    return stopping;
  };

  while (now_us() < deadline) {
    // A glare resume from the peer may have established us already.
    const ConnState current = session->state();
    if (current == ConnState::kEstablished) return util::OkStatus();
    if (current == ConnState::kResumeWait) {
      auto final_state = session->wait_state(
          [](ConnState s) {
            return s == ConnState::kEstablished || !is_live(s);
          },
          util::us(std::max<std::int64_t>(1, deadline - now_us())));
      if (final_state && *final_state == ConnState::kEstablished) {
        return util::OkStatus();
      }
      break;
    }
    if (!is_live(current)) return util::Aborted("connection closed");

    const agent::NodeInfo peer_node = session->peer_node();
    util::Stopwatch handoff_sw(util::RealClock::instance());
    auto stream = server_.network().connect(peer_node.redirector,
                                            std::chrono::seconds(1));
    if (!stream.ok()) {
      // Stale address (the peer may itself be migrating): refresh via the
      // location service and retry.
      auto fresh = server_.locations().try_lookup(session->peer_agent());
      if (fresh) session->set_peer_node(*fresh);
      if (pause_and_escalate()) return util::Cancelled("controller stopping");
      continue;
    }
    std::shared_ptr<net::Stream> data_socket(std::move(*stream));

    HandoffMsg req;
    req.type = HandoffType::kResume;
    req.conn_id = session->conn_id();
    req.trace_id = session->trace_id();
    req.verifier = session->verifier();
    req.sent_seq = session->sent_seq();
    req.recv_seq = session->highest_rx_seq();
    req.agent = session->local_agent().name();
    req.node = self_node();
    session->recorder().record(obs::FlightRecorder::Kind::kCtrlSend,
                               static_cast<std::uint8_t>(req.type), 1, 0);
    if (auto st2 = reply_handoff(*data_socket, req,
                                 util::ByteSpan(session->session_key().data(),
                                                session->session_key().size()));
        !st2.ok()) {
      data_socket->close();
      if (pause_and_escalate()) return util::Cancelled("controller stopping");
      continue;
    }
    auto reply_frame = net::read_frame(*data_socket);
    if (!reply_frame.ok()) {
      data_socket->close();
      if (pause_and_escalate()) return util::Cancelled("controller stopping");
      continue;
    }
    auto reply = HandoffMsg::decode(
        util::ByteSpan(reply_frame->data(), reply_frame->size()));
    if (!reply.ok()) {
      data_socket->close();
      return reply.status();
    }
    hist_handoff_us_.record(obs::ms_to_us(handoff_sw.elapsed_ms()));

    switch (reply->type) {
      case HandoffType::kResumeOk: {
        // Reliability invariant: every frame the peer sent before its
        // suspension must already be in our buffer — unless the
        // fault-tolerance extension can replay it from the peer's history
        // (the peer replays frames > our declared recv_seq itself).
        if (!config_.failure_recovery.enabled &&
            session->highest_rx_seq() < reply->sent_seq) {
          data_socket->close();
          return util::ProtocolError(
              "resume would lose data: have " +
              std::to_string(session->highest_rx_seq()) + ", peer sent " +
              std::to_string(reply->sent_seq));
        }
        session->set_peer_node(reply->node);
        session->close_stream();  // a glare may have installed the peer's
                                  // (now superseded) socket
        session->attach_stream(std::move(data_socket));
        // Fault-tolerance extension: replay anything the peer missed
        // (uncoordinated loss) before unblocking writers.
        if (config_.failure_recovery.enabled) {
          if (auto rp = session->retransmit_after(reply->recv_seq); !rp.ok()) {
            NAPLET_LOG(kWarn, "recovery")
                << "conn " << session->conn_id()
                << ": replay failed: " << rp.to_string();
          }
        }
        span(session->trace_id(), obs::SpanKind::kReplayDone, *session,
             "mover");
        if (auto adv = session->advance(ConnEvent::kRecvResumeOk);
            !adv.ok()) {
          // Glare tail: the peer's own attempt already established us; its
          // OK to our attempt means both sides now hold THIS stream.
          if (session->state() != ConnState::kEstablished) return adv;
        }
        session->update_flags([](Session::Flags& f) {
          f.remote_suspended = false;
        });
        journal_commit(recovery::CommitPoint::kResumeCommitted, session);
        span(session->trace_id(), obs::SpanKind::kResumeCommitted, *session,
             "mover");
        return util::OkStatus();
      }
      case HandoffType::kResumeWait: {
        // Peer has a parked suspend (paper Fig. 4(b)); it will reconnect
        // to us after its own migration.
        data_socket->close();
        if (auto adv = session->advance(ConnEvent::kRecvResumeWait);
            !adv.ok()) {
          // The peer's own RESUME may already have re-established us while
          // this stale reply was in flight; that is success, not an error.
          if (session->state() == ConnState::kEstablished) {
            return util::OkStatus();
          }
          return adv;
        }
        auto final_state = session->wait_state(
            [](ConnState s) {
              return s == ConnState::kEstablished || !is_live(s) ||
                     s == ConnState::kSuspended;
            },
            util::us(std::max<std::int64_t>(1, deadline - now_us())));
        if (final_state && (*final_state == ConnState::kEstablished ||
                            (*final_state == ConnState::kSuspended &&
                             session->flags().remote_suspended))) {
          // Established, or superseded by the peer's new suspension (it
          // reconnects to us after its migration).
          return util::OkStatus();
        }
        return util::Timeout("RESUME_WAIT not released for conn " +
                             std::to_string(session->conn_id()));
      }
      case HandoffType::kError:
      default: {
        // Peer in transit or glare rejection: refresh location and retry.
        data_socket->close();
        auto fresh = server_.locations().try_lookup(session->peer_agent());
        if (fresh) session->set_peer_node(*fresh);
        if (pause_and_escalate()) {
          return util::Cancelled("controller stopping");
        }
        continue;
      }
    }
  }

  (void)session->advance(ConnEvent::kTimeout);  // RES_SENT -> SUSPENDED
  return util::Timeout("resume timed out for conn " +
                       std::to_string(session->conn_id()));
}

void SocketController::handle_resume_request(
    std::shared_ptr<net::Stream> stream, HandoffMsg msg) {
  auto fail = [&](const std::string& reason) {
    HandoffMsg err;
    err.type = HandoffType::kError;
    err.conn_id = msg.conn_id;
    err.reason = reason;
    (void)reply_handoff(*stream, err, {});
    stream->close();
  };

  SessionPtr session = find_session_from(msg.conn_id, msg.agent);
  if (session == nullptr) {
    fail("unknown connection");
    return;
  }
  if (msg.verifier != session->verifier()) {
    fail("verifier mismatch");
    return;
  }
  const util::Bytes payload = msg.mac_payload();
  if (!verify_mac(util::ByteSpan(session->session_key().data(),
                                 session->session_key().size()),
                  util::ByteSpan(payload.data(), payload.size()),
                  util::ByteSpan(msg.mac.data(), msg.mac.size()))) {
    mac_rejections_.add(1);
    fail("MAC verification failed");
    return;
  }
  // A RESUME rides a freshly established stream, so it cannot itself be a
  // pre-crash leftover; record the (possibly bumped) sender epoch so stale
  // control datagrams from its previous incarnation are fenced from now on.
  (void)session->admit_peer_epoch(msg.epoch);
  if (msg.trace_id != 0) session->set_peer_trace_id(msg.trace_id);
  session->set_peer_node(msg.node);
  const util::ByteSpan key(session->session_key().data(),
                           session->session_key().size());

  // If this agent is itself migrating (or has a parked suspend), delay the
  // peer's resume and let our suspension finish (paper Fig. 4(b), Fig. 5).
  const bool parked = session->flags().local_suspend_parked;
  if (parked || agent_is_migrating(session->local_agent())) {
    HandoffMsg wait;
    wait.type = HandoffType::kResumeWait;
    wait.conn_id = msg.conn_id;
    (void)reply_handoff(*stream, wait, key);
    stream->close();
    session->update_flags([](Session::Flags& f) {
      f.peer_waiting_resume = true;
      f.remote_suspended = false;  // the peer has finished its migration
    });
    if (session->state() == ConnState::kSuspendWait) {
      (void)session->advance(ConnEvent::kRecvResume);  // -> SUSPENDED
    }
    session->park_event().set();
    return;
  }

  ConnState st = session->state();
  if (st == ConnState::kSusAcked) {
    // The passive suspension that produced our SUS_ACK is still draining
    // (finish_passive_suspend runs after the ACK is on the wire), and the
    // mover's RESUME routinely beats it here. Settling the drain before
    // the state check below turns a fail-reply-and-client-retry round
    // trip into a sub-millisecond wait -- the dominant term in zero-loss
    // resume latency.
    if (auto settled = session->wait_state(
            [](ConnState s) { return s != ConnState::kSusAcked; },
            std::chrono::milliseconds(250))) {
      st = *settled;
    }
  }
  if (st == ConnState::kEstablished) {
    // Either the peer lost our previous RESUME_OK and is retrying, or it
    // detected a link failure we have not noticed yet (our end may look
    // healthy until we next touch the socket). A MAC-verified RESUME from
    // the legitimate peer is itself evidence the old stream is dead:
    // accept the re-attach. (Simultaneous-resume glare is confined to the
    // RES_SENT state, which keeps its priority guard below — if we were
    // resuming ourselves we would not be in ESTABLISHED.)
    NAPLET_LOG(kDebug, "controller")
        << "conn " << msg.conn_id << ": re-attach on established connection";
    session->close_stream();
  } else if (st == ConnState::kResSent) {
    // Resume glare: the higher-priority side's attempt wins.
    if (session->local_has_priority()) {
      fail("resume glare: retry");
      return;
    }
    (void)session->advance(ConnEvent::kRecvResume);  // -> RES_ACKED
  } else if (st == ConnState::kSuspended || st == ConnState::kResumeWait) {
    (void)session->advance(ConnEvent::kRecvResume);  // -> RES_ACKED
  } else {
    fail("RESUME in state " + std::string(to_string(st)));
    return;
  }

  if (!config_.failure_recovery.enabled &&
      session->highest_rx_seq() < msg.sent_seq) {
    fail("resume would lose data");
    return;
  }

  session->attach_stream(stream);
  HandoffMsg ok;
  ok.type = HandoffType::kResumeOk;
  ok.conn_id = msg.conn_id;
  ok.trace_id = msg.trace_id;  // the mover's migration trace
  ok.sent_seq = session->sent_seq();
  ok.recv_seq = session->highest_rx_seq();
  session->recorder().record(obs::FlightRecorder::Kind::kCtrlSend,
                             static_cast<std::uint8_t>(ok.type), 1, 0);
  // Reply BEFORE advancing: advancing wakes writers blocked on the state
  // cell, and their data frames must not interleave ahead of the
  // RESUME_OK handshake frame on this same stream.
  if (auto st2 = reply_handoff(*stream, ok, key); !st2.ok()) {
    session->close_stream();
    return;
  }
  // Fault-tolerance extension: replay frames the mover missed, before
  // advancing (writers stay blocked until the state change, so replayed
  // frames keep their position ahead of new traffic).
  if (config_.failure_recovery.enabled) {
    if (auto rp = session->retransmit_after(msg.recv_seq); !rp.ok()) {
      NAPLET_LOG(kWarn, "recovery")
          << "conn " << session->conn_id()
          << ": replay failed: " << rp.to_string();
    }
  }
  span(msg.trace_id, obs::SpanKind::kReplayDone, *session, "receiver");
  if (session->state() == ConnState::kResAcked) {
    (void)session->advance(ConnEvent::kExecResumed);  // -> ESTABLISHED
  }
  // The connection is live again: any prior suspension bookkeeping is
  // obsolete (otherwise a later migration of this side would wrongly
  // conclude the peer still owes a reconnect).
  session->update_flags([](Session::Flags& f) {
    f.remote_suspended = false;
  });
  journal_commit(recovery::CommitPoint::kResumeCommitted, session);
  span(msg.trace_id, obs::SpanKind::kResumeCommitted, *session, "receiver");
  session->resume_event().set();
}

// ===========================================================================
// Close

util::Status SocketController::close(const SessionPtr& session) {
  if (session == nullptr) return util::InvalidArgument("null session");
  const ConnState st = session->state();
  if (!is_live(st)) return util::OkStatus();  // idempotent
  if (st != ConnState::kEstablished && st != ConnState::kSuspended) {
    return util::FailedPrecondition(
        "cannot close from state " + std::string(to_string(st)));
  }

  NAPLET_RETURN_IF_ERROR(session->advance(ConnEvent::kAppClose));
  CtrlMsg cls;
  cls.type = CtrlType::kCls;
  cls.conn_id = session->conn_id();
  // Like suspend, close declares the sender's data high-water mark so the
  // peer can flush everything in transmission before tearing down.
  cls.sent_seq = session->freeze_writes_and_mark();
  (void)send_session_ctrl(session->peer_node().control, cls, *session);

  // Same draining discipline as suspension while waiting for the ACK (the
  // peer's freeze may be stuck behind a backpressured writer).
  std::optional<Session::CtrlResponse> resp;
  {
    const std::int64_t deadline =
        util::RealClock::instance().now_us() +
        config_.ctrl_response_timeout.count();
    while (util::RealClock::instance().now_us() < deadline) {
      resp = wait_response(*session, {CtrlType::kClsAck},
                           std::chrono::milliseconds(20));
      if (resp) break;
      session->pump_available(std::chrono::milliseconds(20));
    }
  }
  if (resp) {
    // Pull the peer's final frames into the buffer; they remain readable
    // by the application even after the state reaches CLOSED.
    (void)session->drain_to_mark(resp->sent_seq, config_.drain_timeout);
  }
  session->close_stream();
  (void)session->advance(resp ? ConnEvent::kRecvClsAck : ConnEvent::kTimeout);
  remove_session(session);
  journal_remove(recovery::CommitPoint::kClosed, session->conn_id());
  session->park_event().set();
  session->resume_event().set();
  return util::OkStatus();
}

void SocketController::handle_cls(CtrlMsg msg) {
  SessionPtr session = find_session_from(msg.conn_id, msg.client_agent);
  CtrlMsg ack;
  ack.conn_id = msg.conn_id;
  if (session == nullptr) {
    // Already closed (duplicate CLS): re-ACK so the peer can finish.
    ack.type = CtrlType::kClsAck;
    (void)send_ctrl(msg.node.control, ack, {});
    return;
  }
  if (!verify_session_mac(*session, msg)) {
    mac_rejections_.add(1);
    ack.type = CtrlType::kReject;
    ack.reason = "MAC verification failed";
    (void)send_session_ctrl(msg.node.control, ack, *session);
    return;
  }
  if (!admit_epoch(*session, msg)) return;

  const ConnState st = session->state();
  if (st == ConnState::kEstablished || st == ConnState::kSuspended) {
    (void)session->advance(ConnEvent::kRecvCls);  // -> CLOSE_ACKED
  }
  ack.type = CtrlType::kClsAck;
  ack.sent_seq = session->freeze_writes_and_mark();
  (void)send_session_ctrl(msg.node.control, ack, *session);
  // Flush the closer's in-flight frames into the buffer before teardown;
  // the application can still read them after CLOSED.
  (void)session->drain_to_mark(msg.sent_seq, config_.drain_timeout);
  session->close_stream();
  if (session->state() == ConnState::kCloseAcked) {
    (void)session->advance(ConnEvent::kExecClosed);  // -> CLOSED
  }
  remove_session(session);
  journal_remove(recovery::CommitPoint::kClosed, session->conn_id());
  session->park_event().set();
  session->resume_event().set();
}

// ===========================================================================
// ConnectionMigrator (docking-system hooks)

util::Status SocketController::prepare_migration(const agent::AgentId& id) {
  // Atomic whole-agent sweep: every established connection suspends
  // behind one barrier with a two-phase journal commit, instead of the
  // serial one-at-a-time walk below.
  if (config_.group_suspend) return group_suspend(id);
  {
    util::MutexLock lock(mu_);
    migrating_agents_.insert(id);
  }
  for (const SessionPtr& session : sessions_of(id)) {
    auto status = suspend_for_migration(session, id);
    if (!status.ok()) {
      util::MutexLock lock(mu_);
      migrating_agents_.erase(id);
      return status;
    }
  }
  return util::OkStatus();
}

util::Status SocketController::suspend_for_migration(
    const SessionPtr& session, const agent::AgentId& id) {
  const std::int64_t deadline = now_us() + config_.park_timeout.count();
  for (;;) {
    const ConnState st = session->state();
    switch (st) {
      case ConnState::kEstablished:
        return active_suspend(session);

      case ConnState::kSuspended:
      case ConnState::kSuspendWait: {
        const Session::Flags f = session->flags();
        if (!f.remote_suspended) return util::OkStatus();  // ours already

        // Remotely suspended: the peer agent is migrating. Decide by
        // priority (paper §3.2): the high-priority side may proceed when it
        // also holds a local suspension against the same peer on another
        // connection (which guarantees the peer's own sweep will park);
        // otherwise it must wait its turn.
        if (session->local_has_priority()) {
          bool holds_local = false;
          for (const SessionPtr& other : sessions_of(id)) {
            if (other == session) continue;
            if (other->peer_agent() != session->peer_agent()) continue;
            const ConnState ost = other->state();
            if ((ost == ConnState::kSuspended ||
                 ost == ConnState::kSusSent) &&
                !other->flags().remote_suspended) {
              holds_local = true;
              break;
            }
          }
          if (holds_local) return util::OkStatus();
        }

        // Park (SUSPEND_WAIT) until the peer finishes migrating.
        if (st == ConnState::kSuspended) {
          (void)session->advance(ConnEvent::kAppSuspend);  // -> SUSPEND_WAIT
        }
        session->update_flags([](Session::Flags& f2) {
          f2.local_suspend_parked = true;
        });
        const bool released =
            session->park_event().wait_for(config_.park_timeout);
        session->park_event().reset();
        session->update_flags([](Session::Flags& f2) {
          f2.local_suspend_parked = false;
        });
        if (!released) {
          return util::Timeout("parked suspend not released for conn " +
                               std::to_string(session->conn_id()));
        }
        if (!is_live(session->state())) return util::OkStatus();
        return util::OkStatus();
      }

      case ConnState::kSusAcked:
      case ConnState::kSusSent:
      case ConnState::kResSent:
      case ConnState::kResAcked:
      case ConnState::kResumeWait:
        // A transition is in flight on another thread; let it settle.
        if (now_us() >= deadline) {
          return util::Timeout("connection stuck in " +
                               std::string(to_string(st)));
        }
        session->wait_state(
            [st](ConnState s) { return s != st; }, kStatePollSlice);
        continue;

      case ConnState::kClosed:
      case ConnState::kCloseSent:
      case ConnState::kCloseAcked:
        return util::OkStatus();  // nothing to migrate

      case ConnState::kListen:
      case ConnState::kConnectSent:
      case ConnState::kConnectAcked:
        // Connection setup mid-flight during migration: treat as settled
        // enough — wait briefly, then give up gracefully.
        if (now_us() >= deadline) {
          return util::Timeout("connection stuck in " +
                               std::string(to_string(st)));
        }
        session->wait_state(
            [st](ConnState s) { return s != st; }, kStatePollSlice);
        continue;
    }
  }
}

util::Bytes SocketController::export_sessions(const agent::AgentId& id) {
  const std::vector<SessionPtr> sessions = sessions_.extract_agent(id);
  {
    util::MutexLock lock(mu_);
    migrating_agents_.erase(id);
  }

  util::BytesWriter w;
  w.u32(static_cast<std::uint32_t>(sessions.size()));
  for (const SessionPtr& session : sessions) {
    // Seal first: a recv() racing this export must not pop a frame that
    // the snapshot below also captures (the clone would replay it — a
    // duplicate delivery). After the seal every pop fails; pops that won
    // the race are already absent from the buffer we serialize.
    session->seal_buffer_for_export();
    const util::Bytes blob = session->export_state();
    w.bytes(util::ByteSpan(blob.data(), blob.size()));
    // The live state now travels in the blob; kill the original so stale
    // handles cannot double-deliver its buffered frames.
    session->mark_moved();
    // Departed: this controller is no longer responsible for the
    // connection. (If the migration later fails the destination's own
    // journal has it from kImported on.)
    journal_remove(recovery::CommitPoint::kDeparted, session->conn_id());
    if (redirector_) redirector_->release_lease(session->conn_id());
  }
  return std::move(w).take();
}

util::Status SocketController::import_sessions(const agent::AgentId& id,
                                               util::ByteSpan data) {
  if (data.empty()) return util::OkStatus();
  util::BytesReader r(data);
  auto count = r.u32();
  if (!count.ok()) return count.status();
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto blob = r.bytes();
    if (!blob.ok()) return blob.status();
    auto session = Session::import_state(
        util::ByteSpan(blob->data(), blob->size()));
    if (!session.ok()) return session.status();
    if ((*session)->local_agent() != id) {
      return util::ProtocolError("imported session belongs to '" +
                                 (*session)->local_agent().name() + "'");
    }
    if (config_.failure_recovery.enabled) {
      (*session)->enable_history(config_.failure_recovery.history_bytes);
    }
    insert_session(*session);
    journal_commit(recovery::CommitPoint::kImported, *session);
  }
  return util::OkStatus();
}

util::Status SocketController::complete_migration(const agent::AgentId& id) {
  {
    util::MutexLock lock(mu_);
    migrating_agents_.erase(id);
  }
  util::Status first_error = util::OkStatus();
  for (const SessionPtr& session : sessions_of(id)) {
    const Session::Flags f = session->flags();

    if (f.peer_parked) {
      // Overlapped winner (paper Fig. 4(a)): tell the parked peer we are
      // done; stay SUSPENDED — the peer migrates next and reconnects to us.
      CtrlMsg sus_res;
      sus_res.type = CtrlType::kSusRes;
      sus_res.conn_id = session->conn_id();
      (void)send_session_ctrl(session->peer_node().control, sus_res,
                              *session);
      auto resp = wait_response(*session, {CtrlType::kSusResAck},
                                config_.ctrl_response_timeout);
      if (!resp) {
        NAPLET_LOG(kWarn, "controller")
            << "conn " << session->conn_id() << ": no SUS_RES_ACK";
      }
      session->update_flags([](Session::Flags& f2) {
        f2.peer_parked = false;
      });
      continue;
    }

    if (f.peer_waiting_resume) {
      // Non-overlapped tail (paper Fig. 4(b)/Fig. 5): the peer's resume was
      // delayed by our RESUME_WAIT; we owe the reconnect.
      session->update_flags([](Session::Flags& f2) {
        f2.peer_waiting_resume = false;
      });
      auto status = do_resume(session);
      if (!status.ok() && first_error.ok()) first_error = status;
      continue;
    }

    if (f.remote_suspended) {
      // The peer is mid-migration; it reconnects to us when it lands.
      continue;
    }

    auto status = do_resume(session);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

void SocketController::close_all(const agent::AgentId& id) {
  for (const SessionPtr& session : sessions_of(id)) {
    if (session->state() == ConnState::kEstablished ||
        session->state() == ConnState::kSuspended) {
      (void)close(session);
    } else {
      session->close_stream();
      remove_session(session);
    }
  }
  if (is_listening(id)) (void)unlisten(id);
}

}  // namespace naplet::nsock
