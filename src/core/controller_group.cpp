// SocketController — atomic whole-agent group suspend (ISSUE 9).
//
// The paper's §3.2 sweep suspends an agent's connections one at a time,
// so an agent with N live connections migrates through a window where
// some connections are frozen and others still deliver. The group path
// closes that window with a two-phase barrier:
//
//  * phase 1 (*prepare*): every ESTABLISHED member is frozen locally in
//    one pass (the local half of the consistent cut — no SUS leaves
//    until every member's write mark is pinned), then one worker per
//    member sends SUS carrying the group id, waits for the SUS_ACK,
//    drains to the peer's declared mark, and arrives at the barrier.
//    The peer side mirrors the cut: on the FIRST group SUS it pre-
//    freezes every other session facing the migrating agent
//    (group_freeze_inbound), so no member's exported buffer can contain
//    data the application produced after another member's cut point.
//  * phase 2 (*commit*): once the barrier trips, the coordinator closes
//    each member's stream, completes the FSM arc to SUSPENDED, and
//    journals a group-prepare (manifest of every member's blob) /
//    group-commit pair through the DurableStore. A crash between the
//    two records leaves a dangling prepare that replay rolls FORWARD
//    (the prepare is only written after the barrier, when every peer
//    has sealed) — the whole group recovers suspended, never half of
//    it. A live rollback journals an explicit group-abort instead.
//
// If ANY member's peer refuses, times out, or the member is aborted
// mid-prepare, the ENTIRE group rolls back: un-acknowledged members
// return to ESTABLISHED over their healthy stream (the single-connection
// kSuspendAbort arc), acknowledged members complete the suspension and
// immediately resume through the redirector — blocked senders and
// receivers wake, and exactly-once delivery is preserved by the resume
// path's replay + duplicate suppression.
#include <thread>

#include "core/controller.hpp"
#include "crypto/random.hpp"
#include "fault/fault.hpp"
#include "util/log.hpp"

namespace naplet::nsock {

namespace {

constexpr util::Duration kPrepareSlice = std::chrono::milliseconds(20);
constexpr util::Duration kWatchdogSlice = std::chrono::milliseconds(50);
constexpr util::Duration kAckHarvest = std::chrono::milliseconds(100);

std::int64_t now_us() { return util::RealClock::instance().now_us(); }

}  // namespace

util::Status SocketController::group_suspend(const agent::AgentId& id) {
  util::Stopwatch sweep_sw(util::RealClock::instance());
  {
    util::MutexLock lock(mu_);
    migrating_agents_.insert(id);
  }
  // ESTABLISHED connections form the barrier group; everything else
  // (already suspended, parked, mid-close) is not part of the cut and
  // settles through the serial §3.2 walk afterwards.
  std::vector<SessionPtr> members;
  std::vector<SessionPtr> rest;
  for (const SessionPtr& session : sessions_of(id)) {
    if (session->state() == ConnState::kEstablished) {
      members.push_back(session);
    } else {
      rest.push_back(session);
    }
  }
  util::Status status = util::OkStatus();
  if (!members.empty()) status = group_suspend_sweep(id, members);
  if (status.ok()) {
    for (const SessionPtr& session : rest) {
      status = suspend_for_migration(session, id);
      if (!status.ok()) break;
    }
  }
  if (!status.ok()) {
    util::MutexLock lock(mu_);
    migrating_agents_.erase(id);
    return status;
  }
  hist_group_suspend_us_.record(obs::ms_to_us(sweep_sw.elapsed_ms()));
  return util::OkStatus();
}

util::Status SocketController::group_suspend_sweep(
    const agent::AgentId& id, const std::vector<SessionPtr>& members) {
  // Group id: epoch in the high bits so ids from different incarnations
  // of this controller never collide in the journal.
  const std::uint64_t group_id =
      (epoch_.load() << 24) | next_group_id_.fetch_add(1);
  std::vector<std::uint64_t> conn_ids;
  conn_ids.reserve(members.size());
  for (const SessionPtr& session : members) {
    conn_ids.push_back(session->conn_id());
  }
  auto barrier = group_coordinator_.begin(id.name(), group_id, conn_ids);
  if (barrier == nullptr) {
    return util::FailedPrecondition("group suspend already in flight for " +
                                    id.name());
  }

  util::Stopwatch prepare_sw(util::RealClock::instance());

  // Local half of the consistent cut: pin EVERY member's write mark
  // before the first SUS leaves. From here no application send on any
  // member can slip past another member's cut point.
  std::vector<SessionPtr> frozen;
  util::Status freeze_error = util::OkStatus();
  for (const SessionPtr& session : members) {
    if (auto st = session->advance(ConnEvent::kAppSuspend); !st.ok()) {
      freeze_error = st;  // raced a close/peer suspend; veto the group
      break;
    }
    session->set_trace_id(crypto::random_u64() | 1);
    // This round's bookkeeping; peer_declared_seq doubles as the
    // "SUS_ACK received" marker for the rollback classifier below.
    session->update_flags([](Session::Flags& f) {
      f.remote_suspended = false;
      f.peer_waiting_resume = false;
      f.peer_declared_seq = 0;
    });
    (void)session->freeze_writes_and_mark();
    frozen.push_back(session);
  }
  if (!freeze_error.ok()) {
    barrier->fail("member freeze failed: " + freeze_error.to_string());
    group_rollback(frozen, group_id, freeze_error.to_string());
    barrier->resolve(group::Verdict::kAbort);
    group_coordinator_.end(id.name());
    return freeze_error;
  }

  // Phase 1: one prepare worker per member, all concurrent.
  std::vector<std::thread> workers;
  workers.reserve(members.size());
  for (const SessionPtr& session : members) {
    workers.emplace_back([this, session, barrier] {
      if (auto st = group_prepare_member(session, barrier); !st.ok()) {
        barrier->fail("conn " + std::to_string(session->conn_id()) + ": " +
                      st.to_string());
      }
    });
  }
  const bool prepared = barrier->await_prepared(config_.group_prepare_timeout);
  for (std::thread& worker : workers) worker.join();
  hist_group_prepare_us_.record(obs::ms_to_us(prepare_sw.elapsed_ms()));

  if (!prepared) {
    const std::string reason = barrier->failure();
    group_rollback(members, group_id, reason);
    barrier->resolve(group::Verdict::kAbort);
    group_coordinator_.end(id.name());
    return util::Aborted("group " + std::to_string(group_id) +
                         " rolled back: " + reason);
  }

  // Phase 2: commit. The cut is taken — close the streams, complete the
  // FSM, and make the group durable as an atomic prepare/commit pair.
  util::Stopwatch commit_sw(util::RealClock::instance());
  for (const SessionPtr& session : members) {
    session->close_stream();
    (void)session->advance(ConnEvent::kRecvSusAck);  // -> SUSPENDED
  }
  if (store_) {
    recovery::GroupManifest manifest;
    manifest.members.reserve(members.size());
    for (const SessionPtr& session : members) {
      manifest.members.push_back({session->conn_id(),
                                  session->export_state()});
    }
    const util::Bytes blob = manifest.encode();
    if (auto st = store_->record(recovery::CommitPoint::kGroupPrepare,
                                 group_id,
                                 util::ByteSpan(blob.data(), blob.size()));
        !st.ok()) {
      NAPLET_LOG(kError, "recovery")
          << "group " << group_id
          << ": prepare journal failed: " << st.to_string();
      group_rollback(members, group_id, st.to_string());
      barrier->resolve(group::Verdict::kAbort);
      group_coordinator_.end(id.name());
      return st;
    }
  }

  // The crash window between prepare and commit (chaos scenario 8): a
  // kill here leaves the dangling prepare that recovery rolls FORWARD —
  // every peer has already sealed, so the manifest folds in and the
  // whole group recovers SUSPENDED, never a mix. An error aborts the
  // group in-process instead (journaled group-abort + full rollback).
  const fault::Decision d = fault::hit("ctrl.group.commit");
  if (d.action == fault::Action::kKill) {
    group_coordinator_.end(id.name());
    return util::Unavailable("fault: killed between group prepare and "
                             "commit");
  }
  if (d.action == fault::Action::kError) {
    if (store_) store_->abort_group(group_id);
    group_rollback(members, group_id, "fault: group commit errored");
    barrier->resolve(group::Verdict::kAbort);
    group_coordinator_.end(id.name());
    return util::Unavailable("fault: group commit errored");
  }

  if (store_) {
    if (auto st = store_->record(recovery::CommitPoint::kGroupCommit,
                                 group_id, {});
        !st.ok()) {
      NAPLET_LOG(kError, "recovery")
          << "group " << group_id
          << ": commit journal failed: " << st.to_string();
    }
  }
  for (const SessionPtr& session : members) {
    span(session->trace_id(), obs::SpanKind::kJournalCommit, *session,
         "group-commit", group_id);
  }
  hist_group_commit_us_.record(obs::ms_to_us(commit_sw.elapsed_ms()));
  barrier->resolve(group::Verdict::kCommit);
  group_coordinator_.end(id.name());
  return util::OkStatus();
}

util::Status SocketController::group_prepare_member(
    const SessionPtr& session,
    const std::shared_ptr<group::GroupBarrier>& barrier) {
  // The member is already frozen (kSusSent, write mark pinned); this
  // worker only runs the wire exchange up to the barrier.
  const std::uint64_t mark = session->sent_seq();
  CtrlMsg sus;
  sus.type = CtrlType::kSus;
  sus.conn_id = session->conn_id();
  sus.sent_seq = mark;
  sus.group_id = barrier->group_id();
  (void)send_session_ctrl(session->peer_node().control, sus, *session);
  span(session->trace_id(), obs::SpanKind::kSuspendSent, *session,
       "group SUS", mark);

  // Wait for the peer's verdict, keeping our receive side draining (the
  // peer can only reply after freezing writers that may be blocked on
  // TCP backpressure only our reads relieve) and polling the barrier so
  // a cancellation elsewhere in the group wakes this worker within one
  // slice — the bounded-wake contract for abort_session racing the
  // prepare.
  std::optional<Session::CtrlResponse> resp;
  const std::int64_t now0 = now_us();
  const std::int64_t deadline = now0 + config_.ctrl_response_timeout.count();
  const std::int64_t resend_every = std::max<std::int64_t>(
      std::chrono::microseconds(std::chrono::milliseconds(250)).count(),
      config_.ctrl_response_timeout.count() / 4);
  std::int64_t next_resend = now0 + resend_every;
  while (now_us() < deadline) {
    if (barrier->cancelled()) {
      return util::Aborted("group cancelled: " + barrier->failure());
    }
    resp = wait_response(
        *session, {CtrlType::kSusAck, CtrlType::kAckWait, CtrlType::kReject},
        kPrepareSlice);
    if (resp) break;
    if (now_us() >= next_resend) {
      next_resend = now_us() + resend_every;
      if (auto fresh = server_.locations().try_lookup(session->peer_agent())) {
        session->set_peer_node(*fresh);
      }
      (void)send_session_ctrl(session->peer_node().control, sus, *session,
                              util::us(resend_every));
    }
    session->pump_available(kPrepareSlice);
  }
  if (!resp) {
    return util::Timeout("no SUS response for group member " +
                         std::to_string(session->conn_id()));
  }
  if (resp->type == static_cast<std::uint8_t>(CtrlType::kReject)) {
    // Unlike the solo path (where REJECT means mid-transit, retry), a
    // refusal during a group prepare vetoes the whole group.
    return util::PermissionDenied("peer refused group prepare for conn " +
                                  std::to_string(session->conn_id()));
  }
  if (resp->type == static_cast<std::uint8_t>(CtrlType::kAckWait)) {
    // Overlapped concurrent migration and the peer outranks us. Parking
    // one member would park the whole group behind a foreign migration;
    // veto instead and let the caller retry the sweep afterwards.
    return util::FailedPrecondition(
        "peer outranks group prepare (ACK_WAIT) for conn " +
        std::to_string(session->conn_id()));
  }

  // SUS_ACK. Record the ack (the rollback classifier keys on a non-zero
  // peer_declared_seq) and drain every in-flight frame to the peer's
  // mark. The stream stays open until the commit phase.
  session->update_flags([&](Session::Flags& f) {
    f.peer_declared_seq = resp->sent_seq;
  });
  util::Stopwatch drain_sw(util::RealClock::instance());
  auto drained = session->drain_to_mark(resp->sent_seq, config_.drain_timeout);
  hist_drain_us_.record(obs::ms_to_us(drain_sw.elapsed_ms()));
  if (!drained.ok()) return drained;
  span(session->trace_id(), obs::SpanKind::kDrainComplete, *session, "group",
       session->buffered_bytes());

  if (!barrier->arrive()) {
    return util::Aborted("group barrier cancelled: " + barrier->failure());
  }
  return util::OkStatus();
}

void SocketController::group_rollback(const std::vector<SessionPtr>& members,
                                      std::uint64_t group_id,
                                      const std::string& reason) {
  util::Stopwatch rollback_sw(util::RealClock::instance());
  if (store_) store_->abort_group(group_id);
  NAPLET_LOG(kWarn, "controller")
      << "group " << group_id << ": rolling back " << members.size()
      << " connection(s): " << reason;
  // Harvest acknowledgements that raced the failure: a worker that bailed
  // on barrier cancellation may have left its SUS_ACK unread in the
  // response queue — but that ack means the peer HAS sealed its stream,
  // and classifying the member "un-acked" below would revert this side
  // over a stream the peer already closed. A short bounded poll closes
  // the race (the ack, if it exists, is normally queued already).
  for (const SessionPtr& session : members) {
    if (session->state() != ConnState::kSusSent) continue;
    if (session->flags().peer_declared_seq != 0) continue;
    if (auto resp = wait_response(*session, {CtrlType::kSusAck},
                                  kAckHarvest)) {
      session->update_flags([&](Session::Flags& f) {
        f.peer_declared_seq = resp->sent_seq;
      });
    }
  }
  for (const SessionPtr& session : members) {
    switch (session->state()) {
      case ConnState::kSusSent: {
        const bool acked = session->flags().peer_declared_seq != 0;
        if (!acked && session->has_stream() && !session->is_broken()) {
          // Never acknowledged: the peer took no action and the stream
          // is healthy — the single-connection rollback arc returns the
          // member to service; blocked senders wake on the state change.
          (void)session->advance(ConnEvent::kSuspendAbort);
          break;
        }
        // The peer already acknowledged (it is SUSPENDED with a closed
        // stream) or the stream died: complete the suspension locally,
        // then reconnect through the redirector. The resume replay plus
        // receiver duplicate suppression keeps delivery exactly-once.
        //
        // A harvested member never ran the worker's drain: the peer
        // flushed everything up to its declared mark before sealing, and
        // those frames must land in our buffer before the stream closes —
        // without failure recovery, resume refuses rather than lose them.
        const std::uint64_t mark = session->flags().peer_declared_seq;
        if (acked && session->has_stream()) {
          if (auto st = session->drain_to_mark(mark, config_.drain_timeout);
              !st.ok()) {
            NAPLET_LOG(kWarn, "controller")
                << "group " << group_id
                << ": rollback drain incomplete for conn "
                << session->conn_id() << ": " << st.to_string();
          }
        }
        session->close_stream();
        (void)session->advance(ConnEvent::kRecvSusAck);  // -> SUSPENDED
        if (auto st = do_resume(session); !st.ok()) {
          NAPLET_LOG(kError, "controller")
              << "group " << group_id << ": rollback resume failed for conn "
              << session->conn_id() << ": " << st.to_string();
        }
        break;
      }
      case ConnState::kSuspended: {
        // Commit-phase abort: the member completed its suspension;
        // resume it back into service.
        if (auto st = do_resume(session); !st.ok()) {
          NAPLET_LOG(kError, "controller")
              << "group " << group_id << ": rollback resume failed for conn "
              << session->conn_id() << ": " << st.to_string();
        }
        break;
      }
      default:
        // Aborted/closed mid-prepare (the member that vetoed the group):
        // nothing to restore.
        break;
    }
    // Belt and braces for parked waiters: rollback must leave no one
    // blocked on a group that no longer exists.
    session->park_event().set();
  }
  group_rollbacks_.add(1);
  hist_group_rollback_us_.record(obs::ms_to_us(rollback_sw.elapsed_ms()));
}

void SocketController::group_freeze_inbound(const SessionPtr& trigger,
                                            const CtrlMsg& msg) {
  // Peer half of the consistent cut: the FIRST group SUS from a migrating
  // agent freezes every OTHER established session we hold facing that
  // agent, so nothing the application writes after this instant can land
  // in a buffer a later member exports. Each pre-frozen session completes
  // its suspension when its own SUS arrives (handle_sus, kSusAcked +
  // group_prefrozen); a watchdog reverts orphans if the group dies first.
  const std::string mover = msg.client_agent;
  std::vector<SessionPtr> candidates;
  for (const SessionPtr& session : sessions_.snapshot_all()) {
    if (session == trigger) continue;
    if (session->peer_agent().name() != mover) continue;
    candidates.push_back(session);
  }
  std::vector<std::uint64_t> frozen_ids;
  for (const SessionPtr& session : candidates) {
    if (session->state() != ConnState::kEstablished) continue;
    if (!session->advance(ConnEvent::kRecvSus).ok()) continue;  // raced
    (void)session->freeze_writes_and_mark();
    session->update_flags([](Session::Flags& f) {
      f.remote_suspended = true;
      f.group_prefrozen = true;
    });
    if (msg.trace_id != 0) session->set_peer_trace_id(msg.trace_id);
    frozen_ids.push_back(session->conn_id());
  }
  if (frozen_ids.empty() || stopped_.load()) return;

  auto done = std::make_shared<std::atomic<bool>>(false);
  std::thread watchdog([this, mover, frozen_ids, done] {
    group_prefreeze_watchdog(mover, frozen_ids);
    done->store(true);
  });
  {
    util::MutexLock lock(mu_);
    // Reap watchdogs that already finished (join is immediate for them).
    for (auto it = prefreeze_watchdogs_.begin();
         it != prefreeze_watchdogs_.end();) {
      if (it->done->load()) {
        if (it->thread.joinable()) it->thread.join();
        it = prefreeze_watchdogs_.erase(it);
      } else {
        ++it;
      }
    }
    prefreeze_watchdogs_.push_back({std::move(watchdog), done});
  }
}

void SocketController::group_prefreeze_watchdog(
    std::string peer_agent, std::vector<std::uint64_t> conn_ids) {
  // Each pre-frozen session either receives its own SUS (the flag clears
  // and the passive suspension completes) or the group died — revert the
  // orphans to ESTABLISHED through the kSusAcked -> kSuspendAbort arc so
  // their blocked writers return to service bounded.
  const std::int64_t deadline =
      now_us() + config_.group_prepare_timeout.count() +
      config_.ctrl_response_timeout.count();
  while (now_us() < deadline && !stopped_.load()) {
    bool pending = false;
    for (std::uint64_t conn_id : conn_ids) {
      const SessionPtr session = find_session_from(conn_id, peer_agent);
      if (session == nullptr) continue;
      if (session->state() == ConnState::kSusAcked &&
          session->flags().group_prefrozen) {
        pending = true;
        break;
      }
    }
    if (!pending) return;  // every pre-freeze resolved
    if (stop_event_.wait_for(kWatchdogSlice)) break;  // controller stopping
  }
  for (std::uint64_t conn_id : conn_ids) {
    const SessionPtr session = find_session_from(conn_id, peer_agent);
    if (session == nullptr) continue;
    if (session->state() != ConnState::kSusAcked ||
        !session->flags().group_prefrozen) {
      continue;
    }
    session->update_flags([](Session::Flags& f) {
      f.group_prefrozen = false;
      f.remote_suspended = false;
    });
    (void)session->advance(ConnEvent::kSuspendAbort);  // -> ESTABLISHED
    NAPLET_LOG(kWarn, "controller")
        << "conn " << conn_id << ": reverted orphaned group pre-freeze for "
        << peer_agent;
  }
}

}  // namespace naplet::nsock
