#include "core/naplet_socket.hpp"

namespace naplet::nsock {

SocketController* controller_of(agent::AgentContext& ctx) {
  return ctx.service_as<SocketController>(SocketController::kServiceName);
}

util::StatusOr<std::unique_ptr<NapletSocket>> NapletSocket::open(
    agent::AgentContext& ctx, const agent::AgentId& peer,
    ConnectBreakdown* breakdown) {
  SocketController* controller = controller_of(ctx);
  if (controller == nullptr) {
    return util::FailedPrecondition(
        "this server has no NapletSocket controller");
  }
  auto session = controller->connect(ctx.self(), peer, breakdown);
  if (!session.ok()) return session.status();
  return std::make_unique<NapletSocket>(*controller, std::move(*session));
}

util::StatusOr<std::unique_ptr<NapletSocket>> NapletSocket::reattach(
    agent::AgentContext& ctx, std::uint64_t conn_id) {
  SocketController* controller = controller_of(ctx);
  if (controller == nullptr) {
    return util::FailedPrecondition(
        "this server has no NapletSocket controller");
  }
  SessionPtr session = controller->session_by_id(conn_id);
  if (session == nullptr) {
    return util::NotFound("connection " + std::to_string(conn_id) +
                          " not present on this server");
  }
  if (session->local_agent() != ctx.self()) {
    return util::PermissionDenied("connection " + std::to_string(conn_id) +
                                  " belongs to agent '" +
                                  session->local_agent().name() + "'");
  }
  return std::make_unique<NapletSocket>(*controller, std::move(session));
}

util::Status NapletSocket::send(util::ByteSpan data) {
  return session_->send(data, controller_->config().io_timeout);
}

util::Status NapletSocket::send(std::string_view text) {
  return send(util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

util::StatusOr<RecvResult> NapletSocket::recv(util::Duration timeout) {
  return session_->recv(timeout);
}

util::Status NapletSocket::suspend() { return controller_->suspend(session_); }
util::Status NapletSocket::resume() { return controller_->resume(session_); }
util::Status NapletSocket::close() { return controller_->close(session_); }

util::StatusOr<std::unique_ptr<NapletServerSocket>> NapletServerSocket::open(
    agent::AgentContext& ctx) {
  SocketController* controller = controller_of(ctx);
  if (controller == nullptr) {
    return util::FailedPrecondition(
        "this server has no NapletSocket controller");
  }
  NAPLET_RETURN_IF_ERROR(controller->listen(ctx.self()));
  return std::make_unique<NapletServerSocket>(*controller, ctx.self());
}

NapletServerSocket::~NapletServerSocket() { close(); }

util::StatusOr<std::unique_ptr<NapletSocket>> NapletServerSocket::accept(
    util::Duration timeout) {
  if (closed_) return util::FailedPrecondition("server socket closed");
  auto session = controller_->accept(self_, timeout);
  if (!session.ok()) return session.status();
  return std::make_unique<NapletSocket>(*controller_, std::move(*session));
}

void NapletServerSocket::close() {
  if (closed_) return;
  closed_ = true;
  (void)controller_->unlisten(self_);
}

}  // namespace naplet::nsock
