#include "core/runtime.hpp"

#include "crypto/random.hpp"
#include "net/tcp.hpp"

namespace naplet::nsock {

NapletRuntime::NapletRuntime(net::NetworkPtr network,
                             agent::LocationService& locations,
                             NodeConfig config)
    : server_(std::make_unique<agent::AgentServer>(
          std::move(network), locations, std::move(config.server))),
      controller_(
          std::make_unique<SocketController>(*server_, config.controller)) {}

NapletRuntime::~NapletRuntime() { stop(); }

util::Status NapletRuntime::start() {
  if (started_) return util::OkStatus();
  NAPLET_RETURN_IF_ERROR(server_->start());
  NAPLET_RETURN_IF_ERROR(controller_->start());
  started_ = true;
  return util::OkStatus();
}

void NapletRuntime::stop() {
  if (!started_) return;
  started_ = false;
  // Stop the controller first: closing sessions releases agent threads
  // blocked in send/recv immediately (they see ABORTED), so the server's
  // join of those threads cannot stall behind long I/O timeouts.
  controller_->stop();
  server_->stop();
}

Realm::Realm(net::NetworkPtr network)
    : default_network_(network != nullptr
                           ? std::move(network)
                           : std::make_shared<net::TcpNetwork>()),
      realm_key_(crypto::random_bytes(32)) {}

Realm::~Realm() { stop(); }

NapletRuntime& Realm::add_node(const std::string& name, NodeConfig config) {
  return add_node(name, default_network_, std::move(config));
}

NapletRuntime& Realm::add_node(const std::string& name,
                               net::NetworkPtr network, NodeConfig config) {
  config.server.name = name;
  if (config.server.realm_key.empty()) config.server.realm_key = realm_key_;
  nodes_.push_back(std::make_unique<NapletRuntime>(
      std::move(network), locations_, std::move(config)));
  return *nodes_.back();
}

void Realm::remove_node(const std::string& name) {
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    if ((*it)->name() == name) {
      (*it)->stop();
      nodes_.erase(it);
      return;
    }
  }
}

util::Status Realm::start() {
  for (auto& node : nodes_) {
    NAPLET_RETURN_IF_ERROR(node->start());
  }
  return util::OkStatus();
}

void Realm::stop() {
  for (auto& node : nodes_) node->stop();
}

NapletRuntime& Realm::node(const std::string& name) {
  for (auto& node : nodes_) {
    if (node->name() == name) return *node;
  }
  // Realm is test/bench infrastructure; a bad name is a programming error.
  throw std::out_of_range("no such node: " + name);
}

std::vector<std::string> Realm::node_names() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& node : nodes_) names.push_back(node->name());
  return names;
}

}  // namespace naplet::nsock
