#include "core/state.hpp"

namespace naplet::nsock {

std::string_view to_string(ConnState state) noexcept {
  switch (state) {
    case ConnState::kClosed: return "CLOSED";
    case ConnState::kListen: return "LISTEN";
    case ConnState::kConnectSent: return "CONNECT_SENT";
    case ConnState::kConnectAcked: return "CONNECT_ACKED";
    case ConnState::kEstablished: return "ESTABLISHED";
    case ConnState::kSusSent: return "SUS_SENT";
    case ConnState::kSusAcked: return "SUS_ACKED";
    case ConnState::kSuspendWait: return "SUSPEND_WAIT";
    case ConnState::kSuspended: return "SUSPENDED";
    case ConnState::kResSent: return "RES_SENT";
    case ConnState::kResAcked: return "RES_ACKED";
    case ConnState::kResumeWait: return "RESUME_WAIT";
    case ConnState::kCloseSent: return "CLOSE_SENT";
    case ConnState::kCloseAcked: return "CLOSE_ACKED";
  }
  return "?";
}

std::string_view to_string(ConnEvent event) noexcept {
  switch (event) {
    case ConnEvent::kAppListen: return "app:listen";
    case ConnEvent::kAppConnect: return "app:connect";
    case ConnEvent::kAppSuspend: return "app:suspend";
    case ConnEvent::kAppResume: return "app:resume";
    case ConnEvent::kAppClose: return "app:close";
    case ConnEvent::kRecvConnect: return "recv:CONNECT";
    case ConnEvent::kRecvConnectAck: return "recv:ACK+ID";
    case ConnEvent::kRecvAttach: return "recv:ID";
    case ConnEvent::kRecvSus: return "recv:SUS";
    case ConnEvent::kRecvSusAck: return "recv:SUS_ACK";
    case ConnEvent::kRecvAckWait: return "recv:ACK_WAIT";
    case ConnEvent::kRecvSusRes: return "recv:SUS_RES";
    case ConnEvent::kRecvResume: return "recv:RES";
    case ConnEvent::kRecvResumeOk: return "recv:RES_ACK";
    case ConnEvent::kRecvResumeWait: return "recv:RESUME_WAIT";
    case ConnEvent::kRecvCls: return "recv:CLS";
    case ConnEvent::kRecvClsAck: return "recv:CLS_ACK";
    case ConnEvent::kRecvReject: return "recv:REJECT";
    case ConnEvent::kExecSuspended: return "exec:suspended";
    case ConnEvent::kExecResumed: return "exec:resumed";
    case ConnEvent::kExecClosed: return "exec:closed";
    case ConnEvent::kTimeout: return "timeout";
    case ConnEvent::kSuspendAbort: return "abort:suspend";
  }
  return "?";
}

std::optional<ConnState> transition(ConnState state, ConnEvent event) noexcept {
  using S = ConnState;
  using E = ConnEvent;

  switch (state) {
    case S::kClosed:
      switch (event) {
        case E::kAppListen: return S::kListen;
        case E::kAppConnect: return S::kConnectSent;
        case E::kAppClose: return S::kClosed;  // idempotent
        default: return std::nullopt;
      }

    case S::kListen:
      switch (event) {
        case E::kRecvConnect: return S::kConnectAcked;
        case E::kAppClose: return S::kClosed;
        default: return std::nullopt;
      }

    case S::kConnectSent:
      switch (event) {
        case E::kRecvConnectAck: return S::kEstablished;
        case E::kRecvReject: return S::kClosed;
        case E::kTimeout: return S::kClosed;
        default: return std::nullopt;
      }

    case S::kConnectAcked:
      switch (event) {
        case E::kRecvAttach: return S::kEstablished;
        case E::kTimeout: return S::kClosed;
        default: return std::nullopt;
      }

    case S::kEstablished:
      switch (event) {
        case E::kAppSuspend: return S::kSusSent;
        case E::kRecvSus: return S::kSusAcked;
        case E::kAppClose: return S::kCloseSent;
        case E::kRecvCls: return S::kCloseAcked;
        default: return std::nullopt;
      }

    case S::kSusSent:
      switch (event) {
        case E::kRecvSusAck: return S::kSuspended;
        case E::kRecvAckWait: return S::kSuspendWait;
        // Overlapped concurrent migration: the peer's SUS crosses ours.
        // The state holds; the action (ACK vs ACK_WAIT) depends on priority.
        case E::kRecvSus: return S::kSusSent;
        case E::kTimeout: return S::kSuspended;  // fail-safe local suspend
        // Handshake died but the data stream is healthy: degrade back to
        // normal transfer rather than suspending against a silent peer.
        case E::kSuspendAbort: return S::kEstablished;
        default: return std::nullopt;
      }

    case S::kSusAcked:
      switch (event) {
        case E::kExecSuspended: return S::kSuspended;
        // Group pre-freeze revert: a peer of a group suspend freezes ALL
        // of its sessions facing the migrating agent on the first group
        // SUS (consistent cut), then waits for each member's own SUS. If
        // the group aborts before that SUS arrives, the orphaned
        // pre-frozen session rolls back to service.
        case E::kSuspendAbort: return S::kEstablished;
        default: return std::nullopt;
      }

    case S::kSuspendWait:
      switch (event) {
        case E::kRecvSusRes: return S::kSuspended;
        // Non-overlapped case: the peer's RESUME releases our parked
        // suspend (we answer RESUME_WAIT) and our suspension completes.
        case E::kRecvResume: return S::kSuspended;
        default: return std::nullopt;
      }

    case S::kSuspended:
      switch (event) {
        case E::kAppResume: return S::kResSent;
        case E::kRecvResume: return S::kResAcked;
        // Multi-connection rule (paper §3.2): a local suspend on a
        // remotely-suspended connection parks until the peer's migration
        // completes. (The immediate-return high-priority case fires no
        // event at all.)
        case E::kAppSuspend: return S::kSuspendWait;
        case E::kRecvSus: return S::kSuspended;     // duplicate SUS: re-ACK
        case E::kAppClose: return S::kCloseSent;
        case E::kRecvCls: return S::kCloseAcked;
        case E::kRecvSusRes: return S::kSuspended;  // duplicate release
        default: return std::nullopt;
      }

    case S::kResSent:
      switch (event) {
        case E::kRecvResumeOk: return S::kEstablished;
        case E::kRecvResumeWait: return S::kResumeWait;
        // Resume glare: both sides reconnect at once; the lower-priority
        // side accepts the peer's RESUME instead of its own.
        case E::kRecvResume: return S::kResAcked;
        case E::kTimeout: return S::kSuspended;  // retryable
        default: return std::nullopt;
      }

    case S::kResAcked:
      switch (event) {
        case E::kExecResumed: return S::kEstablished;
        default: return std::nullopt;
      }

    case S::kResumeWait:
      switch (event) {
        case E::kRecvResume: return S::kResAcked;
        // The peer chose to suspend again instead of reconnecting (it may
        // have answered our resume with RESUME_WAIT and then begun another
        // migration round): its suspension supersedes our parked resume.
        case E::kRecvSus: return S::kSuspended;
        case E::kTimeout: return S::kSuspended;
        default: return std::nullopt;
      }

    case S::kCloseSent:
      switch (event) {
        case E::kRecvClsAck: return S::kClosed;
        case E::kTimeout: return S::kClosed;  // peer gone; close anyway
        default: return std::nullopt;
      }

    case S::kCloseAcked:
      switch (event) {
        case E::kExecClosed: return S::kClosed;
        default: return std::nullopt;
      }
  }
  return std::nullopt;
}

}  // namespace naplet::nsock
