// Transport abstraction: reliable ordered byte streams (TCP-like), datagram
// sockets (UDP-like), and a Network factory. Two backends implement these
// interfaces — TcpNetwork (POSIX sockets) and SimNetwork (in-process, with
// latency/loss injection) — so the NapletSocket protocol code is testable
// deterministically and runnable on real sockets unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "net/endpoint.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace naplet::net {

/// Reliable, ordered, bidirectional byte stream (a connected TCP socket).
class Stream {
 public:
  virtual ~Stream() = default;

  /// Blocking read of up to `max` bytes; returns 0 on orderly peer shutdown.
  virtual util::StatusOr<std::size_t> read_some(std::uint8_t* out,
                                                std::size_t max) = 0;

  /// Like read_some but gives up after `timeout` with StatusCode::kTimeout.
  virtual util::StatusOr<std::size_t> read_some_for(std::uint8_t* out,
                                                    std::size_t max,
                                                    util::Duration timeout) = 0;

  /// Write the entire span (blocking).
  virtual util::Status write_all(util::ByteSpan data) = 0;

  /// Gather-write: transmit the concatenation of `parts` as one contiguous
  /// byte sequence. Backends override this to avoid materializing the
  /// concatenation — TcpStream issues a single writev(2), SimStream
  /// enqueues one chunk — which is what lets the session layer frame a
  /// message (header + caller's payload) with zero intermediate copies.
  /// The default writes the parts back to back (correct, not zero-copy).
  virtual util::Status write_all_vectored(
      std::span<const util::ByteSpan> parts) {
    for (const auto& part : parts) {
      if (part.empty()) continue;
      auto st = write_all(part);
      if (!st.ok()) return st;
    }
    return util::OkStatus();
  }

  /// Drain any bytes already received and buffered, without blocking.
  /// This is what suspend() uses to capture in-flight data (paper §3.1).
  virtual util::StatusOr<util::Bytes> drain_pending() = 0;

  /// Close both directions; further reads/writes fail.
  virtual void close() = 0;

  [[nodiscard]] virtual Endpoint local_endpoint() const = 0;
  [[nodiscard]] virtual Endpoint remote_endpoint() const = 0;
};

using StreamPtr = std::unique_ptr<Stream>;

/// Passive listening socket.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Accept one connection; blocks up to `timeout` (nullopt = forever).
  virtual util::StatusOr<StreamPtr> accept(
      std::optional<util::Duration> timeout) = 0;

  [[nodiscard]] virtual Endpoint local_endpoint() const = 0;

  /// Close; pending and future accepts fail with kCancelled.
  virtual void close() = 0;
};

using ListenerPtr = std::unique_ptr<Listener>;

/// Unreliable datagram socket (UDP). The control channel's reliability
/// layer (rudp) sits on top of this.
class Datagram {
 public:
  virtual ~Datagram() = default;

  virtual util::Status send_to(const Endpoint& dest, util::ByteSpan data) = 0;

  struct Packet {
    Endpoint from;
    util::Bytes data;
  };
  /// Receive one datagram; kTimeout after `timeout`, kCancelled if closed.
  virtual util::StatusOr<Packet> recv_for(util::Duration timeout) = 0;

  [[nodiscard]] virtual Endpoint local_endpoint() const = 0;
  virtual void close() = 0;

  // --- Readiness integration (reactor mode, DESIGN.md §15) -------------
  // A datagram socket can participate in an event loop in one of two
  // ways: expose a pollable fd (real sockets), or push a callback when a
  // packet becomes deliverable (SimNet, whose packets live in-process).
  // Backends override whichever applies; the defaults describe a socket
  // with neither, which reactor code treats as "blocking recv only".

  /// OS-pollable file descriptor, or -1 when there is none (SimNet).
  [[nodiscard]] virtual int native_handle() const { return -1; }

  /// Install `cb` to be invoked (on the sender's thread, with no backend
  /// locks held) whenever a datagram is enqueued for this socket. The
  /// callback must be cheap and non-blocking — reactor glue uses it to
  /// inject readiness. Pass nullptr to uninstall. Default: ignored.
  virtual void set_ready_callback(std::function<void()> cb) { (void)cb; }

  /// Earliest instant (RealClock microseconds) at which a queued datagram
  /// becomes deliverable, nullopt when nothing is queued. SimNet models
  /// link latency, so a packet can exist but not yet be receivable; the
  /// reactor arms a timer at this instant instead of polling. Sockets
  /// whose packets are deliverable as soon as they exist return nullopt.
  [[nodiscard]] virtual std::optional<std::int64_t> next_ready_us() const {
    return std::nullopt;
  }
};

using DatagramPtr = std::unique_ptr<Datagram>;

/// Fabric-level fault counters, surfaced so operator stats can attribute
/// recoveries to concrete network events. Backends without fault modeling
/// (TcpNetwork) report zeros.
struct NetworkCounters {
  std::uint64_t datagrams_dropped = 0;  ///< lost to loss probability/partition
  std::uint64_t partition_events = 0;   ///< set_partition(.., true) calls
  std::uint64_t partitions_active = 0;  ///< node pairs currently partitioned
  std::uint64_t streams_severed = 0;    ///< streams force-closed by the fabric
};

/// Factory for streams/listeners/datagram sockets on one host ("node").
class Network {
 public:
  virtual ~Network() = default;

  /// Listen on `port` (0 = auto-assign).
  virtual util::StatusOr<ListenerPtr> listen(std::uint16_t port) = 0;

  /// Connect to a remote listener.
  virtual util::StatusOr<StreamPtr> connect(const Endpoint& dest,
                                            util::Duration timeout) = 0;

  /// Bind a datagram socket on `port` (0 = auto-assign).
  virtual util::StatusOr<DatagramPtr> bind_datagram(std::uint16_t port) = 0;

  /// Address other nodes should use to reach this network's sockets.
  [[nodiscard]] virtual std::string local_host() const = 0;

  /// Fault counters for the fabric this node is attached to.
  [[nodiscard]] virtual NetworkCounters counters() const { return {}; }
};

using NetworkPtr = std::shared_ptr<Network>;

}  // namespace naplet::net
