// Length-prefixed message framing over a Stream.
//
// NapletSocket data messages and handoff/control exchanges over TCP use a
// u32 big-endian length prefix. A maximum frame size guards against
// corrupted prefixes taking down a server.
#pragma once

#include "net/transport.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace naplet::net {

inline constexpr std::size_t kMaxFrameSize = 64 * 1024 * 1024;

/// Read exactly n bytes (blocking); kIoError/kUnavailable on EOF mid-frame.
util::Status read_exact(Stream& stream, std::uint8_t* out, std::size_t n);

/// Write one length-prefixed frame.
util::Status write_frame(Stream& stream, util::ByteSpan payload);

/// Write one length-prefixed frame whose payload is the concatenation of
/// `parts`, as a single gather-write: the u32 prefix is encoded into a
/// stack buffer and handed to Stream::write_all_vectored together with the
/// caller's spans, so the payload is never copied and the frame goes out
/// in one transport operation. At most kMaxVectoredParts payload spans.
inline constexpr std::size_t kMaxVectoredParts = 7;
util::Status write_frame_vectored(Stream& stream,
                                  std::span<const util::ByteSpan> parts);

/// Read one length-prefixed frame. Returns kUnavailable on clean EOF at a
/// frame boundary (peer closed), kIoError on mid-frame EOF.
util::StatusOr<util::Bytes> read_frame(Stream& stream);

}  // namespace naplet::net
