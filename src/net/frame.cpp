#include "net/frame.hpp"

namespace naplet::net {

util::Status read_exact(Stream& stream, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    auto r = stream.read_some(out + got, n - got);
    if (!r.ok()) return r.status();
    if (*r == 0) {
      return util::IoError("stream closed mid-read (" + std::to_string(got) +
                           "/" + std::to_string(n) + " bytes)");
    }
    got += *r;
  }
  return util::OkStatus();
}

util::Status write_frame(Stream& stream, util::ByteSpan payload) {
  return write_frame_vectored(stream, std::span<const util::ByteSpan>(
                                          &payload, 1));
}

util::Status write_frame_vectored(Stream& stream,
                                  std::span<const util::ByteSpan> parts) {
  if (parts.size() > kMaxVectoredParts) {
    return util::InvalidArgument("too many frame parts: " +
                                 std::to_string(parts.size()));
  }
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  if (total > kMaxFrameSize) {
    return util::InvalidArgument("frame too large: " + std::to_string(total));
  }
  std::uint8_t header[4];
  header[0] = static_cast<std::uint8_t>(total >> 24);
  header[1] = static_cast<std::uint8_t>(total >> 16);
  header[2] = static_cast<std::uint8_t>(total >> 8);
  header[3] = static_cast<std::uint8_t>(total);

  util::ByteSpan bufs[kMaxVectoredParts + 1];
  bufs[0] = util::ByteSpan(header, sizeof header);
  std::size_t n = 1;
  for (const auto& part : parts) {
    if (!part.empty()) bufs[n++] = part;
  }
  return stream.write_all_vectored(std::span<const util::ByteSpan>(bufs, n));
}

util::StatusOr<util::Bytes> read_frame(Stream& stream) {
  std::uint8_t len_bytes[4];
  // First byte may hit a clean EOF (peer closed between frames).
  auto first = stream.read_some(len_bytes, 1);
  if (!first.ok()) return first.status();
  if (*first == 0) return util::Unavailable("stream closed");
  NAPLET_RETURN_IF_ERROR(read_exact(stream, len_bytes + 1, 3));

  std::uint32_t len = 0;
  for (std::uint8_t b : len_bytes) len = len << 8 | b;
  if (len > kMaxFrameSize) {
    return util::ProtocolError("frame length " + std::to_string(len) +
                               " exceeds limit");
  }
  util::Bytes payload(len);
  if (len > 0) {
    NAPLET_RETURN_IF_ERROR(read_exact(stream, payload.data(), len));
  }
  return payload;
}

}  // namespace naplet::net
