// Versioned wire format for the rudp control channel (paper §3.5, rebuilt
// for the pipelined sliding-window transport).
//
// Packet layout (all integers big-endian, via BytesWriter):
//
//   u16 magic 'NS' | u8 version(2) | u8 type | u64 seq | u64 flow_id |
//   u64 flow_start | u8 flags | u8 fec_k | u64 fec_base | u8 sack_count |
//   sack_count x (u64 first, u64 last) | u32 payload_len | payload |
//   u32 crc32(everything above)
//
// Field meaning by type:
//   DATA    seq = packet sequence; flow_id identifies this sender
//           incarnation (a restarted channel reusing the endpoint resets
//           the receiver state instead of colliding with the old flow's
//           dedup window); flow_start = first seq of the flow (lets the
//           receiver initialise its cumulative ack without a handshake);
//           fec_base marks the XOR-FEC group this packet belongs to
//           (kFlagFecMember set).
//   ACK     seq = cumulative ack (every seq serially <= it is delivered);
//           sacks = up to kMaxSackRanges of out-of-order received ranges.
//   PARITY  seq = fec_base of the group; fec_k = group size; payload =
//           XOR over the members' (u32 len | payload) blocks, zero-padded
//           to the longest member.
//
// Sequence numbers are compared with serial arithmetic (RFC 1982 style) so
// flows survive wraparound at 2^64; the codec rejects any packet whose CRC
// does not match — a flipped bit anywhere downgrades the packet to a loss,
// which the retransmit/FEC machinery already repairs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.hpp"

namespace naplet::net::wire {

inline constexpr std::uint16_t kMagic = 0x4E53;  // "NS"
inline constexpr std::uint8_t kVersion = 2;
inline constexpr std::size_t kMaxSackRanges = 4;
inline constexpr std::uint8_t kFlagFecMember = 0x01;

enum class PacketType : std::uint8_t {
  kData = 0,
  kAck = 1,
  kParity = 2,
};

/// Serial (wraparound-safe) sequence comparison: a < b iff the signed
/// distance from b to a is negative. Valid while live seqs span < 2^63.
[[nodiscard]] constexpr bool seq_lt(std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<std::int64_t>(a - b) < 0;
}
[[nodiscard]] constexpr bool seq_le(std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<std::int64_t>(a - b) <= 0;
}

/// Inclusive range of received-out-of-order seqs in an ACK.
struct SackRange {
  std::uint64_t first = 0;
  std::uint64_t last = 0;

  friend bool operator==(const SackRange&, const SackRange&) = default;
};

struct Packet {
  PacketType type = PacketType::kData;
  std::uint64_t seq = 0;
  std::uint64_t flow_id = 0;
  std::uint64_t flow_start = 0;
  std::uint8_t flags = 0;
  std::uint8_t fec_k = 0;
  std::uint64_t fec_base = 0;
  std::vector<SackRange> sacks;
  util::Bytes payload;

  [[nodiscard]] bool fec_member() const noexcept {
    return (flags & kFlagFecMember) != 0;
  }
};

/// Encode with trailing CRC. sacks beyond kMaxSackRanges are dropped.
[[nodiscard]] util::Bytes encode(const Packet& packet);

/// Decode and verify; nullopt for foreign, truncated, or corrupt packets
/// (the caller treats all three as "not ours / lost").
[[nodiscard]] std::optional<Packet> decode(util::ByteSpan data);

/// Coalesce out-of-order seqs (any order, duplicates allowed) into at most
/// `max_ranges` inclusive ranges, sorted serially relative to `base` (the
/// receiver's cumulative ack + 1). Ranges nearest the cumulative ack are
/// kept — they are the ones the sender's gap detector acts on.
[[nodiscard]] std::vector<SackRange> build_sacks(
    std::vector<std::uint64_t> seqs, std::uint64_t base,
    std::size_t max_ranges = kMaxSackRanges);

}  // namespace naplet::net::wire
