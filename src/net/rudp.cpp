#include "net/rudp.hpp"

#include <chrono>

#include "fault/fault.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"

namespace naplet::net {

namespace {

constexpr std::uint16_t kMagic = 0x4E53;  // "NS"
constexpr std::uint8_t kTypeData = 0;
constexpr std::uint8_t kTypeAck = 1;
constexpr std::size_t kSeenWindowCap = 4096;

util::Bytes encode_packet(std::uint8_t type, std::uint64_t seq,
                          util::ByteSpan payload) {
  util::BytesWriter w(payload.size() + 16);
  w.u16(kMagic);
  w.u8(type);
  w.u64(seq);
  w.raw(payload);
  return std::move(w).take();
}

}  // namespace

ReliableChannel::ReliableChannel(DatagramPtr socket, RudpConfig config)
    : socket_(std::move(socket)),
      config_(config),
      jitter_rng_(config.jitter_seed != 0
                      ? config.jitter_seed
                      : static_cast<std::uint64_t>(
                            std::chrono::steady_clock::now()
                                .time_since_epoch()
                                .count()) ^
                            reinterpret_cast<std::uintptr_t>(this)),
      receiver_([this] { receive_loop(); }) {}

ReliableChannel::~ReliableChannel() {
  close();
  if (receiver_.joinable()) receiver_.join();
}

void ReliableChannel::close() {
  if (closed_.exchange(true)) return;
  inbox_.close();
  socket_->close();
  acked_cv_.notify_all();
}

Endpoint ReliableChannel::local_endpoint() const {
  return socket_->local_endpoint();
}

util::Status ReliableChannel::send(const Endpoint& dest,
                                   util::ByteSpan payload,
                                   util::Duration max_wait) {
  if (closed_.load()) return util::Cancelled("channel closed");
  const std::uint64_t seq = next_seq_.fetch_add(1);
  const util::Bytes packet = encode_packet(kTypeData, seq, payload);
  const auto t_start = std::chrono::steady_clock::now();

  const bool bounded = max_wait.count() > 0;
  const auto hard_deadline = std::chrono::steady_clock::now() + max_wait;

  {
    util::MutexLock lock(mu_);
    pending_acks_.insert(seq);
  }

  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (bounded && attempt > 0 &&
        std::chrono::steady_clock::now() >= hard_deadline) {
      break;  // caller's budget exhausted; report timeout below
    }
    if (attempt > 0) retransmissions_.fetch_add(1);
    bool suppressed = false;
    if (fault::armed()) {
      const fault::Decision d =
          fault::hit(attempt == 0 ? "rudp.send" : "rudp.retransmit");
      if (d.action == fault::Action::kDrop ||
          d.action == fault::Action::kKill) {
        suppressed = true;  // this attempt's datagram is lost on the floor
      } else if (d.action == fault::Action::kError) {
        util::MutexLock lock(mu_);
        pending_acks_.erase(seq);
        return util::Unavailable("fault: rudp send errored");
      }
    }
    if (!suppressed) {
      auto status = socket_->send_to(dest, packet);
      if (!status.ok() && closed_.load()) {
        return util::Cancelled("channel closed");
      }
      // A send error on UDP (e.g. transient ENOBUFS) is treated as a lost
      // packet: retransmission handles it.
    }

    auto deadline =
        std::chrono::steady_clock::now() + backoff_interval(attempt);
    if (bounded && hard_deadline < deadline) deadline = hard_deadline;
    util::MutexLock lock(mu_);
    while (pending_acks_.contains(seq) && !closed_.load()) {
      if (acked_cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    // Success is checked before closure: if the ACK already arrived, the
    // message was delivered and the send must report OK even when the
    // channel is concurrently closing (a handler's blocking reply racing
    // bus teardown used to flake here).
    if (!pending_acks_.contains(seq)) {
      messages_sent_.fetch_add(1);
      // Histogram::record is lock-free, so recording under mu_ is safe.
      if (obs::Histogram* h = rtt_us_.load(std::memory_order_acquire)) {
        h->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t_start)
                .count()));
      }
      if (obs::Histogram* h =
              retransmits_per_send_.load(std::memory_order_acquire)) {
        h->record(static_cast<std::uint64_t>(attempt));
      }
      return util::OkStatus();
    }
    if (closed_.load()) {
      pending_acks_.erase(seq);
      return util::Cancelled("channel closed");
    }
  }

  {
    util::MutexLock lock(mu_);
    pending_acks_.erase(seq);
  }
  return util::Timeout("no ACK from " + dest.to_string() + " after " +
                       std::to_string(config_.max_attempts) + " attempts");
}

util::Duration ReliableChannel::backoff_base(const RudpConfig& config,
                                             int attempt) {
  const double base = static_cast<double>(config.retransmit_interval.count());
  const double cap =
      config.max_retransmit_interval.count() > 0
          ? static_cast<double>(config.max_retransmit_interval.count())
          : 4.0 * base;
  double interval = base;
  for (int i = 0; i < attempt && interval < cap; ++i) {
    interval *= config.backoff_multiplier;
  }
  return util::Duration(
      static_cast<std::int64_t>(std::min(interval, cap)));
}

util::Duration ReliableChannel::backoff_interval(int attempt) {
  const util::Duration base = backoff_base(config_, attempt);
  const double jitter = config_.retransmit_jitter;
  if (jitter <= 0.0) return base;
  double factor;
  {
    util::MutexLock lock(mu_);
    factor = jitter_rng_.uniform(1.0 - jitter, 1.0 + jitter);
  }
  return util::Duration(static_cast<std::int64_t>(
      static_cast<double>(base.count()) * factor));
}

std::optional<ReliableChannel::Message> ReliableChannel::recv(
    util::Duration timeout) {
  return inbox_.pop_for(timeout);
}

void ReliableChannel::receive_loop() {
  while (!closed_.load()) {
    auto packet = socket_->recv_for(std::chrono::milliseconds(200));
    if (!packet.ok()) {
      if (packet.status().code() == util::StatusCode::kTimeout) continue;
      break;  // socket closed or fatal error
    }
    handle_packet(packet->from, util::ByteSpan(packet->data.data(),
                                               packet->data.size()));
  }
}

void ReliableChannel::handle_packet(const Endpoint& from,
                                    util::ByteSpan data) {
  util::BytesReader r(data);
  auto magic = r.u16();
  if (!magic.ok() || *magic != kMagic) return;  // not ours; drop
  auto type = r.u8();
  auto seq = r.u64();
  if (!type.ok() || !seq.ok()) return;

  if (*type == kTypeAck) {
    bool erased = false;
    {
      util::MutexLock lock(mu_);
      erased = pending_acks_.erase(*seq) > 0;
    }
    if (erased) acked_cv_.notify_all();
    return;
  }
  if (*type != kTypeData) return;

  // Always ACK, even duplicates — the original ACK may have been lost.
  const util::Bytes ack = encode_packet(kTypeAck, *seq, {});
  (void)socket_->send_to(from, ack);

  {
    util::MutexLock lock(mu_);
    SeenWindow& window = seen_[from];
    if (window.seqs.contains(*seq)) {
      duplicates_dropped_.fetch_add(1);
      return;
    }
    window.seqs.insert(*seq);
    window.order.push_back(*seq);
    while (window.order.size() > kSeenWindowCap) {
      window.seqs.erase(window.order.front());
      window.order.pop_front();
    }
  }

  auto payload = r.raw(r.remaining());
  if (!payload.ok()) return;
  inbox_.push(Message{from, std::move(*payload)});
}

}  // namespace naplet::net
