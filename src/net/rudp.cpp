#include "net/rudp.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "reactor/reactor.hpp"
#include "util/bytes.hpp"

namespace naplet::net {

namespace {

using std::chrono::steady_clock;

// Receiver-side memory bounds: the reorder buffer refuses packets once it
// holds this many out-of-order payloads (the sender retransmits), and any
// seq further than kMaxReorderSpan past the cumulative ack is treated as
// garbage rather than allocating state for it.
constexpr std::size_t kReorderCap = 4096;
constexpr std::uint64_t kMaxReorderSpan = 1 << 20;
constexpr std::size_t kFecGroupCap = 256;
constexpr int kMaxFecGroup = 64;  // receiver membership mask is a u64

// Idle poll slice for waits that are also woken by notify: bounds the cost
// of a (theoretical) lost wakeup without busy-waiting.
constexpr auto kPollSlice = std::chrono::milliseconds(200);

RudpConfig sanitize(RudpConfig config) {
  config.max_attempts = std::max(config.max_attempts, 1);
  config.window_packets = std::max(config.window_packets, 1);
  config.window_bytes = std::max<std::size_t>(config.window_bytes, 1);
  config.fec_group = std::clamp(config.fec_group, 1, kMaxFecGroup);
  config.fast_retx_dupacks = std::max(config.fast_retx_dupacks, 0);
  if (config.min_rto.count() < 0) config.min_rto = util::Duration{0};
  if (config.fec_flush.count() <= 0) {
    config.fec_flush = std::chrono::milliseconds(1);
  }
  return config;
}

/// XOR (u32 len | payload), zero-padded, into `acc` (grown as needed) —
/// the FEC block combiner used identically by sender and receiver.
void xor_block(util::Bytes& acc, util::ByteSpan payload) {
  util::BytesWriter w(payload.size() + 4);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  const util::Bytes block = std::move(w).take();
  if (acc.size() < block.size()) acc.resize(block.size(), 0);
  for (std::size_t i = 0; i < block.size(); ++i) acc[i] ^= block[i];
}

}  // namespace

ReliableChannel::ReliableChannel(DatagramPtr socket, RudpConfig config)
    : socket_(std::move(socket)),
      config_(sanitize(config)),
      flow_id_(static_cast<std::uint64_t>(
                   steady_clock::now().time_since_epoch().count()) ^
               (reinterpret_cast<std::uintptr_t>(this) * 0x9E3779B97F4A7C15ULL)),
      jitter_rng_(config.jitter_seed != 0
                      ? config.jitter_seed
                      : static_cast<std::uint64_t>(
                            steady_clock::now().time_since_epoch().count()) ^
                            reinterpret_cast<std::uintptr_t>(this)),
      timer_([this] { timer_loop(); }),
      receiver_([this] { receive_loop(); }) {}

ReliableChannel::~ReliableChannel() {
  close();
  if (receiver_.joinable()) receiver_.join();
  if (timer_.joinable()) timer_.join();
}

void ReliableChannel::close() {
  if (closed_.exchange(true)) return;
  detach_reactor();
  inbox_.close();
  socket_->close();
  // Take and drop mu_ so the flag is ordered before the wakeups: a waiter
  // that checked closed_ just before the store re-checks after its wait.
  { util::MutexLock lock(mu_); }
  acked_cv_.notify_all();
  window_cv_.notify_all();
  timer_cv_.notify_all();
}

Endpoint ReliableChannel::local_endpoint() const {
  return socket_->local_endpoint();
}

// ===========================================================================
// Sender

ReliableChannel::TxPeer& ReliableChannel::peer_for(const Endpoint& dest) {
  auto [it, inserted] = tx_.try_emplace(dest);
  if (inserted) {
    it->second.next_seq = config_.initial_seq;
    it->second.flow_start = config_.initial_seq;
  }
  return it->second;
}

void ReliableChannel::release_slot(TxPeer& peer, TxPacket& packet) {
  if (packet.slot_released) return;
  packet.slot_released = true;
  peer.unacked_packets--;
  peer.unacked_bytes -= packet.payload_size;
  total_inflight_.fetch_sub(1, std::memory_order_relaxed);
  update_window_gauge();
  window_cv_.notify_all();
}

void ReliableChannel::update_window_gauge() {
  if (obs::Gauge* g = window_gauge_.load(std::memory_order_acquire)) {
    g->set(total_inflight_.load(std::memory_order_relaxed));
  }
}

void ReliableChannel::rtt_sample(TxPeer& peer, double sample_us) {
  // RFC 6298 estimator; Karn's rule is enforced by the caller (no samples
  // from retransmitted packets, so an ACK for the original cannot be
  // confused with an ACK for the retransmission).
  if (!peer.have_rtt) {
    peer.have_rtt = true;
    peer.srtt_us = sample_us;
    peer.rttvar_us = sample_us / 2.0;
    return;
  }
  peer.rttvar_us =
      0.75 * peer.rttvar_us + 0.25 * std::abs(peer.srtt_us - sample_us);
  peer.srtt_us = 0.875 * peer.srtt_us + 0.125 * sample_us;
}

util::Duration ReliableChannel::backoff_base(const RudpConfig& config,
                                             int attempt) {
  const double base = static_cast<double>(config.retransmit_interval.count());
  const double cap =
      config.max_retransmit_interval.count() > 0
          ? static_cast<double>(config.max_retransmit_interval.count())
          : 4.0 * base;
  double interval = base;
  for (int i = 0; i < attempt && interval < cap; ++i) {
    interval *= config.backoff_multiplier;
  }
  return util::Duration(
      static_cast<std::int64_t>(std::min(interval, cap)));
}

util::Duration ReliableChannel::interval_for(TxPeer& peer, int attempt) {
  const double fixed = static_cast<double>(config_.retransmit_interval.count());
  const double cap =
      config_.max_retransmit_interval.count() > 0
          ? static_cast<double>(config_.max_retransmit_interval.count())
          : 4.0 * fixed;
  double base = fixed;
  if (config_.adaptive_rto && peer.have_rtt) {
    // RTO = SRTT + max(4*RTTVAR, 1ms granularity), clamped. Backoff then
    // multiplies from this measured base: the capped exponential schedule
    // is the slow path for repeated loss of the same packet, not the
    // first-retransmit latency.
    const double rto = peer.srtt_us + std::max(4.0 * peer.rttvar_us, 1000.0);
    base = std::clamp(rto, static_cast<double>(config_.min_rto.count()), cap);
  }
  double interval = base;
  for (int i = 0; i < attempt && interval < cap; ++i) {
    interval *= config_.backoff_multiplier;
  }
  interval = std::min(interval, cap);
  const double jitter = config_.retransmit_jitter;
  if (jitter > 0.0) {
    interval *= jitter_rng_.uniform(1.0 - jitter, 1.0 + jitter);
  }
  return util::Duration(static_cast<std::int64_t>(interval));
}

util::Bytes ReliableChannel::flush_fec(TxPeer& peer) {
  wire::Packet parity;
  parity.type = wire::PacketType::kParity;
  parity.seq = peer.fec_base;
  parity.flow_id = flow_id_;
  parity.flow_start = peer.flow_start;
  parity.fec_base = peer.fec_base;
  parity.fec_k = static_cast<std::uint8_t>(peer.fec_count);
  parity.payload = std::move(peer.fec_acc);
  peer.fec_acc.clear();
  peer.fec_count = 0;
  return wire::encode(parity);
}

void ReliableChannel::send_frame(const Endpoint& dest,
                                 const util::Bytes& wire) {
  // A send error on UDP (e.g. transient ENOBUFS) is treated as a lost
  // packet: retransmission handles it.
  (void)socket_->send_to(dest, wire);
}

bool ReliableChannel::send_with_fault(const char* site, const Endpoint& dest,
                                      const util::Bytes& wire) {
  if (fault::armed()) {
    const fault::Decision d = fault::hit(site);
    switch (d.action) {
      case fault::Action::kDrop:
      case fault::Action::kKill:
        return true;  // this frame is lost on the floor
      case fault::Action::kError:
        return false;
      case fault::Action::kCorrupt: {
        // Flip one bit mid-frame: the peer's CRC check downgrades the
        // corruption to a loss, which retransmit/FEC already repair.
        util::Bytes flipped = wire;
        flipped[flipped.size() / 2] ^= 0x10;
        send_frame(dest, flipped);
        return true;
      }
      case fault::Action::kDuplicate:
        send_frame(dest, wire);
        break;  // and fall through to the normal send below
      default:
        break;
    }
  }
  send_frame(dest, wire);
  return true;
}

util::Status ReliableChannel::send(const Endpoint& dest,
                                   util::ByteSpan payload,
                                   util::Duration max_wait) {
  if (closed_.load()) return util::Cancelled("channel closed");
  const auto t_start = steady_clock::now();
  const bool bounded = max_wait.count() > 0;
  const auto hard_deadline = t_start + max_wait;

  std::uint64_t seq = 0;
  bool arm = false;
  TimePoint arm_at{};
  {
    util::MutexLock lock(mu_);
    TxPeer& peer = peer_for(dest);

    // Window admission: block while the per-destination window is full.
    // A payload larger than window_bytes is still admitted alone.
    while (!closed_.load() &&
           (peer.unacked_packets >= config_.window_packets ||
            (peer.unacked_packets > 0 &&
             peer.unacked_bytes + payload.size() > config_.window_bytes))) {
      if (bounded && steady_clock::now() >= hard_deadline) {
        return util::Timeout("send window to " + dest.to_string() +
                             " full within caller budget");
      }
      const auto wait_until =
          bounded ? std::min(hard_deadline, steady_clock::now() + kPollSlice)
                  : steady_clock::now() + kPollSlice;
      (void)window_cv_.wait_until(mu_, wait_until);
    }
    if (closed_.load()) return util::Cancelled("channel closed");

    seq = peer.next_seq++;
    wire::Packet data;
    data.type = wire::PacketType::kData;
    data.seq = seq;
    data.flow_id = flow_id_;
    data.flow_start = peer.flow_start;
    data.payload.assign(payload.begin(), payload.end());

    util::Bytes parity_wire;
    if (config_.repair == LossRepair::kXorFec) {
      if (peer.fec_count == 0) {
        peer.fec_base = seq;
        peer.fec_acc.clear();
        peer.fec_opened = steady_clock::now();
      }
      data.flags |= wire::kFlagFecMember;
      data.fec_base = peer.fec_base;
      xor_block(peer.fec_acc, payload);
      peer.fec_count++;
      if (peer.fec_count >= config_.fec_group) {
        parity_wire = flush_fec(peer);
      }
    }

    TxPacket packet;
    packet.wire = wire::encode(data);
    packet.payload_size = payload.size();
    packet.first_send = steady_clock::now();
    packet.sends = 1;
    packet.deadline = packet.first_send + interval_for(peer, 0);
    if (reactor_mode_.load(std::memory_order_relaxed)) {
      // The wheel owns this packet's retransmit deadline (and the open
      // FEC group's flush) now; armed outside the lock below.
      arm = true;
      arm_at = packet.deadline;
      if (config_.repair == LossRepair::kXorFec && peer.fec_count > 0) {
        arm_at = std::min(arm_at, peer.fec_opened + config_.fec_flush);
      }
    }
    const util::Bytes& frame =
        peer.inflight.emplace(seq, std::move(packet)).first->second.wire;
    peer.unacked_packets++;
    peer.unacked_bytes += payload.size();
    total_inflight_.fetch_add(1, std::memory_order_relaxed);
    update_window_gauge();

    // First transmission happens under mu_ so the fault-site hit order
    // matches sequence order (chaos plans and the fast-retransmit tests
    // rely on "#n" addressing the n-th packet).
    if (!send_with_fault("rudp.send", dest, frame)) {
      TxPeer& p2 = peer_for(dest);
      auto it = p2.inflight.find(seq);
      release_slot(p2, it->second);
      p2.inflight.erase(it);
      return util::Unavailable("fault: rudp send errored");
    }
    if (config_.repair == LossRepair::kPacketDup) {
      send_frame(dest, frame);  // immediate duplicate: 1-loss repair
    }
    if (!parity_wire.empty()) {
      (void)send_with_fault("rudp.fec", dest, parity_wire);
    }
  }
  if (arm) arm_retx_timer(arm_at);
  timer_cv_.notify_all();  // the timer owns this packet's deadline now

  // Wait for the ACK (or failure, close, caller budget).
  util::MutexLock lock(mu_);
  TxPeer& peer = peer_for(dest);
  for (;;) {
    auto it = peer.inflight.find(seq);
    if (it == peer.inflight.end()) {
      // Unreachable: only this call erases its packet. Fail safe.
      return util::Cancelled("send state lost");
    }
    TxPacket& packet = it->second;
    // Success is checked before closure: if the ACK already arrived, the
    // message was delivered and the send must report OK even when the
    // channel is concurrently closing (a handler's blocking reply racing
    // bus teardown used to flake here).
    if (packet.acked) {
      const int sends = packet.sends;
      peer.inflight.erase(it);
      messages_sent_.fetch_add(1);
      // Histogram::record is lock-free, so recording under mu_ is safe.
      if (obs::Histogram* h = rtt_us_.load(std::memory_order_acquire)) {
        h->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                steady_clock::now() - t_start)
                .count()));
      }
      if (obs::Histogram* h =
              retransmits_per_send_.load(std::memory_order_acquire)) {
        h->record(static_cast<std::uint64_t>(sends - 1));
      }
      return util::OkStatus();
    }
    if (packet.failed) {
      util::Status status = packet.fail_status;
      release_slot(peer, packet);
      peer.inflight.erase(it);
      return status;
    }
    if (closed_.load()) {
      release_slot(peer, packet);
      peer.inflight.erase(it);
      return util::Cancelled("channel closed");
    }
    if (bounded && steady_clock::now() >= hard_deadline) {
      // Caller budget exhausted: abandon the retransmit schedule.
      release_slot(peer, packet);
      peer.inflight.erase(it);
      return util::Timeout("no ACK from " + dest.to_string() +
                           " within caller budget");
    }
    const auto wait_until =
        bounded ? std::min(hard_deadline, steady_clock::now() + kPollSlice)
                : steady_clock::now() + kPollSlice;
    (void)acked_cv_.wait_until(mu_, wait_until);
  }
}

void ReliableChannel::handle_ack(const Endpoint& from,
                                 const wire::Packet& ack) {
  struct FastRetx {
    Endpoint dest;
    util::Bytes wire;
  };
  std::vector<FastRetx> fast;
  {
    util::MutexLock lock(mu_);
    auto peer_it = tx_.find(from);
    if (peer_it == tx_.end()) return;
    TxPeer& peer = peer_it->second;
    const std::uint64_t cum = ack.seq;

    // The highest seq this ACK proves the receiver has seen: everything
    // unacked serially below it is gap evidence.
    std::uint64_t top = cum;
    for (const wire::SackRange& r : ack.sacks) {
      if (wire::seq_lt(top, r.last)) top = r.last;
    }
    const auto sacked = [&ack](std::uint64_t seq) {
      for (const wire::SackRange& r : ack.sacks) {
        if (wire::seq_le(r.first, seq) && wire::seq_le(seq, r.last)) {
          return true;
        }
      }
      return false;
    };

    bool progressed = false;
    const auto now = steady_clock::now();
    for (auto& [seq, packet] : peer.inflight) {
      if (packet.acked || packet.failed) continue;
      if (wire::seq_le(seq, cum) || sacked(seq)) {
        packet.acked = true;
        progressed = true;
        if (!packet.retransmitted) {  // Karn's rule
          rtt_sample(peer,
                     static_cast<double>(
                         std::chrono::duration_cast<std::chrono::microseconds>(
                             now - packet.first_send)
                             .count()));
        }
        release_slot(peer, packet);
        continue;
      }
      if (config_.fast_retx_dupacks > 0 && wire::seq_lt(seq, top) &&
          !packet.fast_retx_done) {
        if (++packet.gap_evidence >= config_.fast_retx_dupacks &&
            packet.sends < config_.max_attempts) {
          // Gap evidence says this packet is lost while later ones got
          // through: retransmit now, once, without waiting out the timer.
          packet.fast_retx_done = true;
          packet.retransmitted = true;
          packet.sends++;
          packet.deadline = now + interval_for(peer, packet.sends - 1);
          retransmissions_.fetch_add(1);
          fast_retransmits_.fetch_add(1);
          if (obs::Counter* c =
                  fast_retx_counter_.load(std::memory_order_acquire)) {
            c->add(1);
          }
          fast.push_back(FastRetx{from, packet.wire});
        }
      }
    }
    if (progressed) acked_cv_.notify_all();
  }
  for (const FastRetx& f : fast) {
    // kError makes no sense for an opportunistic retransmit; treat it as
    // a drop and let the timer be the backstop.
    (void)send_with_fault("rudp.fast_retx", f.dest, f.wire);
  }
}

std::optional<ReliableChannel::TimePoint> ReliableChannel::retx_pass() {
  struct Pending {
    Endpoint dest;
    std::uint64_t seq = 0;  // 0 span for parity frames
    util::Bytes wire;
    bool parity = false;
  };
  std::vector<Pending> out;
  std::optional<TimePoint> next;
  const auto fold = [&next](TimePoint t) {
    if (!next || t < *next) next = t;
  };
  {
    util::MutexLock lock(mu_);
    if (closed_.load()) return std::nullopt;
    const auto now = steady_clock::now();
    for (auto& [dest, peer] : tx_) {
      if (config_.repair == LossRepair::kXorFec && peer.fec_count > 0) {
        // Partial-group parity flush: a sparse sender (the control
        // plane's request/reply cadence) still gets every packet
        // covered, degrading to per-packet parity instead of leaving
        // the group open forever.
        const auto flush_at = peer.fec_opened + config_.fec_flush;
        if (flush_at <= now) {
          out.push_back(Pending{dest, 0, flush_fec(peer), true});
        } else {
          fold(flush_at);
        }
      }
      for (auto& [seq, packet] : peer.inflight) {
        if (packet.acked || packet.failed) continue;
        if (packet.deadline > now) {
          fold(packet.deadline);
          continue;
        }
        if (packet.sends >= config_.max_attempts) {
          packet.failed = true;
          packet.fail_status = util::Timeout(
              "no ACK from " + dest.to_string() + " after " +
              std::to_string(config_.max_attempts) + " attempts");
          release_slot(peer, packet);
          acked_cv_.notify_all();
          continue;
        }
        packet.sends++;
        packet.retransmitted = true;  // Karn: no RTT sample from now on
        packet.deadline = now + interval_for(peer, packet.sends - 1);
        fold(packet.deadline);
        retransmissions_.fetch_add(1);
        out.push_back(Pending{dest, seq, packet.wire, false});
      }
    }
  }
  for (const Pending& p : out) {
    if (p.parity) {
      (void)send_with_fault("rudp.fec", p.dest, p.wire);
      continue;
    }
    if (!send_with_fault("rudp.retransmit", p.dest, p.wire)) {
      // Scripted kError: the send fails outright (unless the ACK won
      // the race while we were outside the lock).
      util::MutexLock lock(mu_);
      auto peer_it = tx_.find(p.dest);
      if (peer_it == tx_.end()) continue;
      auto it = peer_it->second.inflight.find(p.seq);
      if (it == peer_it->second.inflight.end() || it->second.acked ||
          it->second.failed) {
        continue;
      }
      it->second.failed = true;
      it->second.fail_status =
          util::Unavailable("fault: rudp send errored");
      release_slot(peer_it->second, it->second);
      acked_cv_.notify_all();
    }
  }
  return next;
}

void ReliableChannel::timer_loop() {
  while (!closed_.load() && !reactor_mode_.load()) {
    const auto next = retx_pass();
    util::MutexLock lock(mu_);
    if (closed_.load() || reactor_mode_.load()) break;
    // New deadlines fold into `next` inside the pass; the poll-slice cap
    // bounds the cost of a (theoretical) lost timer_cv_ wakeup.
    const auto cap = steady_clock::now() + kPollSlice;
    (void)timer_cv_.wait_until(mu_, next ? std::min(*next, cap) : cap);
  }
}

// ===========================================================================
// Reactor mode

struct ReliableChannel::ReactorState final : reactor::EventHandler {
  explicit ReactorState(ReliableChannel* ch) : channel(ch) {}
  void on_ready(std::uint32_t /*events*/) override {
    channel->on_socket_ready();
  }

  ReliableChannel* channel;
  reactor::Reactor* reactor = nullptr;
  int fd = -1;  // -1: SimNet (delivery-callback) path
  // Armed-timer bookkeeping, guarded by channel->mu_.
  reactor::TimerId retx_timer = reactor::kInvalidTimer;
  std::int64_t retx_deadline_us = 0;
  reactor::TimerId rx_timer = reactor::kInvalidTimer;
};

namespace {
std::int64_t to_reactor_us(std::chrono::steady_clock::time_point tp) {
  // Reactor::now_us is RealClock (steady_clock) microseconds, so the
  // conversion is a plain duration cast.
  return std::chrono::duration_cast<std::chrono::microseconds>(
             tp.time_since_epoch())
      .count();
}
}  // namespace

void ReliableChannel::attach_reactor(reactor::Reactor* r) {
  if (r == nullptr || closed_.load()) return;
  if (reactor_mode_.exchange(true)) return;
  // Retire the legacy threads (both re-check reactor_mode_ every pass;
  // the receiver wakes from its poll slice within 200 ms).
  { util::MutexLock lock(mu_); }
  timer_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
  if (receiver_.joinable()) receiver_.join();

  auto st = std::make_unique<ReactorState>(this);
  st->reactor = r;
  st->fd = socket_->native_handle();
  ReactorState* handler = st.get();
  r->add_handler(handler);
  if (st->fd >= 0) {
    (void)r->add_fd(st->fd, handler, reactor::kReadable);
  } else {
    // SimNet: delivery callbacks drive the same EventHandler interface.
    socket_->set_ready_callback([r, handler] { r->notify(handler); });
  }
  {
    util::MutexLock lock(mu_);
    reactor_detached_ = false;
    reactor_state_ = std::move(st);
  }
  // Drain anything that landed while the receiver thread was retiring and
  // arm the retransmit scan for packets already in flight.
  r->notify(handler);
  if (const auto next = retx_pass()) arm_retx_timer(*next);
}

void ReliableChannel::detach_reactor() {
  ReactorState* st = nullptr;
  reactor::Reactor* r = nullptr;
  int fd = -1;
  {
    util::MutexLock lock(mu_);
    if (reactor_state_ == nullptr || reactor_detached_) return;
    reactor_detached_ = true;  // in-flight callbacks stop re-arming
    st = reactor_state_.get();
    r = st->reactor;
    fd = st->fd;
    if (st->retx_timer != reactor::kInvalidTimer) {
      r->cancel_timer(st->retx_timer);
      st->retx_timer = reactor::kInvalidTimer;
    }
    if (st->rx_timer != reactor::kInvalidTimer) {
      r->cancel_timer(st->rx_timer);
      st->rx_timer = reactor::kInvalidTimer;
    }
  }
  // Uninstall the delivery callback first: SimNet invokes it under the
  // inbox lock, so this returning means no sender can still call it.
  socket_->set_ready_callback(nullptr);
  if (fd >= 0) r->del_fd(fd);
  // Quiesce: no on_ready for this channel is running or queued after this
  // (a timer callback collected-but-not-fired before cancel also
  // completes before the barrier inside remove_handler).
  r->remove_handler(st);
  util::MutexLock lock(mu_);
  reactor_state_.reset();
}

void ReliableChannel::on_socket_ready() {
  for (;;) {
    if (closed_.load()) return;
    auto packet = socket_->recv_for(util::Duration{0});
    if (packet.ok()) {
      handle_packet(packet->from,
                    util::ByteSpan(packet->data.data(), packet->data.size()));
      continue;
    }
    if (packet.status().code() != util::StatusCode::kTimeout) return;
    break;  // drained everything deliverable right now
  }
  // SimNet models link latency: a packet can be queued but not yet
  // deliverable. Arm a poke at the earliest such instant instead of
  // polling.
  const auto next = socket_->next_ready_us();
  if (!next) return;
  util::MutexLock lock(mu_);
  ReactorState* st = reactor_state_.get();
  if (st == nullptr || reactor_detached_) return;
  if (st->rx_timer != reactor::kInvalidTimer) {
    st->reactor->cancel_timer(st->rx_timer);
  }
  reactor::Reactor* r = st->reactor;
  ReactorState* handler = st;
  st->rx_timer = r->schedule_at_us(*next, [r, handler] { r->notify(handler); });
}

void ReliableChannel::arm_retx_timer(TimePoint next) {
  const std::int64_t next_us = to_reactor_us(next);
  // The on_retx_timer lambda fires later on the reactor loop thread,
  // after this frame (and its lock) are long gone — not recursion.
  // analyze-ignore(lock-rank-inversion)
  util::MutexLock lock(mu_);
  ReactorState* st = reactor_state_.get();
  if (st == nullptr || reactor_detached_) return;
  if (st->retx_timer != reactor::kInvalidTimer &&
      next_us >= st->retx_deadline_us) {
    return;  // an equal-or-earlier scan is already armed
  }
  if (st->retx_timer != reactor::kInvalidTimer) {
    st->reactor->cancel_timer(st->retx_timer);
  }
  st->retx_deadline_us = next_us;
  st->retx_timer =
      st->reactor->schedule_at_us(next_us, [this] { on_retx_timer(); });
}

void ReliableChannel::on_retx_timer() {
  {
    util::MutexLock lock(mu_);
    if (ReactorState* st = reactor_state_.get()) {
      st->retx_timer = reactor::kInvalidTimer;
      st->retx_deadline_us = 0;
    }
  }
  if (const auto next = retx_pass()) arm_retx_timer(*next);
}

// ===========================================================================
// Receiver

std::optional<ReliableChannel::Message> ReliableChannel::recv(
    util::Duration timeout) {
  return inbox_.pop_for(timeout);
}

void ReliableChannel::receive_loop() {
  while (!closed_.load() && !reactor_mode_.load()) {
    auto packet = socket_->recv_for(std::chrono::milliseconds(200));
    if (!packet.ok()) {
      if (packet.status().code() == util::StatusCode::kTimeout) continue;
      break;  // socket closed or fatal error
    }
    handle_packet(packet->from, util::ByteSpan(packet->data.data(),
                                               packet->data.size()));
  }
}

void ReliableChannel::handle_packet(const Endpoint& from,
                                    util::ByteSpan data) {
  auto packet = wire::decode(data);
  if (!packet) return;  // foreign, truncated, or corrupt; drop
  switch (packet->type) {
    case wire::PacketType::kAck:
      handle_ack(from, *packet);
      return;
    case wire::PacketType::kData:
      handle_data(from, std::move(*packet));
      return;
    case wire::PacketType::kParity:
      handle_parity(from, std::move(*packet));
      return;
  }
}

ReliableChannel::RxPeer& ReliableChannel::rx_peer_for(
    const Endpoint& from, const wire::Packet& packet) {
  RxPeer& peer = rx_[from];
  if (!peer.inited || peer.flow_id != packet.flow_id) {
    // New flow (first contact, or the peer restarted and reuses this
    // endpoint with a fresh sequence space): reset receiver state.
    peer = RxPeer{};
    peer.inited = true;
    peer.flow_id = packet.flow_id;
    peer.cum = packet.flow_start - 1;  // wraps cleanly at 2^64
  }
  return peer;
}

void ReliableChannel::drain_in_order(RxPeer& peer, const Endpoint& from) {
  for (;;) {
    auto it = peer.ooo.find(peer.cum + 1);
    if (it == peer.ooo.end()) break;
    inbox_.push(Message{from, std::move(it->second)});
    peer.ooo.erase(it);
    peer.cum++;
  }
  // Prune FEC groups entirely at or below the cumulative ack.
  for (auto it = peer.groups.begin(); it != peer.groups.end();) {
    const std::uint64_t span = it->second.k > 0 ? it->second.k : kMaxFecGroup;
    if (wire::seq_le(it->first + span - 1, peer.cum)) {
      it = peer.groups.erase(it);
    } else {
      ++it;
    }
  }
}

void ReliableChannel::try_reconstruct(RxPeer& peer, std::uint64_t base,
                                      const Endpoint& from) {
  (void)from;
  auto git = peer.groups.find(base);
  if (git == peer.groups.end()) return;
  FecGroup& group = git->second;
  if (!group.have_parity || group.k == 0 || group.k > kMaxFecGroup) return;
  const std::uint64_t full =
      group.k == 64 ? ~0ULL : ((1ULL << group.k) - 1);
  const std::uint64_t have = group.have_mask & full;
  if (std::popcount(have) != group.k - 1) return;
  const std::uint64_t missing_bit = ~have & full;
  const auto idx = static_cast<std::uint64_t>(std::countr_zero(missing_bit));
  const std::uint64_t missing_seq = base + idx;
  group.have_mask |= missing_bit;  // one reconstruction attempt per group
  if (wire::seq_le(missing_seq, peer.cum) || peer.ooo.contains(missing_seq)) {
    return;  // nothing actually missing (e.g. parity raced a retransmit)
  }
  // XOR of parity and the k-1 present members yields the missing member's
  // (u32 len | payload) block.
  util::Bytes blob = group.parity;
  if (blob.size() < group.acc.size()) blob.resize(group.acc.size(), 0);
  for (std::size_t i = 0; i < group.acc.size(); ++i) blob[i] ^= group.acc[i];
  util::BytesReader r(util::ByteSpan(blob.data(), blob.size()));
  auto len = r.u32();
  if (!len.ok() || *len > r.remaining()) return;  // malformed group
  auto payload = r.raw(*len);
  if (!payload.ok()) return;
  if (peer.ooo.size() >= kReorderCap) return;
  fec_repairs_.fetch_add(1);
  if (obs::Counter* c = fec_counter_.load(std::memory_order_acquire)) {
    c->add(1);
  }
  peer.ooo.emplace(missing_seq, std::move(*payload));
}

bool ReliableChannel::integrate_data(RxPeer& peer, std::uint64_t seq,
                                     const wire::Packet& packet,
                                     const Endpoint& from) {
  if (packet.fec_member()) {
    const std::uint64_t idx = seq - packet.fec_base;
    if (idx < kMaxFecGroup) {
      FecGroup* group = nullptr;
      auto git = peer.groups.find(packet.fec_base);
      if (git != peer.groups.end()) {
        group = &git->second;
      } else if (peer.groups.size() < kFecGroupCap) {
        group = &peer.groups[packet.fec_base];
      }
      // At the group cap the packet is still delivered normally; only the
      // FEC repair opportunity is lost. Never create a group mid-life
      // after pruning: a partial mask would "reconstruct" garbage.
      if (group != nullptr && (group->have_mask & (1ULL << idx)) == 0) {
        group->have_mask |= 1ULL << idx;
        xor_block(group->acc,
                  util::ByteSpan(packet.payload.data(),
                                 packet.payload.size()));
      }
    }
  }
  peer.ooo.emplace(seq, packet.payload);
  if (packet.fec_member()) try_reconstruct(peer, packet.fec_base, from);
  drain_in_order(peer, from);
  return true;
}

util::Bytes ReliableChannel::build_ack(RxPeer& peer, std::size_t* n_sacks) {
  wire::Packet ack;
  ack.type = wire::PacketType::kAck;
  ack.seq = peer.cum;
  ack.flow_id = peer.flow_id;
  std::vector<std::uint64_t> seqs;
  seqs.reserve(peer.ooo.size());
  for (const auto& [seq, payload] : peer.ooo) seqs.push_back(seq);
  ack.sacks = wire::build_sacks(std::move(seqs), peer.cum + 1);
  *n_sacks = ack.sacks.size();
  return wire::encode(ack);
}

void ReliableChannel::send_ack(const Endpoint& to, RxPeer& peer) {
  std::size_t n_sacks = 0;
  const util::Bytes ack = build_ack(peer, &n_sacks);
  if (n_sacks > 0) {
    sack_blocks_.fetch_add(n_sacks);
    if (obs::Counter* c = sack_counter_.load(std::memory_order_acquire)) {
      c->add(n_sacks);
    }
    // ACKs carrying SACK evidence get their own fault site: dropping or
    // corrupting them starves the fast-retransmit gap detector.
    (void)send_with_fault("rudp.sack", to, ack);
    return;
  }
  send_frame(to, ack);
}

void ReliableChannel::handle_data(const Endpoint& from, wire::Packet packet) {
  util::MutexLock lock(rx_mu_);
  RxPeer& peer = rx_peer_for(from, packet);
  const std::uint64_t seq = packet.seq;
  if (wire::seq_le(seq, peer.cum) || peer.ooo.contains(seq)) {
    // Retransmit of something already integrated: count the drop, but
    // still ACK below — the original ACK may have been lost.
    duplicates_dropped_.fetch_add(1);
  } else if (seq - (peer.cum + 1) > kMaxReorderSpan) {
    return;  // absurd gap: garbage, allocate nothing
  } else if (peer.ooo.size() >= kReorderCap) {
    return;  // reorder buffer full: drop; the sender retransmits
  } else {
    integrate_data(peer, seq, packet, from);
  }
  send_ack(from, peer);
}

void ReliableChannel::handle_parity(const Endpoint& from,
                                    wire::Packet packet) {
  if (packet.fec_k == 0 || packet.fec_k > kMaxFecGroup) return;
  util::MutexLock lock(rx_mu_);
  RxPeer& peer = rx_peer_for(from, packet);
  const std::uint64_t base = packet.fec_base;
  if (wire::seq_le(base + packet.fec_k - 1, peer.cum)) return;  // all done
  // Far-future guard: serial distance, since base may be at or below the
  // cumulative ack when earlier group members already landed.
  if (wire::seq_lt(peer.cum + 1, base) &&
      base - (peer.cum + 1) > kMaxReorderSpan) {
    return;
  }
  auto git = peer.groups.find(base);
  FecGroup* group = nullptr;
  if (git != peer.groups.end()) {
    group = &git->second;
  } else if (peer.groups.size() < kFecGroupCap) {
    group = &peer.groups[base];
  }
  if (group == nullptr) return;
  group->k = packet.fec_k;
  if (!group->have_parity) {
    group->have_parity = true;
    group->parity = std::move(packet.payload);
  }
  const std::uint64_t before = peer.cum;
  const std::uint64_t repairs_before = fec_repairs_.load();
  try_reconstruct(peer, base, from);
  drain_in_order(peer, from);
  if (peer.cum != before || fec_repairs_.load() != repairs_before) {
    // The repair produced progress: ACK immediately so the sender's
    // pending send() completes without any timer involvement.
    send_ack(from, peer);
  }
}

}  // namespace naplet::net
