#include "net/sim.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <limits>
#include <set>
#include <vector>

#include "util/log.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::net {

namespace {

std::int64_t now_us() { return util::RealClock::instance().now_us(); }

/// One direction of a simulated stream: a chunk queue where each chunk
/// carries a delivery time. Delivery times are monotone per pipe, which
/// preserves byte ordering (TCP semantics).
class Pipe {
 public:
  void push(std::int64_t deliver_us, util::ByteSpan data,
            std::uint64_t bytes_per_second = 0) {
    push_gather(deliver_us, std::span<const util::ByteSpan>(&data, 1),
                bytes_per_second);
  }

  /// Gather enqueue: the concatenation of `parts` becomes ONE chunk (one
  /// lock round-trip, one allocation, one wakeup) — the sim-backend analog
  /// of writev. The single copy into the chunk is the transport itself.
  void push_gather(std::int64_t deliver_us,
                   std::span<const util::ByteSpan> parts,
                   std::uint64_t bytes_per_second = 0) {
    std::size_t total = 0;
    for (const auto& part : parts) total += part.size();
    util::Bytes chunk;
    chunk.reserve(total);
    for (const auto& part : parts) {
      chunk.insert(chunk.end(), part.begin(), part.end());
    }
    bool was_empty;
    {
      util::MutexLock lock(mu_);
      if (closed_) return;
      deliver_us = std::max(deliver_us, last_deliver_us_);
      if (bytes_per_second > 0) {
        // Serialization delay: this chunk finishes arriving size/bandwidth
        // after the previous one, capping sustained throughput.
        deliver_us += static_cast<std::int64_t>(
            total * 1'000'000 / bytes_per_second);
      }
      last_deliver_us_ = deliver_us;
      was_empty = chunks_.empty();
      chunks_.emplace_back(deliver_us, std::move(chunk));
    }
    // Delivery times are monotone, so a push onto a non-empty queue never
    // unblocks a reader earlier than it would wake anyway: an untimed
    // waiter implies the queue was empty, and a timed waiter self-wakes at
    // the front chunk's delivery time. Skipping the wakeup keeps a sender
    // that is ahead of its reader off the futex entirely.
    if (was_empty) cv_.notify_all();
  }

  // Read up to `max` bytes that have "arrived". Blocks until data is
  // deliverable, the pipe closes (returns 0), or the deadline passes.
  util::StatusOr<std::size_t> read(std::uint8_t* out, std::size_t max,
                                   std::optional<std::int64_t> deadline_us) {
    util::MutexLock lock(mu_);
    for (;;) {
      const std::int64_t now = now_us();
      if (!chunks_.empty() && chunks_.front().first <= now) break;
      if (chunks_.empty() && closed_) return std::size_t{0};

      std::int64_t wake = deadline_us.value_or(
          std::numeric_limits<std::int64_t>::max());
      if (!chunks_.empty()) wake = std::min(wake, chunks_.front().first);
      if (deadline_us && now >= *deadline_us) return util::Timeout("sim read");

      if (wake == std::numeric_limits<std::int64_t>::max()) {
        cv_.wait(mu_);
      } else {
        cv_.wait_for(mu_, std::chrono::microseconds(
                              std::max<std::int64_t>(1, wake - now)));
      }
    }

    std::size_t copied = 0;
    const std::int64_t now = now_us();
    while (copied < max && !chunks_.empty() && chunks_.front().first <= now) {
      const util::Bytes& data = chunks_.front().second;
      const std::size_t take = std::min(max - copied, data.size() - offset_);
      std::copy_n(data.data() + offset_, take, out + copied);
      copied += take;
      offset_ += take;
      if (offset_ == data.size()) {
        chunks_.pop_front();
        offset_ = 0;
      }
    }
    return copied;
  }

  /// All bytes already delivered (arrival time <= now), without blocking.
  util::Bytes drain_now() {
    util::MutexLock lock(mu_);
    util::Bytes out;
    const std::int64_t now = now_us();
    while (!chunks_.empty() && chunks_.front().first <= now) {
      const util::Bytes& data = chunks_.front().second;
      out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(offset_),
                 data.end());
      chunks_.pop_front();
      offset_ = 0;
    }
    return out;
  }

  void close() {
    {
      util::MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    util::MutexLock lock(mu_);
    return closed_;
  }

 private:
  mutable util::Mutex mu_{util::LockRank::kSimPipe, "sim.pipe"};
  util::CondVar cv_;
  std::deque<std::pair<std::int64_t, util::Bytes>> chunks_
      NAPLET_GUARDED_BY(mu_);
  std::size_t offset_ NAPLET_GUARDED_BY(mu_) = 0;
  std::int64_t last_deliver_us_ NAPLET_GUARDED_BY(mu_) = 0;
  bool closed_ NAPLET_GUARDED_BY(mu_) = false;
};

struct LatencySampler {
  LinkConfig config;
  util::Rng* rng;
  util::Mutex* rng_mu;

  std::int64_t sample_us() {
    std::int64_t d = config.latency.count();
    if (config.jitter.count() > 0) {
      util::MutexLock lock(*rng_mu);
      d += static_cast<std::int64_t>(
          rng->next_below(static_cast<std::uint64_t>(config.jitter.count())));
    }
    return d;
  }
};

class SimStream;
using SimStreamWeak = std::weak_ptr<SimStream>;

class SimStream final : public Stream,
                        public std::enable_shared_from_this<SimStream> {
 public:
  SimStream(std::shared_ptr<Pipe> read_pipe, std::shared_ptr<Pipe> write_pipe,
            Endpoint local, Endpoint remote, LatencySampler sampler)
      : read_pipe_(std::move(read_pipe)),
        write_pipe_(std::move(write_pipe)),
        local_(std::move(local)),
        remote_(std::move(remote)),
        sampler_(sampler) {}

  ~SimStream() override { close(); }

  util::StatusOr<std::size_t> read_some(std::uint8_t* out,
                                        std::size_t max) override {
    return read_pipe_->read(out, max, std::nullopt);
  }

  util::StatusOr<std::size_t> read_some_for(std::uint8_t* out, std::size_t max,
                                            util::Duration timeout) override {
    return read_pipe_->read(out, max, now_us() + timeout.count());
  }

  util::Status write_all(util::ByteSpan data) override {
    if (write_pipe_->closed()) return util::Cancelled("sim stream closed");
    write_pipe_->push(now_us() + sampler_.sample_us(), data,
                      sampler_.config.bytes_per_second);
    return util::OkStatus();
  }

  util::Status write_all_vectored(
      std::span<const util::ByteSpan> parts) override {
    if (write_pipe_->closed()) return util::Cancelled("sim stream closed");
    write_pipe_->push_gather(now_us() + sampler_.sample_us(), parts,
                             sampler_.config.bytes_per_second);
    return util::OkStatus();
  }

  util::StatusOr<util::Bytes> drain_pending() override {
    return read_pipe_->drain_now();
  }

  void close() override {
    read_pipe_->close();
    write_pipe_->close();
  }

  [[nodiscard]] Endpoint local_endpoint() const override { return local_; }
  [[nodiscard]] Endpoint remote_endpoint() const override { return remote_; }

 private:
  std::shared_ptr<Pipe> read_pipe_;
  std::shared_ptr<Pipe> write_pipe_;
  Endpoint local_;
  Endpoint remote_;
  LatencySampler sampler_;
};

/// Shared-ownership wrapper so SimNet can sever a stream the application
/// still holds: the app owns a StreamPtr facade; the fabric keeps a weak_ptr.
class StreamFacade final : public Stream {
 public:
  explicit StreamFacade(std::shared_ptr<SimStream> impl)
      : impl_(std::move(impl)) {}
  ~StreamFacade() override { impl_->close(); }

  util::StatusOr<std::size_t> read_some(std::uint8_t* out,
                                        std::size_t max) override {
    return impl_->read_some(out, max);
  }
  util::StatusOr<std::size_t> read_some_for(std::uint8_t* out, std::size_t max,
                                            util::Duration timeout) override {
    return impl_->read_some_for(out, max, timeout);
  }
  util::Status write_all(util::ByteSpan data) override {
    return impl_->write_all(data);
  }
  util::Status write_all_vectored(
      std::span<const util::ByteSpan> parts) override {
    return impl_->write_all_vectored(parts);
  }
  util::StatusOr<util::Bytes> drain_pending() override {
    return impl_->drain_pending();
  }
  void close() override { impl_->close(); }
  [[nodiscard]] Endpoint local_endpoint() const override {
    return impl_->local_endpoint();
  }
  [[nodiscard]] Endpoint remote_endpoint() const override {
    return impl_->remote_endpoint();
  }

 private:
  std::shared_ptr<SimStream> impl_;
};

struct PendingConn {
  std::shared_ptr<SimStream> server_side;
  Endpoint client_endpoint;
};

class SimListener;
class SimDatagram;

}  // namespace

struct SimNet::Impl {
  // The fabric lock; rng_mu nests strictly inside it (SimDatagram::send_to).
  util::Mutex mu{util::LockRank::kSimFabric, "sim.fabric"};
  util::Mutex rng_mu{util::LockRank::kSimPipe, "sim.rng"};
  util::Rng rng NAPLET_GUARDED_BY(rng_mu);
  LinkConfig default_link NAPLET_GUARDED_BY(mu);
  std::map<std::pair<std::string, std::string>, LinkConfig> links
      NAPLET_GUARDED_BY(mu);
  std::set<std::pair<std::string, std::string>> partitions
      NAPLET_GUARDED_BY(mu);  // normalized pairs
  std::map<std::string, std::shared_ptr<SimNode>> nodes NAPLET_GUARDED_BY(mu);

  // Listener registry: (node, port) -> accept queue.
  struct ListenerEntry {
    util::BlockingQueue<PendingConn>* queue = nullptr;
  };
  std::map<std::pair<std::string, std::uint16_t>, ListenerEntry> listeners
      NAPLET_GUARDED_BY(mu);

  // Datagram registry: (node, port) -> shared inbox state. Shared-owned so
  // a sender that resolved an entry can finish its enqueue and wakeup even
  // if the receiving datagram is concurrently closed and destroyed (the
  // crash-restart teardown in Realm::remove_node does exactly this).
  struct DgramState {
    util::Mutex mu{util::LockRank::kSimPipe, "sim.dgram"};
    util::CondVar cv;
    std::multimap<std::int64_t, Datagram::Packet> inbox NAPLET_GUARDED_BY(mu);
    bool closed NAPLET_GUARDED_BY(mu) = false;
    // Reactor readiness hook (Datagram::set_ready_callback): invoked by
    // senders WHILE HOLDING mu, so set_ready_callback(nullptr) fully
    // synchronizes uninstallation (no sender can still be about to call a
    // stale callback). The callback may therefore only take locks ranked
    // above kSimPipe — Reactor::notify (kReactor) qualifies.
    std::function<void()> ready_cb NAPLET_GUARDED_BY(mu);
  };
  std::map<std::pair<std::string, std::uint16_t>, std::shared_ptr<DgramState>>
      dgrams NAPLET_GUARDED_BY(mu);

  // Established streams per normalized node pair (for sever_streams).
  std::map<std::pair<std::string, std::string>, std::vector<SimStreamWeak>>
      streams NAPLET_GUARDED_BY(mu);

  std::uint16_t next_port NAPLET_GUARDED_BY(mu) = 40000;
  std::uint64_t dropped NAPLET_GUARDED_BY(mu) = 0;
  std::uint64_t partition_events NAPLET_GUARDED_BY(mu) = 0;
  std::uint64_t severed NAPLET_GUARDED_BY(mu) = 0;

  explicit Impl(std::uint64_t seed) : rng(seed) {}

  static std::pair<std::string, std::string> norm(const std::string& a,
                                                  const std::string& b) {
    return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  LinkConfig link_for(const std::string& from, const std::string& to)
      NAPLET_REQUIRES(mu) {
    auto it = links.find({from, to});
    return it != links.end() ? it->second : default_link;
  }

  bool partitioned(const std::string& a, const std::string& b)
      NAPLET_REQUIRES(mu) {
    return partitions.contains(norm(a, b));
  }

  std::uint16_t alloc_port() NAPLET_REQUIRES(mu) { return next_port++; }
};

namespace {

class SimListener final : public Listener {
 public:
  SimListener(SimNet::Impl* impl, std::string node, std::uint16_t port)
      : impl_(impl), node_(std::move(node)), port_(port) {}

  ~SimListener() override { close(); }

  util::StatusOr<StreamPtr> accept(
      std::optional<util::Duration> timeout) override {
    std::optional<PendingConn> conn;
    if (timeout) {
      conn = queue_.pop_for(*timeout);
      if (!conn && !queue_.closed()) return util::Timeout("sim accept");
    } else {
      conn = queue_.pop();
    }
    if (!conn) return util::Cancelled("sim listener closed");
    return StreamPtr(std::make_unique<StreamFacade>(conn->server_side));
  }

  [[nodiscard]] Endpoint local_endpoint() const override {
    return Endpoint{node_, port_};
  }

  void close() override {
    bool expected = false;
    if (!closed_.compare_exchange_strong(expected, true)) return;
    queue_.close();
    util::MutexLock lock(impl_->mu);
    impl_->listeners.erase({node_, port_});
  }

  util::BlockingQueue<PendingConn>& queue() { return queue_; }

 private:
  SimNet::Impl* impl_;
  std::string node_;
  std::uint16_t port_;
  util::BlockingQueue<PendingConn> queue_;
  std::atomic<bool> closed_{false};
};

class SimDatagram final : public Datagram {
 public:
  SimDatagram(SimNet::Impl* impl, std::string node, std::uint16_t port)
      : impl_(impl), node_(std::move(node)), port_(port) {}

  ~SimDatagram() override { close(); }

  util::Status send_to(const Endpoint& dest, util::ByteSpan data) override {
    std::shared_ptr<SimNet::Impl::DgramState> peer;
    std::int64_t deliver;
    {
      util::MutexLock lock(impl_->mu);
      if (impl_->partitioned(node_, dest.host)) {
        ++impl_->dropped;
        return util::OkStatus();  // silent drop, like real UDP
      }
      auto it = impl_->dgrams.find({dest.host, dest.port});
      if (it == impl_->dgrams.end()) return util::OkStatus();  // no receiver
      peer = it->second;

      LinkConfig link = impl_->link_for(node_, dest.host);
      {
        util::MutexLock rng_lock(impl_->rng_mu);
        if (link.datagram_loss > 0.0 &&
            impl_->rng.bernoulli(link.datagram_loss)) {
          ++impl_->dropped;
          return util::OkStatus();
        }
        deliver = now_us() + link.latency.count();
        if (link.jitter.count() > 0) {
          deliver += static_cast<std::int64_t>(impl_->rng.next_below(
              static_cast<std::uint64_t>(link.jitter.count())));
        }
      }
    }
    {
      util::MutexLock lock(peer->mu);
      if (peer->closed) return util::OkStatus();
      peer->inbox.emplace(
          deliver, Packet{Endpoint{node_, port_},
                          util::Bytes(data.begin(), data.end())});
      if (peer->ready_cb) peer->ready_cb();  // under mu: see DgramState
    }
    peer->cv.notify_all();  // `peer` keeps the state alive past any close()
    return util::OkStatus();
  }

  util::StatusOr<Packet> recv_for(util::Duration timeout) override {
    util::MutexLock lock(state_->mu);
    const std::int64_t deadline = now_us() + timeout.count();
    for (;;) {
      const std::int64_t now = now_us();
      if (state_->closed) return util::Cancelled("sim datagram closed");
      if (!state_->inbox.empty() && state_->inbox.begin()->first <= now) {
        Packet pkt = std::move(state_->inbox.begin()->second);
        state_->inbox.erase(state_->inbox.begin());
        return pkt;
      }
      if (now >= deadline) return util::Timeout("sim recv");
      std::int64_t wake = deadline;
      if (!state_->inbox.empty()) {
        wake = std::min(wake, state_->inbox.begin()->first);
      }
      state_->cv.wait_for(state_->mu,
                          std::chrono::microseconds(
                              std::max<std::int64_t>(1, wake - now)));
    }
  }

  [[nodiscard]] Endpoint local_endpoint() const override {
    return Endpoint{node_, port_};
  }

  void set_ready_callback(std::function<void()> cb) override {
    util::MutexLock lock(state_->mu);
    state_->ready_cb = std::move(cb);
  }

  [[nodiscard]] std::optional<std::int64_t> next_ready_us() const override {
    util::MutexLock lock(state_->mu);
    if (state_->closed || state_->inbox.empty()) return std::nullopt;
    return state_->inbox.begin()->first;
  }

  void close() override {
    {
      util::MutexLock lock(state_->mu);
      if (state_->closed) return;
      state_->closed = true;
      state_->ready_cb = nullptr;
    }
    state_->cv.notify_all();
    util::MutexLock lock(impl_->mu);
    // Erase only our own registration: a restarted node may have re-bound
    // the port with a fresh datagram by the time the old one is destroyed.
    auto it = impl_->dgrams.find({node_, port_});
    if (it != impl_->dgrams.end() && it->second == state_) {
      impl_->dgrams.erase(it);
    }
  }

  void register_self() {
    util::MutexLock lock(impl_->mu);
    impl_->dgrams[{node_, port_}] = state_;
  }

 private:
  SimNet::Impl* impl_;
  std::string node_;
  std::uint16_t port_;
  std::shared_ptr<SimNet::Impl::DgramState> state_ =
      std::make_shared<SimNet::Impl::DgramState>();
};

}  // namespace

SimNet::SimNet(std::uint64_t seed) : impl_(std::make_unique<Impl>(seed)) {}
SimNet::~SimNet() = default;

std::shared_ptr<SimNode> SimNet::add_node(const std::string& name) {
  util::MutexLock lock(impl_->mu);
  auto it = impl_->nodes.find(name);
  if (it != impl_->nodes.end()) return it->second;
  auto node = std::shared_ptr<SimNode>(new SimNode(name, this));
  impl_->nodes[name] = node;
  return node;
}

void SimNet::set_link(const std::string& from, const std::string& to,
                      LinkConfig config) {
  util::MutexLock lock(impl_->mu);
  impl_->links[{from, to}] = config;
}

void SimNet::set_default_link(LinkConfig config) {
  util::MutexLock lock(impl_->mu);
  impl_->default_link = config;
}

void SimNet::set_partition(const std::string& a, const std::string& b,
                           bool on) {
  util::MutexLock lock(impl_->mu);
  if (on) {
    if (impl_->partitions.insert(Impl::norm(a, b)).second) {
      ++impl_->partition_events;
    }
  } else {
    impl_->partitions.erase(Impl::norm(a, b));
  }
}

void SimNet::sever_streams(const std::string& a, const std::string& b) {
  std::vector<SimStreamWeak> victims;
  {
    util::MutexLock lock(impl_->mu);
    auto it = impl_->streams.find(Impl::norm(a, b));
    if (it == impl_->streams.end()) return;
    victims = std::move(it->second);
    impl_->streams.erase(it);
  }
  std::uint64_t closed = 0;
  for (auto& weak : victims) {
    if (auto stream = weak.lock()) {
      stream->close();
      ++closed;
    }
  }
  if (closed > 0) {
    util::MutexLock lock(impl_->mu);
    impl_->severed += closed;
  }
}

std::uint64_t SimNet::datagrams_dropped() const {
  util::MutexLock lock(impl_->mu);
  return impl_->dropped;
}

NetworkCounters SimNet::counters() const {
  util::MutexLock lock(impl_->mu);
  NetworkCounters out;
  out.datagrams_dropped = impl_->dropped;
  out.partition_events = impl_->partition_events;
  out.partitions_active = impl_->partitions.size();
  out.streams_severed = impl_->severed;
  return out;
}

NetworkCounters SimNode::counters() const { return net_->counters(); }

util::StatusOr<ListenerPtr> SimNode::listen(std::uint16_t port) {
  auto* impl = net_->impl_.get();
  util::MutexLock lock(impl->mu);
  if (port == 0) port = impl->alloc_port();
  if (impl->listeners.contains({name_, port})) {
    return util::AlreadyExists("sim port in use: " + name_ + ":" +
                               std::to_string(port));
  }
  auto listener = std::make_unique<SimListener>(impl, name_, port);
  impl->listeners[{name_, port}] = SimNet::Impl::ListenerEntry{&listener->queue()};
  return ListenerPtr(std::move(listener));
}

util::StatusOr<StreamPtr> SimNode::connect(const Endpoint& dest,
                                           util::Duration /*timeout*/) {
  auto* impl = net_->impl_.get();
  LatencySampler to_dest{};
  LatencySampler to_src{};
  util::BlockingQueue<PendingConn>* accept_queue = nullptr;
  std::uint16_t client_port;
  {
    util::MutexLock lock(impl->mu);
    if (impl->partitioned(name_, dest.host)) {
      return util::Unavailable("sim partition: " + name_ + " <-> " + dest.host);
    }
    auto it = impl->listeners.find({dest.host, dest.port});
    if (it == impl->listeners.end()) {
      return util::Unavailable("sim connection refused: " + dest.to_string());
    }
    accept_queue = it->second.queue;
    to_dest = LatencySampler{impl->link_for(name_, dest.host), &impl->rng,
                             &impl->rng_mu};
    to_src = LatencySampler{impl->link_for(dest.host, name_), &impl->rng,
                            &impl->rng_mu};
    client_port = impl->alloc_port();
  }

  // Two unidirectional pipes form the duplex stream.
  auto c2s = std::make_shared<Pipe>();
  auto s2c = std::make_shared<Pipe>();

  const Endpoint client_ep{name_, client_port};
  auto client_side = std::make_shared<SimStream>(s2c, c2s, client_ep, dest,
                                                 to_dest);
  auto server_side = std::make_shared<SimStream>(c2s, s2c, dest, client_ep,
                                                 to_src);

  {
    util::MutexLock lock(impl->mu);
    auto& vec = impl->streams[SimNet::Impl::norm(name_, dest.host)];
    vec.emplace_back(client_side);
    vec.emplace_back(server_side);
    // Opportunistic cleanup of dead entries.
    std::erase_if(vec, [](const SimStreamWeak& w) { return w.expired(); });
  }

  if (!accept_queue->push(PendingConn{server_side, client_ep})) {
    return util::Unavailable("sim listener closed: " + dest.to_string());
  }
  return StreamPtr(std::make_unique<StreamFacade>(client_side));
}

util::StatusOr<DatagramPtr> SimNode::bind_datagram(std::uint16_t port) {
  auto* impl = net_->impl_.get();
  {
    util::MutexLock lock(impl->mu);
    if (port == 0) port = impl->alloc_port();
    if (impl->dgrams.contains({name_, port})) {
      return util::AlreadyExists("sim udp port in use: " + name_ + ":" +
                                 std::to_string(port));
    }
  }
  auto sock = std::make_unique<SimDatagram>(impl, name_, port);
  sock->register_self();
  return DatagramPtr(std::move(sock));
}

}  // namespace naplet::net
