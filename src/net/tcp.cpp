#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <shared_mutex>

namespace naplet::net {

namespace {

util::Status errno_status(const char* what) {
  return util::IoError(std::string(what) + ": " + std::strerror(errno));
}

util::StatusOr<sockaddr_in> make_addr(const std::string& host,
                                      std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::InvalidArgument("bad IPv4 address: " + host);
  }
  return addr;
}

Endpoint endpoint_of(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof buf);
  return Endpoint{buf, ntohs(addr.sin_port)};
}

Endpoint local_endpoint_of(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Endpoint{};
  }
  return endpoint_of(addr);
}

Endpoint remote_endpoint_of(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Endpoint{};
  }
  return endpoint_of(addr);
}

/// Wait for readability; true if readable, false on timeout.
util::StatusOr<bool> wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return errno_status("poll");
  }
}

class TcpStream final : public Stream {
 public:
  explicit TcpStream(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    local_ = local_endpoint_of(fd);
    remote_ = remote_endpoint_of(fd);
  }

  ~TcpStream() override { close(); }

  util::StatusOr<std::size_t> read_some(std::uint8_t* out,
                                        std::size_t max) override {
    for (;;) {
      const ssize_t n = ::recv(fd_.get(), out, max, 0);
      if (n >= 0) return static_cast<std::size_t>(n);
      if (errno == EINTR) continue;
      if (fd_.get() < 0) return util::Cancelled("stream closed");
      return errno_status("recv");
    }
  }

  util::StatusOr<std::size_t> read_some_for(std::uint8_t* out, std::size_t max,
                                            util::Duration timeout) override {
    const int fd = fd_.get();
    if (fd < 0) return util::Cancelled("stream closed");
    auto readable = wait_readable(
        fd, static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(timeout)
                    .count()));
    if (!readable.ok()) return readable.status();
    if (!*readable) return util::Timeout("read timed out");
    return read_some(out, max);
  }

  util::Status write_all(util::ByteSpan data) override {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_.get(), data.data() + sent,
                               data.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (fd_.get() < 0) return util::Cancelled("stream closed");
        return errno_status("send");
      }
      sent += static_cast<std::size_t>(n);
    }
    return util::OkStatus();
  }

  util::Status write_all_vectored(
      std::span<const util::ByteSpan> parts) override {
    // One writev(2) per frame in the common case; the resume loop below
    // only runs when the kernel accepts a partial gather.
    iovec iov[16];
    std::size_t iov_count = 0;
    std::size_t remaining = 0;
    for (const auto& part : parts) {
      if (part.empty()) continue;
      if (iov_count == sizeof iov / sizeof iov[0]) {
        return util::InvalidArgument("too many gather-write parts");
      }
      iov[iov_count].iov_base =
          const_cast<void*>(static_cast<const void*>(part.data()));
      iov[iov_count].iov_len = part.size();
      ++iov_count;
      remaining += part.size();
    }
    std::size_t first = 0;
    while (remaining > 0) {
      msghdr msg{};
      msg.msg_iov = iov + first;
      msg.msg_iovlen = iov_count - first;
      const ssize_t n = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (fd_.get() < 0) return util::Cancelled("stream closed");
        return errno_status("sendmsg");
      }
      remaining -= static_cast<std::size_t>(n);
      std::size_t advanced = static_cast<std::size_t>(n);
      while (advanced > 0 && advanced >= iov[first].iov_len) {
        advanced -= iov[first].iov_len;
        ++first;
      }
      if (advanced > 0) {
        iov[first].iov_base = static_cast<std::uint8_t*>(iov[first].iov_base) +
                              advanced;
        iov[first].iov_len -= advanced;
      }
    }
    return util::OkStatus();
  }

  util::StatusOr<util::Bytes> drain_pending() override {
    util::Bytes out;
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_.get(), buf, sizeof buf, MSG_DONTWAIT);
      if (n > 0) {
        out.insert(out.end(), buf, buf + n);
        continue;
      }
      if (n == 0) break;  // peer shutdown: nothing more is coming
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      if (out.empty()) return errno_status("recv(drain)");
      break;  // return what we have
    }
    return out;
  }

  void close() override {
    const int fd = fd_.get();
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    fd_.reset();
  }

  [[nodiscard]] Endpoint local_endpoint() const override { return local_; }
  [[nodiscard]] Endpoint remote_endpoint() const override { return remote_; }

 private:
  Fd fd_;
  Endpoint local_;
  Endpoint remote_;
};

class TcpListener final : public Listener {
 public:
  TcpListener(int fd, Endpoint local) : fd_(fd), local_(std::move(local)) {}
  ~TcpListener() override { close(); }

  util::StatusOr<StreamPtr> accept(
      std::optional<util::Duration> timeout) override {
    const int fd = fd_.get();
    if (fd < 0) return util::Cancelled("listener closed");
    int timeout_ms = -1;
    if (timeout) {
      timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(*timeout)
              .count());
    }
    auto readable = wait_readable(fd, timeout_ms);
    if (!readable.ok()) {
      if (fd_.get() < 0) return util::Cancelled("listener closed");
      return readable.status();
    }
    if (!*readable) return util::Timeout("accept timed out");
    const int conn = ::accept(fd_.get(), nullptr, nullptr);
    if (conn < 0) {
      if (fd_.get() < 0) return util::Cancelled("listener closed");
      return errno_status("accept");
    }
    return StreamPtr(std::make_unique<TcpStream>(conn));
  }

  [[nodiscard]] Endpoint local_endpoint() const override { return local_; }

  void close() override {
    const int fd = fd_.get();
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    fd_.reset();
  }

 private:
  Fd fd_;
  Endpoint local_;
};

class UdpSocket final : public Datagram {
 public:
  UdpSocket(int fd, Endpoint local) : fd_(fd), local_(std::move(local)) {}
  ~UdpSocket() override { close(); }

  util::Status send_to(const Endpoint& dest, util::ByteSpan data) override {
    auto addr = make_addr(dest.host, dest.port);
    if (!addr.ok()) return addr.status();
    // Shared lock: close() must not release the fd number (which the kernel
    // may reuse) while a sendto/recvfrom on it is in flight.
    std::shared_lock lock(io_mu_);
    const int fd = fd_.get();
    if (fd < 0) return util::Cancelled("datagram socket closed");
    const ssize_t n =
        ::sendto(fd, data.data(), data.size(), MSG_NOSIGNAL,
                 reinterpret_cast<const sockaddr*>(&*addr), sizeof *addr);
    if (n < 0) return errno_status("sendto");
    return util::OkStatus();
  }

  util::StatusOr<Packet> recv_for(util::Duration timeout) override {
    const int fd = fd_.get();
    if (fd < 0) return util::Cancelled("datagram socket closed");
    auto readable = wait_readable(
        fd, static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(timeout)
                    .count()));
    if (!readable.ok()) {
      if (fd_.get() < 0) return util::Cancelled("datagram socket closed");
      return readable.status();
    }
    if (!*readable) return util::Timeout("recv timed out");

    std::uint8_t buf[65536];
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    // The poll above ran unlocked on a snapshot of the fd; re-check under the
    // shared lock so a concurrent close() can't hand the fd number to a new
    // socket between the readability check and the recvfrom.
    std::shared_lock lock(io_mu_);
    if (fd_.get() < 0) return util::Cancelled("datagram socket closed");
    const ssize_t n = ::recvfrom(fd_.get(), buf, sizeof buf, 0,
                                 reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      if (fd_.get() < 0) return util::Cancelled("datagram socket closed");
      return errno_status("recvfrom");
    }
    return Packet{endpoint_of(from), util::Bytes(buf, buf + n)};
  }

  [[nodiscard]] Endpoint local_endpoint() const override { return local_; }

  [[nodiscard]] int native_handle() const override { return fd_.get(); }

  void close() override {
    // Exclusive lock: waits out any in-flight sendto/recvfrom (both are
    // short, post-poll syscalls) before ::close can recycle the fd.
    std::unique_lock lock(io_mu_);
    fd_.reset();
  }

 private:
  // Leaf lock around raw fd syscalls; nothing else is acquired under it, so
  // it stays outside the ranked-lock table.
  std::shared_mutex io_mu_;
  Fd fd_;
  Endpoint local_;
};

}  // namespace

void Fd::reset() noexcept {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

util::StatusOr<ListenerPtr> TcpNetwork::listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  Fd guard(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  auto addr = make_addr(bind_host_, port);
  if (!addr.ok()) return addr.status();
  if (::bind(fd, reinterpret_cast<sockaddr*>(&*addr), sizeof *addr) != 0) {
    return errno_status("bind");
  }
  if (::listen(fd, 64) != 0) return errno_status("listen");

  Endpoint local = local_endpoint_of(fd);
  return ListenerPtr(std::make_unique<TcpListener>(guard.release(), local));
}

util::StatusOr<StreamPtr> TcpNetwork::connect(const Endpoint& dest,
                                              util::Duration timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  Fd guard(fd);

  auto addr = make_addr(dest.host, dest.port);
  if (!addr.ok()) return addr.status();

  // Non-blocking connect with poll-based timeout.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&*addr), sizeof *addr);
  if (rc != 0 && errno != EINPROGRESS) return errno_status("connect");
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(timeout)
            .count());
    rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0) return util::Timeout("connect timed out: " + dest.to_string());
    if (rc < 0) return errno_status("poll(connect)");
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      return util::Unavailable("connect failed: " + dest.to_string() + ": " +
                               std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking

  return wrap_tcp_stream(guard.release());
}

util::StatusOr<DatagramPtr> TcpNetwork::bind_datagram(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return errno_status("socket(udp)");
  Fd guard(fd);

  auto addr = make_addr(bind_host_, port);
  if (!addr.ok()) return addr.status();
  if (::bind(fd, reinterpret_cast<sockaddr*>(&*addr), sizeof *addr) != 0) {
    return errno_status("bind(udp)");
  }
  Endpoint local = local_endpoint_of(fd);
  return DatagramPtr(std::make_unique<UdpSocket>(guard.release(), local));
}

StreamPtr wrap_tcp_stream(int fd) { return std::make_unique<TcpStream>(fd); }

}  // namespace naplet::net
