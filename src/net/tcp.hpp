// POSIX TCP/UDP backend for the transport abstraction (loopback or LAN).
#pragma once

#include <atomic>
#include <string>

#include "net/transport.hpp"

namespace naplet::net {

/// RAII file-descriptor holder.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_.load(); }
  [[nodiscard]] bool valid() const noexcept { return get() >= 0; }
  int release() noexcept { return fd_.exchange(-1); }
  void reset() noexcept;

 private:
  std::atomic<int> fd_{-1};
};

/// Network backed by real POSIX sockets bound to `bind_host`
/// (default 127.0.0.1 so tests never leave the machine).
class TcpNetwork final : public Network,
                         public std::enable_shared_from_this<TcpNetwork> {
 public:
  explicit TcpNetwork(std::string bind_host = "127.0.0.1")
      : bind_host_(std::move(bind_host)) {}

  util::StatusOr<ListenerPtr> listen(std::uint16_t port) override;
  util::StatusOr<StreamPtr> connect(const Endpoint& dest,
                                    util::Duration timeout) override;
  util::StatusOr<DatagramPtr> bind_datagram(std::uint16_t port) override;
  [[nodiscard]] std::string local_host() const override { return bind_host_; }

 private:
  std::string bind_host_;
};

/// Wrap an already-connected socket fd as a Stream (used by tests and the
/// redirector handoff path).
StreamPtr wrap_tcp_stream(int fd);

}  // namespace naplet::net
