// In-process simulated network implementing the transport abstraction.
//
// Purpose: deterministic tests of the NapletSocket protocol (no kernel
// sockets, no ports), failure injection (datagram loss, reordering,
// partitions, severed streams), and latency shaping so benches can
// reproduce the paper's ~10 ms control-message-delay regime on one machine.
//
// Model:
//  * nodes are named hosts; each node exposes the Network factory interface
//  * streams are reliable ordered in-memory pipes with per-link latency
//  * datagrams honor per-link latency, jitter and loss probability and may
//    reorder under jitter (like real UDP)
//  * partitions block new connects and drop datagrams; sever_streams()
//    force-closes established streams between two nodes (link failure)
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "net/transport.hpp"
#include "util/rng.hpp"

namespace naplet::net {

/// Directional link shaping parameters.
struct LinkConfig {
  util::Duration latency{0};
  util::Duration jitter{0};      // uniform in [0, jitter)
  double datagram_loss = 0.0;    // probability in [0, 1]
  /// Stream bandwidth cap in bytes/second (0 = unlimited). Modeled as a
  /// serialization delay: each written chunk's delivery time is pushed out
  /// by size/bandwidth past the previous chunk's, so sustained throughput
  /// converges to the cap.
  std::uint64_t bytes_per_second = 0;
};

class SimNet;

/// One simulated host. Obtain via SimNet::add_node().
class SimNode final : public Network,
                      public std::enable_shared_from_this<SimNode> {
 public:
  util::StatusOr<ListenerPtr> listen(std::uint16_t port) override;
  util::StatusOr<StreamPtr> connect(const Endpoint& dest,
                                    util::Duration timeout) override;
  util::StatusOr<DatagramPtr> bind_datagram(std::uint16_t port) override;
  [[nodiscard]] std::string local_host() const override { return name_; }
  [[nodiscard]] NetworkCounters counters() const override;

 private:
  friend class SimNet;
  SimNode(std::string name, SimNet* net) : name_(std::move(name)), net_(net) {}

  std::string name_;
  SimNet* net_;
};

/// The shared fabric. Owns link configuration and node registry. Thread-safe.
class SimNet {
 public:
  explicit SimNet(std::uint64_t seed = 42);
  ~SimNet();

  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  /// Create (or fetch) the node with this name.
  std::shared_ptr<SimNode> add_node(const std::string& name);

  /// Shaping for traffic from `from` to `to` (directional).
  void set_link(const std::string& from, const std::string& to,
                LinkConfig config);
  /// Default shaping for links without an explicit entry (both directions).
  void set_default_link(LinkConfig config);

  /// Partition on/off between two nodes (both directions): new connects fail,
  /// datagrams are silently dropped. Established streams are untouched.
  void set_partition(const std::string& a, const std::string& b, bool on);

  /// Force-close every established stream between two nodes (link failure).
  void sever_streams(const std::string& a, const std::string& b);

  /// Total datagrams dropped by loss/partition so far (observability).
  [[nodiscard]] std::uint64_t datagrams_dropped() const;

  /// All fabric fault counters in one snapshot.
  [[nodiscard]] NetworkCounters counters() const;

  /// Implementation detail, defined in sim.cpp (public so the backend's
  /// internal socket classes can reach the shared fabric state).
  struct Impl;

 private:
  friend class SimNode;
  std::unique_ptr<Impl> impl_;
};

}  // namespace naplet::net
