// Reliable delivery over UDP for the NapletSocket control channel
// (paper §3.5): retransmission timers, ACKs, sequence numbers relating
// replies to requests, and duplicate suppression at the receiver.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <thread>

#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::net {

struct RudpConfig {
  util::Duration retransmit_interval{std::chrono::milliseconds(50)};
  int max_attempts = 20;  // total sends before giving up

  // Capped exponential backoff with seeded jitter: attempt k waits
  // min(retransmit_interval * backoff_multiplier^k, cap) scaled by a
  // uniform factor in [1 - retransmit_jitter, 1 + retransmit_jitter).
  // The jitter decorrelates concurrent sessions retrying through the same
  // partition — without it every channel that lost the same datagram
  // retries on the same schedule and the retry storm re-collides forever.
  double backoff_multiplier = 1.5;
  /// Backoff cap; zero means 4 * retransmit_interval.
  util::Duration max_retransmit_interval{0};
  double retransmit_jitter = 0.1;
  /// Seed for the jitter RNG; 0 derives a per-channel seed from the clock
  /// and channel address (tests pass an explicit seed for determinism).
  std::uint64_t jitter_seed = 0;
};

/// Blocking reliable-datagram channel. send() retransmits until the peer's
/// ACK arrives or attempts are exhausted; a background thread receives,
/// ACKs, de-duplicates, and queues inbound messages for recv().
class ReliableChannel {
 public:
  explicit ReliableChannel(DatagramPtr socket, RudpConfig config = {});
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Send `payload` reliably; blocks until ACKed (Ok), attempts exhausted
  /// (kTimeout), or the channel is closed (kCancelled). A non-zero
  /// `max_wait` additionally caps the total blocking time — attempts still
  /// in the schedule when it expires are abandoned (kTimeout). Liveness
  /// probes use this so one dead peer cannot stall a probe round.
  util::Status send(const Endpoint& dest, util::ByteSpan payload,
                    util::Duration max_wait = {});

  struct Message {
    Endpoint from;
    util::Bytes payload;
  };
  /// Pop the next inbound message; nullopt on timeout or close.
  std::optional<Message> recv(util::Duration timeout);

  [[nodiscard]] Endpoint local_endpoint() const;

  void close();

  // Observability for tests/benches.
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_.load();
  }
  [[nodiscard]] std::uint64_t duplicates_dropped() const {
    return duplicates_dropped_.load();
  }
  [[nodiscard]] std::uint64_t messages_sent() const {
    return messages_sent_.load();
  }

  /// Bind per-send latency/retransmit histograms (owned by the caller,
  /// which must outlive the channel — in practice the controller's metrics
  /// registry). Either may be null; recording is skipped while unbound, so
  /// the unbound hot path costs one relaxed load per pointer.
  void bind_metrics(obs::Histogram* rtt_us, obs::Histogram* retransmits) {
    rtt_us_.store(rtt_us, std::memory_order_release);
    retransmits_per_send_.store(retransmits, std::memory_order_release);
  }

  /// The jitterless backoff schedule (pure; exposed for tests): the wait
  /// after attempt `attempt` (0-based), exponential and capped.
  [[nodiscard]] static util::Duration backoff_base(const RudpConfig& config,
                                                   int attempt);

 private:
  /// backoff_base with this channel's seeded jitter applied.
  util::Duration backoff_interval(int attempt);
  void receive_loop();
  void handle_packet(const Endpoint& from, util::ByteSpan data);

  DatagramPtr socket_;
  RudpConfig config_;

  util::Mutex mu_{util::LockRank::kRudpChannel, "rudp"};
  util::CondVar acked_cv_;
  std::set<std::uint64_t> pending_acks_
      NAPLET_GUARDED_BY(mu_);  // seqs awaiting ACK
  std::atomic<std::uint64_t> next_seq_{1};

  // Per-source duplicate suppression with bounded memory.
  struct SeenWindow {
    std::set<std::uint64_t> seqs;
    std::deque<std::uint64_t> order;
  };
  std::map<Endpoint, SeenWindow> seen_ NAPLET_GUARDED_BY(mu_);
  util::Rng jitter_rng_ NAPLET_GUARDED_BY(mu_);

  util::BlockingQueue<Message> inbox_;

  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> retransmissions_{0};
  std::atomic<std::uint64_t> duplicates_dropped_{0};
  std::atomic<std::uint64_t> messages_sent_{0};

  std::atomic<obs::Histogram*> rtt_us_{nullptr};
  std::atomic<obs::Histogram*> retransmits_per_send_{nullptr};

  std::thread receiver_;  // constructed last, joined in destructor
};

}  // namespace naplet::net
