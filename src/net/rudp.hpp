// Reliable delivery over UDP for the NapletSocket control channel
// (paper §3.5), rebuilt as a pipelined sliding-window transport:
//
//  - a windowed sender (window_packets / window_bytes) so concurrent
//    send() calls pipeline instead of serialising on one ACK round-trip;
//  - a cumulative-ACK + SACK-range receiver with an in-order reorder
//    buffer feeding recv();
//  - RTT estimation (SRTT/RTTVAR, Karn's rule) driving the retransmit
//    timer, with the capped exponential backoff as the slow path after
//    repeated loss of the same packet;
//  - fast retransmit on SACK gap evidence (a packet serially below a
//    SACKed/cumulatively-ACKed seq is retransmitted after
//    fast_retx_dupacks such ACKs, without waiting out its timer);
//  - a pluggable loss-repair stage: none, packet duplication, or XOR-FEC
//    parity over groups of fec_group packets so a single drop on a lossy
//    link is repaired from parity without any timer at all.
//
// The blocking send()/recv() surface, the non-blocking max_wait contract,
// duplicate suppression, and the close/abort wake guarantees are unchanged
// from the stop-and-wait version, so controller/bus/probe callers are
// untouched.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>

#include "net/rudp_wire.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::reactor {
class Reactor;
}  // namespace naplet::reactor

namespace naplet::net {

/// Loss-repair stage applied on top of retransmission.
enum class LossRepair : std::uint8_t {
  kNone = 0,    ///< retransmit timers / fast retransmit only
  kPacketDup,   ///< send every data packet twice back-to-back
  kXorFec,      ///< XOR parity over groups of fec_group packets
};

struct RudpConfig {
  /// Fixed retransmit interval when adaptive_rto is off, and the RTO used
  /// until the first RTT sample when it is on.
  util::Duration retransmit_interval{std::chrono::milliseconds(50)};
  int max_attempts = 20;  // total sends of one packet before giving up

  // Capped exponential backoff with seeded jitter: retransmission k of a
  // packet waits min(rto * backoff_multiplier^k, cap) scaled by a uniform
  // factor in [1 - retransmit_jitter, 1 + retransmit_jitter). The jitter
  // decorrelates concurrent sessions retrying through the same partition —
  // without it every channel that lost the same datagram retries on the
  // same schedule and the retry storm re-collides forever.
  double backoff_multiplier = 1.5;
  /// Backoff cap; zero means 4 * retransmit_interval.
  util::Duration max_retransmit_interval{0};
  double retransmit_jitter = 0.1;
  /// Seed for the jitter RNG; 0 derives a per-channel seed from the clock
  /// and channel address (tests pass an explicit seed for determinism).
  std::uint64_t jitter_seed = 0;

  // --- sliding window ---
  /// Max unacknowledged packets in flight per destination.
  int window_packets = 32;
  /// Max unacknowledged payload bytes in flight per destination. A single
  /// payload larger than this is still admitted when the window is empty.
  std::size_t window_bytes = 1 << 20;

  // --- RTT-adaptive retransmit timer ---
  /// When true, RTO = clamp(SRTT + 4*RTTVAR, min_rto, cap) once samples
  /// exist (Karn's rule: retransmitted packets never produce samples);
  /// backoff then multiplies from that RTO instead of the fixed interval.
  bool adaptive_rto = true;
  util::Duration min_rto{std::chrono::milliseconds(2)};

  /// SACK/cumulative-ACK evidence threshold for fast retransmit (each ACK
  /// covering a serially-later packet is one unit); 0 disables.
  int fast_retx_dupacks = 2;

  // --- loss repair ---
  LossRepair repair = LossRepair::kNone;
  /// XOR-FEC group size (clamped to [1, 64]). Parity goes out when the
  /// group fills or fec_flush after the group opened, so sparse senders
  /// degrade to per-packet parity rather than never covering the tail.
  int fec_group = 4;
  util::Duration fec_flush{std::chrono::milliseconds(1)};

  /// First sequence number of every flow (tests set values near 2^64 to
  /// exercise serial-arithmetic wraparound).
  std::uint64_t initial_seq = 1;
};

/// Instrument bundle the controller binds into its metrics registry. All
/// pointers are owned by the caller (which must outlive the channel); any
/// may be null, and recording is skipped while unbound so the unbound hot
/// path costs one relaxed load per pointer.
struct RudpInstruments {
  obs::Histogram* rtt_us = nullptr;                ///< per-send latency
  obs::Histogram* retransmits_per_send = nullptr;  ///< retx count per send
  obs::Gauge* window_inflight = nullptr;  ///< unacked packets, all peers
  obs::Counter* sack_blocks = nullptr;        ///< SACK ranges sent in ACKs
  obs::Counter* fast_retransmits = nullptr;   ///< gap-evidence retransmits
  obs::Counter* fec_repairs = nullptr;        ///< packets rebuilt from FEC
};

/// Blocking reliable-datagram channel. send() enters the per-destination
/// window (blocking while it is full) and returns once the packet is
/// cumulatively or selectively ACKed, attempts are exhausted (kTimeout),
/// or the channel closes (kCancelled). A background receiver thread ACKs,
/// de-duplicates, reorders, and queues inbound messages for recv(); a
/// background timer thread owns retransmissions and FEC parity flushes.
class ReliableChannel {
 public:
  explicit ReliableChannel(DatagramPtr socket, RudpConfig config = {});
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Send `payload` reliably; blocks until ACKed (Ok), attempts exhausted
  /// (kTimeout), or the channel is closed (kCancelled). A non-zero
  /// `max_wait` additionally caps the total blocking time — including time
  /// spent waiting for a window slot — and attempts still in the schedule
  /// when it expires are abandoned (kTimeout). Liveness probes use this so
  /// one dead peer cannot stall a probe round.
  util::Status send(const Endpoint& dest, util::ByteSpan payload,
                    util::Duration max_wait = {});

  struct Message {
    Endpoint from;
    util::Bytes payload;
  };
  /// Pop the next inbound message; nullopt on timeout or close. Messages
  /// from one peer are delivered in send order (the reorder buffer holds
  /// out-of-order arrivals until the gap fills).
  std::optional<Message> recv(util::Duration timeout);

  [[nodiscard]] Endpoint local_endpoint() const;

  void close();

  /// Reactor mode (DESIGN.md §15): retire this channel's two blocking
  /// background threads and serve their work from `r`'s event loop —
  /// readiness-driven receive (epoll on real sockets, delivery callbacks
  /// on SimNet) and timer-wheel retransmit/FEC-flush scans that fire only
  /// when a deadline is actually due. The blocking send()/recv() surface
  /// is unchanged. Joins the legacy threads, so it may block briefly
  /// (≤ one receive poll slice). Idempotent; no-op on a closed channel.
  void attach_reactor(reactor::Reactor* r);

  /// Undo attach_reactor: cancel wheel timers, unregister from the loop,
  /// and quiesce (no event-loop activity for this channel after return).
  /// MUST run before the reactor stops. The legacy threads are not
  /// restarted — detach is a teardown step; close() calls it implicitly.
  void detach_reactor();

  // Observability for tests/benches.
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_.load();
  }
  [[nodiscard]] std::uint64_t duplicates_dropped() const {
    return duplicates_dropped_.load();
  }
  [[nodiscard]] std::uint64_t messages_sent() const {
    return messages_sent_.load();
  }
  [[nodiscard]] std::uint64_t fast_retransmits() const {
    return fast_retransmits_.load();
  }
  [[nodiscard]] std::uint64_t fec_repairs() const {
    return fec_repairs_.load();
  }
  [[nodiscard]] std::uint64_t sack_blocks_sent() const {
    return sack_blocks_.load();
  }

  /// Bind the full instrument bundle (see RudpInstruments for ownership).
  void bind_instruments(const RudpInstruments& instruments) {
    rtt_us_.store(instruments.rtt_us, std::memory_order_release);
    retransmits_per_send_.store(instruments.retransmits_per_send,
                                std::memory_order_release);
    window_gauge_.store(instruments.window_inflight,
                        std::memory_order_release);
    sack_counter_.store(instruments.sack_blocks, std::memory_order_release);
    fast_retx_counter_.store(instruments.fast_retransmits,
                             std::memory_order_release);
    fec_counter_.store(instruments.fec_repairs, std::memory_order_release);
  }

  /// Legacy two-histogram binding (kept for callers that predate the
  /// instrument bundle).
  void bind_metrics(obs::Histogram* rtt_us, obs::Histogram* retransmits) {
    rtt_us_.store(rtt_us, std::memory_order_release);
    retransmits_per_send_.store(retransmits, std::memory_order_release);
  }

  /// The jitterless backoff schedule (pure; exposed for tests): the wait
  /// after transmission `attempt` (0-based), exponential from the fixed
  /// retransmit_interval and capped. The live timer uses the same shape
  /// seeded from the adaptive RTO once RTT samples exist.
  [[nodiscard]] static util::Duration backoff_base(const RudpConfig& config,
                                                   int attempt);

 private:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// One unacknowledged packet in the send window.
  struct TxPacket {
    util::Bytes wire;          // encoded frame, resent verbatim
    std::size_t payload_size = 0;
    TimePoint first_send{};
    TimePoint deadline{};      // next retransmit (timer thread)
    int sends = 0;             // transmissions so far (1 = original)
    int gap_evidence = 0;      // ACKs covering serially-later packets
    bool fast_retx_done = false;
    bool retransmitted = false;  // Karn: no RTT sample once true
    bool acked = false;
    bool failed = false;
    bool slot_released = false;  // window accounting done exactly once
    util::Status fail_status;
  };

  /// Per-destination sender state: its own sequence space, RTT estimator,
  /// and FEC accumulator.
  struct TxPeer {
    std::uint64_t next_seq = 0;
    std::uint64_t flow_start = 0;
    std::map<std::uint64_t, TxPacket> inflight;
    int unacked_packets = 0;
    std::size_t unacked_bytes = 0;
    bool have_rtt = false;
    double srtt_us = 0;
    double rttvar_us = 0;
    // Open FEC group: XOR of (u32 len | payload) blocks, zero-padded.
    int fec_count = 0;
    std::uint64_t fec_base = 0;
    util::Bytes fec_acc;
    TimePoint fec_opened{};
  };

  /// Per-source receiver state: cumulative ack, reorder buffer, FEC groups.
  struct FecGroup {
    std::uint8_t k = 0;
    std::uint64_t have_mask = 0;  // bit i: member fec_base+i integrated
    util::Bytes acc;              // XOR of integrated members
    bool have_parity = false;
    util::Bytes parity;
  };
  struct RxPeer {
    bool inited = false;
    std::uint64_t flow_id = 0;
    std::uint64_t cum = 0;  // every seq serially <= cum delivered
    std::map<std::uint64_t, util::Bytes> ooo;  // arrived out of order
    std::map<std::uint64_t, FecGroup> groups;  // keyed by fec_base
  };

  [[nodiscard]] util::Duration interval_for(TxPeer& peer, int attempt)
      NAPLET_REQUIRES(mu_);
  TxPeer& peer_for(const Endpoint& dest) NAPLET_REQUIRES(mu_);
  void release_slot(TxPeer& peer, TxPacket& packet) NAPLET_REQUIRES(mu_);
  void rtt_sample(TxPeer& peer, double sample_us) NAPLET_REQUIRES(mu_);
  /// Close the open FEC group and return the encoded parity frame.
  [[nodiscard]] util::Bytes flush_fec(TxPeer& peer) NAPLET_REQUIRES(mu_);

  void send_frame(const Endpoint& dest, const util::Bytes& wire);
  /// Consult `site` and transmit (possibly duplicated/corrupted/skipped).
  /// Returns false when the fault decision was kError.
  bool send_with_fault(const char* site, const Endpoint& dest,
                       const util::Bytes& wire);

  void receive_loop();
  void timer_loop();
  /// One retransmit/FEC-flush scan (the timer_loop body): collects due
  /// frames under mu_, transmits them unlocked, and returns the earliest
  /// next deadline — nullopt when nothing is in flight.
  std::optional<TimePoint> retx_pass();
  /// Reactor-mode receive: drain every deliverable datagram (non-blocking)
  /// and re-arm the SimNet future-delivery poke if one is queued.
  void on_socket_ready();
  /// Reactor-mode: (re)arm the wheel retransmit timer if `next` is sooner
  /// than the currently armed deadline. No-op when detached.
  void arm_retx_timer(TimePoint next);
  void on_retx_timer();
  void handle_packet(const Endpoint& from, util::ByteSpan data);
  void handle_ack(const Endpoint& from, const wire::Packet& packet);
  void handle_data(const Endpoint& from, wire::Packet packet);
  void handle_parity(const Endpoint& from, wire::Packet packet);

  RxPeer& rx_peer_for(const Endpoint& from, const wire::Packet& packet)
      NAPLET_REQUIRES(rx_mu_);
  /// Integrate an in-window data payload, drain the reorder buffer to the
  /// inbox, and try FEC reconstruction. Returns true if state changed.
  bool integrate_data(RxPeer& peer, std::uint64_t seq,
                      const wire::Packet& packet, const Endpoint& from)
      NAPLET_REQUIRES(rx_mu_);
  void drain_in_order(RxPeer& peer, const Endpoint& from)
      NAPLET_REQUIRES(rx_mu_);
  void try_reconstruct(RxPeer& peer, std::uint64_t base, const Endpoint& from)
      NAPLET_REQUIRES(rx_mu_);
  /// Build the current cumulative+SACK ACK frame for `peer`.
  [[nodiscard]] util::Bytes build_ack(RxPeer& peer, std::size_t* n_sacks)
      NAPLET_REQUIRES(rx_mu_);
  void send_ack(const Endpoint& to, RxPeer& peer) NAPLET_REQUIRES(rx_mu_);

  void update_window_gauge();

  DatagramPtr socket_ NAPLET_NOT_GUARDED("set at construction; the "
                                         "datagram socket is internally "
                                         "synchronized");
  RudpConfig config_ NAPLET_NOT_GUARDED("set at construction, immutable");
  // Distinguishes channel incarnations per endpoint.
  const std::uint64_t flow_id_;

  util::Mutex mu_{util::LockRank::kRudpChannel, "rudp"};
  util::CondVar acked_cv_;   // a send completed (ACK / failure / close)
  util::CondVar window_cv_;  // a window slot freed
  util::CondVar timer_cv_;   // timer wake (new deadline / close)
  std::map<Endpoint, TxPeer> tx_ NAPLET_GUARDED_BY(mu_);
  util::Rng jitter_rng_ NAPLET_GUARDED_BY(mu_);

  util::Mutex rx_mu_{util::LockRank::kRudpRx, "rudp.rx"};
  std::map<Endpoint, RxPeer> rx_ NAPLET_GUARDED_BY(rx_mu_);

  util::BlockingQueue<Message> inbox_;

  std::atomic<bool> closed_{false};
  std::atomic<std::int64_t> total_inflight_{0};
  std::atomic<std::uint64_t> retransmissions_{0};
  std::atomic<std::uint64_t> duplicates_dropped_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> fast_retransmits_{0};
  std::atomic<std::uint64_t> fec_repairs_{0};
  std::atomic<std::uint64_t> sack_blocks_{0};

  std::atomic<obs::Histogram*> rtt_us_{nullptr};
  std::atomic<obs::Histogram*> retransmits_per_send_{nullptr};
  std::atomic<obs::Gauge*> window_gauge_{nullptr};
  std::atomic<obs::Counter*> sack_counter_{nullptr};
  std::atomic<obs::Counter*> fast_retx_counter_{nullptr};
  std::atomic<obs::Counter*> fec_counter_{nullptr};

  // --- reactor mode ---
  /// EventHandler glue + armed-timer bookkeeping; allocated by
  /// attach_reactor, freed by detach_reactor after the loop quiesces.
  struct ReactorState;
  std::unique_ptr<ReactorState> reactor_state_ NAPLET_GUARDED_BY(mu_);
  /// Flips once at attach; tells the legacy threads to exit.
  std::atomic<bool> reactor_mode_{false};
  /// Set (under mu_) at the start of detach so in-flight callbacks stop
  /// re-arming wheel timers the detach would miss.
  bool reactor_detached_ NAPLET_GUARDED_BY(mu_) = false;

  std::thread timer_;     // constructed after all state, joined in dtor
  std::thread receiver_;  // constructed last, joined in destructor
};

}  // namespace naplet::net
