#include "net/rudp_wire.hpp"

#include <algorithm>

namespace naplet::net::wire {

util::Bytes encode(const Packet& packet) {
  const std::size_t n_sacks = std::min(packet.sacks.size(), kMaxSackRanges);
  util::BytesWriter w(packet.payload.size() + 48 + n_sacks * 16);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(packet.type));
  w.u64(packet.seq);
  w.u64(packet.flow_id);
  w.u64(packet.flow_start);
  w.u8(packet.flags);
  w.u8(packet.fec_k);
  w.u64(packet.fec_base);
  w.u8(static_cast<std::uint8_t>(n_sacks));
  for (std::size_t i = 0; i < n_sacks; ++i) {
    w.u64(packet.sacks[i].first);
    w.u64(packet.sacks[i].last);
  }
  w.u32(static_cast<std::uint32_t>(packet.payload.size()));
  w.raw(util::ByteSpan(packet.payload.data(), packet.payload.size()));
  w.u32(util::crc32(util::ByteSpan(w.data().data(), w.size())));
  return std::move(w).take();
}

std::optional<Packet> decode(util::ByteSpan data) {
  if (data.size() < 4 + 4) return std::nullopt;
  // CRC covers everything but the trailing CRC itself; verify first so no
  // field is trusted before the integrity check passes.
  util::BytesReader tail(data.subspan(data.size() - 4));
  const std::uint32_t stored = *tail.u32();
  if (stored != util::crc32(data.subspan(0, data.size() - 4))) {
    return std::nullopt;
  }

  util::BytesReader r(data.subspan(0, data.size() - 4));
  auto magic = r.u16();
  if (!magic.ok() || *magic != kMagic) return std::nullopt;
  auto version = r.u8();
  if (!version.ok() || *version != kVersion) return std::nullopt;
  auto type = r.u8();
  if (!type.ok() ||
      *type > static_cast<std::uint8_t>(PacketType::kParity)) {
    return std::nullopt;
  }

  Packet packet;
  packet.type = static_cast<PacketType>(*type);
  auto seq = r.u64();
  auto flow_id = r.u64();
  auto flow_start = r.u64();
  auto flags = r.u8();
  auto fec_k = r.u8();
  auto fec_base = r.u64();
  auto n_sacks = r.u8();
  if (!seq.ok() || !flow_id.ok() || !flow_start.ok() || !flags.ok() ||
      !fec_k.ok() || !fec_base.ok() || !n_sacks.ok() ||
      *n_sacks > kMaxSackRanges) {
    return std::nullopt;
  }
  packet.seq = *seq;
  packet.flow_id = *flow_id;
  packet.flow_start = *flow_start;
  packet.flags = *flags;
  packet.fec_k = *fec_k;
  packet.fec_base = *fec_base;
  packet.sacks.reserve(*n_sacks);
  for (std::uint8_t i = 0; i < *n_sacks; ++i) {
    auto first = r.u64();
    auto last = r.u64();
    if (!first.ok() || !last.ok() || seq_lt(*last, *first)) {
      return std::nullopt;
    }
    packet.sacks.push_back(SackRange{*first, *last});
  }
  auto payload = r.bytes();
  if (!payload.ok() || !r.empty()) return std::nullopt;
  packet.payload = std::move(*payload);
  return packet;
}

std::vector<SackRange> build_sacks(std::vector<std::uint64_t> seqs,
                                   std::uint64_t base,
                                   std::size_t max_ranges) {
  std::vector<SackRange> ranges;
  if (seqs.empty() || max_ranges == 0) return ranges;
  // Sort by serial distance from base so wraparound does not split or
  // reorder ranges.
  std::sort(seqs.begin(), seqs.end(),
            [base](std::uint64_t a, std::uint64_t b) {
              return a - base < b - base;
            });
  for (const std::uint64_t seq : seqs) {
    if (!ranges.empty() && seq == ranges.back().last) continue;  // duplicate
    if (!ranges.empty() && seq == ranges.back().last + 1) {
      ranges.back().last = seq;
      continue;
    }
    if (ranges.size() == max_ranges) break;  // keep the ranges nearest base
    ranges.push_back(SackRange{seq, seq});
  }
  return ranges;
}

}  // namespace naplet::net::wire
