// Network endpoint naming shared by the real (POSIX) and simulated backends.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace naplet::net {

/// (host, port) pair. For the TCP backend `host` is a dotted-quad IPv4
/// address or name; for the simulated backend it is a node name.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const {
    return host + ":" + std::to_string(port);
  }

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
  friend auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

}  // namespace naplet::net
