#include "recovery/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "recovery/snapshot.hpp"

namespace naplet::recovery {
namespace {

constexpr std::uint32_t kJournalMagic = 0x4E504C4A;  // 'NPLJ'
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4;

util::Status write_fully(int fd, util::ByteSpan data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::IoError(std::string("journal write: ") +
                           std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return util::OkStatus();
}

util::StatusOr<util::Bytes> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFound("no file at " + path);
  util::Bytes data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

}  // namespace

std::string_view to_string(CommitPoint point) noexcept {
  switch (point) {
    case CommitPoint::kConnectEstablished: return "connect-established";
    case CommitPoint::kSuspendCommitted: return "suspend-committed";
    case CommitPoint::kDrainComplete: return "drain-complete";
    case CommitPoint::kResumeCommitted: return "resume-committed";
    case CommitPoint::kImported: return "imported";
    case CommitPoint::kDeparted: return "departed";
    case CommitPoint::kClosed: return "closed";
    case CommitPoint::kGroupPrepare: return "group-prepare";
    case CommitPoint::kGroupCommit: return "group-commit";
    case CommitPoint::kGroupAbort: return "group-abort";
  }
  return "?";
}

util::Bytes GroupManifest::encode() const {
  std::size_t size = 4;
  for (const Member& m : members) size += 8 + 4 + m.blob.size();
  util::BytesWriter w(size);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const Member& m : members) {
    w.u64(m.conn_id);
    w.u32(static_cast<std::uint32_t>(m.blob.size()));
    w.raw(util::ByteSpan(m.blob.data(), m.blob.size()));
  }
  return std::move(w).take();
}

util::StatusOr<GroupManifest> GroupManifest::decode(util::ByteSpan data) {
  util::BytesReader r(data);
  const auto count = r.u32();
  if (!count.ok()) return util::ProtocolError("group manifest header");
  GroupManifest manifest;
  manifest.members.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto conn_id = r.u64();
    const auto blob_len = r.u32();
    if (!conn_id.ok() || !blob_len.ok() || r.remaining() < *blob_len) {
      return util::ProtocolError("group manifest member truncated");
    }
    auto blob = r.raw(*blob_len);
    if (!blob.ok()) return util::ProtocolError("group manifest member blob");
    manifest.members.push_back(Member{*conn_id, std::move(*blob)});
  }
  if (r.remaining() != 0) {
    return util::ProtocolError("trailing group manifest bytes");
  }
  return manifest;
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

util::StatusOr<std::unique_ptr<Journal>> Journal::open(const std::string& path,
                                                       std::uint64_t epoch) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return util::IoError("open journal " + path + ": " +
                         std::strerror(errno));
  }
  std::unique_ptr<Journal> journal(new Journal(fd, path));

  util::BytesWriter header(kHeaderSize);
  header.u32(kJournalMagic);
  header.u32(kJournalVersion);
  header.u64(epoch);
  header.u32(crc32(util::ByteSpan(header.data().data(), 16)));
  NAPLET_RETURN_IF_ERROR(write_fully(fd, header.data()));
  if (::fsync(fd) != 0) {
    return util::IoError(std::string("fsync journal header: ") +
                         std::strerror(errno));
  }
  return journal;
}

util::Status Journal::append(const JournalRecord& record) {
  if (fd_ < 0) return util::FailedPrecondition("journal not open");
  util::BytesWriter body(1 + 8 + record.payload.size());
  body.u8(static_cast<std::uint8_t>(record.point));
  body.u64(record.conn_id);
  body.raw(record.payload);

  util::BytesWriter frame(4 + body.size() + 4);
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.raw(body.data());
  frame.u32(crc32(body.data()));
  NAPLET_RETURN_IF_ERROR(write_fully(fd_, frame.data()));
  if (::fsync(fd_) != 0) {
    return util::IoError(std::string("fsync journal: ") +
                         std::strerror(errno));
  }
  ++appended_;
  return util::OkStatus();
}

util::StatusOr<ReplayResult> Journal::replay(const std::string& path) {
  auto data = read_file(path);
  if (!data.ok()) return data.status();

  util::BytesReader r(*data);
  if (r.remaining() < kHeaderSize) {
    return util::ProtocolError("journal header truncated");
  }
  const auto magic = r.u32();
  const auto version = r.u32();
  const auto epoch = r.u64();
  const auto header_crc = r.u32();
  if (!magic.ok() || *magic != kJournalMagic) {
    return util::ProtocolError("bad journal magic");
  }
  if (!version.ok() || *version != kJournalVersion) {
    return util::ProtocolError("unsupported journal version");
  }
  if (!header_crc.ok() ||
      *header_crc != crc32(util::ByteSpan(data->data(), 16))) {
    return util::ProtocolError("journal header CRC mismatch");
  }

  ReplayResult result;
  result.epoch = epoch.ok() ? *epoch : 0;
  while (!r.empty()) {
    const std::size_t record_start = r.position();
    const auto body_len = r.u32();
    if (!body_len.ok() || r.remaining() < *body_len + 4) {
      result.truncated = true;
      result.note = "torn record at offset " + std::to_string(record_start);
      break;
    }
    auto body = r.raw(*body_len);
    const auto crc = r.u32();
    if (!body.ok() || !crc.ok() || *crc != crc32(*body)) {
      result.truncated = true;
      result.note = "CRC mismatch at offset " + std::to_string(record_start);
      break;
    }
    util::BytesReader br(*body);
    const auto point = br.u8();
    const auto conn_id = br.u64();
    if (!point.ok() || !conn_id.ok() || *point < 1 ||
        *point > static_cast<std::uint8_t>(CommitPoint::kGroupAbort)) {
      result.truncated = true;
      result.note = "bad record body at offset " + std::to_string(record_start);
      break;
    }
    JournalRecord record;
    record.point = static_cast<CommitPoint>(*point);
    record.conn_id = *conn_id;
    auto payload = br.raw(br.remaining());
    record.payload = payload.ok() ? std::move(*payload) : util::Bytes{};
    result.records.push_back(std::move(record));
  }
  return result;
}

DurableStore::DurableStore(DurableStoreOptions options)
    : options_(std::move(options)) {}

std::string DurableStore::journal_path() const {
  return options_.dir + "/journal.nplj";
}

std::string DurableStore::snapshot_path() const {
  return options_.dir + "/snapshot.npls";
}

util::Status DurableStore::open() {
  if (options_.dir.empty()) {
    return util::InvalidArgument("DurableStore requires a directory");
  }
  if (::mkdir(options_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return util::IoError("mkdir " + options_.dir + ": " +
                         std::strerror(errno));
  }

  util::MutexLock lock(mu_);
  std::uint64_t max_epoch = 0;

  auto snap = Snapshot::read(snapshot_path());
  if (snap.ok()) {
    max_epoch = std::max(max_epoch, snap->epoch);
    live_ = std::move(snap->sessions);
  } else if (snap.status().code() == util::StatusCode::kProtocolError) {
    // A corrupt snapshot means we can only trust the journal (which is
    // reset at every compaction, so it holds the full delta anyway).
    degraded_ = true;
    degraded_note_ = "snapshot: " + snap.status().message();
  }

  auto replayed = Journal::replay(journal_path());
  if (replayed.ok()) {
    max_epoch = std::max(max_epoch, replayed->epoch);
    if (replayed->truncated) {
      degraded_ = true;
      if (!degraded_note_.empty()) degraded_note_ += "; ";
      degraded_note_ += "journal: " + replayed->note;
    }
    // Group two-phase replay: a prepare parks its manifest; the matching
    // commit folds the members into the live map, the matching abort
    // discards them. A prepare still parked when the journal ends is a
    // crash between prepare and commit — the prepare is only written
    // after the group barrier resolved (every peer sealed), so the
    // deterministic resolution is FORWARD: fold the manifest exactly as
    // the commit would have. Either way recovery is all-or-nothing: no
    // member's suspended state lands unless every member's does.
    std::uint64_t parked_group = 0;
    GroupManifest parked_manifest;
    for (auto& record : replayed->records) {
      if (record.point == CommitPoint::kGroupPrepare) {
        auto manifest = GroupManifest::decode(
            util::ByteSpan(record.payload.data(), record.payload.size()));
        if (manifest.ok()) {
          parked_group = record.conn_id;
          parked_manifest = std::move(*manifest);
        } else {
          degraded_ = true;
          if (!degraded_note_.empty()) degraded_note_ += "; ";
          degraded_note_ += "group prepare: " + manifest.status().message();
        }
        continue;
      }
      if (record.point == CommitPoint::kGroupCommit ||
          record.point == CommitPoint::kGroupAbort) {
        if (record.point == CommitPoint::kGroupCommit &&
            parked_group != 0 && parked_group == record.conn_id) {
          for (auto& member : parked_manifest.members) {
            live_[member.conn_id] = std::move(member.blob);
          }
        }
        parked_group = 0;
        parked_manifest.members.clear();
        continue;
      }
      if (is_removal(record.point)) {
        live_.erase(record.conn_id);
      } else {
        live_[record.conn_id] = std::move(record.payload);
      }
    }
    if (parked_group != 0) {
      // Dangling prepare: roll the group forward (see above).
      for (auto& member : parked_manifest.members) {
        live_[member.conn_id] = std::move(member.blob);
      }
    }
  } else if (replayed.status().code() == util::StatusCode::kProtocolError) {
    degraded_ = true;
    if (!degraded_note_.empty()) degraded_note_ += "; ";
    degraded_note_ += "journal: " + replayed.status().message();
  }

  epoch_ = max_epoch + 1;
  // Fold what we recovered into a fresh snapshot at the new epoch so the
  // next crash only replays this incarnation's journal.
  return compact_locked();
}

util::Status DurableStore::record(CommitPoint point, std::uint64_t conn_id,
                                  util::ByteSpan blob) {
  util::MutexLock lock(mu_);
  if (journal_ == nullptr) return util::FailedPrecondition("store not open");

  JournalRecord record;
  record.point = point;
  record.conn_id = conn_id;
  record.payload.assign(blob.begin(), blob.end());
  NAPLET_RETURN_IF_ERROR(journal_->append(record));
  ++records_written_;

  if (point == CommitPoint::kGroupPrepare) {
    auto manifest = GroupManifest::decode(blob);
    if (!manifest.ok()) return manifest.status();
    pending_group_ = conn_id;
    pending_manifest_ = std::move(*manifest);
  } else if (point == CommitPoint::kGroupCommit ||
             point == CommitPoint::kGroupAbort) {
    if (point == CommitPoint::kGroupCommit && pending_group_ != 0 &&
        pending_group_ == conn_id) {
      for (auto& member : pending_manifest_.members) {
        live_[member.conn_id] = std::move(member.blob);
      }
    }
    pending_group_ = 0;
    pending_manifest_.members.clear();
  } else if (is_removal(point)) {
    live_.erase(conn_id);
  } else {
    live_[conn_id] = std::move(record.payload);
  }

  // Compaction is deferred while a group prepare is pending: folding the
  // live map into a snapshot and resetting the journal would erase the
  // prepare record the crash path depends on.
  if (++appends_since_compact_ >= options_.compact_every &&
      pending_group_ == 0) {
    return compact_locked();
  }
  return util::OkStatus();
}

void DurableStore::abort_group(std::uint64_t group_id) {
  util::MutexLock lock(mu_);
  if (pending_group_ != group_id) return;
  pending_group_ = 0;
  pending_manifest_.members.clear();
  if (journal_ == nullptr) return;
  // The prepare reached disk, so the abort must too: replay treats a
  // dangling prepare as a crash in the commit window and rolls the group
  // FORWARD — only this record tells it the rollback was deliberate.
  JournalRecord record;
  record.point = CommitPoint::kGroupAbort;
  record.conn_id = group_id;
  if (auto st = journal_->append(record); st.ok()) {
    ++records_written_;
    ++appends_since_compact_;
  }
  // On append failure the next compaction still folds the clean live map
  // (the pending manifest is already dropped), closing the window.
}

std::uint64_t DurableStore::pending_group() const {
  util::MutexLock lock(mu_);
  return pending_group_;
}

util::Status DurableStore::compact() {
  util::MutexLock lock(mu_);
  return compact_locked();
}

util::Status DurableStore::compact_locked() {
  SnapshotData data;
  data.epoch = epoch_;
  data.sessions = live_;
  NAPLET_RETURN_IF_ERROR(Snapshot::write(snapshot_path(), data));
  auto journal = Journal::open(journal_path(), epoch_);
  if (!journal.ok()) return journal.status();
  journal_ = std::move(*journal);
  appends_since_compact_ = 0;
  ++compactions_;
  return util::OkStatus();
}

std::map<std::uint64_t, util::Bytes> DurableStore::recovered() const {
  util::MutexLock lock(mu_);
  return live_;
}

}  // namespace naplet::recovery
