// Crash durability for the migration control plane: an fsync'd
// append-only write-ahead journal of session state at protocol commit
// points, plus the DurableStore that coordinates journal + snapshot into
// a recoverable session map with monotonic incarnation epochs.
//
// Layout on disk (all integers big-endian, via BytesWriter):
//
//   journal header:  u32 magic 'NPLJ' | u32 version | u64 epoch |
//                    u32 crc32(first 16 bytes)
//   journal record:  u32 body_len | body | u32 crc32(body)
//     body:          u8 commit point | u64 conn_id | raw session blob
//
// Replay stops at the first truncated or CRC-corrupt record and reports
// `truncated` instead of failing — a torn tail is the expected shape of a
// crash mid-append, and everything before it is still authoritative.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::recovery {

/// CRC-32 (IEEE 802.3, reflected) over a byte span; the shared util
/// implementation, aliased here because the journal wire format predates it.
[[nodiscard]] inline std::uint32_t crc32(util::ByteSpan data) noexcept {
  return util::crc32(data);
}

/// The protocol points at which session state is durably recorded
/// (ISSUE: connect established, suspend committed, drain complete,
/// resume committed, close; plus migration import/export).
///
/// The group points journal an atomic whole-agent suspend as a two-phase
/// pair: kGroupPrepare carries the *group id* in the record's conn_id
/// field and a GroupManifest (every member's suspended blob) in the
/// payload; kGroupCommit (same group id, empty payload) retires it into
/// the live map, kGroupAbort (same shape) discards it. The prepare is
/// written only AFTER the group barrier resolved — every peer has acked
/// and sealed its stream by then — so it is the decision record: on
/// replay a dangling prepare (crash in the prepare→commit window) rolls
/// the whole group FORWARD, folding the manifest exactly as the commit
/// would have. Rolling back instead would strand the sealed peers against
/// stale member state and break exactly-once. A live rollback therefore
/// journals an explicit kGroupAbort; either way no member's suspended
/// state survives unless every member's does.
enum class CommitPoint : std::uint8_t {
  kConnectEstablished = 1,
  kSuspendCommitted = 2,
  kDrainComplete = 3,
  kResumeCommitted = 4,
  kImported = 5,
  kDeparted = 6,  // session exported away from this controller
  kClosed = 7,
  kGroupPrepare = 8,  // conn_id = group id; payload = GroupManifest
  kGroupCommit = 9,   // conn_id = group id; payload empty
  kGroupAbort = 10,   // conn_id = group id; payload empty
};

[[nodiscard]] std::string_view to_string(CommitPoint point) noexcept;

/// Whether this commit point removes the connection from the live set
/// (the session no longer belongs to this controller after it).
[[nodiscard]] constexpr bool is_removal(CommitPoint point) noexcept {
  return point == CommitPoint::kDeparted || point == CommitPoint::kClosed;
}

/// Whether the record's conn_id field names a suspend group, not a
/// connection (the group two-phase pair).
[[nodiscard]] constexpr bool is_group(CommitPoint point) noexcept {
  return point == CommitPoint::kGroupPrepare ||
         point == CommitPoint::kGroupCommit ||
         point == CommitPoint::kGroupAbort;
}

/// The payload of a kGroupPrepare record: every member connection's
/// suspended session blob, captured at the group's consistent cut.
struct GroupManifest {
  struct Member {
    std::uint64_t conn_id = 0;
    util::Bytes blob;  // Session::export_state at the barrier
  };
  std::vector<Member> members;

  [[nodiscard]] util::Bytes encode() const;
  static util::StatusOr<GroupManifest> decode(util::ByteSpan data);
};

struct JournalRecord {
  CommitPoint point = CommitPoint::kConnectEstablished;
  std::uint64_t conn_id = 0;
  util::Bytes payload;  // opaque session blob (Session::export_state)
};

/// Result of replaying a journal file from disk.
struct ReplayResult {
  std::uint64_t epoch = 0;
  std::vector<JournalRecord> records;
  /// True when the file ended in a torn or corrupt record; `records`
  /// holds everything up to (not including) the bad record.
  bool truncated = false;
  std::string note;  // human-readable description of the damage, if any
};

/// Append-only fsync'd journal file. Not internally synchronized; the
/// DurableStore serializes access.
class Journal {
 public:
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Create (truncating any existing file) a journal stamped with `epoch`.
  static util::StatusOr<std::unique_ptr<Journal>> open(
      const std::string& path, std::uint64_t epoch);

  /// Append one record and fsync before returning.
  util::Status append(const JournalRecord& record);

  /// Read a journal file back. kNotFound when absent, kProtocolError when
  /// the header itself is damaged; a damaged record merely truncates.
  static util::StatusOr<ReplayResult> replay(const std::string& path);

  [[nodiscard]] std::uint64_t appended() const noexcept { return appended_; }

 private:
  Journal(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
  std::uint64_t appended_ = 0;
};

struct DurableStoreOptions {
  std::string dir;
  /// Rewrite the snapshot and reset the journal every N appends.
  std::uint64_t compact_every = 64;
};

/// Coordinates snapshot + journal under one directory. open() merges the
/// last snapshot with the journal tail into the recovered session map and
/// bumps the incarnation epoch past everything seen on disk, so each
/// process lifetime is distinguishable on the wire.
class DurableStore {
 public:
  explicit DurableStore(DurableStoreOptions options);

  /// Load (or initialize) the store; must be called before record().
  util::Status open();

  /// Durably record `blob` (or a removal) for `conn_id` at `point`.
  ///
  /// Group points get two-phase semantics: kGroupPrepare (conn_id = group
  /// id, blob = GroupManifest::encode()) journals the manifest and parks
  /// it pending without touching the live map; kGroupCommit (same group
  /// id) applies every member blob to the live map atomically; kGroupAbort
  /// discards the pending manifest. While a group is pending, compaction
  /// is deferred so the snapshot can never capture half a group.
  util::Status record(CommitPoint point, std::uint64_t conn_id,
                      util::ByteSpan blob);

  /// Drop an in-flight group prepare (the coordinator rolled the group
  /// back live). Journals a kGroupAbort record when the prepare reached
  /// disk — without it, replay would treat the dangling prepare as a
  /// crash in the commit window and roll the group FORWARD. A no-op when
  /// no matching prepare is pending (the barrier failed before anything
  /// was journaled).
  void abort_group(std::uint64_t group_id);

  /// Group id of the in-flight prepare, or 0 when none is pending.
  [[nodiscard]] std::uint64_t pending_group() const;

  /// Fold the live map into a fresh snapshot and reset the journal.
  util::Status compact();

  /// This process's incarnation epoch: max(epoch on disk) + 1.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Sessions recovered from disk by open(): conn_id -> session blob.
  [[nodiscard]] std::map<std::uint64_t, util::Bytes> recovered() const;

  /// True when open() found corruption and fell back to the last valid
  /// prefix (snapshot + intact journal head).
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }
  [[nodiscard]] const std::string& degraded_note() const noexcept {
    return degraded_note_;
  }

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return records_written_;
  }
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_;
  }

  [[nodiscard]] std::string journal_path() const;
  [[nodiscard]] std::string snapshot_path() const;

 private:
  util::Status compact_locked() NAPLET_REQUIRES(mu_);

  DurableStoreOptions options_ NAPLET_NOT_GUARDED("set at construction, "
                                                  "immutable");

  // Leaf lock: record() is called after session blobs are produced, never
  // while holding controller or session locks.
  mutable util::Mutex mu_{util::LockRank::kUnranked, "durable_store"};
  std::unique_ptr<Journal> journal_ NAPLET_GUARDED_BY(mu_);
  std::map<std::uint64_t, util::Bytes> live_ NAPLET_GUARDED_BY(mu_);
  std::uint64_t appends_since_compact_ NAPLET_GUARDED_BY(mu_) = 0;
  // Two-phase group suspend: the prepared-but-uncommitted manifest. 0 =
  // no group in flight. While non-zero, compact_locked() is deferred.
  std::uint64_t pending_group_ NAPLET_GUARDED_BY(mu_) = 0;
  GroupManifest pending_manifest_ NAPLET_GUARDED_BY(mu_);
  // Monitoring counters: written under mu_, read lock-free by accessors.
  std::atomic<std::uint64_t> records_written_{0};
  std::atomic<std::uint64_t> compactions_{0};

  // Written only by open(), before the store is shared with any thread.
  std::uint64_t epoch_ NAPLET_NOT_GUARDED("stamped once by open() before "
                                          "the store is shared") = 0;
  bool degraded_ NAPLET_NOT_GUARDED("written only by open() before the "
                                    "store is shared") = false;
  std::string degraded_note_ NAPLET_NOT_GUARDED(
      "written only by open() before the store is shared");
};

}  // namespace naplet::recovery
