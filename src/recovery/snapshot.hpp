// Point-in-time checkpoint of the durable session map, written atomically
// (tmp file + fsync + rename) so a crash mid-compaction leaves the old
// snapshot intact.
//
//   u32 magic 'NPLS' | u32 version | u64 epoch | u32 count |
//   count x (u64 conn_id | bytes session blob) | u32 crc32(everything above)
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace naplet::recovery {

struct SnapshotData {
  std::uint64_t epoch = 0;
  std::map<std::uint64_t, util::Bytes> sessions;
};

class Snapshot {
 public:
  /// Atomically replace the snapshot at `path`.
  static util::Status write(const std::string& path, const SnapshotData& data);

  /// kNotFound when absent, kProtocolError on any corruption (bad magic,
  /// truncation, CRC mismatch) — the caller decides how to degrade.
  static util::StatusOr<SnapshotData> read(const std::string& path);
};

}  // namespace naplet::recovery
