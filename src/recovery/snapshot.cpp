#include "recovery/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "recovery/journal.hpp"

namespace naplet::recovery {
namespace {

constexpr std::uint32_t kSnapshotMagic = 0x4E504C53;  // 'NPLS'
constexpr std::uint32_t kSnapshotVersion = 1;

}  // namespace

util::Status Snapshot::write(const std::string& path,
                             const SnapshotData& data) {
  util::BytesWriter w;
  w.u32(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.u64(data.epoch);
  w.u32(static_cast<std::uint32_t>(data.sessions.size()));
  for (const auto& [conn_id, blob] : data.sessions) {
    w.u64(conn_id);
    w.bytes(blob);
  }
  w.u32(crc32(w.data()));

  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return util::IoError("open " + tmp + ": " + std::strerror(errno));
  }
  const util::Bytes& buf = w.data();
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return util::IoError(std::string("snapshot write: ") +
                           std::strerror(saved));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return util::IoError(std::string("fsync snapshot: ") +
                         std::strerror(saved));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    return util::IoError("rename snapshot: " +
                         std::string(std::strerror(saved)));
  }
  return util::OkStatus();
}

util::StatusOr<SnapshotData> Snapshot::read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFound("no snapshot at " + path);
  util::Bytes raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (raw.size() < 4 + 4 + 8 + 4 + 4) {
    return util::ProtocolError("snapshot truncated");
  }

  // Trailing CRC covers everything before it.
  const util::ByteSpan covered(raw.data(), raw.size() - 4);
  util::BytesReader tail(util::ByteSpan(raw.data() + raw.size() - 4, 4));
  const auto stored_crc = tail.u32();
  if (!stored_crc.ok() || *stored_crc != crc32(covered)) {
    return util::ProtocolError("snapshot CRC mismatch");
  }

  util::BytesReader r(covered);
  const auto magic = r.u32();
  const auto version = r.u32();
  const auto epoch = r.u64();
  const auto count = r.u32();
  if (!magic.ok() || *magic != kSnapshotMagic) {
    return util::ProtocolError("bad snapshot magic");
  }
  if (!version.ok() || *version != kSnapshotVersion) {
    return util::ProtocolError("unsupported snapshot version");
  }
  if (!epoch.ok() || !count.ok()) {
    return util::ProtocolError("snapshot header truncated");
  }

  SnapshotData data;
  data.epoch = *epoch;
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto conn_id = r.u64();
    auto blob = r.bytes();
    if (!conn_id.ok() || !blob.ok()) {
      return util::ProtocolError("snapshot entry truncated");
    }
    data.sessions[*conn_id] = std::move(*blob);
  }
  if (r.remaining() != 0) {
    return util::ProtocolError("trailing snapshot bytes");
  }
  return data;
}

}  // namespace naplet::recovery
