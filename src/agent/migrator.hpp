// Dependency-inversion seam between the agent docking system and the
// NapletSocket controller (which lives in the core library, above this one).
//
// The docking system drives connection migration around each hop:
//   prepare_migration  -> suspend every connection of the departing agent
//   export_sessions    -> serialize suspended session state to travel with it
//   import_sessions    -> rebuild session objects at the destination
//   complete_migration -> release parked peers / reconnect data sockets
#pragma once

#include "agent/agent_id.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace naplet::agent {

class ConnectionMigrator {
 public:
  virtual ~ConnectionMigrator() = default;

  /// Suspend all connections of `id`; blocks until every one is suspended
  /// (honoring the concurrent-migration protocol, which may serialize this
  /// behind a peer's migration).
  virtual util::Status prepare_migration(const AgentId& id) = 0;

  /// Serialized state of `id`'s suspended connections (empty if none).
  virtual util::Bytes export_sessions(const AgentId& id) = 0;

  /// Rebuild sessions at the destination before the agent resumes running.
  virtual util::Status import_sessions(const AgentId& id,
                                       util::ByteSpan data) = 0;

  /// After landing: notify parked peers and resume data transfer.
  virtual util::Status complete_migration(const AgentId& id) = 0;

  /// The agent is terminating: close all of its connections.
  virtual void close_all(const AgentId& id) = 0;
};

/// No-op migrator for servers that host agents without NapletSocket.
class NullMigrator final : public ConnectionMigrator {
 public:
  util::Status prepare_migration(const AgentId&) override {
    return util::OkStatus();
  }
  util::Bytes export_sessions(const AgentId&) override { return {}; }
  util::Status import_sessions(const AgentId&, util::ByteSpan) override {
    return util::OkStatus();
  }
  util::Status complete_migration(const AgentId&) override {
    return util::OkStatus();
  }
  void close_all(const AgentId&) override {}
};

}  // namespace naplet::agent
