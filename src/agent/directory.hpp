// Networked directory service: the agent location service (paper §2.1)
// served over TCP, so agent servers on different machines — or different
// processes — can share one directory, matching the paper's testbed shape
// (a well-known naming host) instead of the in-process registry.
//
//   host A                    directory host              host B
//   RemoteLocationService ──► DirectoryServer ◄── RemoteLocationService
//                             (wraps a LocationService)
//
// The wire protocol is one request/response frame pair per operation over
// a fresh connection (simple and stateless; a lookup with a timeout holds
// its connection while it blocks). Not a consensus system: the directory
// is a single authority, exactly like the paper's location service.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "agent/location.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace naplet::agent {

/// Serves a LocationService over a TCP listener.
///
/// Observability: every request is counted (`directory_requests`, split
/// into `directory_lookups` / `directory_mutations`), timed end to end
/// (`directory_op_us`), and tracked while being served
/// (`directory_inflight` gauge) — the numbers a caching tier's load
/// reduction is judged against.
class DirectoryServer {
 public:
  DirectoryServer(net::NetworkPtr network, LocationService& backing,
                  std::uint16_t port = 0,
                  obs::Registry* registry = nullptr);
  ~DirectoryServer();

  DirectoryServer(const DirectoryServer&) = delete;
  DirectoryServer& operator=(const DirectoryServer&) = delete;

  util::Status start();
  void stop();

  [[nodiscard]] net::Endpoint endpoint() const;
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load();
  }

 private:
  void accept_loop();
  void serve(std::shared_ptr<net::Stream> stream);
  void serve_request(const std::shared_ptr<net::Stream>& stream);

  net::NetworkPtr network_;
  LocationService& backing_;
  std::uint16_t port_;
  obs::Registry& registry_;
  obs::Counter& requests_total_;
  obs::Counter& lookups_total_;
  obs::Counter& mutations_total_;
  obs::Gauge& inflight_;
  obs::Histogram& op_latency_;
  net::ListenerPtr listener_;
  std::thread acceptor_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> requests_served_{0};
};

/// LocationService client backed by a DirectoryServer. Drop-in for the
/// in-process registry: AgentServer and SocketController only see the
/// LocationService interface.
class RemoteLocationService final : public LocationService {
 public:
  RemoteLocationService(net::NetworkPtr network, net::Endpoint directory);

  void register_agent(const AgentId& id, const NodeInfo& node) override;
  void begin_migration(const AgentId& id) override;
  void end_migration(const AgentId& id) override;
  void deregister_agent(const AgentId& id) override;
  [[nodiscard]] std::optional<NodeInfo> try_lookup(
      const AgentId& id) const override;
  [[nodiscard]] util::StatusOr<NodeInfo> lookup(
      const AgentId& id, util::Duration timeout) const override;
  [[nodiscard]] bool known(const AgentId& id) const override;
  /// Remote poll: the directory protocol has no push channel, so this
  /// re-queries known() with escalating pacing until gone or timeout.
  [[nodiscard]] bool wait_gone(const AgentId& id,
                               util::Duration timeout) const override;
  [[nodiscard]] std::size_t size() const override;

  void register_server(const NodeInfo& node) override;
  void deregister_server(const std::string& server_name) override;
  [[nodiscard]] util::StatusOr<NodeInfo> lookup_server(
      const std::string& server_name) const override;

  /// Errors from the most recent failed round trip (mutating calls return
  /// void per the interface; failures are recorded here and logged).
  [[nodiscard]] util::Status last_error() const;

 private:
  util::StatusOr<util::Bytes> round_trip(util::ByteSpan request,
                                         util::Duration extra_wait = {}) const;
  void record_error(const util::Status& status) const;

  net::NetworkPtr network_;
  net::Endpoint directory_;
  mutable std::mutex error_mu_;
  mutable util::Status last_error_;
};

}  // namespace naplet::agent
