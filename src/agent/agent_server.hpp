// AgentServer: the Naplet docking station (paper §1, §2).
//
// Hosts agent threads, admits incoming migrations over a TCP listener,
// transfers departing agents (state + mailbox + suspended connection
// sessions), and wires together the middleware components: ServerBus
// (reliable UDP control), PostOffice, AccessController, and — via the
// ConnectionMigrator seam — the NapletSocket controller from the core
// library.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "agent/access_control.hpp"
#include "agent/agent.hpp"
#include "agent/bus.hpp"
#include "agent/location.hpp"
#include "agent/migrator.hpp"
#include "agent/postoffice.hpp"
#include "net/transport.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::agent {

struct AgentServerConfig {
  std::string name;
  std::uint16_t control_port = 0;    // 0 = auto
  std::uint16_t migration_port = 0;  // 0 = auto
  util::Bytes realm_key;             // shared across the deployment
  PostOfficeConfig post_config{};
  net::RudpConfig rudp_config{};
  /// Simulated agent transfer cost added to each hop (models code/state
  /// shipping beyond the session bytes; the paper's Ta-migrate is ~220 ms).
  util::Duration extra_migration_cost{0};
};

class AgentServer {
 public:
  AgentServer(net::NetworkPtr network, LocationService& locations,
              AgentServerConfig config);
  ~AgentServer();

  AgentServer(const AgentServer&) = delete;
  AgentServer& operator=(const AgentServer&) = delete;

  /// Bind sockets, start threads, register the server in the directory.
  util::Status start();
  void stop();

  // ---- composition hooks (core library / application wiring) ----

  /// Install the NapletSocket controller (or leave the default NullMigrator).
  void set_migrator(ConnectionMigrator* migrator);
  /// Expose a named middleware service to agents via AgentContext::service.
  void register_service(const std::string& name, void* service);
  /// Core sets this once its redirector is listening.
  void set_redirector_endpoint(const net::Endpoint& endpoint);

  // ---- agent lifecycle ----

  /// Admit a brand-new agent. It starts running on its own thread.
  util::Status launch(std::unique_ptr<Agent> agent, AgentId id);

  // ---- accessors ----

  [[nodiscard]] NodeInfo node_info() const;
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] ServerBus& bus() { return *bus_; }
  [[nodiscard]] AccessController& access() { return access_; }
  [[nodiscard]] PostOffice& post() { return *post_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] LocationService& locations() { return locations_; }
  [[nodiscard]] ConnectionMigrator& migrator() { return *migrator_; }

  [[nodiscard]] std::size_t resident_count() const;
  [[nodiscard]] std::uint64_t migrations_in() const {
    return migrations_in_.load();
  }
  [[nodiscard]] std::uint64_t migrations_out() const {
    return migrations_out_.load();
  }

 private:
  class ContextImpl;
  struct Resident {
    std::unique_ptr<Agent> agent;
    std::shared_ptr<ContextImpl> context;
    std::thread thread;
  };

  void migration_accept_loop();
  void handle_incoming_migration(net::StreamPtr stream);
  /// Run one hop of `id` on the calling thread; afterwards transfer or
  /// terminate the agent.
  void agent_thread_main(AgentId id);
  util::Status transfer_agent(const AgentId& id, const std::string& dest_name);
  void terminate_agent(const AgentId& id);
  void admit(std::unique_ptr<Agent> agent, AgentId id, std::uint32_t hop,
             std::vector<Mail> mailbox, util::ByteSpan sessions);
  void reap_finished_threads();

  net::NetworkPtr network_ NAPLET_NOT_GUARDED("set at construction; the "
                                              "Network is internally "
                                              "synchronized");
  LocationService& locations_;
  AgentServerConfig config_ NAPLET_NOT_GUARDED("set at construction, "
                                               "immutable");
  AccessController access_ NAPLET_NOT_GUARDED("internally synchronized "
                                              "(own mutex)");

  std::unique_ptr<ServerBus> bus_ NAPLET_NOT_GUARDED(
      "created at construction before any worker thread; the bus is "
      "internally synchronized");
  std::unique_ptr<PostOffice> post_ NAPLET_NOT_GUARDED(
      "created at construction before any worker thread; internally "
      "synchronized");
  net::ListenerPtr migration_listener_ NAPLET_NOT_GUARDED(
      "created in start() before the acceptor thread");

  NullMigrator null_migrator_ NAPLET_NOT_GUARDED(
      "stateless null object, no mutable state to guard");
  ConnectionMigrator* migrator_ NAPLET_NOT_GUARDED(
      "wired via set_migrator() during single-threaded bring-up, "
      "immutable once agents run") = &null_migrator_;

  mutable util::Mutex mu_{util::LockRank::kAgentServer, "agent_server"};
  // Written by set_redirector_endpoint (core wiring thread) and read by
  // node_info from agent/admission threads; must stay under mu_.
  net::Endpoint redirector_endpoint_ NAPLET_GUARDED_BY(mu_);
  std::map<std::string, void*> services_ NAPLET_GUARDED_BY(mu_);
  std::map<AgentId, Resident> residents_ NAPLET_GUARDED_BY(mu_);
  std::vector<std::thread> finished_
      NAPLET_GUARDED_BY(mu_);  // agent threads awaiting join
  std::vector<std::thread> migration_handlers_ NAPLET_GUARDED_BY(mu_);

  std::thread migration_acceptor_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> migrations_in_{0};
  std::atomic<std::uint64_t> migrations_out_{0};
};

/// Convenience for tests/examples: block until the agent has terminated
/// (deregistered everywhere). False on timeout.
bool wait_agent_gone(const LocationService& locations, const AgentId& id,
                     util::Duration timeout);

}  // namespace naplet::agent
