// Agent-oriented access control (paper §3.3).
//
// The paper's first security requirement: an agent must never open raw
// socket resources itself. All socket requests go through a proxy in the
// NapletSocket controller, which authenticates the requesting subject and
// checks permissions; raw sockets are created only under the *system*
// subject. This mirrors JDK subject-based (JAAS) access control: decisions
// depend on WHO runs the code, not where the code came from.
//
// Authentication uses a deployment-wide realm key: each server issues its
// resident agents HMAC-signed tokens; any server in the realm can verify
// them. (A realistic stand-in for the paper's authentication step without
// a PKI.)
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "agent/agent_id.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace naplet::agent {

/// Who is asking: a mobile agent, the local system (controller), or an
/// administrator.
struct Subject {
  enum class Kind : std::uint8_t { kAgent = 0, kSystem = 1, kAdmin = 2 };
  Kind kind = Kind::kAgent;
  std::string name;  // agent id name, or server name for system subjects

  [[nodiscard]] std::string to_string() const;
};

/// Resources an access decision can cover.
enum class Permission : std::uint8_t {
  kOpenSocket = 0,    // create an outbound raw socket
  kListenSocket = 1,  // bind a raw listening socket
  kUseNapletSocket = 2,  // request a mediated NapletSocket from the proxy
  kMigrate = 3,
  kSendMail = 4,
};

std::string_view to_string(Permission p) noexcept;

/// Signed credential proving an agent was admitted by a realm server.
struct AuthToken {
  std::string agent_name;
  std::string issuing_server;
  std::uint64_t issued_at_us = 0;
  util::Bytes tag;  // HMAC-SHA256(realm_key, fields)

  void persist(util::Archive& ar) {
    ar.field(agent_name);
    ar.field(issuing_server);
    ar.field(issued_at_us);
    ar.field(tag);
  }
};

/// Policy + authentication for one server. Default policy implements the
/// paper's rule: agents are DENIED kOpenSocket/kListenSocket, GRANTED
/// kUseNapletSocket/kMigrate/kSendMail; system and admin subjects are
/// granted everything.
class AccessController {
 public:
  /// `realm_key` must be shared by every server in the deployment.
  AccessController(std::string server_name, util::Bytes realm_key);

  /// Issue a token for an agent admitted to this server.
  [[nodiscard]] AuthToken issue_token(const AgentId& agent) const;

  /// Verify a token from any realm server; returns the authenticated
  /// subject or kUnauthenticated.
  [[nodiscard]] util::StatusOr<Subject> authenticate(
      const AuthToken& token) const;

  /// Permission check; kPermissionDenied with an explanatory message when
  /// the policy denies.
  [[nodiscard]] util::Status check(const Subject& subject,
                                   Permission permission) const;

  /// Policy overrides (e.g. deny a specific agent kUseNapletSocket, or — for
  /// negative tests — grant an agent a raw socket).
  void grant(const std::string& agent_name, Permission permission);
  void deny(const std::string& agent_name, Permission permission);

  /// Revoke every override for an agent (back to default policy).
  void clear_overrides(const std::string& agent_name);

  [[nodiscard]] const std::string& server_name() const noexcept {
    return server_name_;
  }

  /// Count of denied checks (observability for tests).
  [[nodiscard]] std::uint64_t denials() const;

 private:
  [[nodiscard]] util::Bytes token_payload(const AuthToken& token) const;

  std::string server_name_;
  util::Bytes realm_key_;

  mutable std::mutex mu_;
  std::map<std::string, std::set<Permission>> grants_;
  std::map<std::string, std::set<Permission>> denies_;
  mutable std::uint64_t denials_ = 0;
};

}  // namespace naplet::agent
