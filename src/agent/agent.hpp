// Mobile agent programming model.
//
// An Agent's thread stack cannot migrate between hosts in C++, so the model
// is hop-oriented (the style of classic agent systems): the server calls
// run(ctx) when the agent lands; the agent does its work for this hop and
// either requests migration (ctx.migrate_to(...) then return) or finishes
// (plain return). All state that must survive a hop lives in persist()ed
// members. The docking system suspends the agent's NapletSocket connections
// before the hop and resumes them after landing, so from the agent's point
// of view its connections simply stay open across run() invocations.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "agent/agent_id.hpp"
#include "agent/location.hpp"
#include "util/serial.hpp"
#include "util/status.hpp"

namespace naplet::agent {

struct Mail {
  AgentId from;
  util::Bytes body;

  void persist(util::Archive& ar) {
    ar.field(from);
    ar.field(body);
  }
};

/// Per-hop services handed to Agent::run. Implemented by the AgentServer.
class AgentContext {
 public:
  virtual ~AgentContext() = default;

  [[nodiscard]] virtual const AgentId& self() const = 0;
  [[nodiscard]] virtual const std::string& server_name() const = 0;
  /// 0 on the launch host, incremented per migration.
  [[nodiscard]] virtual std::uint32_t hop_count() const = 0;

  /// Request migration to the named server after run() returns.
  /// The request is validated (permission, destination known) at hop time.
  virtual void migrate_to(const std::string& server_name) = 0;

  /// PostOffice: asynchronous persistent messaging (pre-existing Naplet
  /// facility; complementary to NapletSocket).
  virtual util::Status send_mail(const AgentId& to, util::ByteSpan body) = 0;
  /// Blocking mailbox read; nullopt on timeout.
  virtual std::optional<Mail> read_mail(util::Duration timeout) = 0;

  /// Directory access.
  [[nodiscard]] virtual LocationService& locations() = 0;

  /// Extension point: named middleware services (the NapletSocket
  /// controller registers itself as "napletsocket"). Returns nullptr when
  /// absent. Use service_as<T>() for the typed form.
  [[nodiscard]] virtual void* service(const std::string& name) = 0;

  template <typename T>
  [[nodiscard]] T* service_as(const std::string& name) {
    return static_cast<T*>(service(name));
  }
};

/// Base class for user agents. Subclasses add persist()ed state fields and
/// implement run(). Register each concrete type with AgentFactory (or the
/// NAPLET_REGISTER_AGENT macro) so destination servers can reconstruct it.
class Agent {
 public:
  virtual ~Agent() = default;

  /// Called once per hop. Return to either migrate (if requested) or finish.
  virtual void run(AgentContext& ctx) = 0;

  /// Serialize/restore the agent's migrating state.
  virtual void persist(util::Archive& ar) = 0;

  /// Registered type name used to reconstruct the agent after migration.
  [[nodiscard]] virtual std::string type_name() const = 0;
};

/// Registry of agent constructors keyed by type name.
class AgentFactory {
 public:
  using Ctor = std::function<std::unique_ptr<Agent>()>;

  static AgentFactory& instance();

  void register_type(const std::string& type_name, Ctor ctor);
  [[nodiscard]] util::StatusOr<std::unique_ptr<Agent>> create(
      const std::string& type_name) const;
  [[nodiscard]] bool has(const std::string& type_name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Ctor> ctors_;
};

/// Helper for static registration:
///   NAPLET_REGISTER_AGENT(MyAgent);  // MyAgent::type_name() == "MyAgent"
#define NAPLET_REGISTER_AGENT(Type)                                      \
  namespace {                                                            \
  const bool naplet_registered_##Type = [] {                             \
    ::naplet::agent::AgentFactory::instance().register_type(             \
        #Type, [] { return std::make_unique<Type>(); });                 \
    return true;                                                         \
  }();                                                                   \
  }

}  // namespace naplet::agent
