#include "agent/postoffice.hpp"

#include "util/log.hpp"

namespace naplet::agent {

PostOffice::PostOffice(ServerBus& bus, LocationService& locations,
                       std::string server_name, PostOfficeConfig config)
    : bus_(bus),
      locations_(locations),
      server_name_(std::move(server_name)),
      config_(config) {
  bus_.subscribe(BusKind::kMail,
                 [this](const net::Endpoint& from, util::ByteSpan payload) {
                   on_bus_mail(from, payload);
                 });
  retrier_ = std::thread([this] { retry_loop(); });
}

PostOffice::~PostOffice() {
  stop();
  if (retrier_.joinable()) retrier_.join();
}

void PostOffice::stop() {
  if (stopped_.exchange(true)) return;
  std::vector<std::shared_ptr<util::BlockingQueue<Mail>>> boxes;
  {
    util::MutexLock lock(mu_);
    for (auto& [id, box] : mailboxes_) boxes.push_back(box);
  }
  for (auto& box : boxes) box->close();
  retry_cv_.notify_all();
}

void PostOffice::open_mailbox(const AgentId& id) {
  util::MutexLock lock(mu_);
  if (!mailboxes_.contains(id)) {
    mailboxes_[id] = std::make_shared<util::BlockingQueue<Mail>>();
  }
}

void PostOffice::close_mailbox(const AgentId& id) {
  std::shared_ptr<util::BlockingQueue<Mail>> box;
  {
    util::MutexLock lock(mu_);
    auto it = mailboxes_.find(id);
    if (it == mailboxes_.end()) return;
    box = it->second;
    mailboxes_.erase(it);
  }
  box->close();
}

std::vector<Mail> PostOffice::drain_mailbox(const AgentId& id) {
  std::shared_ptr<util::BlockingQueue<Mail>> box;
  {
    util::MutexLock lock(mu_);
    auto it = mailboxes_.find(id);
    if (it == mailboxes_.end()) return {};
    box = it->second;
    mailboxes_.erase(it);
  }
  std::vector<Mail> out;
  while (auto mail = box->try_pop()) out.push_back(std::move(*mail));
  box->close();
  return out;
}

void PostOffice::restore_mailbox(const AgentId& id, std::vector<Mail> mail) {
  open_mailbox(id);
  std::shared_ptr<util::BlockingQueue<Mail>> box;
  {
    util::MutexLock lock(mu_);
    box = mailboxes_[id];
  }
  for (auto& m : mail) box->push(std::move(m));
}

util::Bytes PostOffice::encode(const Envelope& envelope) {
  util::BytesWriter w;
  w.str(envelope.to.name());
  w.str(envelope.mail.from.name());
  w.bytes(util::ByteSpan(envelope.mail.body.data(), envelope.mail.body.size()));
  w.u8(envelope.hops);
  return std::move(w).take();
}

util::StatusOr<PostOffice::Envelope> PostOffice::decode(
    util::ByteSpan payload) {
  util::BytesReader r(payload);
  auto to = r.str();
  if (!to.ok()) return to.status();
  auto from = r.str();
  if (!from.ok()) return from.status();
  auto body = r.bytes();
  if (!body.ok()) return body.status();
  auto hops = r.u8();
  if (!hops.ok()) return hops.status();
  Envelope envelope;
  envelope.to = AgentId(std::move(*to));
  envelope.mail = Mail{AgentId(std::move(*from)), std::move(*body)};
  envelope.hops = *hops;
  return envelope;
}

bool PostOffice::try_route(Envelope& envelope) {
  // Local delivery?
  {
    util::MutexLock lock(mu_);
    auto it = mailboxes_.find(envelope.to);
    if (it != mailboxes_.end()) {
      it->second->push(envelope.mail);
      return true;
    }
  }

  // Remote: route to the receiver's current server.
  auto node = locations_.try_lookup(envelope.to);
  if (!node) return false;  // unknown or in transit: park for retry
  if (node->server_name == server_name_) {
    // Registered here but no mailbox yet (admission race): retry shortly.
    return false;
  }
  if (envelope.hops >= config_.max_forward_hops) {
    dead_letters_.fetch_add(1);
    NAPLET_LOG(kWarn, "postoffice")
        << "dropping mail to " << envelope.to.name() << ": hop limit";
    return true;  // dropped; do not retry
  }
  ++envelope.hops;
  forwarded_.fetch_add(envelope.hops > 1 ? 1 : 0);
  const util::Bytes wire = encode(envelope);
  auto status = bus_.send(node->control, BusKind::kMail,
                          util::ByteSpan(wire.data(), wire.size()));
  if (!status.ok()) {
    --envelope.hops;
    return false;  // transient send failure: retry
  }
  return true;
}

util::Status PostOffice::send(const AgentId& from, const AgentId& to,
                              util::ByteSpan body) {
  if (stopped_.load()) return util::Cancelled("postoffice stopped");
  Envelope envelope;
  envelope.to = to;
  envelope.mail = Mail{from, util::Bytes(body.begin(), body.end())};
  envelope.deadline_us = util::RealClock::instance().now_us() +
                         config_.delivery_ttl.count();
  if (try_route(envelope)) return util::OkStatus();
  {
    util::MutexLock lock(mu_);
    parked_.push_back(std::move(envelope));
  }
  retry_cv_.notify_all();
  return util::OkStatus();  // accepted for (persistent) delivery
}

std::optional<Mail> PostOffice::read(const AgentId& owner,
                                     util::Duration timeout) {
  std::shared_ptr<util::BlockingQueue<Mail>> box;
  {
    util::MutexLock lock(mu_);
    auto it = mailboxes_.find(owner);
    if (it == mailboxes_.end()) return std::nullopt;
    box = it->second;
  }
  return box->pop_for(timeout);
}

void PostOffice::on_bus_mail(const net::Endpoint& /*from*/,
                             util::ByteSpan payload) {
  auto envelope = decode(payload);
  if (!envelope.ok()) {
    NAPLET_LOG(kWarn, "postoffice") << "bad mail frame: "
                                    << envelope.status().to_string();
    return;
  }
  envelope->deadline_us = util::RealClock::instance().now_us() +
                          config_.delivery_ttl.count();
  if (!try_route(*envelope)) {
    util::MutexLock lock(mu_);
    parked_.push_back(std::move(*envelope));
  }
}

void PostOffice::retry_loop() {
  util::UniqueMutexLock lock(mu_);
  while (!stopped_.load()) {
    retry_cv_.wait_for(mu_, config_.retry_interval);
    if (stopped_.load()) break;

    std::vector<Envelope> pending = std::move(parked_);
    parked_.clear();
    lock.unlock();

    const std::int64_t now = util::RealClock::instance().now_us();
    std::vector<Envelope> still_pending;
    for (auto& envelope : pending) {
      if (try_route(envelope)) continue;
      if (now >= envelope.deadline_us) {
        dead_letters_.fetch_add(1);
        NAPLET_LOG(kWarn, "postoffice")
            << "dropping mail to " << envelope.to.name() << ": TTL expired";
        continue;
      }
      still_pending.push_back(std::move(envelope));
    }

    lock.lock();
    for (auto& envelope : still_pending) {
      parked_.push_back(std::move(envelope));
    }
  }
}

}  // namespace naplet::agent
