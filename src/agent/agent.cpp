#include "agent/agent.hpp"

namespace naplet::agent {

AgentFactory& AgentFactory::instance() {
  static AgentFactory factory;
  return factory;
}

void AgentFactory::register_type(const std::string& type_name, Ctor ctor) {
  std::lock_guard lock(mu_);
  ctors_[type_name] = std::move(ctor);
}

util::StatusOr<std::unique_ptr<Agent>> AgentFactory::create(
    const std::string& type_name) const {
  Ctor ctor;
  {
    std::lock_guard lock(mu_);
    auto it = ctors_.find(type_name);
    if (it == ctors_.end()) {
      return util::NotFound("agent type not registered: " + type_name);
    }
    ctor = it->second;
  }
  return ctor();
}

bool AgentFactory::has(const std::string& type_name) const {
  std::lock_guard lock(mu_);
  return ctors_.contains(type_name);
}

}  // namespace naplet::agent
