// Agent location service (paper §2.1).
//
// Maps an agent ID to the server currently hosting it, giving agents
// location-transparent connection setup: NapletSocket consults the service
// once at connect time; after that all traffic flows over the established
// connection and no lookups are needed.
//
// The registry is an in-process directory shared by every AgentServer in
// the deployment (the paper's testbed equivalent would be a well-known
// directory host). Thread-safe; supports waiting for an agent to appear
// and an "in transit" state during migration.
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "agent/agent_id.hpp"
#include "net/endpoint.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace naplet::agent {

/// How to reach one agent server's service points.
struct NodeInfo {
  std::string server_name;
  net::Endpoint control;     // UDP control channel (ServerBus)
  net::Endpoint redirector;  // TCP redirector (data-socket handoff)
  net::Endpoint migration;   // TCP migration listener

  void persist(util::Archive& ar) {
    ar.field(server_name);
    ar.field(control.host);
    ar.field(control.port);
    ar.field(redirector.host);
    ar.field(redirector.port);
    ar.field(migration.host);
    ar.field(migration.port);
  }

  friend bool operator==(const NodeInfo&, const NodeInfo&) = default;
};

class LocationService {
 public:
  virtual ~LocationService() = default;

  /// Record (or update) an agent's current host.
  virtual void register_agent(const AgentId& id, const NodeInfo& node);

  /// Mark an agent as departing `from`; lookups block (or fail fast via
  /// try_lookup) until the agent re-registers at its destination.
  virtual void begin_migration(const AgentId& id);

  /// Roll back begin_migration: the migration failed (or was abandoned)
  /// and the agent stays where it was. Clears the in-transit flag and
  /// wakes blocked lookups. Without this, a failed migration leaves the
  /// entry in transit forever and every lookup blocks until timeout.
  virtual void end_migration(const AgentId& id);

  /// Remove an agent entirely (termination).
  virtual void deregister_agent(const AgentId& id);

  /// Current host if registered and not in transit.
  [[nodiscard]] virtual std::optional<NodeInfo> try_lookup(
      const AgentId& id) const;

  /// Block until the agent is registered and settled, up to `timeout`.
  [[nodiscard]] virtual util::StatusOr<NodeInfo> lookup(
      const AgentId& id, util::Duration timeout) const;

  /// True if the agent is known (settled or in transit).
  [[nodiscard]] virtual bool known(const AgentId& id) const;

  /// Block until the agent is completely deregistered (not merely in
  /// transit), up to `timeout`. False on timeout. Event-driven: woken by
  /// deregister_agent instead of polling known().
  [[nodiscard]] virtual bool wait_gone(const AgentId& id,
                                       util::Duration timeout) const;

  /// Number of settled agents (tests/observability).
  [[nodiscard]] virtual std::size_t size() const;

  // ---- server directory (destinations for migration) ----

  virtual void register_server(const NodeInfo& node);
  virtual void deregister_server(const std::string& server_name);
  [[nodiscard]] virtual util::StatusOr<NodeInfo> lookup_server(
      const std::string& server_name) const;

 private:
  struct Entry {
    NodeInfo node;
    bool in_transit = false;
  };

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::map<AgentId, Entry> entries_;
  std::map<std::string, NodeInfo> servers_;
};

}  // namespace naplet::agent
