#include "agent/bus.hpp"

#include "util/bytes.hpp"
#include "util/log.hpp"

namespace naplet::agent {

ServerBus::ServerBus(std::unique_ptr<net::ReliableChannel> channel)
    : channel_(std::move(channel)), dispatcher_([this] { dispatch_loop(); }) {}

ServerBus::~ServerBus() {
  stop();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void ServerBus::stop() {
  if (stopped_.exchange(true)) return;
  channel_->close();
  // Handlers point into the controller and agent server, and callers tear
  // those down right after stop() returns — so an in-flight dispatch (e.g.
  // a passive drain blocked inside handle_sus) must finish first. Skip the
  // join when a handler itself initiated the stop.
  if (dispatcher_.joinable() &&
      dispatcher_.get_id() != std::this_thread::get_id()) {
    dispatcher_.join();
  }
}

void ServerBus::subscribe(BusKind kind, Handler handler) {
  util::MutexLock lock(mu_);
  handlers_[kind] = std::move(handler);
}

util::Status ServerBus::send(const net::Endpoint& dest, BusKind kind,
                             util::ByteSpan payload,
                             util::Duration max_wait) {
  util::BytesWriter w(payload.size() + 1);
  w.u8(static_cast<std::uint8_t>(kind));
  w.raw(payload);
  return channel_->send(dest,
                        util::ByteSpan(w.data().data(), w.data().size()),
                        max_wait);
}

void ServerBus::dispatch_loop() {
  while (!stopped_.load()) {
    auto msg = channel_->recv(std::chrono::milliseconds(200));
    if (!msg) {
      if (stopped_.load()) break;
      continue;
    }
    if (msg->payload.empty()) continue;
    const auto kind = static_cast<BusKind>(msg->payload[0]);
    Handler handler;
    {
      util::MutexLock lock(mu_);
      auto it = handlers_.find(kind);
      if (it != handlers_.end()) handler = it->second;
    }
    if (!handler) {
      NAPLET_LOG(kDebug, "bus") << "no handler for kind "
                                << static_cast<int>(kind);
      continue;
    }
    handler(msg->from, util::ByteSpan(msg->payload.data() + 1,
                                      msg->payload.size() - 1));
  }
}

}  // namespace naplet::agent
