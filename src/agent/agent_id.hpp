// Agent identity and the hash-derived migration priority (paper §3.1).
//
// When both endpoints of a connection try to migrate at once, exactly one
// must win. The paper derives a total order from a hash of each agent's
// unique ID — unlike role-based priority (client vs server), this cannot
// form circular wait chains across multiple connections, so it is
// deadlock-free. We use the first 8 bytes of SHA-256(id) with the id string
// itself as a tiebreaker.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/serial.hpp"

namespace naplet::agent {

class AgentId {
 public:
  AgentId() = default;
  explicit AgentId(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool empty() const noexcept { return name_.empty(); }

  /// 64-bit migration priority derived from SHA-256(name). Larger wins.
  [[nodiscard]] std::uint64_t priority_hash() const;

  /// True if this agent outranks `other` for concurrent migration.
  /// Total order: (priority_hash, name) — never a tie between distinct ids.
  [[nodiscard]] bool outranks(const AgentId& other) const;

  void persist(util::Archive& ar) { ar.field(name_); }

  friend bool operator==(const AgentId&, const AgentId&) = default;
  friend auto operator<=>(const AgentId& a, const AgentId& b) {
    return a.name_ <=> b.name_;
  }

 private:
  std::string name_;
};

}  // namespace naplet::agent
