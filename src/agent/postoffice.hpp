// PostOffice: mailbox-based asynchronous persistent communication — the
// pre-existing Naplet facility that NapletSocket complements (paper §1).
//
// Each server keeps a mailbox per resident agent. Mail addressed to a
// remote agent is routed via the location service and the server bus; mail
// for an agent that has moved on is forwarded (bounded hop count). Mail
// that cannot be routed yet (receiver in transit) is parked and retried by
// a background thread — the "persistent" half of the semantics. A mailbox
// migrates with its agent.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "agent/agent.hpp"
#include "agent/bus.hpp"
#include "agent/location.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::agent {

struct PostOfficeConfig {
  util::Duration retry_interval{std::chrono::milliseconds(50)};
  util::Duration delivery_ttl{std::chrono::seconds(10)};
  std::uint8_t max_forward_hops = 16;
};

class PostOffice {
 public:
  PostOffice(ServerBus& bus, LocationService& locations,
             std::string server_name, PostOfficeConfig config = {});
  ~PostOffice();

  PostOffice(const PostOffice&) = delete;
  PostOffice& operator=(const PostOffice&) = delete;

  /// Mailbox lifecycle, driven by the AgentServer.
  void open_mailbox(const AgentId& id);
  void close_mailbox(const AgentId& id);
  [[nodiscard]] std::vector<Mail> drain_mailbox(const AgentId& id);
  void restore_mailbox(const AgentId& id, std::vector<Mail> mail);

  /// Send mail from a resident agent. Local receivers get direct delivery;
  /// remote ones are routed; unroutable mail is parked for retry.
  util::Status send(const AgentId& from, const AgentId& to,
                    util::ByteSpan body);

  /// Blocking mailbox read for a resident agent.
  std::optional<Mail> read(const AgentId& owner, util::Duration timeout);

  void stop();

  // Observability.
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_.load(); }
  [[nodiscard]] std::uint64_t dead_letters() const {
    return dead_letters_.load();
  }

 private:
  struct Envelope {
    AgentId to;
    Mail mail;
    std::uint8_t hops = 0;
    std::int64_t deadline_us = 0;
  };

  void on_bus_mail(const net::Endpoint& from, util::ByteSpan payload);
  /// Attempt delivery (local or remote); false if it must be retried.
  bool try_route(Envelope& envelope);
  void retry_loop();

  static util::Bytes encode(const Envelope& envelope);
  static util::StatusOr<Envelope> decode(util::ByteSpan payload);

  ServerBus& bus_;
  LocationService& locations_;
  std::string server_name_ NAPLET_NOT_GUARDED("set at construction, "
                                              "immutable");
  PostOfficeConfig config_ NAPLET_NOT_GUARDED("set at construction, "
                                              "immutable");

  util::Mutex mu_{util::LockRank::kPostOffice, "postoffice"};
  std::map<AgentId, std::shared_ptr<util::BlockingQueue<Mail>>> mailboxes_
      NAPLET_GUARDED_BY(mu_);
  std::vector<Envelope> parked_ NAPLET_GUARDED_BY(mu_);

  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> dead_letters_{0};

  util::CondVar retry_cv_;
  std::thread retrier_;
};

}  // namespace naplet::agent
