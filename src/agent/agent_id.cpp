#include "agent/agent_id.hpp"

#include "crypto/sha256.hpp"

namespace naplet::agent {

std::uint64_t AgentId::priority_hash() const {
  const crypto::Sha256Digest digest = crypto::Sha256::hash(name_);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | digest[static_cast<std::size_t>(i)];
  return v;
}

bool AgentId::outranks(const AgentId& other) const {
  const std::uint64_t mine = priority_hash();
  const std::uint64_t theirs = other.priority_hash();
  if (mine != theirs) return mine > theirs;
  return name_ > other.name_;
}

}  // namespace naplet::agent
