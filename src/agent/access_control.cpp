#include "agent/access_control.hpp"

#include "crypto/hmac.hpp"
#include "util/clock.hpp"

namespace naplet::agent {

std::string Subject::to_string() const {
  switch (kind) {
    case Kind::kAgent: return "agent:" + name;
    case Kind::kSystem: return "system:" + name;
    case Kind::kAdmin: return "admin:" + name;
  }
  return "unknown:" + name;
}

std::string_view to_string(Permission p) noexcept {
  switch (p) {
    case Permission::kOpenSocket: return "open-socket";
    case Permission::kListenSocket: return "listen-socket";
    case Permission::kUseNapletSocket: return "use-naplet-socket";
    case Permission::kMigrate: return "migrate";
    case Permission::kSendMail: return "send-mail";
  }
  return "unknown";
}

AccessController::AccessController(std::string server_name,
                                   util::Bytes realm_key)
    : server_name_(std::move(server_name)), realm_key_(std::move(realm_key)) {}

util::Bytes AccessController::token_payload(const AuthToken& token) const {
  util::BytesWriter w;
  w.str(token.agent_name);
  w.str(token.issuing_server);
  w.u64(token.issued_at_us);
  return std::move(w).take();
}

AuthToken AccessController::issue_token(const AgentId& agent) const {
  AuthToken token;
  token.agent_name = agent.name();
  token.issuing_server = server_name_;
  token.issued_at_us =
      static_cast<std::uint64_t>(util::RealClock::instance().now_us());
  const util::Bytes payload = token_payload(token);
  const crypto::Sha256Digest tag = crypto::hmac_sha256(
      util::ByteSpan(realm_key_.data(), realm_key_.size()),
      util::ByteSpan(payload.data(), payload.size()));
  token.tag.assign(tag.begin(), tag.end());
  return token;
}

util::StatusOr<Subject> AccessController::authenticate(
    const AuthToken& token) const {
  const util::Bytes payload = token_payload(token);
  if (!crypto::hmac_sha256_verify(
          util::ByteSpan(realm_key_.data(), realm_key_.size()),
          util::ByteSpan(payload.data(), payload.size()),
          util::ByteSpan(token.tag.data(), token.tag.size()))) {
    return util::Unauthenticated("bad token signature for agent '" +
                                 token.agent_name + "'");
  }
  return Subject{Subject::Kind::kAgent, token.agent_name};
}

util::Status AccessController::check(const Subject& subject,
                                     Permission permission) const {
  // System and admin subjects: everything.
  if (subject.kind != Subject::Kind::kAgent) return util::OkStatus();

  std::lock_guard lock(mu_);

  // Explicit overrides first.
  if (auto it = denies_.find(subject.name);
      it != denies_.end() && it->second.contains(permission)) {
    ++denials_;
    return util::PermissionDenied(subject.to_string() + " explicitly denied " +
                                  std::string(to_string(permission)));
  }
  if (auto it = grants_.find(subject.name);
      it != grants_.end() && it->second.contains(permission)) {
    return util::OkStatus();
  }

  // Default policy: agents never touch raw sockets (paper §3.3); mediated
  // services are allowed.
  switch (permission) {
    case Permission::kOpenSocket:
    case Permission::kListenSocket:
      ++denials_;
      return util::PermissionDenied(
          subject.to_string() + " may not " +
          std::string(to_string(permission)) +
          " (raw sockets are reserved to the system subject)");
    case Permission::kUseNapletSocket:
    case Permission::kMigrate:
    case Permission::kSendMail:
      return util::OkStatus();
  }
  ++denials_;
  return util::PermissionDenied("unknown permission");
}

void AccessController::grant(const std::string& agent_name,
                             Permission permission) {
  std::lock_guard lock(mu_);
  grants_[agent_name].insert(permission);
  denies_[agent_name].erase(permission);
}

void AccessController::deny(const std::string& agent_name,
                            Permission permission) {
  std::lock_guard lock(mu_);
  denies_[agent_name].insert(permission);
  grants_[agent_name].erase(permission);
}

void AccessController::clear_overrides(const std::string& agent_name) {
  std::lock_guard lock(mu_);
  grants_.erase(agent_name);
  denies_.erase(agent_name);
}

std::uint64_t AccessController::denials() const {
  std::lock_guard lock(mu_);
  return denials_;
}

}  // namespace naplet::agent
