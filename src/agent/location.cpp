#include "agent/location.hpp"

namespace naplet::agent {

void LocationService::register_agent(const AgentId& id, const NodeInfo& node) {
  {
    std::lock_guard lock(mu_);
    entries_[id] = Entry{node, /*in_transit=*/false};
  }
  cv_.notify_all();
}

void LocationService::begin_migration(const AgentId& id) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(id);
  if (it != entries_.end()) it->second.in_transit = true;
}

void LocationService::end_migration(const AgentId& id) {
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end() || !it->second.in_transit) return;
    it->second.in_transit = false;
  }
  cv_.notify_all();
}

void LocationService::deregister_agent(const AgentId& id) {
  {
    std::lock_guard lock(mu_);
    entries_.erase(id);
  }
  cv_.notify_all();
}

std::optional<NodeInfo> LocationService::try_lookup(const AgentId& id) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end() || it->second.in_transit) return std::nullopt;
  return it->second.node;
}

util::StatusOr<NodeInfo> LocationService::lookup(const AgentId& id,
                                                 util::Duration timeout) const {
  std::unique_lock lock(mu_);
  NodeInfo found;
  const bool ok = cv_.wait_for(lock, timeout, [&] {
    auto it = entries_.find(id);
    if (it == entries_.end() || it->second.in_transit) return false;
    found = it->second.node;
    return true;
  });
  if (!ok) {
    return util::NotFound("agent '" + id.name() +
                          "' not registered (or still in transit)");
  }
  return found;
}

bool LocationService::known(const AgentId& id) const {
  std::lock_guard lock(mu_);
  return entries_.contains(id);
}

bool LocationService::wait_gone(const AgentId& id,
                                util::Duration timeout) const {
  std::unique_lock lock(mu_);
  return cv_.wait_for(lock, timeout,
                      [&] { return !entries_.contains(id); });
}

void LocationService::register_server(const NodeInfo& node) {
  std::lock_guard lock(mu_);
  servers_[node.server_name] = node;
}

void LocationService::deregister_server(const std::string& server_name) {
  std::lock_guard lock(mu_);
  servers_.erase(server_name);
}

util::StatusOr<NodeInfo> LocationService::lookup_server(
    const std::string& server_name) const {
  std::lock_guard lock(mu_);
  auto it = servers_.find(server_name);
  if (it == servers_.end()) {
    return util::NotFound("server not registered: " + server_name);
  }
  return it->second;
}

std::size_t LocationService::size() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, entry] : entries_) {
    if (!entry.in_transit) ++n;
  }
  return n;
}

}  // namespace naplet::agent
