#include "agent/agent_server.hpp"

#include "net/frame.hpp"
#include "util/log.hpp"

namespace naplet::agent {

namespace {
constexpr util::Duration kMigrationConnectTimeout = std::chrono::seconds(5);
constexpr util::Duration kLocationLookupTimeout = std::chrono::seconds(5);
}  // namespace

// ---------------------------------------------------------------------------
// AgentContext implementation

class AgentServer::ContextImpl final : public AgentContext {
 public:
  ContextImpl(AgentServer* server, AgentId id, std::uint32_t hop)
      : server_(server), id_(std::move(id)), hop_(hop) {}

  [[nodiscard]] const AgentId& self() const override { return id_; }
  [[nodiscard]] const std::string& server_name() const override {
    return server_->config_.name;
  }
  [[nodiscard]] std::uint32_t hop_count() const override { return hop_; }

  void migrate_to(const std::string& server_name) override {
    pending_destination_ = server_name;
  }

  util::Status send_mail(const AgentId& to, util::ByteSpan body) override {
    NAPLET_RETURN_IF_ERROR(server_->access_.check(
        Subject{Subject::Kind::kAgent, id_.name()}, Permission::kSendMail));
    return server_->post_->send(id_, to, body);
  }

  std::optional<Mail> read_mail(util::Duration timeout) override {
    return server_->post_->read(id_, timeout);
  }

  [[nodiscard]] LocationService& locations() override {
    return server_->locations_;
  }

  [[nodiscard]] void* service(const std::string& name) override {
    util::MutexLock lock(server_->mu_);
    auto it = server_->services_.find(name);
    return it == server_->services_.end() ? nullptr : it->second;
  }

  [[nodiscard]] const std::optional<std::string>& pending_destination() const {
    return pending_destination_;
  }
  void clear_pending() { pending_destination_.reset(); }

 private:
  AgentServer* server_;
  AgentId id_;
  std::uint32_t hop_;
  std::optional<std::string> pending_destination_;
};

// ---------------------------------------------------------------------------
// Construction / lifecycle

AgentServer::AgentServer(net::NetworkPtr network, LocationService& locations,
                         AgentServerConfig config)
    : network_(std::move(network)),
      locations_(locations),
      config_(std::move(config)),
      access_(config_.name, config_.realm_key) {}

AgentServer::~AgentServer() { stop(); }

util::Status AgentServer::start() {
  if (started_.exchange(true)) return util::OkStatus();

  auto dgram = network_->bind_datagram(config_.control_port);
  if (!dgram.ok()) return dgram.status();
  bus_ = std::make_unique<ServerBus>(std::make_unique<net::ReliableChannel>(
      std::move(*dgram), config_.rudp_config));

  post_ = std::make_unique<PostOffice>(*bus_, locations_, config_.name,
                                       config_.post_config);

  auto listener = network_->listen(config_.migration_port);
  if (!listener.ok()) return listener.status();
  migration_listener_ = std::move(*listener);

  migration_acceptor_ = std::thread([this] { migration_accept_loop(); });

  locations_.register_server(node_info());
  NAPLET_LOG(kInfo, "server") << config_.name << " started: ctrl="
                              << bus_->local_endpoint().to_string()
                              << " migration="
                              << migration_listener_->local_endpoint()
                                     .to_string();
  return util::OkStatus();
}

void AgentServer::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;

  locations_.deregister_server(config_.name);
  if (migration_listener_) migration_listener_->close();
  if (post_) post_->stop();
  if (bus_) bus_->stop();

  if (migration_acceptor_.joinable()) migration_acceptor_.join();

  // Join agent threads. Their blocking reads fail fast once the bus and
  // mailboxes are closed.
  std::map<AgentId, Resident> residents;
  std::vector<std::thread> finished;
  std::vector<std::thread> handlers;
  {
    util::MutexLock lock(mu_);
    residents = std::exchange(residents_, {});
    finished = std::exchange(finished_, {});
    handlers = std::exchange(migration_handlers_, {});
  }
  for (auto& [id, resident] : residents) {
    if (resident.thread.joinable()) resident.thread.join();
  }
  for (auto& t : finished) {
    if (t.joinable()) t.join();
  }
  for (auto& t : handlers) {
    if (t.joinable()) t.join();
  }
}

void AgentServer::set_migrator(ConnectionMigrator* migrator) {
  migrator_ = migrator != nullptr ? migrator : &null_migrator_;
}

void AgentServer::register_service(const std::string& name, void* service) {
  util::MutexLock lock(mu_);
  services_[name] = service;
}

void AgentServer::set_redirector_endpoint(const net::Endpoint& endpoint) {
  {
    util::MutexLock lock(mu_);
    redirector_endpoint_ = endpoint;
  }
  locations_.register_server(node_info());  // refresh directory entry
}

NodeInfo AgentServer::node_info() const {
  NodeInfo info;
  info.server_name = config_.name;
  if (bus_) info.control = bus_->local_endpoint();
  {
    util::MutexLock lock(mu_);
    info.redirector = redirector_endpoint_;
  }
  if (migration_listener_) {
    info.migration = migration_listener_->local_endpoint();
  }
  return info;
}

std::size_t AgentServer::resident_count() const {
  util::MutexLock lock(mu_);
  return residents_.size();
}

// ---------------------------------------------------------------------------
// Launch / admission

util::Status AgentServer::launch(std::unique_ptr<Agent> agent, AgentId id) {
  if (!started_.load() || stopped_.load()) {
    return util::FailedPrecondition("server not running");
  }
  if (agent == nullptr) return util::InvalidArgument("null agent");
  if (id.empty()) return util::InvalidArgument("empty agent id");
  if (!AgentFactory::instance().has(agent->type_name())) {
    return util::FailedPrecondition("agent type '" + agent->type_name() +
                                    "' is not registered with AgentFactory; "
                                    "migration could not reconstruct it");
  }
  {
    util::MutexLock lock(mu_);
    if (residents_.contains(id)) {
      return util::AlreadyExists("agent already resident: " + id.name());
    }
  }
  if (locations_.known(id)) {
    return util::AlreadyExists("agent id already in use: " + id.name());
  }
  admit(std::move(agent), id, /*hop=*/0, /*mailbox=*/{}, /*sessions=*/{});
  return util::OkStatus();
}

void AgentServer::admit(std::unique_ptr<Agent> agent, AgentId id,
                        std::uint32_t hop, std::vector<Mail> mailbox,
                        util::ByteSpan sessions) {
  post_->open_mailbox(id);
  if (!mailbox.empty()) post_->restore_mailbox(id, std::move(mailbox));

  if (!sessions.empty()) {
    auto status = migrator_->import_sessions(id, sessions);
    if (!status.ok()) {
      NAPLET_LOG(kError, "server")
          << "session import failed for " << id.name() << ": "
          << status.to_string();
    }
  }

  auto context = std::make_shared<ContextImpl>(this, id, hop);
  {
    util::MutexLock lock(mu_);
    auto it = residents_.find(id);
    if (it != residents_.end() && it->second.thread.joinable()) {
      // A fast bounce (this node -> peer -> back) can re-admit the agent
      // before its departed hop's thread finished transfer_agent cleanup.
      // Move-assigning over a joinable std::thread would terminate; park
      // the old handle for reaping instead.
      finished_.push_back(std::move(it->second.thread));
    }
    Resident resident;
    resident.agent = std::move(agent);
    resident.context = context;
    residents_[id] = std::move(resident);
  }
  locations_.register_agent(id, node_info());

  std::thread thread([this, id] { agent_thread_main(id); });
  {
    util::MutexLock lock(mu_);
    auto it = residents_.find(id);
    if (it != residents_.end() && it->second.context == context) {
      it->second.thread = std::move(thread);
    } else {
      // stop() raced us, or the agent already hopped away (and possibly
      // back, replacing the entry) on this very thread; join it later.
      finished_.push_back(std::move(thread));
    }
  }
  reap_finished_threads();
}

// ---------------------------------------------------------------------------
// Agent hop execution

void AgentServer::agent_thread_main(AgentId id) {
  Agent* agent = nullptr;
  std::shared_ptr<ContextImpl> context;
  {
    util::MutexLock lock(mu_);
    auto it = residents_.find(id);
    if (it == residents_.end()) return;
    agent = it->second.agent.get();
    context = it->second.context;
  }

  // If this is a post-migration hop, reconnect suspended sessions first so
  // the agent's connections are live when run() resumes.
  if (context->hop_count() > 0) {
    auto status = migrator_->complete_migration(id);
    if (!status.ok()) {
      NAPLET_LOG(kError, "server")
          << "complete_migration failed for " << id.name() << ": "
          << status.to_string();
    }
  }

  try {
    agent->run(*context);
  } catch (const std::exception& e) {
    NAPLET_LOG(kError, "server")
        << "agent " << id.name() << " threw: " << e.what();
    context->clear_pending();
  }

  if (stopped_.load()) return;

  if (context->pending_destination()) {
    const std::string dest = *context->pending_destination();
    auto status = transfer_agent(id, dest);
    if (status.ok()) return;  // the agent now lives elsewhere
    NAPLET_LOG(kError, "server")
        << "migration of " << id.name() << " to " << dest
        << " failed: " << status.to_string() << "; terminating agent";
  }
  terminate_agent(id);
}

void AgentServer::terminate_agent(const AgentId& id) {
  migrator_->close_all(id);
  post_->close_mailbox(id);
  locations_.deregister_agent(id);

  util::MutexLock lock(mu_);
  auto it = residents_.find(id);
  if (it != residents_.end()) {
    if (it->second.thread.joinable()) {
      finished_.push_back(std::move(it->second.thread));
    }
    residents_.erase(it);
  }
}

void AgentServer::reap_finished_threads() {
  std::vector<std::thread> finished;
  {
    util::MutexLock lock(mu_);
    finished = std::exchange(finished_, {});
  }
  for (auto& t : finished) {
    if (!t.joinable()) continue;
    if (t.get_id() == std::this_thread::get_id()) {
      // Can't join ourselves; put it back for stop() / a later reap.
      util::MutexLock lock(mu_);
      finished_.push_back(std::move(t));
    } else {
      t.join();
    }
  }
}

// ---------------------------------------------------------------------------
// Outbound migration

util::Status AgentServer::transfer_agent(const AgentId& id,
                                         const std::string& dest_name) {
  NAPLET_RETURN_IF_ERROR(access_.check(
      Subject{Subject::Kind::kAgent, id.name()}, Permission::kMigrate));
  if (dest_name == config_.name) {
    return util::InvalidArgument("migration to the current server");
  }
  auto dest = locations_.lookup_server(dest_name);
  if (!dest.ok()) return dest.status();

  Agent* agent = nullptr;
  std::shared_ptr<ContextImpl> context;
  {
    util::MutexLock lock(mu_);
    auto it = residents_.find(id);
    if (it == residents_.end()) return util::NotFound("agent not resident");
    agent = it->second.agent.get();
    context = it->second.context;
  }

  locations_.begin_migration(id);

  // 1. Suspend every NapletSocket connection (paper §2.1: suspend before
  //    migration). This may block behind a concurrent peer migration.
  auto prepared = migrator_->prepare_migration(id);
  if (!prepared.ok()) {
    locations_.register_agent(id, node_info());  // roll back transit mark
    return prepared;
  }

  // 2. Assemble the transfer payload.
  const util::Bytes state = util::Archive::encode(*agent);
  const util::Bytes sessions = migrator_->export_sessions(id);
  std::vector<Mail> mailbox = post_->drain_mailbox(id);
  AuthToken token = access_.issue_token(id);

  util::Archive mail_ar;
  std::uint32_t mail_count = static_cast<std::uint32_t>(mailbox.size());
  mail_ar.field(mail_count);
  for (auto& m : mailbox) mail_ar.field(m);

  util::BytesWriter frame;
  frame.str(id.name());
  frame.str(agent->type_name());
  frame.u32(context->hop_count() + 1);
  frame.bytes(util::ByteSpan(state.data(), state.size()));
  frame.bytes(util::ByteSpan(sessions.data(), sessions.size()));
  {
    util::Archive token_ar;
    token_ar.field(token);
    const util::Bytes token_bytes = std::move(token_ar).take_bytes();
    frame.bytes(util::ByteSpan(token_bytes.data(), token_bytes.size()));
  }
  {
    const util::Bytes mail_bytes = std::move(mail_ar).take_bytes();
    frame.bytes(util::ByteSpan(mail_bytes.data(), mail_bytes.size()));
  }

  if (config_.extra_migration_cost.count() > 0) {
    util::RealClock::instance().sleep_for(config_.extra_migration_cost);
  }

  // 3. Ship it.
  auto rollback = [&](const util::Status& why) {
    post_->restore_mailbox(id, std::move(mailbox));
    // export_sessions removed (and invalidated) the originals; rebuild
    // them from the serialized state so the agent can keep running here.
    if (auto st = migrator_->import_sessions(
            id, util::ByteSpan(sessions.data(), sessions.size()));
        !st.ok()) {
      NAPLET_LOG(kError, "server")
          << "session rollback failed for " << id.name() << ": "
          << st.to_string();
    }
    locations_.register_agent(id, node_info());
    (void)migrator_->complete_migration(id);  // resume the restored sessions
    return why;
  };

  auto stream = network_->connect(dest->migration, kMigrationConnectTimeout);
  if (!stream.ok()) return rollback(stream.status());
  auto sent = net::write_frame(**stream,
                               util::ByteSpan(frame.data().data(),
                                              frame.data().size()));
  if (sent.ok()) {
    auto reply = net::read_frame(**stream);
    if (!reply.ok()) {
      sent = reply.status();
    } else if (reply->size() != 1 || (*reply)[0] != 1) {
      sent = util::Aborted("destination rejected migration");
    }
  }
  if (!sent.ok()) return rollback(sent);

  // 4. The agent now lives at the destination; clean up locally — unless
  //    it already bounced back here and admit() replaced our entry, in
  //    which case the new hop owns the mailbox and the resident slot.
  migrations_out_.fetch_add(1);
  bool stale = false;
  {
    util::MutexLock lock(mu_);
    auto it = residents_.find(id);
    if (it != residents_.end()) {
      if (it->second.context == context) {
        if (it->second.thread.joinable()) {
          finished_.push_back(std::move(it->second.thread));
        }
        residents_.erase(it);
      } else {
        stale = true;
      }
    }
  }
  if (!stale) post_->close_mailbox(id);
  NAPLET_LOG(kInfo, "server") << id.name() << ": " << config_.name << " -> "
                              << dest_name;
  return util::OkStatus();
}

// ---------------------------------------------------------------------------
// Inbound migration

void AgentServer::migration_accept_loop() {
  while (!stopped_.load()) {
    auto stream = migration_listener_->accept(std::chrono::milliseconds(200));
    if (!stream.ok()) {
      if (stream.status().code() == util::StatusCode::kTimeout) continue;
      break;  // listener closed
    }
    // Handled inline: transfers are short, and inbound handling never
    // depends on this server's own outbound transfers (those run on agent
    // threads), so there is no deadlock across mutually-migrating servers.
    handle_incoming_migration(std::move(*stream));
  }
}

void AgentServer::handle_incoming_migration(net::StreamPtr stream) {
  if (!stream) return;
  auto frame = net::read_frame(*stream);
  if (!frame.ok()) return;

  util::BytesReader r(util::ByteSpan(frame->data(), frame->size()));
  auto name = r.str();
  auto type_name = r.str();
  auto hop = r.u32();
  auto state = r.bytes();
  auto sessions = r.bytes();
  auto token_bytes = r.bytes();
  auto mail_bytes = r.bytes();

  auto reject = [&](const std::string& why) {
    NAPLET_LOG(kWarn, "server") << config_.name
                                << " rejecting migration: " << why;
    const std::uint8_t no = 0;
    (void)net::write_frame(*stream, util::ByteSpan(&no, 1));
  };

  if (!name.ok() || !type_name.ok() || !hop.ok() || !state.ok() ||
      !sessions.ok() || !token_bytes.ok() || !mail_bytes.ok()) {
    reject("malformed transfer frame");
    return;
  }

  // Authenticate the sending realm.
  AuthToken token;
  if (auto st = util::Archive::decode(
          util::ByteSpan(token_bytes->data(), token_bytes->size()), token);
      !st.ok()) {
    reject("bad token encoding");
    return;
  }
  auto subject = access_.authenticate(token);
  if (!subject.ok() || subject->name != *name) {
    reject("authentication failed for agent '" + *name + "'");
    return;
  }

  auto agent = AgentFactory::instance().create(*type_name);
  if (!agent.ok()) {
    reject(agent.status().to_string());
    return;
  }
  if (auto st = util::Archive::decode(
          util::ByteSpan(state->data(), state->size()), **agent);
      !st.ok()) {
    reject("bad state encoding: " + st.to_string());
    return;
  }

  std::vector<Mail> mailbox;
  {
    util::Archive ar(util::ByteSpan(mail_bytes->data(), mail_bytes->size()));
    std::uint32_t count = 0;
    ar.field(count);
    for (std::uint32_t i = 0; i < count && ar.ok(); ++i) {
      Mail m;
      ar.field(m);
      mailbox.push_back(std::move(m));
    }
    if (!ar.ok()) {
      reject("bad mailbox encoding");
      return;
    }
  }

  const std::uint8_t yes = 1;
  if (auto st = net::write_frame(*stream, util::ByteSpan(&yes, 1)); !st.ok()) {
    return;  // sender will retry/terminate; do not admit half-acked
  }

  migrations_in_.fetch_add(1);
  admit(std::move(*agent), AgentId(*name), *hop, std::move(mailbox),
        util::ByteSpan(sessions->data(), sessions->size()));
}

bool wait_agent_gone(const LocationService& locations, const AgentId& id,
                     util::Duration timeout) {
  // Event-driven: the location service wakes waiters on deregistration,
  // so no polling slice bounds the latency here.
  return locations.wait_gone(id, timeout);
}

}  // namespace naplet::agent
