#include "agent/directory.hpp"

#include <algorithm>

#include "net/frame.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace naplet::agent {

namespace {

enum class Op : std::uint8_t {
  kRegisterAgent = 1,
  kBeginMigration = 2,
  kDeregisterAgent = 3,
  kTryLookup = 4,
  kLookup = 5,
  kKnown = 6,
  kSize = 7,
  kRegisterServer = 8,
  kDeregisterServer = 9,
  kLookupServer = 10,
  kEndMigration = 11,
};

/// Read-only ops hold no write intent; everything else mutates the map.
bool is_lookup_op(Op op) {
  switch (op) {
    case Op::kTryLookup:
    case Op::kLookup:
    case Op::kKnown:
    case Op::kSize:
    case Op::kLookupServer:
      return true;
    default:
      return false;
  }
}

constexpr util::Duration kConnectTimeout = std::chrono::seconds(3);
constexpr util::Duration kBaseReplyWait = std::chrono::seconds(5);

void write_node(util::BytesWriter& w, const NodeInfo& node) {
  util::Archive ar;
  NodeInfo copy = node;
  copy.persist(ar);
  const util::Bytes bytes = std::move(ar).take_bytes();
  w.bytes(util::ByteSpan(bytes.data(), bytes.size()));
}

util::StatusOr<NodeInfo> read_node(util::BytesReader& r) {
  auto bytes = r.bytes();
  if (!bytes.ok()) return bytes.status();
  NodeInfo node;
  util::Archive ar(util::ByteSpan(bytes->data(), bytes->size()));
  node.persist(ar);
  if (!ar.ok()) return ar.status();
  return node;
}

}  // namespace

// ===========================================================================
// DirectoryServer

DirectoryServer::DirectoryServer(net::NetworkPtr network,
                                 LocationService& backing, std::uint16_t port,
                                 obs::Registry* registry)
    : network_(std::move(network)),
      backing_(backing),
      port_(port),
      registry_(registry != nullptr ? *registry : obs::Registry::global()),
      requests_total_(registry_.counter("directory_requests")),
      lookups_total_(registry_.counter("directory_lookups")),
      mutations_total_(registry_.counter("directory_mutations")),
      inflight_(registry_.gauge("directory_inflight")),
      op_latency_(registry_.histogram("directory_op_us")) {}

DirectoryServer::~DirectoryServer() { stop(); }

util::Status DirectoryServer::start() {
  auto listener = network_->listen(port_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  acceptor_ = std::thread([this] { accept_loop(); });
  return util::OkStatus();
}

void DirectoryServer::stop() {
  if (stopped_.exchange(true)) return;
  if (listener_) listener_->close();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(workers_mu_);
    workers = std::exchange(workers_, {});
  }
  for (auto& t : workers) {
    if (t.joinable()) t.join();
  }
}

net::Endpoint DirectoryServer::endpoint() const {
  return listener_ ? listener_->local_endpoint() : net::Endpoint{};
}

void DirectoryServer::accept_loop() {
  while (!stopped_.load()) {
    auto accepted = listener_->accept(std::chrono::milliseconds(200));
    if (!accepted.ok()) {
      if (accepted.status().code() == util::StatusCode::kTimeout) continue;
      break;
    }
    std::shared_ptr<net::Stream> stream(std::move(*accepted));
    std::thread worker([this, stream] { serve(stream); });
    std::lock_guard lock(workers_mu_);
    workers_.push_back(std::move(worker));
    // Bound the backlog of joinable workers.
    if (workers_.size() > 64) {
      for (auto& t : workers_) {
        if (t.joinable() && t.get_id() != std::this_thread::get_id()) t.join();
      }
      workers_.clear();
    }
  }
}

void DirectoryServer::serve(std::shared_ptr<net::Stream> stream) {
  inflight_.add(1);
  util::Stopwatch watch(util::RealClock::instance());
  serve_request(stream);
  op_latency_.record(static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, watch.elapsed_us())));
  inflight_.add(-1);
}

void DirectoryServer::serve_request(
    const std::shared_ptr<net::Stream>& stream) {
  auto request = net::read_frame(*stream);
  if (!request.ok()) {
    stream->close();
    return;
  }
  requests_served_.fetch_add(1);
  requests_total_.add(1);

  util::BytesReader r(util::ByteSpan(request->data(), request->size()));
  util::BytesWriter reply;
  auto fail = [&](const util::Status& status) {
    util::BytesWriter err;
    err.u8(static_cast<std::uint8_t>(status.code()));
    err.str(status.message());
    (void)net::write_frame(*stream, util::ByteSpan(err.data().data(),
                                                   err.data().size()));
    stream->close();
  };

  auto op_byte = r.u8();
  if (!op_byte.ok()) return fail(op_byte.status());
  reply.u8(static_cast<std::uint8_t>(util::StatusCode::kOk));
  reply.str("");

  if (is_lookup_op(static_cast<Op>(*op_byte))) {
    lookups_total_.add(1);
  } else {
    mutations_total_.add(1);
  }

  switch (static_cast<Op>(*op_byte)) {
    case Op::kRegisterAgent: {
      auto name = r.str();
      if (!name.ok()) return fail(name.status());
      auto node = read_node(r);
      if (!node.ok()) return fail(node.status());
      backing_.register_agent(AgentId(*name), *node);
      break;
    }
    case Op::kBeginMigration: {
      auto name = r.str();
      if (!name.ok()) return fail(name.status());
      backing_.begin_migration(AgentId(*name));
      break;
    }
    case Op::kEndMigration: {
      auto name = r.str();
      if (!name.ok()) return fail(name.status());
      backing_.end_migration(AgentId(*name));
      break;
    }
    case Op::kDeregisterAgent: {
      auto name = r.str();
      if (!name.ok()) return fail(name.status());
      backing_.deregister_agent(AgentId(*name));
      break;
    }
    case Op::kTryLookup: {
      auto name = r.str();
      if (!name.ok()) return fail(name.status());
      auto node = backing_.try_lookup(AgentId(*name));
      reply.boolean(node.has_value());
      if (node) write_node(reply, *node);
      break;
    }
    case Op::kLookup: {
      auto name = r.str();
      if (!name.ok()) return fail(name.status());
      auto timeout_us = r.u64();
      if (!timeout_us.ok()) return fail(timeout_us.status());
      auto node = backing_.lookup(
          AgentId(*name),
          util::us(static_cast<std::int64_t>(*timeout_us)));
      if (!node.ok()) return fail(node.status());
      write_node(reply, *node);
      break;
    }
    case Op::kKnown: {
      auto name = r.str();
      if (!name.ok()) return fail(name.status());
      reply.boolean(backing_.known(AgentId(*name)));
      break;
    }
    case Op::kSize: {
      reply.u64(backing_.size());
      break;
    }
    case Op::kRegisterServer: {
      auto node = read_node(r);
      if (!node.ok()) return fail(node.status());
      backing_.register_server(*node);
      break;
    }
    case Op::kDeregisterServer: {
      auto name = r.str();
      if (!name.ok()) return fail(name.status());
      backing_.deregister_server(*name);
      break;
    }
    case Op::kLookupServer: {
      auto name = r.str();
      if (!name.ok()) return fail(name.status());
      auto node = backing_.lookup_server(*name);
      if (!node.ok()) return fail(node.status());
      write_node(reply, *node);
      break;
    }
    default:
      return fail(util::InvalidArgument("unknown directory op"));
  }

  (void)net::write_frame(*stream, util::ByteSpan(reply.data().data(),
                                                 reply.data().size()));
  stream->close();
}

// ===========================================================================
// RemoteLocationService

RemoteLocationService::RemoteLocationService(net::NetworkPtr network,
                                             net::Endpoint directory)
    : network_(std::move(network)), directory_(std::move(directory)) {}

void RemoteLocationService::record_error(const util::Status& status) const {
  NAPLET_LOG(kWarn, "directory") << "round trip failed: "
                                 << status.to_string();
  std::lock_guard lock(error_mu_);
  last_error_ = status;
}

util::Status RemoteLocationService::last_error() const {
  std::lock_guard lock(error_mu_);
  return last_error_;
}

util::StatusOr<util::Bytes> RemoteLocationService::round_trip(
    util::ByteSpan request, util::Duration /*extra_wait*/) const {
  auto stream = network_->connect(directory_, kConnectTimeout);
  if (!stream.ok()) {
    record_error(stream.status());
    return stream.status();
  }
  if (auto st = net::write_frame(**stream, request); !st.ok()) {
    record_error(st);
    return st;
  }
  auto reply = net::read_frame(**stream);
  if (!reply.ok()) {
    record_error(reply.status());
    return reply.status();
  }
  util::BytesReader r(util::ByteSpan(reply->data(), reply->size()));
  auto code = r.u8();
  if (!code.ok()) return code.status();
  auto message = r.str();
  if (!message.ok()) return message.status();
  if (static_cast<util::StatusCode>(*code) != util::StatusCode::kOk) {
    return util::Status(static_cast<util::StatusCode>(*code),
                        std::move(*message));
  }
  // Remaining bytes are the op-specific payload.
  auto payload = r.raw(r.remaining());
  if (!payload.ok()) return payload.status();
  return *payload;
}

void RemoteLocationService::register_agent(const AgentId& id,
                                           const NodeInfo& node) {
  util::BytesWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kRegisterAgent));
  w.str(id.name());
  write_node(w, node);
  (void)round_trip(util::ByteSpan(w.data().data(), w.data().size()));
}

void RemoteLocationService::begin_migration(const AgentId& id) {
  util::BytesWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kBeginMigration));
  w.str(id.name());
  (void)round_trip(util::ByteSpan(w.data().data(), w.data().size()));
}

void RemoteLocationService::end_migration(const AgentId& id) {
  util::BytesWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kEndMigration));
  w.str(id.name());
  (void)round_trip(util::ByteSpan(w.data().data(), w.data().size()));
}

void RemoteLocationService::deregister_agent(const AgentId& id) {
  util::BytesWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kDeregisterAgent));
  w.str(id.name());
  (void)round_trip(util::ByteSpan(w.data().data(), w.data().size()));
}

std::optional<NodeInfo> RemoteLocationService::try_lookup(
    const AgentId& id) const {
  util::BytesWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kTryLookup));
  w.str(id.name());
  auto reply = round_trip(util::ByteSpan(w.data().data(), w.data().size()));
  if (!reply.ok()) return std::nullopt;
  util::BytesReader r(util::ByteSpan(reply->data(), reply->size()));
  auto present = r.boolean();
  if (!present.ok() || !*present) return std::nullopt;
  auto node = read_node(r);
  if (!node.ok()) return std::nullopt;
  return *node;
}

util::StatusOr<NodeInfo> RemoteLocationService::lookup(
    const AgentId& id, util::Duration timeout) const {
  util::BytesWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kLookup));
  w.str(id.name());
  w.u64(static_cast<std::uint64_t>(timeout.count()));
  auto reply = round_trip(util::ByteSpan(w.data().data(), w.data().size()),
                          timeout);
  if (!reply.ok()) return reply.status();
  util::BytesReader r(util::ByteSpan(reply->data(), reply->size()));
  return read_node(r);
}

bool RemoteLocationService::known(const AgentId& id) const {
  util::BytesWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kKnown));
  w.str(id.name());
  auto reply = round_trip(util::ByteSpan(w.data().data(), w.data().size()));
  if (!reply.ok()) return false;
  util::BytesReader r(util::ByteSpan(reply->data(), reply->size()));
  auto known = r.boolean();
  return known.ok() && *known;
}

bool RemoteLocationService::wait_gone(const AgentId& id,
                                      util::Duration timeout) const {
  // One RPC per check; escalate the pacing so a long wait does not hammer
  // the directory while a short one still resolves in a few ms.
  const std::int64_t deadline =
      util::RealClock::instance().now_us() + timeout.count();
  util::Duration pause = std::chrono::milliseconds(1);
  while (util::RealClock::instance().now_us() < deadline) {
    if (!known(id)) return true;
    util::RealClock::instance().sleep_for(pause);
    pause = std::min<util::Duration>(std::chrono::milliseconds(20),
                                     pause * 2);
  }
  return !known(id);
}

std::size_t RemoteLocationService::size() const {
  util::BytesWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kSize));
  auto reply = round_trip(util::ByteSpan(w.data().data(), w.data().size()));
  if (!reply.ok()) return 0;
  util::BytesReader r(util::ByteSpan(reply->data(), reply->size()));
  auto n = r.u64();
  return n.ok() ? static_cast<std::size_t>(*n) : 0;
}

void RemoteLocationService::register_server(const NodeInfo& node) {
  util::BytesWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kRegisterServer));
  write_node(w, node);
  (void)round_trip(util::ByteSpan(w.data().data(), w.data().size()));
}

void RemoteLocationService::deregister_server(
    const std::string& server_name) {
  util::BytesWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kDeregisterServer));
  w.str(server_name);
  (void)round_trip(util::ByteSpan(w.data().data(), w.data().size()));
}

util::StatusOr<NodeInfo> RemoteLocationService::lookup_server(
    const std::string& server_name) const {
  util::BytesWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kLookupServer));
  w.str(server_name);
  auto reply = round_trip(util::ByteSpan(w.data().data(), w.data().size()));
  if (!reply.ok()) return reply.status();
  util::BytesReader r(util::ByteSpan(reply->data(), reply->size()));
  return read_node(r);
}

}  // namespace naplet::agent
