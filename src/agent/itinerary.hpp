// Itinerary: a small, serializable travel plan for hop-oriented agents.
//
// The Naplet system the paper builds on provides structured itineraries;
// agents here otherwise hand-roll "vector<string> + index" state. This
// helper captures that pattern once: sequential routes, optional looping,
// and persistence across hops.
//
//   class Tourist : public agent::Agent {
//     agent::Itinerary route{{"alpha", "beta", "gamma"}};
//     void run(agent::AgentContext& ctx) override {
//       ...work at this stop...
//       if (!route.advance(ctx)) { /* journey complete */ }
//     }
//     void persist(util::Archive& ar) override { route.persist(ar); }
//   };
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "agent/agent.hpp"

namespace naplet::agent {

class Itinerary {
 public:
  Itinerary() = default;
  explicit Itinerary(std::vector<std::string> stops, bool loop = false,
                     std::uint32_t max_hops = 0)
      : stops_(std::move(stops)), loop_(loop), max_hops_(max_hops) {}

  /// Next destination without committing to it; empty when complete.
  [[nodiscard]] std::string peek() const {
    if (exhausted()) return {};
    return stops_[static_cast<std::size_t>(position_ % stops_.size())];
  }

  /// Destination `k` hops ahead (k = 0 is peek()); empty when the route
  /// ends before then. Lets an itinerary-aware scheduler group agents by
  /// where they are HEADED, not just where they are.
  [[nodiscard]] std::string peek_ahead(std::uint64_t k) const {
    if (stops_.empty()) return {};
    const std::uint64_t hop = position_ + k;
    if (loop_) {
      if (max_hops_ != 0 && hop >= max_hops_) return {};
    } else if (hop >= stops_.size()) {
      return {};
    }
    return stops_[static_cast<std::size_t>(hop % stops_.size())];
  }

  /// Hops left before the route completes; nullopt for an unbounded loop.
  [[nodiscard]] std::optional<std::uint64_t> remaining_hops() const {
    if (loop_ && max_hops_ == 0) {
      return stops_.empty() ? std::optional<std::uint64_t>(0) : std::nullopt;
    }
    const std::uint64_t total = loop_ ? max_hops_ : stops_.size();
    return position_ >= total ? 0 : total - position_;
  }

  /// Request migration to the next stop. Returns false (and requests
  /// nothing) when the itinerary is complete.
  bool advance(AgentContext& ctx) {
    const std::string next = peek();
    if (next.empty()) return false;
    ++position_;
    ctx.migrate_to(next);
    return true;
  }

  /// True when no stops remain (for loops: when max_hops is exhausted).
  [[nodiscard]] bool exhausted() const {
    if (stops_.empty()) return true;
    if (loop_) return max_hops_ != 0 && position_ >= max_hops_;
    return position_ >= stops_.size();
  }

  [[nodiscard]] std::uint64_t hops_taken() const { return position_; }
  [[nodiscard]] const std::vector<std::string>& stops() const {
    return stops_;
  }

  void persist(util::Archive& ar) {
    ar.field(stops_);
    ar.field(loop_);
    ar.field(max_hops_);
    ar.field(position_);
  }

 private:
  std::vector<std::string> stops_;
  bool loop_ = false;
  std::uint32_t max_hops_ = 0;  // 0 = unbounded (finite routes only)
  std::uint64_t position_ = 0;
};

}  // namespace naplet::agent
