// ServerBus: one reliable control channel per agent server, shared by every
// middleware component (the paper's controller and redirector pair are
// "shared by all NapletSockets so that only one pair is necessary" — this is
// that sharing point, extended to PostOffice mail as well).
//
// Messages are (kind, payload); components register a handler per kind and
// a single dispatch thread demultiplexes inbound traffic. Handlers may
// block on ReliableChannel::send (rudp ACKs are processed by the channel's
// own receiver thread, so no deadlock).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>

#include "net/rudp.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::agent {

/// Well-known message kinds on the bus.
enum class BusKind : std::uint8_t {
  kControl = 1,  // NapletSocket control protocol (core library)
  kMail = 2,     // PostOffice asynchronous messages
  kProbe = 3,    // liveness/testing
};

class ServerBus {
 public:
  using Handler =
      std::function<void(const net::Endpoint& from, util::ByteSpan payload)>;

  explicit ServerBus(std::unique_ptr<net::ReliableChannel> channel);
  ~ServerBus();

  ServerBus(const ServerBus&) = delete;
  ServerBus& operator=(const ServerBus&) = delete;

  /// Register the handler for one kind (replaces any previous handler).
  void subscribe(BusKind kind, Handler handler);

  /// Reliable send; blocks until the peer's channel ACKs. A non-zero
  /// `max_wait` caps the total blocking time (see ReliableChannel::send).
  util::Status send(const net::Endpoint& dest, BusKind kind,
                    util::ByteSpan payload, util::Duration max_wait = {});

  [[nodiscard]] net::Endpoint local_endpoint() const {
    return channel_->local_endpoint();
  }

  [[nodiscard]] net::ReliableChannel& channel() { return *channel_; }

  void stop();

 private:
  void dispatch_loop();

  std::unique_ptr<net::ReliableChannel> channel_ NAPLET_NOT_GUARDED(
      "created at construction before the dispatcher thread; the channel "
      "is internally synchronized");
  util::Mutex mu_{util::LockRank::kBus, "bus"};
  std::map<BusKind, Handler> handlers_ NAPLET_GUARDED_BY(mu_);
  std::atomic<bool> stopped_{false};
  std::thread dispatcher_;
};

}  // namespace naplet::agent
