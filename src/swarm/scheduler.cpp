#include "swarm/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "fault/fault.hpp"
#include "util/log.hpp"

namespace naplet::swarm {

namespace {

double real_now_ms() {
  return static_cast<double>(util::RealClock::instance().now_us()) / 1000.0;
}

std::uint64_t ms_delta_to_us(double start_ms, double end_ms) {
  const double us = (end_ms - start_ms) * 1000.0;
  return us <= 0.0 ? 0 : static_cast<std::uint64_t>(us);
}

}  // namespace

MigrationScheduler::MigrationScheduler(SchedulerConfig config,
                                       StageExecutor& executor,
                                       obs::Registry* registry)
    : config_(std::move(config)),
      executor_(executor),
      registry_(registry != nullptr ? *registry : obs::Registry::global()),
      agents_migrated_(registry_.counter("swarm_agents_migrated")),
      agents_failed_(registry_.counter("swarm_agents_failed")),
      agents_rerouted_(registry_.counter("swarm_agents_rerouted")),
      batches_total_(registry_.counter("swarm_batches")),
      handoff_exchanges_(registry_.counter("swarm_handoff_exchanges")),
      admission_refusals_(registry_.counter("swarm_admission_refusals")),
      serialize_us_(registry_.histogram("swarm_serialize_us")),
      transfer_us_(registry_.histogram("swarm_transfer_us")),
      reactivate_us_(registry_.histogram("swarm_reactivate_us")),
      batch_fill_(registry_.histogram("swarm_batch_fill", "agents")) {}

double MigrationScheduler::now_ms() const {
  return config_.now_ms ? config_.now_ms() : real_now_ms();
}

std::vector<MigrationBatch> MigrationScheduler::plan(
    const std::vector<AgentPlan>& plans) const {
  const std::size_t cap = std::max<std::size_t>(1, config_.max_batch);
  // Group by destination preserving first-appearance order of destinations
  // and plan order within each destination.
  std::vector<std::string> order;
  std::map<std::string, std::vector<agent::AgentId>> by_dest;
  for (const AgentPlan& p : plans) {
    auto [it, inserted] = by_dest.try_emplace(p.destination);
    if (inserted) order.push_back(p.destination);
    it->second.push_back(p.id);
  }
  std::vector<MigrationBatch> batches;
  std::uint64_t next_id = 1;
  for (const std::string& dest : order) {
    const std::vector<agent::AgentId>& agents = by_dest[dest];
    for (std::size_t off = 0; off < agents.size(); off += cap) {
      MigrationBatch b;
      b.batch_id = next_id++;
      b.destination = dest;
      const std::size_t end = std::min(agents.size(), off + cap);
      b.agents.assign(agents.begin() + static_cast<std::ptrdiff_t>(off),
                      agents.begin() + static_cast<std::ptrdiff_t>(end));
      batches.push_back(std::move(b));
    }
  }
  return batches;
}

void MigrationScheduler::run(const std::vector<AgentPlan>& plans,
                             std::function<void()> all_done) {
  std::vector<MigrationBatch> batches = plan(plans);
  {
    util::MutexLock lock(mu_);
    if (started_) {
      NAPLET_LOG(kWarn, "swarm") << "MigrationScheduler::run called twice";
      return;
    }
    started_ = true;
    all_done_ = std::move(all_done);
    start_ms_ = now_ms();
    report_.agents = plans.size();
    for (MigrationBatch& b : batches) {
      next_batch_id_ = std::max(next_batch_id_, b.batch_id + 1);
      batch_fill_.record(b.agents.size());
      batches_total_.add(1);
      ++report_.batches;
      ++outstanding_batches_;
      serialize_q_.push_back(std::move(b));
    }
  }
  pump();
}

void MigrationScheduler::collect_dispatches(std::vector<Dispatch>& out) {
  while (serialize_active_ < config_.serialize_slots && !serialize_q_.empty()) {
    MigrationBatch b = std::move(serialize_q_.front());
    serialize_q_.pop_front();
    ++serialize_active_;
    const std::uint64_t id = b.batch_id;
    active_[id] = Active{b, Stage::kSerialize, now_ms()};
    out.push_back(Dispatch{id, std::move(b), Stage::kSerialize});
  }
  while (transfer_active_ < config_.transfer_slots && !transfer_q_.empty()) {
    MigrationBatch b = std::move(transfer_q_.front());
    transfer_q_.pop_front();
    ++transfer_active_;
    const std::uint64_t id = b.batch_id;
    active_[id] = Active{b, Stage::kTransfer, now_ms()};
    out.push_back(Dispatch{id, std::move(b), Stage::kTransfer});
  }
  // Reactivation admits per destination; skip over batches whose
  // destination is saturated without starving the ones behind them.
  for (auto it = reactivate_q_.begin(); it != reactivate_q_.end();) {
    if (reactivate_by_dest_[it->destination] >=
        config_.per_destination_admission) {
      ++it;
      continue;
    }
    MigrationBatch b = std::move(*it);
    it = reactivate_q_.erase(it);
    ++reactivate_by_dest_[b.destination];
    const std::uint64_t id = b.batch_id;
    active_[id] = Active{b, Stage::kReactivate, now_ms()};
    out.push_back(Dispatch{id, std::move(b), Stage::kReactivate});
  }
}

void MigrationScheduler::pump() {
  {
    util::MutexLock lock(mu_);
    if (pumping_) {
      repump_ = true;  // the running pump will loop again
      return;
    }
    pumping_ = true;
  }
  bool again = true;
  while (again) {
    std::vector<Dispatch> dispatches;
    {
      util::MutexLock lock(mu_);
      repump_ = false;
      collect_dispatches(dispatches);
    }
    // Invoke the executor with no lock held; synchronous completions
    // re-enter pump(), see pumping_, and set repump_.
    for (Dispatch& d : dispatches) issue(std::move(d));
    {
      util::MutexLock lock(mu_);
      again = repump_;
      if (!again) pumping_ = false;
    }
  }
  maybe_finish();
}

void MigrationScheduler::issue(Dispatch dispatch) {
  const std::uint64_t id = dispatch.batch_id;
  const Stage stage = dispatch.stage;
  auto done = [this, id, stage](util::Status status) {
    on_stage_done(id, stage, std::move(status));
  };
  switch (stage) {
    case Stage::kSerialize: {
      if (fault::armed()) {
        const fault::Decision d = fault::hit("swarm.batch.dispatch");
        if (d.action == fault::Action::kError ||
            d.action == fault::Action::kDrop ||
            d.action == fault::Action::kKill) {
          done(util::Unavailable("injected dispatch failure"));
          return;
        }
      }
      executor_.serialize(dispatch.batch, std::move(done));
      return;
    }
    case Stage::kTransfer:
      executor_.transfer(dispatch.batch, std::move(done));
      return;
    case Stage::kReactivate: {
      if (fault::armed()) {
        const fault::Decision d = fault::hit("swarm.batch.admit");
        if (d.action == fault::Action::kError ||
            d.action == fault::Action::kDrop ||
            d.action == fault::Action::kKill) {
          on_admission_refused(id);
          return;
        }
      }
      executor_.reactivate(dispatch.batch, std::move(done));
      return;
    }
  }
}

void MigrationScheduler::enqueue_stage(MigrationBatch batch, Stage stage) {
  switch (stage) {
    case Stage::kSerialize:
      serialize_q_.push_back(std::move(batch));
      return;
    case Stage::kTransfer:
      transfer_q_.push_back(std::move(batch));
      return;
    case Stage::kReactivate:
      reactivate_q_.push_back(std::move(batch));
      return;
  }
}

void MigrationScheduler::fail_batch(const MigrationBatch& batch) {
  report_.failed += batch.agents.size();
  agents_failed_.add(batch.agents.size());
  --outstanding_batches_;
}

void MigrationScheduler::on_stage_done(std::uint64_t batch_id, Stage stage,
                                       util::Status status) {
  {
    util::MutexLock lock(mu_);
    auto it = active_.find(batch_id);
    if (it == active_.end() || it->second.stage != stage) return;  // stale
    Active entry = std::move(it->second);
    active_.erase(it);
    const std::uint64_t stage_us = ms_delta_to_us(entry.stage_start_ms,
                                                  now_ms());
    switch (stage) {
      case Stage::kSerialize:
        --serialize_active_;
        serialize_us_.record(stage_us);
        break;
      case Stage::kTransfer:
        --transfer_active_;
        transfer_us_.record(stage_us);
        break;
      case Stage::kReactivate: {
        auto dest = reactivate_by_dest_.find(entry.batch.destination);
        if (dest != reactivate_by_dest_.end() && dest->second > 0) {
          --dest->second;
        }
        reactivate_us_.record(stage_us);
        break;
      }
    }
    if (status.ok()) {
      switch (stage) {
        case Stage::kSerialize:
          enqueue_stage(std::move(entry.batch), Stage::kTransfer);
          break;
        case Stage::kTransfer:
          enqueue_stage(std::move(entry.batch), Stage::kReactivate);
          break;
        case Stage::kReactivate:
          // The batch landed: its handoffs count as one coalesced exchange
          // (or one per agent when coalescing is off).
          report_.migrated += entry.batch.agents.size();
          agents_migrated_.add(
              entry.batch.agents.size());
          const std::uint64_t exchanges =
              config_.coalesce_handoffs ? 1 : entry.batch.agents.size();
          report_.handoff_exchanges += exchanges;
          handoff_exchanges_.add(exchanges);
          --outstanding_batches_;
          break;
      }
    } else {
      MigrationBatch retry = std::move(entry.batch);
      ++retry.attempt;
      if (retry.attempt >= config_.max_attempts) {
        NAPLET_LOG(kWarn, "swarm")
            << "batch " << batch_id << " -> " << retry.destination
            << " failed after " << retry.attempt
            << " attempts: " << status.to_string();
        fail_batch(retry);
      } else {
        enqueue_stage(std::move(retry), stage);
      }
    }
  }
  pump();
}

void MigrationScheduler::on_admission_refused(std::uint64_t batch_id) {
  admission_refusals_.add(1);
  {
    util::MutexLock lock(mu_);
    auto it = active_.find(batch_id);
    if (it == active_.end() || it->second.stage != Stage::kReactivate) return;
    Active entry = std::move(it->second);
    active_.erase(it);
    auto dest = reactivate_by_dest_.find(entry.batch.destination);
    if (dest != reactivate_by_dest_.end() && dest->second > 0) --dest->second;

    MigrationBatch front = std::move(entry.batch);
    ++front.attempt;
    if (!config_.fallback_destination.empty() && front.agents.size() > 1 &&
        front.destination != config_.fallback_destination) {
      // Cascading rebalance: the destination refused the batch, so shed
      // half the load to the fallback. The rear half re-enters at the
      // transfer stage (its bytes must travel to the new destination); the
      // front half retries the original destination at half the size.
      const std::size_t half = front.agents.size() / 2;
      MigrationBatch rear;
      rear.batch_id = next_batch_id_++;
      rear.destination = config_.fallback_destination;
      rear.agents.assign(front.agents.begin() +
                             static_cast<std::ptrdiff_t>(half),
                         front.agents.end());
      front.agents.resize(half);
      report_.rerouted += rear.agents.size();
      agents_rerouted_.add(rear.agents.size());
      batches_total_.add(1);
      ++report_.batches;
      ++outstanding_batches_;
      batch_fill_.record(rear.agents.size());
      enqueue_stage(std::move(rear), Stage::kTransfer);
    }
    if (front.attempt >= config_.max_attempts) {
      fail_batch(front);
    } else {
      enqueue_stage(std::move(front), Stage::kReactivate);
    }
  }
  pump();
}

void MigrationScheduler::maybe_finish() {
  std::function<void()> callback;
  {
    util::MutexLock lock(mu_);
    if (!started_ || finished_ || outstanding_batches_ != 0 || pumping_) {
      return;
    }
    finished_ = true;
    report_.makespan_ms = now_ms() - start_ms_;
    callback = std::move(all_done_);
  }
  cv_.notify_all();
  if (callback) callback();
}

bool MigrationScheduler::wait(util::Duration timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  util::MutexLock lock(mu_);
  while (!finished_) {
    if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout &&
        !finished_) {
      return false;
    }
  }
  return true;
}

SchedulerReport MigrationScheduler::report() const {
  util::MutexLock lock(mu_);
  return report_;
}

}  // namespace naplet::swarm
