#include "swarm/drain.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "fault/fault.hpp"
#include "util/log.hpp"

namespace naplet::swarm {

namespace {

double real_now_ms() {
  return static_cast<double>(util::RealClock::instance().now_us()) / 1000.0;
}

}  // namespace

DrainCoordinator::DrainCoordinator(DrainConfig config, SuspendFn suspend,
                                   obs::Registry* registry)
    : config_(std::move(config)),
      suspend_(std::move(suspend)),
      registry_(registry != nullptr ? *registry : obs::Registry::global()),
      suspended_total_(registry_.counter("swarm_drain_suspended")),
      stragglers_total_(registry_.counter("swarm_drain_stragglers")),
      retries_total_(registry_.counter("swarm_drain_retries")),
      suspend_us_(registry_.histogram("swarm_drain_suspend_us")),
      wave_width_(registry_.histogram("swarm_drain_wave_width", "agents")) {}

double DrainCoordinator::now_ms() const {
  return config_.now_ms ? config_.now_ms() : real_now_ms();
}

std::size_t DrainCoordinator::wave_size_locked() const {
  // Wave width targets `target_wave_ms` of suspend work at the live p95
  // latency. No samples yet (or a p95 of ~0): open at full width — the
  // first wave's completions immediately shrink the next one if the host
  // turns out to be slow.
  obs::HistogramSnapshot snap;
  snap.count = suspend_us_.count();
  snap.sum = suspend_us_.sum();
  for (int k = 0; k < obs::kHistogramBuckets; ++k) {
    snap.buckets[static_cast<std::size_t>(k)] = suspend_us_.bucket(k);
  }
  const double p95_ms = snap.percentile(95.0) / 1000.0;
  if (snap.count == 0 || p95_ms <= 0.0) return config_.max_wave;
  const double width = config_.target_wave_ms / p95_ms;
  const auto clamped = static_cast<std::size_t>(std::max(1.0, width));
  return std::clamp(clamped, std::max<std::size_t>(1, config_.min_wave),
                    std::max<std::size_t>(1, config_.max_wave));
}

std::size_t DrainCoordinator::current_wave_size() const {
  util::MutexLock lock(mu_);
  return wave_size_locked();
}

void DrainCoordinator::drain(const std::vector<agent::AgentId>& agents,
                             std::function<void()> all_done) {
  {
    util::MutexLock lock(mu_);
    if (started_) {
      NAPLET_LOG(kWarn, "swarm") << "DrainCoordinator::drain called twice";
      return;
    }
    started_ = true;
    all_done_ = std::move(all_done);
    start_ms_ = now_ms();
    first_pass_end_ms_ = start_ms_;
    report_.agents = agents.size();
    outstanding_ = agents.size();
    for (const agent::AgentId& id : agents) {
      queue_.push_back(Pending{id, 0});
    }
  }
  pump();
}

void DrainCoordinator::pump() {
  {
    util::MutexLock lock(mu_);
    if (pumping_) {
      repump_ = true;
      return;
    }
    pumping_ = true;
  }
  bool again = true;
  while (again) {
    std::vector<Pending> wave;
    {
      util::MutexLock lock(mu_);
      repump_ = false;
      // True waves: a new wave launches only once the previous one has
      // fully landed, so its width reflects the latest latency picture.
      if (in_flight_ == 0 && !queue_.empty()) {
        const std::size_t width = std::min(wave_size_locked(), queue_.size());
        for (std::size_t i = 0; i < width; ++i) {
          wave.push_back(std::move(queue_.front()));
          queue_.pop_front();
          issue_ms_[wave.back().id.name()] = now_ms();
        }
        in_flight_ = width;
        ++report_.waves;
        wave_width_.record(width);
      }
    }
    for (Pending& p : wave) issue(std::move(p));
    {
      util::MutexLock lock(mu_);
      again = repump_;
      if (!again) pumping_ = false;
    }
  }
  maybe_finish();
}

void DrainCoordinator::issue(Pending pending) {
  const agent::AgentId id = pending.id;
  const int attempt = pending.attempt;
  if (fault::armed()) {
    const fault::Decision d = fault::hit("swarm.drain.suspend");
    if (d.action == fault::Action::kError ||
        d.action == fault::Action::kDrop ||
        d.action == fault::Action::kKill) {
      on_suspend_done(id, attempt,
                      util::Unavailable("injected suspend failure"));
      return;
    }
  }
  suspend_(id, [this, id, attempt](util::Status status) {
    on_suspend_done(id, attempt, std::move(status));
  });
}

void DrainCoordinator::on_suspend_done(const agent::AgentId& id, int attempt,
                                       util::Status status) {
  double backoff = -1.0;
  Pending retry{id, attempt + 1};
  {
    util::MutexLock lock(mu_);
    auto it = issue_ms_.find(id.name());
    if (it != issue_ms_.end()) {
      suspend_us_.record(obs::ms_to_us(now_ms() - it->second));
      issue_ms_.erase(it);
    }
    if (in_flight_ > 0) --in_flight_;
    if (attempt == 0) first_pass_end_ms_ = std::max(first_pass_end_ms_,
                                                    now_ms());
    if (status.ok()) {
      ++report_.suspended;
      suspended_total_.add(1);
      if (outstanding_ > 0) --outstanding_;
    } else if (attempt >= config_.max_retries) {
      NAPLET_LOG(kWarn, "swarm")
          << "agent " << id.name() << " still up after " << (attempt + 1)
          << " suspend attempts: " << status.to_string();
      ++report_.stragglers;
      stragglers_total_.add(1);
      report_.unresolved.push_back(id);
      if (outstanding_ > 0) --outstanding_;
    } else {
      ++report_.retries;
      retries_total_.add(1);
      backoff = std::min(config_.backoff_cap_ms,
                         config_.backoff_base_ms * std::pow(2.0, attempt));
      if (config_.defer) {
        // The deferred_ count keeps the drain from declaring completion
        // while retries are parked; the hook itself runs with no lock held.
        ++deferred_;
      } else {
        backoff = -1.0;
        queue_.push_back(retry);
      }
    }
  }
  if (backoff >= 0.0) {
    // Re-queue after the backoff.
    config_.defer(backoff, [this, retry]() mutable {
      {
        util::MutexLock lock(mu_);
        if (deferred_ > 0) --deferred_;
        queue_.push_back(std::move(retry));
      }
      pump();
    });
  }
  pump();
}

void DrainCoordinator::maybe_finish() {
  std::function<void()> callback;
  {
    util::MutexLock lock(mu_);
    if (!started_ || finished_ || pumping_ || outstanding_ != 0 ||
        in_flight_ != 0 || deferred_ != 0 || !queue_.empty()) {
      return;
    }
    finished_ = true;
    const double end = now_ms();
    report_.makespan_ms = end - start_ms_;
    report_.suspend_phase_ms = std::max(0.0, first_pass_end_ms_ - start_ms_);
    report_.straggler_phase_ms =
        std::max(0.0, report_.makespan_ms - report_.suspend_phase_ms);
    callback = std::move(all_done_);
  }
  cv_.notify_all();
  if (callback) callback();
}

bool DrainCoordinator::wait(util::Duration timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  util::MutexLock lock(mu_);
  while (!finished_) {
    if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout &&
        !finished_) {
      return false;
    }
  }
  return true;
}

DrainReport DrainCoordinator::report() const {
  util::MutexLock lock(mu_);
  return report_;
}

}  // namespace naplet::swarm
