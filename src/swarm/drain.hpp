// DrainCoordinator: mass-suspend a host's resident agents in waves before
// the host leaves the fleet (planned shutdown, rebalance, maintenance).
//
// The paper suspends one connection at a time; draining a host must
// suspend hundreds without stampeding the controller. The coordinator
// issues suspends in WAVES whose size self-tunes from the live p95
// suspend latency: each wave targets `target_wave_ms` of work, so a slow
// host (contended controller, lossy network) automatically gets smaller
// waves and a fast one drains at full width. Agents whose suspend fails
// are retried with capped exponential backoff; whatever still resists
// after `max_retries` is reported as a straggler, never blocking the
// sweep.
//
// Time and deferral are injected (DrainConfig::now_ms / defer) so the
// same coordinator runs against a DES simulator, a thread pool, or
// inline in tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "agent/agent_id.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::swarm {

/// Suspend one agent; `done` fires exactly once, synchronously or later,
/// from any thread.
using SuspendFn =
    std::function<void(const agent::AgentId&,
                       std::function<void(util::Status)> done)>;

struct DrainConfig {
  double target_wave_ms = 50.0;  ///< wave size aims at this much work
  std::size_t min_wave = 1;
  std::size_t max_wave = 64;
  int max_retries = 3;           ///< per agent, after the first attempt
  double backoff_base_ms = 10.0;
  double backoff_cap_ms = 200.0;
  /// Time source (defaults to the real clock) and deferred execution.
  /// `defer` schedules `fn` after `delay_ms`; when unset, retries run
  /// immediately (no backoff delay) — fine for tests, wrong for hosts.
  std::function<double()> now_ms;
  std::function<void(double delay_ms, std::function<void()> fn)> defer;
};

struct DrainReport {
  std::size_t agents = 0;
  std::size_t suspended = 0;
  std::size_t stragglers = 0;  ///< gave up after max_retries
  std::size_t waves = 0;
  std::size_t retries = 0;     ///< total retry attempts issued
  double suspend_phase_ms = 0.0;   ///< first wave start -> last first-try done
  double straggler_phase_ms = 0.0; ///< retry tail beyond the suspend phase
  double makespan_ms = 0.0;
  /// Agents that never suspended (for the operator to kill or migrate).
  std::vector<agent::AgentId> unresolved;
};

class DrainCoordinator {
 public:
  DrainCoordinator(DrainConfig config, SuspendFn suspend,
                   obs::Registry* registry = nullptr);

  /// Drain `agents`. One drain per coordinator instance. `all_done`
  /// (optional) fires once after every agent settled (suspended or
  /// declared a straggler) — possibly synchronously.
  void drain(const std::vector<agent::AgentId>& agents,
             std::function<void()> all_done = nullptr);

  /// Block until the drain completes; false on timeout.
  bool wait(util::Duration timeout);

  [[nodiscard]] DrainReport report() const;

  /// The wave width the next wave would use, from live p95 latency —
  /// exposed for tests and the bench.
  [[nodiscard]] std::size_t current_wave_size() const;

 private:
  struct Pending {
    agent::AgentId id;
    int attempt = 0;
  };

  void pump();
  void issue(Pending pending);
  void on_suspend_done(const agent::AgentId& id, int attempt,
                       util::Status status);
  [[nodiscard]] std::size_t wave_size_locked() const NAPLET_REQUIRES(mu_);
  void maybe_finish();
  [[nodiscard]] double now_ms() const;

  const DrainConfig config_;
  const SuspendFn suspend_ NAPLET_NOT_GUARDED("immutable after construction");
  obs::Registry& registry_ NAPLET_NOT_GUARDED("immutable reference");
  obs::Counter& suspended_total_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Counter& stragglers_total_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Counter& retries_total_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Histogram& suspend_us_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Histogram& wave_width_ NAPLET_NOT_GUARDED("lock-free instrument");

  mutable util::Mutex mu_{util::LockRank::kSwarmDrain, "swarm.drain"};
  util::CondVar cv_;
  std::deque<Pending> queue_ NAPLET_GUARDED_BY(mu_);
  std::map<std::string, double> issue_ms_ NAPLET_GUARDED_BY(mu_);
  std::size_t in_flight_ NAPLET_GUARDED_BY(mu_) = 0;
  std::size_t outstanding_ NAPLET_GUARDED_BY(mu_) = 0;
  std::size_t deferred_ NAPLET_GUARDED_BY(mu_) = 0;
  bool started_ NAPLET_GUARDED_BY(mu_) = false;
  bool finished_ NAPLET_GUARDED_BY(mu_) = false;
  bool pumping_ NAPLET_GUARDED_BY(mu_) = false;
  bool repump_ NAPLET_GUARDED_BY(mu_) = false;
  double start_ms_ NAPLET_GUARDED_BY(mu_) = 0.0;
  double first_pass_end_ms_ NAPLET_GUARDED_BY(mu_) = 0.0;
  DrainReport report_ NAPLET_GUARDED_BY(mu_);
  std::function<void()> all_done_ NAPLET_GUARDED_BY(mu_);
};

}  // namespace naplet::swarm
