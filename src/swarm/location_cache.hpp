// CachingLocationService: a churn-tolerant read cache in front of a
// LocationService (typically a RemoteLocationService talking to the
// DirectoryServer).
//
// A fleet rebalance is a thundering herd against the directory: thousands
// of agents resolving the same few destination servers and peer agents.
// This tier absorbs it with three mechanisms:
//
//  * Lease-TTL positive cache — every hit carries a lease that expires
//    after `positive_ttl` (the PR-4 redirector lease pattern applied to
//    lookups): a stale entry is re-fetched, never served beyond its lease.
//  * Negative cache — a miss is remembered for the (short) `negative_ttl`
//    so absent agents don't hammer the backing directory.
//  * Single-flight — concurrent misses for the same key collapse into one
//    backing lookup; followers wait for the leader's result.
//
// Writes (register/begin/end migration, deregister) are passed through to
// the backing service AND invalidate the local entry, so a process's own
// mutations are never masked by its cache. Remote churn is bounded by the
// lease: the worst case is `positive_ttl` of staleness, which the
// migration paths already tolerate (a stale redirector target fails the
// handoff and the retry loop re-resolves).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "agent/location.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::swarm {

struct LocationCacheConfig {
  util::Duration positive_ttl = std::chrono::milliseconds(500);
  util::Duration negative_ttl = std::chrono::milliseconds(50);
  /// Time source in microseconds; defaults to the real clock (DES benches
  /// bind simulator time).
  std::function<std::int64_t()> now_us;
};

class CachingLocationService final : public agent::LocationService {
 public:
  /// `backing` must outlive this service. Instruments register in
  /// `registry` (nullptr: the process-global registry).
  CachingLocationService(agent::LocationService& backing,
                         LocationCacheConfig config = {},
                         obs::Registry* registry = nullptr);

  // Reads: served from cache within the lease, single-flighted on miss.
  [[nodiscard]] std::optional<agent::NodeInfo> try_lookup(
      const agent::AgentId& id) const override;
  [[nodiscard]] util::StatusOr<agent::NodeInfo> lookup(
      const agent::AgentId& id, util::Duration timeout) const override;
  [[nodiscard]] bool known(const agent::AgentId& id) const override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] util::StatusOr<agent::NodeInfo> lookup_server(
      const std::string& server_name) const override;

  // Writes: pass through + invalidate.
  void register_agent(const agent::AgentId& id,
                      const agent::NodeInfo& node) override;
  void begin_migration(const agent::AgentId& id) override;
  void end_migration(const agent::AgentId& id) override;
  void deregister_agent(const agent::AgentId& id) override;
  void register_server(const agent::NodeInfo& node) override;
  void deregister_server(const std::string& server_name) override;

  /// Drop every cached entry (tests; operator reset after a partition).
  void flush();

 private:
  struct CacheEntry {
    agent::NodeInfo node;
    std::int64_t expires_us = 0;
    bool negative = false;  ///< "known absent" until expires_us
    bool fetching = false;  ///< single-flight leader is on the wire
  };

  [[nodiscard]] std::int64_t now_us() const;
  /// Cache-or-fetch core shared by try_lookup/lookup.
  [[nodiscard]] std::optional<agent::NodeInfo> cached_or_fetch(
      const agent::AgentId& id, bool allow_negative) const;
  void invalidate_agent(const agent::AgentId& id);
  void invalidate_server(const std::string& name);

  agent::LocationService& backing_ NAPLET_NOT_GUARDED("immutable reference");
  const LocationCacheConfig config_;
  obs::Registry& registry_ NAPLET_NOT_GUARDED("immutable reference");
  obs::Counter& hits_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Counter& misses_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Counter& stale_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Counter& negative_hits_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Counter& coalesced_ NAPLET_NOT_GUARDED("lock-free instrument");

  mutable util::Mutex mu_{util::LockRank::kSwarmCache, "swarm.loc_cache"};
  mutable util::CondVar cv_;
  mutable std::map<std::string, CacheEntry> agents_ NAPLET_GUARDED_BY(mu_);
  mutable std::map<std::string, CacheEntry> servers_ NAPLET_GUARDED_BY(mu_);
};

}  // namespace naplet::swarm
