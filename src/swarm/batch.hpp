// Shared types for the swarm migration subsystem (ROADMAP item 2).
//
// The paper migrates one agent at a time; a fleet rebalance moves
// thousands. Following Gavalas' itinerary-aware batching, agents bound for
// the same destination travel together: one batch is serialized,
// transferred, and reactivated as a unit, and its redirector handoffs are
// coalesced into one exchange (core/wire.hpp BatchHandoffMsg).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "agent/agent_id.hpp"
#include "agent/itinerary.hpp"

namespace naplet::swarm {

/// One agent's next movement: where it is headed on its next hop.
struct AgentPlan {
  agent::AgentId id;
  std::string destination;
};

/// A group of agents bound for one destination, pipelined through the
/// serialize -> transfer -> reactivate stages as a unit.
struct MigrationBatch {
  std::uint64_t batch_id = 0;
  std::string destination;
  std::vector<agent::AgentId> agents;
  int attempt = 0;  ///< dispatch/admission retries consumed so far
};

/// Derive movement plans from a fleet's itineraries: each agent
/// contributes its next stop (Itinerary::peek()); exhausted itineraries
/// contribute nothing. The scheduler groups the result by destination.
[[nodiscard]] inline std::vector<AgentPlan> plans_of(
    const std::vector<std::pair<agent::AgentId, agent::Itinerary>>& fleet) {
  std::vector<AgentPlan> plans;
  plans.reserve(fleet.size());
  for (const auto& [id, itinerary] : fleet) {
    std::string next = itinerary.peek();
    if (next.empty()) continue;
    plans.push_back(AgentPlan{id, std::move(next)});
  }
  return plans;
}

}  // namespace naplet::swarm
