#include "swarm/location_cache.hpp"

#include <utility>

#include "fault/fault.hpp"

namespace naplet::swarm {

CachingLocationService::CachingLocationService(agent::LocationService& backing,
                                               LocationCacheConfig config,
                                               obs::Registry* registry)
    : backing_(backing),
      config_(std::move(config)),
      registry_(registry != nullptr ? *registry : obs::Registry::global()),
      hits_(registry_.counter("loc_cache_hits")),
      misses_(registry_.counter("loc_cache_misses")),
      stale_(registry_.counter("loc_cache_stale")),
      negative_hits_(registry_.counter("loc_cache_negative_hits")),
      coalesced_(registry_.counter("loc_cache_coalesced")) {}

std::int64_t CachingLocationService::now_us() const {
  return config_.now_us ? config_.now_us()
                        : util::RealClock::instance().now_us();
}

std::optional<agent::NodeInfo> CachingLocationService::cached_or_fetch(
    const agent::AgentId& id, bool allow_negative) const {
  {
    util::MutexLock lock(mu_);
    for (;;) {
      auto it = agents_.find(id.name());
      if (it == agents_.end()) {
        // Miss: become the single-flight leader. The placeholder parks
        // concurrent lookers on cv_ until our fetch lands.
        misses_.add(1);
        CacheEntry placeholder;
        placeholder.fetching = true;
        agents_.emplace(id.name(), placeholder);
        break;
      }
      CacheEntry& entry = it->second;
      if (entry.fetching) {
        // Another thread's fetch is on the wire; wait and re-check.
        coalesced_.add(1);
        cv_.wait(mu_);
        continue;
      }
      if (entry.expires_us > now_us()) {
        if (entry.negative) {
          if (allow_negative) {
            negative_hits_.add(1);
            return std::nullopt;
          }
          // Caller insists on asking the directory; take the lead.
          entry.fetching = true;
          break;
        }
        hits_.add(1);
        return entry.node;
      }
      // Lease expired: re-fetch, leading for any followers.
      stale_.add(1);
      entry.fetching = true;
      break;
    }
  }
  // Leader path, no cache lock held across the backing call.
  (void)fault::hit("swarm.cache.lookup");
  std::optional<agent::NodeInfo> result = backing_.try_lookup(id);
  {
    util::MutexLock lock(mu_);
    CacheEntry& entry = agents_[id.name()];
    entry.fetching = false;
    if (result.has_value()) {
      entry.node = *result;
      entry.negative = false;
      entry.expires_us = now_us() + config_.positive_ttl.count();
    } else {
      entry.negative = true;
      entry.expires_us = now_us() + config_.negative_ttl.count();
    }
  }
  cv_.notify_all();
  return result;
}

std::optional<agent::NodeInfo> CachingLocationService::try_lookup(
    const agent::AgentId& id) const {
  return cached_or_fetch(id, /*allow_negative=*/true);
}

util::StatusOr<agent::NodeInfo> CachingLocationService::lookup(
    const agent::AgentId& id, util::Duration timeout) const {
  // A blocking lookup must not be short-circuited by the negative cache —
  // the whole point is waiting for the agent to appear. Serve a fresh
  // positive entry if we have one, otherwise delegate the blocking wait to
  // the backing service and cache the outcome.
  {
    util::MutexLock lock(mu_);
    auto it = agents_.find(id.name());
    if (it != agents_.end() && !it->second.fetching && !it->second.negative &&
        it->second.expires_us > now_us()) {
      hits_.add(1);
      return it->second.node;
    }
  }
  misses_.add(1);
  (void)fault::hit("swarm.cache.lookup");
  util::StatusOr<agent::NodeInfo> result = backing_.lookup(id, timeout);
  {
    util::MutexLock lock(mu_);
    auto it = agents_.find(id.name());
    // Never clobber an in-flight single-flight placeholder; its leader
    // owns the entry and will publish the freshest answer.
    if (it == agents_.end() || !it->second.fetching) {
      CacheEntry& entry = agents_[id.name()];
      if (result.ok()) {
        entry.node = *result;
        entry.negative = false;
        entry.expires_us = now_us() + config_.positive_ttl.count();
      } else {
        entry.negative = true;
        entry.expires_us = now_us() + config_.negative_ttl.count();
      }
    }
  }
  cv_.notify_all();
  return result;
}

bool CachingLocationService::known(const agent::AgentId& id) const {
  {
    util::MutexLock lock(mu_);
    auto it = agents_.find(id.name());
    if (it != agents_.end() && !it->second.fetching && !it->second.negative &&
        it->second.expires_us > now_us()) {
      hits_.add(1);
      return true;
    }
  }
  // "known" includes in-transit agents, which the positive cache never
  // holds — ask the authority rather than guess from a negative entry.
  return backing_.known(id);
}

std::size_t CachingLocationService::size() const { return backing_.size(); }

util::StatusOr<agent::NodeInfo> CachingLocationService::lookup_server(
    const std::string& server_name) const {
  {
    util::MutexLock lock(mu_);
    for (;;) {
      auto it = servers_.find(server_name);
      if (it == servers_.end()) {
        misses_.add(1);
        CacheEntry placeholder;
        placeholder.fetching = true;
        servers_.emplace(server_name, placeholder);
        break;
      }
      CacheEntry& entry = it->second;
      if (entry.fetching) {
        coalesced_.add(1);
        cv_.wait(mu_);
        continue;
      }
      if (entry.expires_us > now_us()) {
        if (entry.negative) {
          negative_hits_.add(1);
          return util::NotFound("server " + server_name +
                                " (cached negative)");
        }
        hits_.add(1);
        return entry.node;
      }
      stale_.add(1);
      entry.fetching = true;
      break;
    }
  }
  (void)fault::hit("swarm.cache.lookup");
  util::StatusOr<agent::NodeInfo> result = backing_.lookup_server(server_name);
  {
    util::MutexLock lock(mu_);
    CacheEntry& entry = servers_[server_name];
    entry.fetching = false;
    if (result.ok()) {
      entry.node = *result;
      entry.negative = false;
      entry.expires_us = now_us() + config_.positive_ttl.count();
    } else {
      entry.negative = true;
      entry.expires_us = now_us() + config_.negative_ttl.count();
    }
  }
  cv_.notify_all();
  return result;
}

void CachingLocationService::invalidate_agent(const agent::AgentId& id) {
  bool erased = false;
  {
    util::MutexLock lock(mu_);
    auto it = agents_.find(id.name());
    // A fetching placeholder belongs to its leader; expiring it instead of
    // erasing keeps the single-flight handshake intact (the leader's
    // publish then carries an already-expired lease and is re-fetched).
    if (it != agents_.end()) {
      if (it->second.fetching) {
        it->second.expires_us = 0;
      } else {
        agents_.erase(it);
        erased = true;
      }
    }
  }
  if (erased) cv_.notify_all();
}

void CachingLocationService::invalidate_server(const std::string& name) {
  util::MutexLock lock(mu_);
  auto it = servers_.find(name);
  if (it != servers_.end() && !it->second.fetching) servers_.erase(it);
}

void CachingLocationService::register_agent(const agent::AgentId& id,
                                            const agent::NodeInfo& node) {
  backing_.register_agent(id, node);
  invalidate_agent(id);
}

void CachingLocationService::begin_migration(const agent::AgentId& id) {
  backing_.begin_migration(id);
  invalidate_agent(id);
}

void CachingLocationService::end_migration(const agent::AgentId& id) {
  backing_.end_migration(id);
  invalidate_agent(id);
}

void CachingLocationService::deregister_agent(const agent::AgentId& id) {
  backing_.deregister_agent(id);
  invalidate_agent(id);
}

void CachingLocationService::register_server(const agent::NodeInfo& node) {
  backing_.register_server(node);
  invalidate_server(node.server_name);
}

void CachingLocationService::deregister_server(
    const std::string& server_name) {
  backing_.deregister_server(server_name);
  invalidate_server(server_name);
}

void CachingLocationService::flush() {
  {
    util::MutexLock lock(mu_);
    // Keep single-flight placeholders (their leaders still publish);
    // everything else goes.
    for (auto it = agents_.begin(); it != agents_.end();) {
      if (it->second.fetching) {
        it->second.expires_us = 0;
        ++it;
      } else {
        it = agents_.erase(it);
      }
    }
    for (auto it = servers_.begin(); it != servers_.end();) {
      if (it->second.fetching) {
        it->second.expires_us = 0;
        ++it;
      } else {
        it = servers_.erase(it);
      }
    }
  }
  cv_.notify_all();
}

}  // namespace naplet::swarm
