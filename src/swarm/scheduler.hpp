// MigrationScheduler: itinerary-aware batch migration with a pipelined
// serialize -> transfer -> reactivate flow (Gavalas-style, ROADMAP item 2).
//
// Agents bound for the same destination are grouped into batches of at
// most `max_batch`; batches move through three stages driven by an
// executor the caller supplies (real controllers, a DES model, or a test
// fake). The stages are independently capacity-limited, so stage N+1 of
// batch k overlaps stage N of batch k+1:
//
//   serialize  — CPU at the source host      (serialize_slots, default 1)
//   transfer   — bytes on the wire           (transfer_slots = the bounded
//                                             in-flight budget)
//   reactivate — import + handoff + resume   (per_destination_admission
//                                             batches per destination)
//
// With `coalesce_handoffs` the batch's redirector handoffs count as ONE
// exchange (the BatchHandoffMsg wire exchange); otherwise one per agent.
// A destination may refuse admission (fault site `swarm.batch.admit`);
// the refused batch is split and its rear half rerouted to the fallback
// destination — the cascading-rebalance path chaos scenario 7 drives.
//
// Thread/lock model: mu_ (LockRank::kSwarmScheduler, outermost) guards
// the queues; the executor and completion callbacks are ALWAYS invoked
// with no scheduler lock held, and executors may complete synchronously
// (the DES executor does) — re-entrant completions are flattened by the
// pump trampoline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "swarm/batch.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace naplet::swarm {

/// The three pipeline stages, implemented by the environment. `done` may
/// be called synchronously or from any thread, exactly once per call.
class StageExecutor {
 public:
  using Done = std::function<void(util::Status)>;

  virtual ~StageExecutor() = default;
  virtual void serialize(const MigrationBatch& batch, Done done) = 0;
  virtual void transfer(const MigrationBatch& batch, Done done) = 0;
  virtual void reactivate(const MigrationBatch& batch, Done done) = 0;
};

struct SchedulerConfig {
  std::size_t max_batch = 32;
  std::size_t serialize_slots = 1;
  std::size_t transfer_slots = 4;
  std::size_t per_destination_admission = 2;
  bool coalesce_handoffs = true;
  int max_attempts = 3;  ///< per batch, across dispatch/stage retries
  /// Where a refused batch's rear half goes (cascading rebalance). Empty:
  /// refusals retry the original destination until max_attempts.
  std::string fallback_destination;
  /// Time source for stage latency histograms and makespan; defaults to
  /// the real clock. DES benches bind simulator time here.
  std::function<double()> now_ms;
};

struct SchedulerReport {
  std::size_t agents = 0;
  std::size_t migrated = 0;
  std::size_t failed = 0;
  std::size_t batches = 0;
  std::size_t rerouted = 0;  ///< agents pushed to the fallback destination
  std::uint64_t handoff_exchanges = 0;
  double makespan_ms = 0.0;
};

class MigrationScheduler {
 public:
  /// `executor` must outlive the scheduler. Instruments register in
  /// `registry` (nullptr: the process-global registry).
  MigrationScheduler(SchedulerConfig config, StageExecutor& executor,
                     obs::Registry* registry = nullptr);

  /// Pure planning: group plans by destination, split into batches of at
  /// most max_batch, preserving plan order within a destination.
  [[nodiscard]] std::vector<MigrationBatch> plan(
      const std::vector<AgentPlan>& plans) const;

  /// Run the pipeline over `plans`. One run per scheduler instance.
  /// `all_done` (optional) fires once, after the last batch settles —
  /// possibly synchronously when the executor completes inline.
  void run(const std::vector<AgentPlan>& plans,
           std::function<void()> all_done = nullptr);

  /// Block until the run completes (threaded executors). True on
  /// completion, false on timeout.
  bool wait(util::Duration timeout);

  [[nodiscard]] SchedulerReport report() const;

 private:
  enum class Stage { kSerialize, kTransfer, kReactivate };

  struct Active {
    MigrationBatch batch;
    Stage stage = Stage::kSerialize;
    double stage_start_ms = 0.0;
  };
  struct Dispatch {
    std::uint64_t batch_id = 0;
    MigrationBatch batch;
    Stage stage = Stage::kSerialize;
  };

  void pump();
  void collect_dispatches(std::vector<Dispatch>& out) NAPLET_REQUIRES(mu_);
  void issue(Dispatch dispatch);
  void on_stage_done(std::uint64_t batch_id, Stage stage, util::Status status);
  void on_admission_refused(std::uint64_t batch_id);
  void enqueue_stage(MigrationBatch batch, Stage stage) NAPLET_REQUIRES(mu_);
  void fail_batch(const MigrationBatch& batch) NAPLET_REQUIRES(mu_);
  void maybe_finish();
  [[nodiscard]] double now_ms() const;

  const SchedulerConfig config_;
  StageExecutor& executor_ NAPLET_NOT_GUARDED("immutable reference");
  obs::Registry& registry_ NAPLET_NOT_GUARDED("immutable reference");

  // Instruments: references are stable; record/add are lock-free.
  obs::Counter& agents_migrated_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Counter& agents_failed_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Counter& agents_rerouted_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Counter& batches_total_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Counter& handoff_exchanges_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Counter& admission_refusals_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Histogram& serialize_us_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Histogram& transfer_us_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Histogram& reactivate_us_ NAPLET_NOT_GUARDED("lock-free instrument");
  obs::Histogram& batch_fill_ NAPLET_NOT_GUARDED("lock-free instrument");

  mutable util::Mutex mu_{util::LockRank::kSwarmScheduler, "swarm.scheduler"};
  util::CondVar cv_;
  std::deque<MigrationBatch> serialize_q_ NAPLET_GUARDED_BY(mu_);
  std::deque<MigrationBatch> transfer_q_ NAPLET_GUARDED_BY(mu_);
  std::deque<MigrationBatch> reactivate_q_ NAPLET_GUARDED_BY(mu_);
  std::map<std::uint64_t, Active> active_ NAPLET_GUARDED_BY(mu_);
  std::size_t serialize_active_ NAPLET_GUARDED_BY(mu_) = 0;
  std::size_t transfer_active_ NAPLET_GUARDED_BY(mu_) = 0;
  std::map<std::string, std::size_t> reactivate_by_dest_
      NAPLET_GUARDED_BY(mu_);
  std::size_t outstanding_batches_ NAPLET_GUARDED_BY(mu_) = 0;
  std::uint64_t next_batch_id_ NAPLET_GUARDED_BY(mu_) = 1;
  bool started_ NAPLET_GUARDED_BY(mu_) = false;
  bool finished_ NAPLET_GUARDED_BY(mu_) = false;
  bool pumping_ NAPLET_GUARDED_BY(mu_) = false;
  bool repump_ NAPLET_GUARDED_BY(mu_) = false;
  double start_ms_ NAPLET_GUARDED_BY(mu_) = 0.0;
  SchedulerReport report_ NAPLET_GUARDED_BY(mu_);
  std::function<void()> all_done_ NAPLET_GUARDED_BY(mu_);
};

}  // namespace naplet::swarm
