// Parallel computing with cooperating mobile agents — the workload that
// motivates synchronous transient communication in the paper's
// introduction (mobile-agent-based parallel computing needs frequent
// synchronization; mailbox-style asynchronous messaging is too loose).
//
// A coordinator agent distributes iterations of a simple computation
// (partial sums of a numeric series) to worker agents over NapletSockets
// and barriers on their partial results each round. One of the workers
// migrates to a different server between rounds — e.g. chasing data
// locality or fleeing load — and thanks to connection migration the
// coordinator never notices: the same connection keeps working.
//
// Run:  ./examples/parallel_sync
#include <cstdio>

#include "core/naplet_socket.hpp"
#include "core/runtime.hpp"

namespace {

using namespace naplet;
using namespace std::chrono_literals;

constexpr int kWorkers = 3;
constexpr int kRounds = 4;
constexpr std::uint64_t kChunk = 250000;

/// Computes partial sums assigned by the coordinator; worker 0 roams.
class WorkerAgent : public agent::Agent {
 public:
  std::uint32_t index = 0;
  std::string home;       // itinerary for the roaming worker
  std::uint64_t conn_id = 0;
  std::uint32_t rounds_done = 0;

  void run(agent::AgentContext& ctx) override {
    std::unique_ptr<nsock::NapletSocket> conn;
    if (conn_id == 0) {
      auto opened = nsock::NapletSocket::open(ctx, agent::AgentId("coord"));
      if (!opened.ok()) return;
      conn = std::move(*opened);
      conn_id = conn->conn_id();
      // Identify ourselves on the wire once.
      util::BytesWriter hello;
      hello.u32(index);
      if (!conn->send(util::ByteSpan(hello.data().data(),
                                     hello.data().size()))
               .ok()) {
        return;
      }
    } else {
      auto reattached = nsock::NapletSocket::reattach(ctx, conn_id);
      if (!reattached.ok()) return;
      conn = std::move(*reattached);
    }

    while (rounds_done < kRounds) {
      // Receive this round's work assignment: [begin, end).
      auto work = conn->recv(10s);
      if (!work.ok()) return;
      util::BytesReader r(util::ByteSpan(work->body.data(),
                                         work->body.size()));
      const std::uint64_t begin = *r.u64();
      const std::uint64_t end = *r.u64();

      std::uint64_t sum = 0;
      for (std::uint64_t v = begin; v < end; ++v) sum += v;

      util::BytesWriter result;
      result.u32(index);
      result.u64(sum);
      if (!conn->send(util::ByteSpan(result.data().data(),
                                     result.data().size()))
               .ok()) {
        return;
      }
      ++rounds_done;

      // The roaming worker hops after every round — mid-computation, with
      // the connection open. The docking system migrates it transparently.
      if (index == 0 && rounds_done < kRounds) {
        const std::string next =
            ctx.server_name() == "compute-1" ? "compute-2" : "compute-1";
        std::printf("  worker-0 migrating %s -> %s (round %u done)\n",
                    ctx.server_name().c_str(), next.c_str(), rounds_done);
        ctx.migrate_to(next);
        return;
      }
    }
    (void)conn->close();
  }

  void persist(util::Archive& ar) override {
    ar.field(index);
    ar.field(home);
    ar.field(conn_id);
    ar.field(rounds_done);
  }
  std::string type_name() const override { return "WorkerAgent"; }
};
NAPLET_REGISTER_AGENT(WorkerAgent);

/// Accepts worker connections, then runs a barrier per round.
class CoordinatorAgent : public agent::Agent {
 public:
  void run(agent::AgentContext& ctx) override {
    auto listener = nsock::NapletServerSocket::open(ctx);
    if (!listener.ok()) return;

    std::vector<std::unique_ptr<nsock::NapletSocket>> workers(kWorkers);
    for (int i = 0; i < kWorkers; ++i) {
      auto conn = (*listener)->accept(10s);
      if (!conn.ok()) return;
      auto hello = (*conn)->recv(10s);
      if (!hello.ok()) return;
      util::BytesReader r(util::ByteSpan(hello->body.data(),
                                         hello->body.size()));
      workers[*r.u32()] = std::move(*conn);
    }
    std::printf("coordinator: %d workers connected\n", kWorkers);

    std::uint64_t grand_total = 0;
    for (int round = 0; round < kRounds; ++round) {
      // Scatter disjoint ranges.
      for (int w = 0; w < kWorkers; ++w) {
        const std::uint64_t begin =
            (static_cast<std::uint64_t>(round) * kWorkers + w) * kChunk;
        util::BytesWriter task;
        task.u64(begin);
        task.u64(begin + kChunk);
        if (!workers[w]
                 ->send(util::ByteSpan(task.data().data(),
                                       task.data().size()))
                 .ok()) {
          return;
        }
      }
      // Barrier: gather every partial sum (order may vary).
      std::uint64_t round_sum = 0;
      for (int w = 0; w < kWorkers; ++w) {
        auto result = workers[w]->recv(30s);
        if (!result.ok()) {
          std::printf("coordinator: worker %d failed: %s\n", w,
                      result.status().to_string().c_str());
          return;
        }
        util::BytesReader r(util::ByteSpan(result->body.data(),
                                           result->body.size()));
        (void)*r.u32();
        round_sum += *r.u64();
      }
      grand_total += round_sum;
      std::printf("round %d barrier complete: partial total %llu\n", round,
                  static_cast<unsigned long long>(round_sum));
    }

    // Verify against the closed form for 0..N-1.
    const std::uint64_t n = kChunk * kWorkers * kRounds;
    const std::uint64_t expected = n * (n - 1) / 2;
    std::printf("grand total: %llu (expected %llu) -> %s\n",
                static_cast<unsigned long long>(grand_total),
                static_cast<unsigned long long>(expected),
                grand_total == expected ? "CORRECT" : "WRONG");
  }
  void persist(util::Archive&) override {}
  std::string type_name() const override { return "CoordinatorAgent"; }
};
NAPLET_REGISTER_AGENT(CoordinatorAgent);

}  // namespace

int main() {
  std::printf("naplet++ example: parallel computation with a roaming worker\n\n");

  nsock::Realm realm;
  realm.add_node("front");
  realm.add_node("compute-1");
  realm.add_node("compute-2");
  if (!realm.start().ok()) return 1;

  (void)realm.node("front").server().launch(
      std::make_unique<CoordinatorAgent>(), agent::AgentId("coord"));
  for (int w = 0; w < kWorkers; ++w) {
    auto worker = std::make_unique<WorkerAgent>();
    worker->index = static_cast<std::uint32_t>(w);
    (void)realm.node("compute-1")
        .server()
        .launch(std::move(worker), agent::AgentId("worker-" +
                                                  std::to_string(w)));
  }

  agent::wait_agent_gone(realm.locations(), agent::AgentId("coord"),
                         std::chrono::seconds(60));
  realm.stop();
  std::printf("\ndone.\n");
  return 0;
}
