// Two mobile agents keep a conversation going while BOTH wander the realm —
// the paper's concurrent-migration scenario (§3.1) end to end on the real
// agent runtime. Each agent speaks, listens, then hops; migrations of the
// two endpoints frequently collide and are serialized by the hash-priority
// protocol, invisibly to the conversation.
//
// Run:  ./examples/mobile_chat
#include <cstdio>

#include "core/naplet_socket.hpp"
#include "core/runtime.hpp"

namespace {

using namespace naplet;
using namespace std::chrono_literals;

constexpr int kLines = 8;

const char* kScript[kLines] = {
    "did you hear the one about the migrating socket?",
    "no — tell me while I change hosts",
    "it kept its connection through three servers",
    "impressive; I just hopped too and missed nothing",
    "exactly-once delivery, they say",
    "and in order, even with both of us moving",
    "the controllers did all the work",
    "goodnight from wherever I am now",
};

class ChatterAgent : public agent::Agent {
 public:
  bool initiator = false;
  std::string peer;
  std::vector<std::string> itinerary;
  std::uint64_t conn_id = 0;
  std::uint32_t line = 0;
  std::uint32_t hops_done = 0;

  void run(agent::AgentContext& ctx) override {
    std::unique_ptr<nsock::NapletSocket> conn;
    if (conn_id == 0) {
      if (initiator) {
        auto opened = nsock::NapletSocket::open(ctx, agent::AgentId(peer));
        if (!opened.ok()) {
          std::fprintf(stderr, "%s: open failed: %s\n",
                       ctx.self().name().c_str(),
                       opened.status().to_string().c_str());
          return;
        }
        conn = std::move(*opened);
      } else {
        auto listener = nsock::NapletServerSocket::open(ctx);
        if (!listener.ok()) return;
        auto accepted = (*listener)->accept(10s);
        if (!accepted.ok()) return;
        conn = std::move(*accepted);
      }
      conn_id = conn->conn_id();
    } else {
      auto reattached = nsock::NapletSocket::reattach(ctx, conn_id);
      if (!reattached.ok()) {
        std::fprintf(stderr, "%s: reattach failed: %s\n",
                     ctx.self().name().c_str(),
                     reattached.status().to_string().c_str());
        return;
      }
      conn = std::move(*reattached);
    }

    // Two lines per hop: speak (or listen) alternately, then move.
    const std::uint32_t lines_this_hop = 2;
    for (std::uint32_t i = 0; i < lines_this_hop && line < kLines; ++i) {
      const bool my_turn = (line % 2 == 0) == initiator;
      if (my_turn) {
        if (auto st = conn->send(std::string_view(kScript[line])); !st.ok()) {
          std::fprintf(stderr, "%s: send failed: %s\n",
                       ctx.self().name().c_str(), st.to_string().c_str());
          return;
        }
        std::printf("%-10s @%-8s says: %s\n", ctx.self().name().c_str(),
                    ctx.server_name().c_str(), kScript[line]);
      } else {
        auto heard = conn->recv(30s);
        if (!heard.ok()) {
          std::fprintf(stderr, "%s: recv failed: %s\n",
                       ctx.self().name().c_str(),
                       heard.status().to_string().c_str());
          return;
        }
        std::printf("%-10s @%-8s heard%s: %s\n", ctx.self().name().c_str(),
                    ctx.server_name().c_str(),
                    heard->from_buffer ? " (replayed)" : "",
                    std::string(heard->body.begin(), heard->body.end())
                        .c_str());
      }
      ++line;
    }

    if (line < kLines && hops_done < itinerary.size()) {
      const std::string next = itinerary[hops_done];
      ++hops_done;
      ctx.migrate_to(next);  // both agents hop — concurrent migrations
      return;
    }
    if (initiator && line >= kLines) (void)conn->close();
  }

  void persist(util::Archive& ar) override {
    ar.field(initiator);
    ar.field(peer);
    ar.field(itinerary);
    ar.field(conn_id);
    ar.field(line);
    ar.field(hops_done);
  }
  std::string type_name() const override { return "ChatterAgent"; }
};
NAPLET_REGISTER_AGENT(ChatterAgent);

}  // namespace

int main() {
  std::printf("naplet++ example: two mobile agents chat while both migrate\n\n");

  nsock::Realm realm;
  for (const char* name : {"paris", "tokyo", "lagos", "quito"}) {
    realm.add_node(name);
  }
  if (!realm.start().ok()) return 1;

  auto romeo = std::make_unique<ChatterAgent>();
  romeo->initiator = true;
  romeo->peer = "juliet";
  romeo->itinerary = {"tokyo", "lagos", "quito"};

  auto juliet = std::make_unique<ChatterAgent>();
  juliet->initiator = false;
  juliet->itinerary = {"quito", "paris", "tokyo"};

  (void)realm.node("tokyo").server().launch(std::move(juliet),
                                            agent::AgentId("juliet"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // listen first
  (void)realm.node("paris").server().launch(std::move(romeo),
                                            agent::AgentId("romeo"));

  agent::wait_agent_gone(realm.locations(), agent::AgentId("romeo"),
                         std::chrono::seconds(60));
  agent::wait_agent_gone(realm.locations(), agent::AgentId("juliet"),
                         std::chrono::seconds(60));
  realm.stop();
  std::printf("\ndone.\n");
  return 0;
}
