// Security walk-through (paper §3.3): agent-oriented access control and
// session-key-protected connection migration.
//
//  1. Agents may not open raw sockets — the access controller denies them
//     by policy; socket resources come only from the controller proxy.
//  2. An agent denied the use-naplet-socket permission cannot connect.
//  3. Every established connection carries a Diffie–Hellman session key;
//     an eavesdropper who learns the connection id (and even the client's
//     verifier) still cannot hijack the connection with a forged RESUME —
//     the redirector rejects the bad HMAC.
//
// Run:  ./examples/secure_handoff
#include <cstdio>

#include "core/naplet_socket.hpp"
#include "core/runtime.hpp"
#include "net/frame.hpp"
#include "net/tcp.hpp"

int main() {
  using namespace naplet;
  using namespace std::chrono_literals;

  std::printf("naplet++ example: access control and secure migration\n\n");

  nsock::Realm realm;
  nsock::NodeConfig config;
  config.controller.security = true;
  config.controller.dh_group = crypto::DhGroup::kModp2048;
  realm.add_node("castle", config);
  realm.add_node("village", config);
  if (!realm.start().ok()) return 1;

  auto& castle = realm.node("castle");
  auto& village = realm.node("village");

  // Register two principals with the directory (driven inline here; the
  // full agent-thread variant is examples/quickstart.cpp).
  agent::AgentId merchant("merchant"), guard("guard"), outlaw("outlaw");
  realm.locations().register_agent(guard, castle.server().node_info());
  realm.locations().register_agent(merchant, village.server().node_info());
  realm.locations().register_agent(outlaw, village.server().node_info());

  // 1. Agents cannot touch raw sockets.
  auto raw = castle.server().access().check(
      agent::Subject{agent::Subject::Kind::kAgent, "merchant"},
      agent::Permission::kOpenSocket);
  std::printf("1. merchant asks for a raw socket: %s\n",
              raw.to_string().c_str());

  // 2. Policy can deny the mediated service per agent, too.
  village.server().access().deny("outlaw",
                                 agent::Permission::kUseNapletSocket);
  if (!castle.controller().listen(guard).ok()) return 1;
  auto denied = village.controller().connect(outlaw, guard);
  std::printf("2. outlaw connects to guard: %s\n",
              denied.ok() ? "ALLOWED (bug!)"
                          : denied.status().to_string().c_str());

  // 3. The merchant connects legitimately; a session key is established.
  nsock::ConnectBreakdown breakdown;
  auto conn = village.controller().connect(merchant, guard, &breakdown);
  if (!conn.ok()) {
    std::printf("merchant connect failed: %s\n",
                conn.status().to_string().c_str());
    return 1;
  }
  auto accepted = castle.controller().accept(guard, 5s);
  if (!accepted.ok()) return 1;
  auto text_span = [](std::string_view t) {
    return util::ByteSpan(reinterpret_cast<const std::uint8_t*>(t.data()),
                          t.size());
  };
  std::printf("3. merchant <-> guard connected; 2048-bit DH key exchange "
              "took %.1f ms of a %.1f ms setup\n",
              breakdown.key_exchange_ms, breakdown.total_ms());

  if (!(*conn)->send(text_span("the caravan leaves at dawn"), 5s).ok()) {
    return 1;
  }
  auto heard = (*accepted)->recv(5s);
  if (heard.ok()) {
    std::printf("   guard hears: \"%s\"\n",
                std::string(heard->body.begin(), heard->body.end()).c_str());
  }

  // Suspend the connection, as if the merchant were about to travel.
  if (!village.controller().suspend(*conn).ok()) return 1;
  std::printf("4. connection suspended for travel (state %s)\n",
              std::string(to_string((*conn)->state())).c_str());

  // An eavesdropper who sniffed the conn id and verifier tries to steal
  // the suspended connection by RESUMEing it to themselves.
  {
    auto attacker_net = std::make_shared<net::TcpNetwork>();
    auto stream = attacker_net->connect(
        castle.server().node_info().redirector, 2s);
    if (!stream.ok()) return 1;
    nsock::HandoffMsg forged;
    forged.type = nsock::HandoffType::kResume;
    forged.conn_id = (*conn)->conn_id();
    forged.verifier = (*conn)->verifier();
    forged.mac = util::Bytes(32, 0x13);  // guessed — the DH key is secret
    const util::Bytes wire = forged.encode();
    (void)net::write_frame(**stream, util::ByteSpan(wire.data(), wire.size()));
    auto reply_frame = net::read_frame(**stream);
    if (reply_frame.ok()) {
      auto reply = nsock::HandoffMsg::decode(
          util::ByteSpan(reply_frame->data(), reply_frame->size()));
      std::printf("5. eavesdropper's forged RESUME: %s (%s)\n",
                  reply.ok() && reply->type == nsock::HandoffType::kError
                      ? "REJECTED"
                      : "accepted (bug!)",
                  reply.ok() ? reply->reason.c_str() : "?");
    }
    std::printf("   castle controller MAC rejections: %llu\n",
                static_cast<unsigned long long>(
                    castle.controller().mac_rejections()));
  }

  // The rightful owner resumes with the real session key.
  if (!village.controller().resume(*conn).ok()) return 1;
  if (!(*conn)->send(text_span("...as planned"), 5s).ok()) return 1;
  auto heard2 = (*accepted)->recv(5s);
  std::printf("6. owner resumes and talks again: \"%s\"\n",
              heard2.ok() ? std::string(heard2->body.begin(),
                                        heard2->body.end())
                                .c_str()
                          : "(lost)");

  (void)village.controller().close(*conn);
  realm.stop();
  std::printf("\ndone.\n");
  return 0;
}
