// Quickstart: two agents on two Naplet nodes talk over a NapletSocket.
//
// Demonstrates the essentials of the API:
//   * standing up a realm of agent servers (the "Naplet" middleware),
//   * writing an Agent with persist()ed state,
//   * opening an agent-addressed connection (no hosts or ports —
//     the location service resolves the peer agent),
//   * synchronous transient messaging with exactly-once semantics.
//
// Run:  ./examples/quickstart
#include <cstdio>

#include "core/naplet_socket.hpp"
#include "core/runtime.hpp"

namespace {

using namespace naplet;
using namespace std::chrono_literals;

/// Replies to each request with a greeting until the peer closes.
class GreeterAgent : public agent::Agent {
 public:
  void run(agent::AgentContext& ctx) override {
    auto listener = nsock::NapletServerSocket::open(ctx);
    if (!listener.ok()) return;
    auto conn = (*listener)->accept(10s);
    if (!conn.ok()) return;

    for (;;) {
      auto request = (*conn)->recv(5s);
      if (!request.ok()) break;  // peer closed (or quiesced)
      const std::string name(request->body.begin(), request->body.end());
      std::printf("[greeter@%s] request from %s: \"%s\"\n",
                  ctx.server_name().c_str(), (*conn)->peer().name().c_str(),
                  name.c_str());
      if (!(*conn)->send("hello, " + name + "!").ok()) break;
    }
  }
  void persist(util::Archive&) override {}
  std::string type_name() const override { return "GreeterAgent"; }
};
NAPLET_REGISTER_AGENT(GreeterAgent);

/// Sends a few greetings and prints the responses.
class VisitorAgent : public agent::Agent {
 public:
  void run(agent::AgentContext& ctx) override {
    auto conn = nsock::NapletSocket::open(ctx, agent::AgentId("greeter"));
    if (!conn.ok()) {
      std::printf("connect failed: %s\n",
                  conn.status().to_string().c_str());
      return;
    }
    for (const char* name : {"ada", "grace", "edsger"}) {
      if (!(*conn)->send(std::string_view(name)).ok()) return;
      auto reply = (*conn)->recv(5s);
      if (!reply.ok()) return;
      std::printf("[visitor@%s] reply: \"%s\"\n", ctx.server_name().c_str(),
                  std::string(reply->body.begin(), reply->body.end()).c_str());
    }
    (void)(*conn)->close();
  }
  void persist(util::Archive&) override {}
  std::string type_name() const override { return "VisitorAgent"; }
};
NAPLET_REGISTER_AGENT(VisitorAgent);

}  // namespace

int main() {
  std::printf("naplet++ quickstart: agent-to-agent sockets over TCP loopback\n\n");

  // A realm: two agent servers sharing a directory and a realm key.
  nsock::Realm realm;
  realm.add_node("alpha");
  realm.add_node("beta");
  if (auto st = realm.start(); !st.ok()) {
    std::fprintf(stderr, "realm start failed: %s\n", st.to_string().c_str());
    return 1;
  }

  // Launch the greeter on beta, the visitor on alpha.
  (void)realm.node("beta").server().launch(std::make_unique<GreeterAgent>(),
                                           agent::AgentId("greeter"));
  (void)realm.node("alpha").server().launch(std::make_unique<VisitorAgent>(),
                                            agent::AgentId("visitor"));

  agent::wait_agent_gone(realm.locations(), agent::AgentId("visitor"),
                         std::chrono::seconds(30));
  agent::wait_agent_gone(realm.locations(), agent::AgentId("greeter"),
                         std::chrono::seconds(30));
  realm.stop();
  std::printf("\ndone.\n");
  return 0;
}
