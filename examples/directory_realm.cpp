// Deployment-shaped realm: agent servers that share a *networked*
// directory service instead of an in-process registry — the paper's
// testbed shape, where a well-known host runs the location service and
// every Naplet node talks to it over the network.
//
//   directory host:   DirectoryServer  (TCP)
//   node "alpha":     AgentServer + controller + RemoteLocationService
//   node "beta":      AgentServer + controller + RemoteLocationService
//
// A courier agent launched on alpha looks up its peer through the remote
// directory, connects, migrates to beta (the transfer destination is also
// resolved remotely), and keeps its connection.
//
// Run:  ./examples/directory_realm
#include <cstdio>

#include "agent/directory.hpp"
#include "crypto/random.hpp"
#include "core/naplet_socket.hpp"
#include "core/runtime.hpp"
#include "net/tcp.hpp"

namespace {

using namespace naplet;
using namespace std::chrono_literals;

class DeskAgent : public agent::Agent {
 public:
  void run(agent::AgentContext& ctx) override {
    auto listener = nsock::NapletServerSocket::open(ctx);
    if (!listener.ok()) return;
    auto conn = (*listener)->accept(15s);
    if (!conn.ok()) return;
    for (;;) {
      auto msg = (*conn)->recv(5s);
      if (!msg.ok()) break;
      std::printf("[desk@%s] received: %s\n", ctx.server_name().c_str(),
                  std::string(msg->body.begin(), msg->body.end()).c_str());
      if (!(*conn)->send(std::string_view("ack")).ok()) break;
    }
  }
  void persist(util::Archive&) override {}
  std::string type_name() const override { return "DeskAgent"; }
};
NAPLET_REGISTER_AGENT(DeskAgent);

class CourierAgent : public agent::Agent {
 public:
  std::uint64_t conn_id = 0;
  std::uint32_t hops = 0;

  void run(agent::AgentContext& ctx) override {
    std::unique_ptr<nsock::NapletSocket> conn;
    if (conn_id == 0) {
      auto opened = nsock::NapletSocket::open(ctx, agent::AgentId("desk"));
      if (!opened.ok()) {
        std::printf("courier: open failed: %s\n",
                    opened.status().to_string().c_str());
        return;
      }
      conn = std::move(*opened);
      conn_id = conn->conn_id();
    } else {
      auto reattached = nsock::NapletSocket::reattach(ctx, conn_id);
      if (!reattached.ok()) return;
      conn = std::move(*reattached);
    }

    const std::string report =
        "delivery " + std::to_string(hops) + " from " + ctx.server_name();
    if (!conn->send(report).ok()) return;
    if (!conn->recv(5s).ok()) return;

    if (hops == 0) {
      ++hops;
      ctx.migrate_to("beta");  // destination resolved via the directory
    } else {
      (void)conn->close();
    }
  }
  void persist(util::Archive& ar) override {
    ar.field(conn_id);
    ar.field(hops);
  }
  std::string type_name() const override { return "CourierAgent"; }
};
NAPLET_REGISTER_AGENT(CourierAgent);

}  // namespace

int main() {
  std::printf("naplet++ example: realm over a networked directory service\n\n");

  auto network = std::make_shared<naplet::net::TcpNetwork>();

  // The directory host.
  agent::LocationService authority;
  agent::DirectoryServer directory(network, authority);
  if (!directory.start().ok()) return 1;
  std::printf("directory listening at %s\n",
              directory.endpoint().to_string().c_str());

  // Each node gets its own remote client onto the shared directory.
  agent::RemoteLocationService locations_alpha(network, directory.endpoint());
  agent::RemoteLocationService locations_beta(network, directory.endpoint());

  const util::Bytes realm_key = crypto::random_bytes(32);
  auto make_node = [&](const std::string& name,
                       agent::LocationService& locations) {
    nsock::NodeConfig config;
    config.server.name = name;
    config.server.realm_key = realm_key;
    config.controller.dh_group = crypto::DhGroup::kModp768;
    return std::make_unique<nsock::NapletRuntime>(network, locations,
                                                  std::move(config));
  };
  auto alpha = make_node("alpha", locations_alpha);
  auto beta = make_node("beta", locations_beta);
  if (!alpha->start().ok() || !beta->start().ok()) return 1;

  (void)beta->server().launch(std::make_unique<DeskAgent>(),
                              agent::AgentId("desk"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  (void)alpha->server().launch(std::make_unique<CourierAgent>(),
                               agent::AgentId("courier"));

  agent::wait_agent_gone(locations_alpha, agent::AgentId("courier"),
                         std::chrono::seconds(30));
  agent::wait_agent_gone(locations_alpha, agent::AgentId("desk"),
                         std::chrono::seconds(30));

  std::printf("\ndirectory served %llu requests\n",
              static_cast<unsigned long long>(directory.requests_served()));
  alpha->stop();
  beta->stop();
  directory.stop();
  std::printf("done.\n");
  return 0;
}
