
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/parallel_sync.cpp" "examples/CMakeFiles/parallel_sync.dir/parallel_sync.cpp.o" "gcc" "examples/CMakeFiles/parallel_sync.dir/parallel_sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/naplet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/naplet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/naplet_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/naplet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/naplet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/naplet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
