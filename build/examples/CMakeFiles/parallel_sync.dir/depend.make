# Empty dependencies file for parallel_sync.
# This may be replaced when dependencies are built.
