file(REMOVE_RECURSE
  "CMakeFiles/parallel_sync.dir/parallel_sync.cpp.o"
  "CMakeFiles/parallel_sync.dir/parallel_sync.cpp.o.d"
  "parallel_sync"
  "parallel_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
