# Empty compiler generated dependencies file for directory_realm.
# This may be replaced when dependencies are built.
