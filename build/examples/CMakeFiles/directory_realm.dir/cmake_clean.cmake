file(REMOVE_RECURSE
  "CMakeFiles/directory_realm.dir/directory_realm.cpp.o"
  "CMakeFiles/directory_realm.dir/directory_realm.cpp.o.d"
  "directory_realm"
  "directory_realm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_realm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
