file(REMOVE_RECURSE
  "CMakeFiles/mobile_chat.dir/mobile_chat.cpp.o"
  "CMakeFiles/mobile_chat.dir/mobile_chat.cpp.o.d"
  "mobile_chat"
  "mobile_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
