# Empty compiler generated dependencies file for mobile_chat.
# This may be replaced when dependencies are built.
