file(REMOVE_RECURSE
  "CMakeFiles/secure_handoff.dir/secure_handoff.cpp.o"
  "CMakeFiles/secure_handoff.dir/secure_handoff.cpp.o.d"
  "secure_handoff"
  "secure_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
