# Empty dependencies file for secure_handoff.
# This may be replaced when dependencies are built.
