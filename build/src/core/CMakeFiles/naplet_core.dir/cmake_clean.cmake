file(REMOVE_RECURSE
  "CMakeFiles/naplet_core.dir/controller.cpp.o"
  "CMakeFiles/naplet_core.dir/controller.cpp.o.d"
  "CMakeFiles/naplet_core.dir/controller_ops.cpp.o"
  "CMakeFiles/naplet_core.dir/controller_ops.cpp.o.d"
  "CMakeFiles/naplet_core.dir/controller_recovery.cpp.o"
  "CMakeFiles/naplet_core.dir/controller_recovery.cpp.o.d"
  "CMakeFiles/naplet_core.dir/naplet_socket.cpp.o"
  "CMakeFiles/naplet_core.dir/naplet_socket.cpp.o.d"
  "CMakeFiles/naplet_core.dir/redirector.cpp.o"
  "CMakeFiles/naplet_core.dir/redirector.cpp.o.d"
  "CMakeFiles/naplet_core.dir/runtime.cpp.o"
  "CMakeFiles/naplet_core.dir/runtime.cpp.o.d"
  "CMakeFiles/naplet_core.dir/session.cpp.o"
  "CMakeFiles/naplet_core.dir/session.cpp.o.d"
  "CMakeFiles/naplet_core.dir/state.cpp.o"
  "CMakeFiles/naplet_core.dir/state.cpp.o.d"
  "CMakeFiles/naplet_core.dir/stats.cpp.o"
  "CMakeFiles/naplet_core.dir/stats.cpp.o.d"
  "CMakeFiles/naplet_core.dir/streams.cpp.o"
  "CMakeFiles/naplet_core.dir/streams.cpp.o.d"
  "CMakeFiles/naplet_core.dir/wire.cpp.o"
  "CMakeFiles/naplet_core.dir/wire.cpp.o.d"
  "libnaplet_core.a"
  "libnaplet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naplet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
