# Empty dependencies file for naplet_core.
# This may be replaced when dependencies are built.
