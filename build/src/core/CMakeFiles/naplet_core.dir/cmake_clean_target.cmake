file(REMOVE_RECURSE
  "libnaplet_core.a"
)
