
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/naplet_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/naplet_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/controller_ops.cpp" "src/core/CMakeFiles/naplet_core.dir/controller_ops.cpp.o" "gcc" "src/core/CMakeFiles/naplet_core.dir/controller_ops.cpp.o.d"
  "/root/repo/src/core/controller_recovery.cpp" "src/core/CMakeFiles/naplet_core.dir/controller_recovery.cpp.o" "gcc" "src/core/CMakeFiles/naplet_core.dir/controller_recovery.cpp.o.d"
  "/root/repo/src/core/naplet_socket.cpp" "src/core/CMakeFiles/naplet_core.dir/naplet_socket.cpp.o" "gcc" "src/core/CMakeFiles/naplet_core.dir/naplet_socket.cpp.o.d"
  "/root/repo/src/core/redirector.cpp" "src/core/CMakeFiles/naplet_core.dir/redirector.cpp.o" "gcc" "src/core/CMakeFiles/naplet_core.dir/redirector.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/naplet_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/naplet_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/naplet_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/naplet_core.dir/session.cpp.o.d"
  "/root/repo/src/core/state.cpp" "src/core/CMakeFiles/naplet_core.dir/state.cpp.o" "gcc" "src/core/CMakeFiles/naplet_core.dir/state.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/naplet_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/naplet_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/streams.cpp" "src/core/CMakeFiles/naplet_core.dir/streams.cpp.o" "gcc" "src/core/CMakeFiles/naplet_core.dir/streams.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/core/CMakeFiles/naplet_core.dir/wire.cpp.o" "gcc" "src/core/CMakeFiles/naplet_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/agent/CMakeFiles/naplet_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/naplet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/naplet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/naplet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
