file(REMOVE_RECURSE
  "CMakeFiles/naplet_net.dir/frame.cpp.o"
  "CMakeFiles/naplet_net.dir/frame.cpp.o.d"
  "CMakeFiles/naplet_net.dir/rudp.cpp.o"
  "CMakeFiles/naplet_net.dir/rudp.cpp.o.d"
  "CMakeFiles/naplet_net.dir/sim.cpp.o"
  "CMakeFiles/naplet_net.dir/sim.cpp.o.d"
  "CMakeFiles/naplet_net.dir/tcp.cpp.o"
  "CMakeFiles/naplet_net.dir/tcp.cpp.o.d"
  "libnaplet_net.a"
  "libnaplet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naplet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
