# Empty dependencies file for naplet_net.
# This may be replaced when dependencies are built.
