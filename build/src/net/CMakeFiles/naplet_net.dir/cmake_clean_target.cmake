file(REMOVE_RECURSE
  "libnaplet_net.a"
)
