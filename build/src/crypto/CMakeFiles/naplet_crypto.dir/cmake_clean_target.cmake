file(REMOVE_RECURSE
  "libnaplet_crypto.a"
)
