
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bignum.cpp" "src/crypto/CMakeFiles/naplet_crypto.dir/bignum.cpp.o" "gcc" "src/crypto/CMakeFiles/naplet_crypto.dir/bignum.cpp.o.d"
  "/root/repo/src/crypto/dh.cpp" "src/crypto/CMakeFiles/naplet_crypto.dir/dh.cpp.o" "gcc" "src/crypto/CMakeFiles/naplet_crypto.dir/dh.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/naplet_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/naplet_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/random.cpp" "src/crypto/CMakeFiles/naplet_crypto.dir/random.cpp.o" "gcc" "src/crypto/CMakeFiles/naplet_crypto.dir/random.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/naplet_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/naplet_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/naplet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
