# Empty compiler generated dependencies file for naplet_crypto.
# This may be replaced when dependencies are built.
