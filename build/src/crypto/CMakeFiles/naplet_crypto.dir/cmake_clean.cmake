file(REMOVE_RECURSE
  "CMakeFiles/naplet_crypto.dir/bignum.cpp.o"
  "CMakeFiles/naplet_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/naplet_crypto.dir/dh.cpp.o"
  "CMakeFiles/naplet_crypto.dir/dh.cpp.o.d"
  "CMakeFiles/naplet_crypto.dir/hmac.cpp.o"
  "CMakeFiles/naplet_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/naplet_crypto.dir/random.cpp.o"
  "CMakeFiles/naplet_crypto.dir/random.cpp.o.d"
  "CMakeFiles/naplet_crypto.dir/sha256.cpp.o"
  "CMakeFiles/naplet_crypto.dir/sha256.cpp.o.d"
  "libnaplet_crypto.a"
  "libnaplet_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naplet_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
