file(REMOVE_RECURSE
  "libnaplet_util.a"
)
