# Empty dependencies file for naplet_util.
# This may be replaced when dependencies are built.
