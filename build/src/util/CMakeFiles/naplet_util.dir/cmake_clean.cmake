file(REMOVE_RECURSE
  "CMakeFiles/naplet_util.dir/bytes.cpp.o"
  "CMakeFiles/naplet_util.dir/bytes.cpp.o.d"
  "CMakeFiles/naplet_util.dir/clock.cpp.o"
  "CMakeFiles/naplet_util.dir/clock.cpp.o.d"
  "CMakeFiles/naplet_util.dir/log.cpp.o"
  "CMakeFiles/naplet_util.dir/log.cpp.o.d"
  "CMakeFiles/naplet_util.dir/serial.cpp.o"
  "CMakeFiles/naplet_util.dir/serial.cpp.o.d"
  "CMakeFiles/naplet_util.dir/status.cpp.o"
  "CMakeFiles/naplet_util.dir/status.cpp.o.d"
  "libnaplet_util.a"
  "libnaplet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naplet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
