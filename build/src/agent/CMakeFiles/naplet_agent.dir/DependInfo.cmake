
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/access_control.cpp" "src/agent/CMakeFiles/naplet_agent.dir/access_control.cpp.o" "gcc" "src/agent/CMakeFiles/naplet_agent.dir/access_control.cpp.o.d"
  "/root/repo/src/agent/agent.cpp" "src/agent/CMakeFiles/naplet_agent.dir/agent.cpp.o" "gcc" "src/agent/CMakeFiles/naplet_agent.dir/agent.cpp.o.d"
  "/root/repo/src/agent/agent_id.cpp" "src/agent/CMakeFiles/naplet_agent.dir/agent_id.cpp.o" "gcc" "src/agent/CMakeFiles/naplet_agent.dir/agent_id.cpp.o.d"
  "/root/repo/src/agent/agent_server.cpp" "src/agent/CMakeFiles/naplet_agent.dir/agent_server.cpp.o" "gcc" "src/agent/CMakeFiles/naplet_agent.dir/agent_server.cpp.o.d"
  "/root/repo/src/agent/bus.cpp" "src/agent/CMakeFiles/naplet_agent.dir/bus.cpp.o" "gcc" "src/agent/CMakeFiles/naplet_agent.dir/bus.cpp.o.d"
  "/root/repo/src/agent/directory.cpp" "src/agent/CMakeFiles/naplet_agent.dir/directory.cpp.o" "gcc" "src/agent/CMakeFiles/naplet_agent.dir/directory.cpp.o.d"
  "/root/repo/src/agent/location.cpp" "src/agent/CMakeFiles/naplet_agent.dir/location.cpp.o" "gcc" "src/agent/CMakeFiles/naplet_agent.dir/location.cpp.o.d"
  "/root/repo/src/agent/postoffice.cpp" "src/agent/CMakeFiles/naplet_agent.dir/postoffice.cpp.o" "gcc" "src/agent/CMakeFiles/naplet_agent.dir/postoffice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/naplet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/naplet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/naplet_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
