file(REMOVE_RECURSE
  "CMakeFiles/naplet_agent.dir/access_control.cpp.o"
  "CMakeFiles/naplet_agent.dir/access_control.cpp.o.d"
  "CMakeFiles/naplet_agent.dir/agent.cpp.o"
  "CMakeFiles/naplet_agent.dir/agent.cpp.o.d"
  "CMakeFiles/naplet_agent.dir/agent_id.cpp.o"
  "CMakeFiles/naplet_agent.dir/agent_id.cpp.o.d"
  "CMakeFiles/naplet_agent.dir/agent_server.cpp.o"
  "CMakeFiles/naplet_agent.dir/agent_server.cpp.o.d"
  "CMakeFiles/naplet_agent.dir/bus.cpp.o"
  "CMakeFiles/naplet_agent.dir/bus.cpp.o.d"
  "CMakeFiles/naplet_agent.dir/directory.cpp.o"
  "CMakeFiles/naplet_agent.dir/directory.cpp.o.d"
  "CMakeFiles/naplet_agent.dir/location.cpp.o"
  "CMakeFiles/naplet_agent.dir/location.cpp.o.d"
  "CMakeFiles/naplet_agent.dir/postoffice.cpp.o"
  "CMakeFiles/naplet_agent.dir/postoffice.cpp.o.d"
  "libnaplet_agent.a"
  "libnaplet_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naplet_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
