# Empty compiler generated dependencies file for naplet_agent.
# This may be replaced when dependencies are built.
