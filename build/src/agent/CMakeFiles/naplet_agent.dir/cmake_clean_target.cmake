file(REMOVE_RECURSE
  "libnaplet_agent.a"
)
