file(REMOVE_RECURSE
  "CMakeFiles/naplet_sim.dir/des.cpp.o"
  "CMakeFiles/naplet_sim.dir/des.cpp.o.d"
  "CMakeFiles/naplet_sim.dir/mobility.cpp.o"
  "CMakeFiles/naplet_sim.dir/mobility.cpp.o.d"
  "CMakeFiles/naplet_sim.dir/overhead.cpp.o"
  "CMakeFiles/naplet_sim.dir/overhead.cpp.o.d"
  "libnaplet_sim.a"
  "libnaplet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naplet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
