file(REMOVE_RECURSE
  "libnaplet_sim.a"
)
