# Empty dependencies file for naplet_sim.
# This may be replaced when dependencies are built.
