file(REMOVE_RECURSE
  "CMakeFiles/ops_suspend_resume.dir/ops_suspend_resume.cpp.o"
  "CMakeFiles/ops_suspend_resume.dir/ops_suspend_resume.cpp.o.d"
  "ops_suspend_resume"
  "ops_suspend_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_suspend_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
