# Empty dependencies file for ops_suspend_resume.
# This may be replaced when dependencies are built.
