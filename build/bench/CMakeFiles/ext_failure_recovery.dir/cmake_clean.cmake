file(REMOVE_RECURSE
  "CMakeFiles/ext_failure_recovery.dir/ext_failure_recovery.cpp.o"
  "CMakeFiles/ext_failure_recovery.dir/ext_failure_recovery.cpp.o.d"
  "ext_failure_recovery"
  "ext_failure_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_failure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
