# Empty dependencies file for fig12_sim_migration_cost.
# This may be replaced when dependencies are built.
