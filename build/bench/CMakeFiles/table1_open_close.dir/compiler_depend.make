# Empty compiler generated dependencies file for table1_open_close.
# This may be replaced when dependencies are built.
