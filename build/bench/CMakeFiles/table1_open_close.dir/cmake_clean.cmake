file(REMOVE_RECURSE
  "CMakeFiles/table1_open_close.dir/table1_open_close.cpp.o"
  "CMakeFiles/table1_open_close.dir/table1_open_close.cpp.o.d"
  "table1_open_close"
  "table1_open_close.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_open_close.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
