# Empty dependencies file for fig08_open_breakdown.
# This may be replaced when dependencies are built.
