# Empty dependencies file for fig07_message_trace.
# This may be replaced when dependencies are built.
