file(REMOVE_RECURSE
  "CMakeFiles/fig07_message_trace.dir/fig07_message_trace.cpp.o"
  "CMakeFiles/fig07_message_trace.dir/fig07_message_trace.cpp.o.d"
  "fig07_message_trace"
  "fig07_message_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_message_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
