# Empty compiler generated dependencies file for fig10b_hops.
# This may be replaced when dependencies are built.
