file(REMOVE_RECURSE
  "CMakeFiles/fig10b_hops.dir/fig10b_hops.cpp.o"
  "CMakeFiles/fig10b_hops.dir/fig10b_hops.cpp.o.d"
  "fig10b_hops"
  "fig10b_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
