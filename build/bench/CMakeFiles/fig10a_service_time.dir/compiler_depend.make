# Empty compiler generated dependencies file for fig10a_service_time.
# This may be replaced when dependencies are built.
