file(REMOVE_RECURSE
  "CMakeFiles/fig10a_service_time.dir/fig10a_service_time.cpp.o"
  "CMakeFiles/fig10a_service_time.dir/fig10a_service_time.cpp.o.d"
  "fig10a_service_time"
  "fig10a_service_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_service_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
