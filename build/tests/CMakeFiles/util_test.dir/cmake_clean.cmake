file(REMOVE_RECURSE
  "CMakeFiles/util_test.dir/util/bytes_test.cpp.o"
  "CMakeFiles/util_test.dir/util/bytes_test.cpp.o.d"
  "CMakeFiles/util_test.dir/util/clock_test.cpp.o"
  "CMakeFiles/util_test.dir/util/clock_test.cpp.o.d"
  "CMakeFiles/util_test.dir/util/rng_test.cpp.o"
  "CMakeFiles/util_test.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/util_test.dir/util/serial_test.cpp.o"
  "CMakeFiles/util_test.dir/util/serial_test.cpp.o.d"
  "CMakeFiles/util_test.dir/util/status_test.cpp.o"
  "CMakeFiles/util_test.dir/util/status_test.cpp.o.d"
  "CMakeFiles/util_test.dir/util/sync_test.cpp.o"
  "CMakeFiles/util_test.dir/util/sync_test.cpp.o.d"
  "util_test"
  "util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
