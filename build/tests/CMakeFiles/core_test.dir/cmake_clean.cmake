file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/agent_api_test.cpp.o"
  "CMakeFiles/core_test.dir/core/agent_api_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/concurrent_migration_test.cpp.o"
  "CMakeFiles/core_test.dir/core/concurrent_migration_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/failure_recovery_test.cpp.o"
  "CMakeFiles/core_test.dir/core/failure_recovery_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/migration_test.cpp.o"
  "CMakeFiles/core_test.dir/core/migration_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/pump_migration_test.cpp.o"
  "CMakeFiles/core_test.dir/core/pump_migration_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/reliability_test.cpp.o"
  "CMakeFiles/core_test.dir/core/reliability_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/security_test.cpp.o"
  "CMakeFiles/core_test.dir/core/security_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/session_test.cpp.o"
  "CMakeFiles/core_test.dir/core/session_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/socket_test.cpp.o"
  "CMakeFiles/core_test.dir/core/socket_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/state_test.cpp.o"
  "CMakeFiles/core_test.dir/core/state_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/streams_test.cpp.o"
  "CMakeFiles/core_test.dir/core/streams_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/stress_test.cpp.o"
  "CMakeFiles/core_test.dir/core/stress_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/wire_test.cpp.o"
  "CMakeFiles/core_test.dir/core/wire_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
