
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/agent_api_test.cpp" "tests/CMakeFiles/core_test.dir/core/agent_api_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/agent_api_test.cpp.o.d"
  "/root/repo/tests/core/concurrent_migration_test.cpp" "tests/CMakeFiles/core_test.dir/core/concurrent_migration_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/concurrent_migration_test.cpp.o.d"
  "/root/repo/tests/core/failure_recovery_test.cpp" "tests/CMakeFiles/core_test.dir/core/failure_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/failure_recovery_test.cpp.o.d"
  "/root/repo/tests/core/migration_test.cpp" "tests/CMakeFiles/core_test.dir/core/migration_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/migration_test.cpp.o.d"
  "/root/repo/tests/core/pump_migration_test.cpp" "tests/CMakeFiles/core_test.dir/core/pump_migration_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pump_migration_test.cpp.o.d"
  "/root/repo/tests/core/reliability_test.cpp" "tests/CMakeFiles/core_test.dir/core/reliability_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/reliability_test.cpp.o.d"
  "/root/repo/tests/core/security_test.cpp" "tests/CMakeFiles/core_test.dir/core/security_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/security_test.cpp.o.d"
  "/root/repo/tests/core/session_test.cpp" "tests/CMakeFiles/core_test.dir/core/session_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/session_test.cpp.o.d"
  "/root/repo/tests/core/socket_test.cpp" "tests/CMakeFiles/core_test.dir/core/socket_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/socket_test.cpp.o.d"
  "/root/repo/tests/core/state_test.cpp" "tests/CMakeFiles/core_test.dir/core/state_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/state_test.cpp.o.d"
  "/root/repo/tests/core/streams_test.cpp" "tests/CMakeFiles/core_test.dir/core/streams_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/streams_test.cpp.o.d"
  "/root/repo/tests/core/stress_test.cpp" "tests/CMakeFiles/core_test.dir/core/stress_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/stress_test.cpp.o.d"
  "/root/repo/tests/core/wire_test.cpp" "tests/CMakeFiles/core_test.dir/core/wire_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/naplet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/naplet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/naplet_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/naplet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/naplet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/naplet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
