file(REMOVE_RECURSE
  "CMakeFiles/agent_test.dir/agent/access_control_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/access_control_test.cpp.o.d"
  "CMakeFiles/agent_test.dir/agent/agent_id_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/agent_id_test.cpp.o.d"
  "CMakeFiles/agent_test.dir/agent/agent_server_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/agent_server_test.cpp.o.d"
  "CMakeFiles/agent_test.dir/agent/bus_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/bus_test.cpp.o.d"
  "CMakeFiles/agent_test.dir/agent/directory_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/directory_test.cpp.o.d"
  "CMakeFiles/agent_test.dir/agent/itinerary_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/itinerary_test.cpp.o.d"
  "CMakeFiles/agent_test.dir/agent/location_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/location_test.cpp.o.d"
  "CMakeFiles/agent_test.dir/agent/postoffice_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/postoffice_test.cpp.o.d"
  "agent_test"
  "agent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
