# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;naplet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(crypto_test "/root/repo/build/tests/crypto_test")
set_tests_properties(crypto_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;naplet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;27;naplet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(agent_test "/root/repo/build/tests/agent_test")
set_tests_properties(agent_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;34;naplet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;45;naplet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;61;naplet_test;/root/repo/tests/CMakeLists.txt;0;")
