#!/usr/bin/env bash
# The full local CI gate:
#
#   1. Debug build + full ctest       (lock-rank validator active)
#      + fixed-seed chaos_runner smoke (25 replayable fault schedules)
#      + pinned-seed crash-restart smoke (recovery on and off)
#   2. Sanitize build + full ctest    (ASan + UBSan)
#   3. Tsan build + `ctest -L tsan`   (pinned light concurrency sweep)
#      + `ctest -L faults`            (fault-injection suite under TSan)
#      + `ctest -L recovery`          (crash-restart recovery under TSan)
#      + `ctest -L obs`              (observability suite under TSan)
#   4. run-clang-tidy over src/       (bugprone / concurrency / performance)
#   5. clang-format --dry-run         (check-only; no reformatting)
#
# Steps 4–5 (and the Clang thread-safety analysis, which rides along with
# any Clang compile via -Wthread-safety) need LLVM tooling; when a tool is
# missing the step is skipped with a notice instead of failing, so the
# script is useful on GCC-only boxes too.
#
# Usage: ci/check.sh [--skip-tsan] [--skip-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
SKIP_TSAN=0
SKIP_SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

note()  { printf '\n== %s ==\n' "$*"; }
skip()  { printf 'NOTICE: %s — skipping\n' "$*"; }

note "Debug build (lock-rank validator on)"
cmake --preset debug >/dev/null
cmake --build --preset debug -j "$JOBS"
ctest --test-dir build-debug --output-on-failure -j "$JOBS"

note "chaos smoke (fixed-seed, replayable)"
NAPLET_FAULTS_LIGHT=1 ./build-debug/tools/chaos_runner --seed 42 --runs 25 --light

note "crash-restart smoke (pinned seed, recovery on/off)"
for scenario in 3 4 5; do
  NAPLET_FAULTS_LIGHT=1 ./build-debug/tools/chaos_runner \
    --seed 5 --scenario "$scenario" --light
  NAPLET_FAULTS_LIGHT=1 ./build-debug/tools/chaos_runner \
    --seed 5 --scenario "$scenario" --light --no-recovery
done

if [ "$SKIP_SANITIZE" -eq 0 ]; then
  note "Sanitize build (ASan + UBSan)"
  cmake --preset sanitize >/dev/null
  cmake --build --preset sanitize -j "$JOBS"
  ctest --test-dir build-sanitize --output-on-failure -j "$JOBS"
else
  skip "--skip-sanitize"
fi

if [ "$SKIP_TSAN" -eq 0 ]; then
  note "Tsan build (ctest -L tsan)"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$JOBS"
  ctest --test-dir build-tsan -L tsan --output-on-failure -j "$JOBS"
  ctest --test-dir build-tsan -L faults --output-on-failure -j "$JOBS"
  ctest --test-dir build-tsan -L recovery --output-on-failure -j "$JOBS"
  ctest --test-dir build-tsan -L obs --output-on-failure -j "$JOBS"
else
  skip "--skip-tsan"
fi

note "clang-tidy (bugprone, concurrency, performance)"
if command -v run-clang-tidy >/dev/null 2>&1; then
  # Reuse the Debug compile database; run-clang-tidy honours .clang-tidy.
  run-clang-tidy -p build-debug -quiet "$(pwd)/src/.*" || exit 1
elif command -v clang-tidy >/dev/null 2>&1; then
  find src -name '*.cpp' -print0 |
    xargs -0 -n 1 -P "$JOBS" clang-tidy -p build-debug --quiet || exit 1
else
  skip "clang-tidy not installed"
fi

note "clang-format (check only)"
if command -v clang-format >/dev/null 2>&1; then
  find src tests bench examples -name '*.hpp' -o -name '*.cpp' |
    xargs clang-format --dry-run --Werror
else
  skip "clang-format not installed"
fi

note "all checks passed"
