#!/usr/bin/env bash
# The full local CI gate:
#
#   1. Debug build + full ctest       (lock-rank validator active)
#      + explicit `ctest -L net`       (rudp sliding-window/SACK/FEC suite)
#      + explicit `ctest -L swarm`     (batch scheduler, drain sweeps,
#                                       caching location tier)
#      + fixed-seed chaos_runner smoke (25 replayable fault schedules)
#      + pinned-seed crash-restart smoke (recovery on and off)
#      + pinned-seed swarm smoke       (drain under partition, cascading
#                                       rebalance)
#      + explicit `ctest -L group`     (checkpoint-barrier unit tests, the
#                                       whole-agent sweep, pinned group
#                                       chaos scenarios 8/9)
#      + loss-sweep bench smoke        (fast-mode JSON, parsed + shape-checked)
#      + fleet-rebalance bench smoke   (fast-mode JSON: batching and caching
#                                       ratios shape-checked)
#      + group-suspend bench smoke     (fast-mode JSON: makespan + per-phase
#                                       percentiles for 1/8/64-member agents)
#      + explicit `ctest -L reactor`   (timer wheel, reactor dispatch, the
#                                       sharded session table, wakeup
#                                       regressions)
#      + fleet-churn bench smoke       (fast-mode JSON: reactor controller
#                                       under connect/migrate/close churn)
#   2. Sanitize build + full ctest    (ASan + UBSan)
#      + explicit `ctest -L net`
#   3. Tsan build + `ctest -L tsan`   (pinned light concurrency sweep)
#      + `ctest -L faults`            (fault-injection suite under TSan)
#      + `ctest -L recovery`          (crash-restart recovery under TSan)
#      + `ctest -L obs`              (observability suite under TSan)
#      + `ctest -L net`              (the rudp transport under TSan)
#      + `ctest -L swarm`            (swarm pipeline + smoke under TSan)
#      + `ctest -L group`            (group barrier + sweep under TSan)
#      + `ctest -L reactor`          (reactor core + sharded table under TSan)
#   4. naplet-analyze gate            (lock-order graph, annotation
#      coverage, invariant registries; registry_check is dependency-free
#      and always runs, the optional libTooling cross-check only when the
#      Clang dev libraries were found at configure time)
#   5. run-clang-tidy over src/, tools/, bench/
#                                     (bugprone / concurrency / performance)
#   6. clang-format --dry-run         (check-only; no reformatting)
#
# Steps 5–6 (and the Clang thread-safety analysis, which rides along with
# any Clang compile via -Wthread-safety) need LLVM tooling; when a tool is
# missing the step is skipped with a notice instead of failing, so the
# script is useful on GCC-only boxes too. Step 4 never skips: the analyzer
# is first-party code built by step 1.
#
# Usage: ci/check.sh [--skip-tsan] [--skip-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
SKIP_TSAN=0
SKIP_SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

note()  { printf '\n== %s ==\n' "$*"; }
skip()  { printf 'NOTICE: %s — skipping\n' "$*"; }

note "Debug build (lock-rank validator on)"
cmake --preset debug >/dev/null
cmake --build --preset debug -j "$JOBS"
ctest --test-dir build-debug --output-on-failure -j "$JOBS"

note "rudp transport suite (ctest -L net, Debug)"
ctest --test-dir build-debug -L net --output-on-failure -j "$JOBS"

note "swarm migration suite (ctest -L swarm, Debug)"
ctest --test-dir build-debug -L swarm --output-on-failure -j "$JOBS"

note "chaos smoke (fixed-seed, replayable)"
NAPLET_FAULTS_LIGHT=1 ./build-debug/tools/chaos_runner --seed 42 --runs 25 --light

note "crash-restart smoke (pinned seed, recovery on/off)"
for scenario in 3 4 5; do
  NAPLET_FAULTS_LIGHT=1 ./build-debug/tools/chaos_runner \
    --seed 5 --scenario "$scenario" --light
  NAPLET_FAULTS_LIGHT=1 ./build-debug/tools/chaos_runner \
    --seed 5 --scenario "$scenario" --light --no-recovery
done

note "swarm smoke (pinned seed: drain under partition, cascading rebalance)"
for scenario in 6 7; do
  NAPLET_FAULTS_LIGHT=1 ./build-debug/tools/chaos_runner \
    --seed 5 --scenario "$scenario" --light
done

note "group-suspend suite (ctest -L group, Debug)"
ctest --test-dir build-debug -L group --output-on-failure -j "$JOBS"

note "reactor suite (ctest -L reactor, Debug)"
ctest --test-dir build-debug -L reactor --output-on-failure -j "$JOBS"

note "loss-sweep bench smoke (fast mode, JSON parsed)"
if command -v python3 >/dev/null 2>&1; then
  (cd build-debug/bench && NAPLET_BENCH_FAST=1 ./ext_failure_recovery --json \
    >/dev/null)
  python3 - build-debug/bench/BENCH_ext_failure_recovery.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
sweep = data["loss_sweep"]
assert sweep, "loss_sweep is empty"
for point in sweep:
    for mode in ("stop_and_wait", "pipelined"):
        for key in ("suspend_p95_us", "resume_p95_us"):
            assert point[mode][key] > 0, f"{mode}.{key} missing at {point['loss_pct']}%"
lossy = [p for p in sweep if p["loss_pct"] >= 10]
assert lossy, "no >=10% loss point in sweep"
for p in lossy:
    base = p["stop_and_wait"]["suspend_p95_us"] + p["stop_and_wait"]["resume_p95_us"]
    pipe = p["pipelined"]["suspend_p95_us"] + p["pipelined"]["resume_p95_us"]
    assert pipe <= base, (
        f"pipelined p95 worse than stop-and-wait at {p['loss_pct']}% "
        f"({pipe:.0f} vs {base:.0f} us)")
print("loss-sweep JSON ok:", ", ".join(
    f"{p['loss_pct']:.0f}%" for p in sweep))
EOF
else
  skip "python3 not installed (loss-sweep JSON parse)"
fi

note "fleet-rebalance bench smoke (fast mode, batching/caching ratios)"
# The binary shape-checks itself (all agents land, >=5x fewer redirector
# exchanges, >=10x fewer directory lookups, swarm makespan wins) and exits
# nonzero on any miss; the JSON parse confirms the report is well-formed.
(cd build-debug/bench && NAPLET_BENCH_FAST=1 ./fleet_rebalance --json)
if command -v python3 >/dev/null 2>&1; then
  python3 - build-debug/bench/BENCH_fleet_rebalance.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
for mode in ("solo", "swarm"):
    assert data[mode]["drain"]["makespan_ms"] > 0, f"{mode} drain missing"
    assert data[mode]["rebalance"]["migrated"] > 0, f"{mode} rebalance missing"
ratio = data["solo"]["rebalance"]["handoff_exchanges"] / \
    max(1, data["swarm"]["rebalance"]["handoff_exchanges"])
print(f"fleet-rebalance JSON ok: exchange ratio {ratio:.1f}x")
EOF
else
  skip "python3 not installed (fleet-rebalance JSON parse)"
fi

note "group-suspend bench smoke (fast mode, makespan + phase percentiles)"
# The binary shape-checks itself (no rollbacks, 64-member sweep beats the
# serial bound); the JSON parse confirms every agent size carries a
# makespan distribution and per-phase p50/p95/p99.
(cd build-debug/bench && NAPLET_BENCH_FAST=1 ./ops_group_suspend --json)
if command -v python3 >/dev/null 2>&1; then
  python3 - build-debug/bench/BENCH_ops_group_suspend.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
agents = data["agents"]
assert [a["connections"] for a in agents] == [1, 8, 64], "agent sizes wrong"
for a in agents:
    assert a["rollbacks"] == 0, f"{a['connections']}-conn sweep rolled back"
    for span in ("prepare_makespan", "resume_makespan"):
        for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
            assert a[span][key] > 0, f"{a['connections']}-conn {span}.{key} missing"
    for phase in ("group_prepare", "group_commit", "group_suspend"):
        assert a[phase]["count"] > 0, f"{a['connections']}-conn {phase} never recorded"
        assert a[phase]["p99_us"] >= a[phase]["p50_us"] > 0, \
            f"{a['connections']}-conn {phase} percentiles malformed"
print("group-suspend JSON ok:", ", ".join(
    f"{a['connections']}c prepare p95 {a['prepare_makespan']['p95_ms']:.2f}ms"
    for a in agents))
EOF
else
  skip "python3 not installed (group-suspend JSON parse)"
fi

note "fleet-churn bench smoke (fast mode, reactor controller at scale)"
# The binary shape-checks itself (ramp reaches the target concurrent
# session count, every churn op lands, suspend histogram populated, shard
# spread sane) and exits nonzero on any miss; the JSON parse confirms the
# reported keys the EXPERIMENTS.md recipe reads.
(cd build-debug/bench && NAPLET_BENCH_FAST=1 ./fleet_churn --json)
if command -v python3 >/dev/null 2>&1; then
  python3 - build-debug/bench/BENCH_fleet_churn.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
assert data["mode"] == "reactor", "smoke must exercise reactor mode"
assert data["concurrent_sessions"] >= data["target_sessions"], "ramp fell short"
assert data["ramp_sessions_per_sec"] > 0, "ramp rate missing"
assert data["churn_ops_per_sec"] > 0, "churn rate missing"
assert data["suspend"]["p99_us"] >= data["suspend"]["p50_us"] > 0, \
    "suspend percentiles malformed"
assert data["memory_per_session_bytes"] > 0, "memory per session missing"
assert data["shards"]["count"] > 1, "session table not sharded"
print(f"fleet-churn JSON ok: {data['concurrent_sessions']} sessions, "
      f"suspend p99 {data['suspend']['p99_us']:.0f}us")
EOF
else
  skip "python3 not installed (fleet-churn JSON parse)"
fi

if [ "$SKIP_SANITIZE" -eq 0 ]; then
  note "Sanitize build (ASan + UBSan)"
  cmake --preset sanitize >/dev/null
  cmake --build --preset sanitize -j "$JOBS"
  ctest --test-dir build-sanitize --output-on-failure -j "$JOBS"
  note "rudp transport suite (ctest -L net, ASan+UBSan)"
  ctest --test-dir build-sanitize -L net --output-on-failure -j "$JOBS"
else
  skip "--skip-sanitize"
fi

if [ "$SKIP_TSAN" -eq 0 ]; then
  note "Tsan build (ctest -L tsan)"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$JOBS"
  ctest --test-dir build-tsan -L tsan --output-on-failure -j "$JOBS"
  ctest --test-dir build-tsan -L faults --output-on-failure -j "$JOBS"
  ctest --test-dir build-tsan -L recovery --output-on-failure -j "$JOBS"
  ctest --test-dir build-tsan -L obs --output-on-failure -j "$JOBS"
  ctest --test-dir build-tsan -L swarm --output-on-failure -j "$JOBS"
  ctest --test-dir build-tsan -L group --output-on-failure -j "$JOBS"
  ctest --test-dir build-tsan -L reactor --output-on-failure -j "$JOBS"
  # The `net` test has no per-test TSAN env property (it also runs in
  # non-TSan builds), so supply the suppressions here.
  NAPLET_TSAN_LIGHT=1 \
  TSAN_OPTIONS="suppressions=$(pwd)/ci/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir build-tsan -L net --output-on-failure -j "$JOBS"
else
  skip "--skip-tsan"
fi

note "static analysis gate (naplet-analyze: lock order, annotations, registries)"
# The dependency-free pass first: this one can never be skipped.
./build-debug/tools/analyze/registry_check --root . --compact
# The full three-pass gate over the Debug compile database. Exits 1 on any
# finding not listed in the baseline, which fails the script via set -e.
./build-debug/tools/analyze/naplet-analyze \
  --root . --compdb build-debug/compile_commands.json \
  --baseline tools/analyze/baseline.txt --compact
# The optional libTooling cross-check rides along when the Clang dev
# libraries were found at configure time (-DNAPLET_ANALYZE_WITH_CLANG=ON).
if [ -x build-debug/tools/analyze/naplet-analyze-clang ]; then
  ./build-debug/tools/analyze/naplet-analyze-clang \
    -p build-debug src/*/*.cpp >/dev/null || exit 1
else
  skip "naplet-analyze-clang not built (Clang dev libraries absent)"
fi

note "clang-tidy (bugprone, concurrency, performance; src+tools+bench)"
if command -v run-clang-tidy >/dev/null 2>&1; then
  # Reuse the Debug compile database; run-clang-tidy honours .clang-tidy.
  run-clang-tidy -p build-debug -quiet \
    "$(pwd)/src/.*" "$(pwd)/tools/.*" "$(pwd)/bench/.*" || exit 1
elif command -v clang-tidy >/dev/null 2>&1; then
  find src tools bench -name '*.cpp' -print0 |
    xargs -0 -n 1 -P "$JOBS" clang-tidy -p build-debug --quiet || exit 1
else
  skip "clang-tidy not installed"
fi

note "clang-format (check only)"
if command -v clang-format >/dev/null 2>&1; then
  # Analyzer fixtures carry planted defects with deliberate layout; keep
  # them out of the format gate.
  find src tests bench examples tools -name '*.hpp' -o -name '*.cpp' |
    grep -v '^tests/analyze/fixtures/' |
    xargs clang-format --dry-run --Werror
else
  skip "clang-format not installed"
fi

note "all checks passed"
