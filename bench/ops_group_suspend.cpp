// Group-suspend makespan bench (ISSUE 9): the atomic whole-agent sweep
// behind ControllerConfig::group_suspend, measured end to end for 1-, 8-,
// and 64-connection agents. The sweep runs one prepare worker per member
// concurrently behind the checkpoint barrier, so the makespan should grow
// far slower than member count — that is the point of the barrier design
// versus a serial suspend walk.
//
// With --json, also emits the makespan distribution plus per-phase
// p50/p95/p99 pulled from the controller's group histograms
// (nsock_group_prepare_us / nsock_group_commit_us / nsock_group_rollback_us
// / nsock_group_suspend_us) — the EXPERIMENTS.md group-suspend recipe and
// the CI smoke read these.
#include <algorithm>

#include "bench/bench_util.hpp"
#include "obs/metrics.hpp"

namespace naplet::bench {
namespace {

struct SizeResult {
  int connections = 0;
  std::vector<double> prepare_ms;  // group sweep makespan per iteration
  std::vector<double> resume_ms;   // whole-group resume makespan
  std::uint64_t rollbacks = 0;
  obs::Snapshot metrics;  // mover-side registry after the sweep
};

/// Percentile over a small sample (nearest-rank on the sorted copy).
double sample_percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(rank, xs.size() - 1)];
}

SizeResult measure(int connections, int iterations) {
  // BenchRealm pins its NodeConfig, and the group sweep is opt-in — build
  // the two-node loopback realm directly with the sweep enabled.
  nsock::Realm realm;
  for (int i = 0; i < 2; ++i) {
    nsock::NodeConfig config;
    config.controller.security = false;
    config.controller.group_suspend = true;
    config.controller.group_prepare_timeout = 10s;
    config.controller.suspend_rollback = true;
    config.controller.redirector_leases.enabled = true;
    config.controller.redirector_leases.ttl = 10s;
    realm.add_node("node" + std::to_string(i), config);
  }
  if (!realm.start().ok()) std::abort();
  nsock::SocketController& mover = realm.node("node0").controller();
  nsock::SocketController& peer = realm.node("node1").controller();

  const agent::AgentId cli("grp-bench-cli");
  const agent::AgentId srv("grp-bench-srv");
  realm.locations().register_agent(cli, realm.node("node0").server().node_info());
  realm.locations().register_agent(srv, realm.node("node1").server().node_info());
  if (!peer.listen(srv).ok()) std::abort();

  std::vector<nsock::SessionPtr> clients;
  for (int i = 0; i < connections; ++i) {
    auto client = mover.connect(cli, srv);
    if (!client.ok()) std::abort();
    auto server = peer.accept(srv, 5s);
    if (!server.ok()) std::abort();
    clients.push_back(*client);
  }

  SizeResult result;
  result.connections = connections;
  for (int i = 0; i < iterations; ++i) {
    util::Stopwatch sw(util::RealClock::instance());
    if (!mover.prepare_migration(cli).ok()) std::abort();
    result.prepare_ms.push_back(sw.elapsed_ms());
    for (const auto& session : clients) {
      if (session->state() != nsock::ConnState::kSuspended) std::abort();
    }

    // Resume the whole group in place (the bench never ships the agent):
    // complete_migration walks every suspended member through the
    // redirector handoff back to ESTABLISHED.
    sw.reset();
    if (!mover.complete_migration(cli).ok()) std::abort();
    result.resume_ms.push_back(sw.elapsed_ms());
  }

  result.rollbacks = mover.group_rollbacks();
  result.metrics = mover.metrics().snapshot();
  realm.stop();
  return result;
}

/// The group-phase histograms worth breaking out (all in microseconds).
const std::vector<std::pair<std::string, std::string>>& phase_histograms() {
  static const std::vector<std::pair<std::string, std::string>> kPhases = {
      {"group_prepare", "nsock_group_prepare_us"},
      {"group_commit", "nsock_group_commit_us"},
      {"group_rollback", "nsock_group_rollback_us"},
      {"group_suspend", "nsock_group_suspend_us"},
      {"member_suspend", "nsock_suspend_latency_us"},
      {"member_resume", "nsock_resume_latency_us"},
  };
  return kPhases;
}

std::string phase_json(const obs::HistogramSnapshot& h) {
  return JsonObject()
      .field("count", h.count)
      .field("mean_us", h.mean())
      .field("p50_us", h.percentile(50))
      .field("p95_us", h.percentile(95))
      .field("p99_us", h.percentile(99))
      .render();
}

std::string makespan_json(const std::vector<double>& xs) {
  return JsonObject()
      .field("mean_ms", mean(xs))
      .field("p50_ms", sample_percentile(xs, 50))
      .field("p95_ms", sample_percentile(xs, 95))
      .field("p99_ms", sample_percentile(xs, 99))
      .render();
}

}  // namespace
}  // namespace naplet::bench

int main(int argc, char** argv) {
  using namespace naplet::bench;
  const int iterations = fast_mode() ? 3 : 15;
  const std::vector<int> sizes = {1, 8, 64};

  std::printf("group-suspend sweep makespan: %d-iteration cycles of "
              "prepare_migration + complete_migration per agent size\n",
              iterations);

  std::vector<SizeResult> results;
  for (int connections : sizes) {
    results.push_back(measure(connections, iterations));
  }

  print_header("Group sweep makespan (measured)",
               {"connections", "prepare mean", "prepare p95", "resume mean",
                "rollbacks"});
  for (const SizeResult& r : results) {
    print_row({std::to_string(r.connections), fmt(mean(r.prepare_ms), 3),
               fmt(sample_percentile(r.prepare_ms, 95), 3),
               fmt(mean(r.resume_ms), 3), std::to_string(r.rollbacks)});
  }

  for (const SizeResult& r : results) {
    print_header("Group phase breakdown, " + std::to_string(r.connections) +
                     "-connection agent (controller histograms, µs)",
                 {"phase", "count", "p50", "p95", "p99"});
    for (const auto& [label, name] : phase_histograms()) {
      const auto* h = r.metrics.histogram(name);
      if (h == nullptr || h->count == 0) continue;
      print_row({label, std::to_string(h->count), fmt(h->percentile(50), 0),
                 fmt(h->percentile(95), 0), fmt(h->percentile(99), 0)});
    }
  }

  // Shape checks: a clean bench never rolls a group back, and the barrier
  // fans members out concurrently, so the 64-member makespan must land far
  // under 64 serial one-member sweeps.
  const double one = mean(results.front().prepare_ms);
  const double big = mean(results.back().prepare_ms);
  const double serial_bound =
      one * static_cast<double>(results.back().connections);
  bool rollback_free = true;
  for (const SizeResult& r : results) rollback_free &= r.rollbacks == 0;
  std::printf("\nshape checks:\n");
  std::printf("  no rollbacks across sweeps      : %s\n",
              rollback_free ? "PASS" : "FAIL");
  std::printf("  %d-member sweep < serial bound : %s (%.3f < %.3f ms)\n",
              results.back().connections, big < serial_bound ? "PASS" : "FAIL",
              big, serial_bound);

  if (json_flag(argc, argv)) {
    std::vector<std::string> agents;
    for (const SizeResult& r : results) {
      JsonObject entry;
      entry.field("connections", static_cast<std::uint64_t>(r.connections))
          .field("rollbacks", r.rollbacks)
          .raw("prepare_makespan", makespan_json(r.prepare_ms))
          .raw("resume_makespan", makespan_json(r.resume_ms));
      for (const auto& [label, name] : phase_histograms()) {
        const auto* h = r.metrics.histogram(name);
        if (h == nullptr) continue;
        entry.raw(label, phase_json(*h));
      }
      agents.push_back(entry.render());
    }
    JsonObject obj;
    obj.field("bench", std::string("ops_group_suspend"))
        .field("iterations", static_cast<std::uint64_t>(iterations))
        .raw("agents", json_array(agents));
    write_json_file("BENCH_ops_group_suspend.json", obj.render());
  }
  return 0;
}
