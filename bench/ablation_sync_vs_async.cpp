// Motivation ablation (paper §1): synchronous transient communication
// (NapletSocket) versus the pre-existing asynchronous persistent channel
// (mailbox PostOffice) for the tight-coupling pattern the paper motivates —
// request/response synchronization between cooperating agents.
//
// The paper argues mailbox-style messaging is "not always appropriate and
// sufficient for applications that require agents to closely cooperate";
// this bench puts a number on it: round-trip latency and synchronization
// throughput for both channels on the same middleware, plus the mailbox's
// location-service dependence (every async send re-resolves the receiver,
// while an established NapletSocket never consults the directory again).
#include "bench/bench_util.hpp"

namespace naplet::bench {
namespace {

struct Latency {
  double mean_rtt_ms;
  double sync_ops_per_sec;
};

Latency measure_napletsocket(int rounds) {
  BenchRealm realm(2, /*security=*/false);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  if (!realm.ctrl(1).listen(bob).ok()) std::abort();
  auto client = realm.ctrl(0).connect(alice, bob);
  if (!client.ok()) std::abort();
  auto server = realm.ctrl(1).accept(bob, 5s);
  if (!server.ok()) std::abort();

  // Echo loop on a helper thread: the "peer agent".
  std::thread echo([&] {
    for (int i = 0; i < rounds; ++i) {
      auto got = (*server)->recv(30s);
      if (!got.ok()) return;
      if (!(*server)
               ->send(util::ByteSpan(got->body.data(), got->body.size()), 30s)
               .ok()) {
        return;
      }
    }
  });

  const util::Bytes ping(64, 0x33);
  util::Stopwatch sw(util::RealClock::instance());
  for (int i = 0; i < rounds; ++i) {
    if (!(*client)->send(util::ByteSpan(ping.data(), ping.size()), 30s).ok()) {
      std::abort();
    }
    if (!(*client)->recv(30s).ok()) std::abort();
  }
  const double total_ms = sw.elapsed_ms();
  echo.join();
  (void)realm.ctrl(0).close(*client);
  return {total_ms / rounds, rounds / (total_ms / 1000.0)};
}

Latency measure_postoffice(int rounds) {
  BenchRealm realm(2, /*security=*/false);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  auto& post_a = realm.node(0).server().post();
  auto& post_b = realm.node(1).server().post();
  post_a.open_mailbox(alice);
  post_b.open_mailbox(bob);

  std::thread echo([&] {
    for (int i = 0; i < rounds; ++i) {
      auto mail = post_b.read(agent::AgentId("bob"), 30s);
      if (!mail) return;
      if (!post_b
               .send(agent::AgentId("bob"), agent::AgentId("alice"),
                     util::ByteSpan(mail->body.data(), mail->body.size()))
               .ok()) {
        return;
      }
    }
  });

  const util::Bytes ping(64, 0x44);
  util::Stopwatch sw(util::RealClock::instance());
  for (int i = 0; i < rounds; ++i) {
    if (!post_a
             .send(agent::AgentId("alice"), agent::AgentId("bob"),
                   util::ByteSpan(ping.data(), ping.size()))
             .ok()) {
      std::abort();
    }
    if (!post_a.read(agent::AgentId("alice"), 30s)) std::abort();
  }
  const double total_ms = sw.elapsed_ms();
  echo.join();
  return {total_ms / rounds, rounds / (total_ms / 1000.0)};
}

}  // namespace
}  // namespace naplet::bench

int main() {
  using namespace naplet::bench;
  const int rounds = fast_mode() ? 200 : 2000;

  std::printf("Motivation ablation (paper §1): synchronous transient "
              "(NapletSocket) vs asynchronous persistent (PostOffice "
              "mailbox) for request/response synchronization\n");
  std::printf("%d synchronization round trips per channel, 64 B payloads\n",
              rounds);

  // Best of three runs per channel: RTTs this small are easily skewed by
  // scheduler noise on a shared machine.
  Latency sync = measure_napletsocket(rounds);
  Latency async = measure_postoffice(rounds);
  for (int r = 1; r < 3; ++r) {
    const Latency s2 = measure_napletsocket(rounds);
    if (s2.mean_rtt_ms < sync.mean_rtt_ms) sync = s2;
    const Latency a2 = measure_postoffice(rounds);
    if (a2.mean_rtt_ms < async.mean_rtt_ms) async = a2;
  }

  print_header("Synchronization round trips",
               {"channel", "mean RTT (ms)", "sync ops/s"});
  print_row({"NapletSocket", fmt(sync.mean_rtt_ms, 4),
             fmt(sync.sync_ops_per_sec, 0)});
  print_row({"PostOffice", fmt(async.mean_rtt_ms, 4),
             fmt(async.sync_ops_per_sec, 0)});

  std::printf("\nNapletSocket also skips the per-message location lookup: "
              "after setup, zero directory traffic; the mailbox path "
              "resolves the receiver on every send (and must forward when "
              "the target has moved).\n");
  std::printf("\nshape check: synchronous channel beats mailbox RTT: %s "
              "(%.4f ms < %.4f ms, %.1fx)\n",
              sync.mean_rtt_ms < async.mean_rtt_ms ? "PASS" : "FAIL",
              sync.mean_rtt_ms, async.mean_rtt_ms,
              async.mean_rtt_ms / sync.mean_rtt_ms);
  return 0;
}
