// Reproduces paper Figure 12 (§5.2): simulated connection-migration cost
// versus mean agent service time, for the high-priority agent (a) and the
// low-priority agent (b), at service-rate ratios mu_b/mu_a in {1, 3, 1/3}.
//
// Model parameters are the paper's measured values: Tcontrol = 10 ms,
// Tsuspend = 27.8 ms, Tresume = 16.9 ms, Ta-migrate = 220 ms.
//
// Paper findings: the high-priority agent's cost is essentially flat at
// Tsuspend + Tresume = 44.7 ms; the low-priority agent pays more when both
// agents migrate fast (more concurrency), converging to 44.7 ms as dwell
// times grow; a faster peer (mu_b/mu_a = 3) increases A's chance of meeting
// an ongoing suspend, which can lower A's own cost via the non-overlapped
// saving (Eq. 4).
#include <cstdio>
#include <vector>

#include "sim/mobility.hpp"

int main() {
  using namespace naplet::sim;

  std::printf("Figure 12 reproduction: simulated connection-migration cost "
              "vs mean service time\n");
  std::printf("Parameters: Tcontrol=10ms Tsuspend=27.8ms Tresume=16.9ms "
              "Ta-migrate=220ms; Tsus+Tres=44.7ms\n");

  const std::vector<double> service_means = {10,  25,  50,   100,  200, 400,
                                             600, 800, 1000, 1500, 2000};
  const std::vector<std::pair<const char*, double>> ratios = {
      {"mu_b/mu_a = 1", 1.0}, {"mu_b/mu_a = 3", 3.0},
      {"mu_b/mu_a = 1/3", 1.0 / 3.0}};

  for (bool high_priority : {true, false}) {
    std::printf("\n--- Figure 12(%s): %s-priority agent, mean connection-"
                "migration cost (ms) ---\n",
                high_priority ? "a" : "b", high_priority ? "high" : "low");
    std::printf("%14s", "1/mu_a (ms)");
    for (const auto& [label, ratio] : ratios) std::printf("%18s", label);
    std::printf("\n");

    for (double mean_a : service_means) {
      std::printf("%14.0f", mean_a);
      for (const auto& [label, ratio] : ratios) {
        MobilityConfig config;
        config.mean_service_a_ms = mean_a;
        // ratio = mu_b / mu_a  =>  1/mu_b = (1/mu_a) / ratio.
        config.mean_service_b_ms = mean_a / ratio;
        config.rounds = 60000;
        config.seed = 42;
        const MobilityResult result = simulate_mobility(config);
        const AgentStats& stats = high_priority ? result.high : result.low;
        std::printf("%18.2f", stats.mean_cost_ms());
      }
      std::printf("\n");
    }
  }

  // Shape checks.
  const CostModel model;
  MobilityConfig fast;
  fast.mean_service_a_ms = 50;
  fast.mean_service_b_ms = 50;
  fast.rounds = 60000;
  MobilityConfig slow = fast;
  slow.mean_service_a_ms = 2000;
  slow.mean_service_b_ms = 2000;
  const MobilityResult fast_result = simulate_mobility(fast);
  const MobilityResult slow_result = simulate_mobility(slow);

  std::printf("\nshape checks:\n");
  const bool high_flat =
      std::abs(fast_result.high.mean_cost_ms() - model.single_cost()) < 3.0 &&
      std::abs(slow_result.high.mean_cost_ms() - model.single_cost()) < 3.0;
  std::printf("  high-priority cost ~constant at %.1f ms : %s (%.2f / %.2f)\n",
              model.single_cost(), high_flat ? "PASS" : "FAIL",
              fast_result.high.mean_cost_ms(),
              slow_result.high.mean_cost_ms());
  const bool low_elevated =
      fast_result.low.mean_cost_ms() > slow_result.low.mean_cost_ms();
  std::printf("  low-priority cost higher at fast migration: %s "
              "(%.2f > %.2f)\n",
              low_elevated ? "PASS" : "FAIL", fast_result.low.mean_cost_ms(),
              slow_result.low.mean_cost_ms());
  const bool converges =
      std::abs(slow_result.low.mean_cost_ms() - model.single_cost()) < 2.0;
  std::printf("  low-priority converges to %.1f ms at slow migration: %s "
              "(%.2f)\n",
              model.single_cost(), converges ? "PASS" : "FAIL",
              slow_result.low.mean_cost_ms());
  return 0;
}
