// Micro-benchmarks (google-benchmark) for the protocol's building blocks:
// the crypto kernels that dominate secure connection setup, the wire codecs,
// and the FSM transition function. These quantify the ablation between
// DH group sizes — the design choice behind the Table 1 security cost.
#include <benchmark/benchmark.h>

#include "core/state.hpp"
#include "core/wire.hpp"
#include "crypto/dh.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace {

using naplet::crypto::DhGroup;
using naplet::crypto::DhKeyPair;

void BM_Sha256(benchmark::State& state) {
  const naplet::util::Bytes data(static_cast<std::size_t>(state.range(0)),
                                 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naplet::crypto::Sha256::hash(
        naplet::util::ByteSpan(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const naplet::util::Bytes key(32, 0x11);
  const naplet::util::Bytes data(static_cast<std::size_t>(state.range(0)),
                                 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naplet::crypto::hmac_sha256(
        naplet::util::ByteSpan(key.data(), key.size()),
        naplet::util::ByteSpan(data.data(), data.size())));
  }
}
BENCHMARK(BM_HmacSha256)->Arg(128)->Arg(4096);

template <DhGroup G>
void BM_DhKeygen(benchmark::State& state) {
  for (auto _ : state) {
    auto kp = DhKeyPair::generate(G);
    benchmark::DoNotOptimize(kp);
  }
}
BENCHMARK(BM_DhKeygen<DhGroup::kModp768>);
BENCHMARK(BM_DhKeygen<DhGroup::kModp1536>);
BENCHMARK(BM_DhKeygen<DhGroup::kModp2048>);

template <DhGroup G>
void BM_DhSessionKey(benchmark::State& state) {
  auto alice = DhKeyPair::generate(G);
  auto bob = DhKeyPair::generate(G);
  for (auto _ : state) {
    auto key = alice->session_key(naplet::util::ByteSpan(
        bob->public_value().data(), bob->public_value().size()));
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_DhSessionKey<DhGroup::kModp768>);
BENCHMARK(BM_DhSessionKey<DhGroup::kModp2048>);

void BM_CtrlMsgEncodeDecode(benchmark::State& state) {
  naplet::nsock::CtrlMsg msg;
  msg.type = naplet::nsock::CtrlType::kSus;
  msg.conn_id = 12345;
  msg.sent_seq = 678;
  msg.node.server_name = "node0";
  msg.node.control = {"127.0.0.1", 40000};
  msg.node.redirector = {"127.0.0.1", 40001};
  msg.node.migration = {"127.0.0.1", 40002};
  msg.mac = naplet::util::Bytes(32, 0x22);
  for (auto _ : state) {
    const naplet::util::Bytes wire = msg.encode();
    auto decoded = naplet::nsock::CtrlMsg::decode(
        naplet::util::ByteSpan(wire.data(), wire.size()));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_CtrlMsgEncodeDecode);

void BM_DataFrameEncodeDecode(benchmark::State& state) {
  const naplet::nsock::DataFrame frame{
      42, naplet::util::Bytes(static_cast<std::size_t>(state.range(0)), 0x7)};
  for (auto _ : state) {
    const naplet::util::Bytes wire = frame.encode();
    auto decoded = naplet::nsock::DataFrame::decode(
        naplet::util::ByteSpan(wire.data(), wire.size()));
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DataFrameEncodeDecode)->Arg(64)->Arg(2048)->Arg(65536);

void BM_FsmTransition(benchmark::State& state) {
  using naplet::nsock::ConnEvent;
  using naplet::nsock::ConnState;
  int i = 0;
  for (auto _ : state) {
    const auto s = static_cast<ConnState>(i % naplet::nsock::kConnStateCount);
    const auto e = static_cast<ConnEvent>(i % naplet::nsock::kConnEventCount);
    benchmark::DoNotOptimize(naplet::nsock::transition(s, e));
    ++i;
  }
}
BENCHMARK(BM_FsmTransition);

}  // namespace

BENCHMARK_MAIN();
