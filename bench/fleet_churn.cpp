// Fleet churn at scale: 10k+ concurrent NapletSocket sessions on one
// controller under continuous connect / migrate / close churn — the load
// the event-driven reactor core (DESIGN.md §15) exists to carry.
//
// The paper's testbed opens one connection at a time; a controller in a
// fleet terminates thousands. This bench ramps a single client-side
// controller to the target session count over the Sim backend (in-process
// pipes, so the OS fd ceiling is not the variable under test), then churns
// a worker pool through the paper's migration primitive (suspend+resume,
// §2.1) and full close+reconnect cycles, and reports:
//
//   concurrent_sessions        peak session-table size on the hot node
//   ramp_sessions_per_sec      connection-establishment throughput
//   churn_ops_per_sec          sustained suspend/resume + reopen rate
//   suspend p50/p95/p99 (us)   from the controller's own
//                              nsock_suspend_latency_us histogram
//   memory_per_session_bytes   RSS delta across the ramp / endpoints
//   shards n/max/mean          session-table shard spread sanity
//
// Default mode runs the reactor (sharded tables + epoll/timer-wheel loop);
// --threaded falls back to the per-session thread pattern for an A/B.
// NAPLET_BENCH_FAST shrinks the ramp for the CI smoke; --json writes
// BENCH_fleet_churn.json.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "net/sim.hpp"
#include "obs/metrics.hpp"

namespace naplet::bench {
namespace {

constexpr int kServerNodes = 3;  // node0 is the hot client-side host

/// Resident set size of this process, in bytes (Linux /proc/self/statm).
std::size_t rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long total_pages = 0, resident_pages = 0;
  const int got = std::fscanf(f, "%lu %lu", &total_pages, &resident_pages);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::size_t>(resident_pages) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

struct ChurnResult {
  std::size_t concurrent_sessions = 0;  // hot node, at peak
  std::size_t total_endpoints = 0;      // both ends, all nodes
  double ramp_sessions_per_sec = 0;
  double churn_ops_per_sec = 0;
  std::size_t churn_ops = 0;
  std::size_t churn_failures = 0;
  double mem_per_session_bytes = 0;
  std::vector<std::size_t> shard_sessions;
  obs::Snapshot metrics;  // hot-node registry (suspend histogram)
};

ChurnResult run(bool reactor, int target_sessions, int churn_ops,
                int workers) {
  net::SimNet net(/*seed=*/7);
  nsock::Realm realm;
  for (int i = 0; i <= kServerNodes; ++i) {
    const std::string name = "node" + std::to_string(i);
    nsock::NodeConfig config;
    config.controller.security = false;
    config.controller.reactor.enabled = reactor;
    realm.add_node(name, net.add_node(name), config);
  }
  if (!realm.start().ok()) std::abort();

  nsock::SocketController& hot = realm.node("node0").controller();

  // Server agents, one per server node, each accepting its shard of the
  // fleet. Acceptors drain the queues so closed server-side sessions do
  // not pile up behind unpopped entries.
  std::vector<agent::AgentId> servers;
  std::atomic<bool> accept_done{false};
  std::vector<std::thread> acceptors;
  for (int i = 1; i <= kServerNodes; ++i) {
    agent::AgentId srv("srv" + std::to_string(i));
    auto& node = realm.node("node" + std::to_string(i));
    realm.locations().register_agent(srv, node.server().node_info());
    if (!node.controller().listen(srv).ok()) std::abort();
    servers.push_back(srv);
    acceptors.emplace_back([&node, srv, &accept_done] {
      std::vector<nsock::SessionPtr> held;
      while (true) {
        auto got = node.controller().accept(srv, std::chrono::milliseconds(50));
        if (got.ok()) {
          held.push_back(std::move(*got));
          continue;
        }
        if (accept_done.load()) break;
      }
    });
  }

  // Client agents, one per worker, all resident on the hot node.
  std::vector<agent::AgentId> clients;
  for (int w = 0; w < workers; ++w) {
    agent::AgentId cli("cli" + std::to_string(w));
    realm.locations().register_agent(
        cli, realm.node("node0").server().node_info());
    clients.push_back(cli);
  }

  ChurnResult result;
  const std::size_t rss_before = rss_bytes();

  // ---- ramp: establish the fleet ----
  std::vector<std::vector<nsock::SessionPtr>> fleet(
      static_cast<std::size_t>(workers));
  std::atomic<std::size_t> connect_failures{0};
  util::Stopwatch ramp_sw(util::RealClock::instance());
  {
    std::vector<std::thread> pool;
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        const int share = target_sessions / workers +
                          (w < target_sessions % workers ? 1 : 0);
        auto& mine = fleet[static_cast<std::size_t>(w)];
        mine.reserve(static_cast<std::size_t>(share));
        for (int i = 0; i < share; ++i) {
          auto conn = hot.connect(
              clients[static_cast<std::size_t>(w)],
              servers[static_cast<std::size_t>((w + i) % kServerNodes)]);
          if (!conn.ok()) {
            connect_failures.fetch_add(1);
            continue;
          }
          mine.push_back(std::move(*conn));
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  const double ramp_ms = ramp_sw.elapsed_ms();
  result.concurrent_sessions = hot.session_count();
  result.total_endpoints = result.concurrent_sessions;
  for (int i = 1; i <= kServerNodes; ++i) {
    result.total_endpoints +=
        realm.node("node" + std::to_string(i)).controller().session_count();
  }
  result.ramp_sessions_per_sec =
      static_cast<double>(result.concurrent_sessions) / (ramp_ms / 1000.0);
  const std::size_t rss_after = rss_bytes();
  if (rss_after > rss_before && result.total_endpoints > 0) {
    result.mem_per_session_bytes =
        static_cast<double>(rss_after - rss_before) /
        static_cast<double>(result.total_endpoints);
  }
  result.shard_sessions = hot.stats().shard_sessions;

  // ---- churn: migrate primitive + close/reopen, full table resident ----
  std::atomic<std::size_t> ops_done{0};
  std::atomic<std::size_t> ops_failed{0};
  util::Stopwatch churn_sw(util::RealClock::instance());
  {
    std::vector<std::thread> pool;
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        auto& mine = fleet[static_cast<std::size_t>(w)];
        if (mine.empty()) return;
        const int share = churn_ops / workers +
                          (w < churn_ops % workers ? 1 : 0);
        for (int i = 0; i < share; ++i) {
          auto& sock = mine[static_cast<std::size_t>(i) % mine.size()];
          bool ok;
          if (i % 8 == 7) {
            // Full connection turnover: close, then re-establish so the
            // resident count holds at the target through the churn.
            ok = hot.close(sock).ok();
            auto conn = hot.connect(
                clients[static_cast<std::size_t>(w)],
                servers[static_cast<std::size_t>((w + i) % kServerNodes)]);
            ok = ok && conn.ok();
            if (conn.ok()) sock = std::move(*conn);
          } else {
            // The paper's connection-migration primitive around an agent
            // hop: suspend, then resume through the peer redirector.
            ok = hot.suspend(sock).ok() && hot.resume(sock).ok();
          }
          ops_done.fetch_add(1);
          if (!ok) ops_failed.fetch_add(1);
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  const double churn_ms = churn_sw.elapsed_ms();
  result.churn_ops = ops_done.load();
  result.churn_failures = ops_failed.load() + connect_failures.load();
  result.churn_ops_per_sec =
      static_cast<double>(result.churn_ops) / (churn_ms / 1000.0);
  result.metrics = hot.metrics().snapshot();

  accept_done.store(true);
  for (auto& t : acceptors) t.join();
  realm.stop();
  return result;
}

double hist_p(const obs::Snapshot& snap, const char* name, double p) {
  const obs::HistogramSnapshot* h = snap.histogram(name);
  return h == nullptr ? 0.0 : h->percentile(p);
}

}  // namespace
}  // namespace naplet::bench

int main(int argc, char** argv) {
  using namespace naplet::bench;

  const bool fast = fast_mode();
  const bool reactor = !has_flag(argc, argv, "--threaded");
  const int target = fast ? 1024 : 10240;
  const int churn_ops = fast ? 2048 : 20480;
  const int workers = 8;

  std::printf("Fleet churn: %d concurrent sessions on one controller, "
              "%d churn ops, %d workers (%s mode, Sim backend)\n",
              target, churn_ops, workers,
              reactor ? "reactor" : "threaded");

  const ChurnResult r = run(reactor, target, churn_ops, workers);

  const double p50 = hist_p(r.metrics, "nsock_suspend_latency_us", 50.0);
  const double p95 = hist_p(r.metrics, "nsock_suspend_latency_us", 95.0);
  const double p99 = hist_p(r.metrics, "nsock_suspend_latency_us", 99.0);
  std::size_t shard_max = 0, shard_sum = 0;
  for (std::size_t s : r.shard_sessions) {
    shard_max = std::max(shard_max, s);
    shard_sum += s;
  }
  const double shard_mean =
      r.shard_sessions.empty()
          ? 0.0
          : static_cast<double>(shard_sum) /
                static_cast<double>(r.shard_sessions.size());

  print_header("Fleet churn (measured)", {"metric", "value"});
  print_row({"concurrent sessions", std::to_string(r.concurrent_sessions)});
  print_row({"total endpoints", std::to_string(r.total_endpoints)});
  print_row({"ramp (sessions/s)", fmt(r.ramp_sessions_per_sec, 0)});
  print_row({"churn (ops/s)", fmt(r.churn_ops_per_sec, 0)});
  print_row({"suspend p50 (us)", fmt(p50, 0)});
  print_row({"suspend p95 (us)", fmt(p95, 0)});
  print_row({"suspend p99 (us)", fmt(p99, 0)});
  print_row({"memory/session (B)", fmt(r.mem_per_session_bytes, 0)});
  print_row({"shards (n/max/mean)",
             std::to_string(r.shard_sessions.size()) + "/" +
                 std::to_string(shard_max) + "/" + fmt(shard_mean, 0)});

  bool ok = true;
  const auto check = [&ok](bool cond, const char* what) {
    std::printf("%s: %s\n", cond ? "PASS" : "FAIL", what);
    if (!cond) ok = false;
  };
  std::printf("\nshape checks:\n");
  check(r.concurrent_sessions >= static_cast<std::size_t>(target),
        "ramp reached the target concurrent session count");
  check(r.churn_ops >= static_cast<std::size_t>(churn_ops) &&
            r.churn_failures == 0,
        "every churn op (suspend+resume / close+reconnect) succeeded");
  check(p99 > 0.0, "suspend latency histogram populated");
  // Hash-spread sanity: with 10k sessions over 16 shards no shard should
  // hold more than 2x the mean (binomial tails are far tighter).
  check(r.shard_sessions.empty() ||
            static_cast<double>(shard_max) <= 2.0 * shard_mean + 8.0,
        "session table spread evenly across shards");

  if (json_flag(argc, argv)) {
    JsonObject suspend;
    suspend.field("p50_us", p50).field("p95_us", p95).field("p99_us", p99);
    JsonObject shards;
    shards
        .field("count", static_cast<std::uint64_t>(r.shard_sessions.size()))
        .field("max", static_cast<std::uint64_t>(shard_max))
        .field("mean", shard_mean);
    JsonObject root;
    root.field("bench", std::string("fleet_churn"))
        .field("mode", std::string(reactor ? "reactor" : "threaded"))
        .field("target_sessions", static_cast<std::uint64_t>(target))
        .field("concurrent_sessions",
               static_cast<std::uint64_t>(r.concurrent_sessions))
        .field("total_endpoints",
               static_cast<std::uint64_t>(r.total_endpoints))
        .field("ramp_sessions_per_sec", r.ramp_sessions_per_sec)
        .field("churn_ops_per_sec", r.churn_ops_per_sec)
        .field("churn_ops", static_cast<std::uint64_t>(r.churn_ops))
        .field("memory_per_session_bytes", r.mem_per_session_bytes)
        .raw("suspend", suspend.render())
        .raw("shards", shards.render())
        .field("pass", std::string(ok ? "true" : "false"));
    write_json_file("BENCH_fleet_churn.json", root.render());
  }
  return ok ? 0 : 1;
}
