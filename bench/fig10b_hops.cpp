// Reproduces paper Figure 10(b) (§4.3): effective throughput as a function
// of the number of migration hops, for the single-migration pattern (one
// agent moves) and the concurrent pattern (both agents move each round).
//
// Paper findings: throughput decays slowly with hop count, and concurrent
// migration yields lower effective throughput than single migration
// (double the migration overhead per round).
//
// Effective throughput = all bytes delivered / (total communication +
// migration time), measured from start to the delivery of the last byte.
#include <atomic>
#include <future>
#include <thread>

#include "bench/bench_util.hpp"

namespace naplet::bench {
namespace {

constexpr std::size_t kMsgSize = 2048;
// Scaled analog of the paper's Ta-migrate (~220 ms against 20 s dwells):
// the pseudo-agent harness ships no code/state, so model it explicitly.
constexpr util::Duration kAgentCost = std::chrono::milliseconds(20);

double run(int hops, bool concurrent, double dwell_ms) {
  BenchRealm realm(6, /*security=*/false);
  auto a = realm.pseudo_agent("A", 0);
  auto b = realm.pseudo_agent("B", 1);
  if (!realm.ctrl(1).listen(b).ok()) std::abort();
  auto client = realm.ctrl(0).connect(a, b);
  if (!client.ok()) std::abort();
  auto accepted = realm.ctrl(1).accept(b, 5s);
  if (!accepted.ok()) std::abort();
  const std::uint64_t conn_id = (*client)->conn_id();

  const util::Bytes payload(kMsgSize, 0x66);
  std::atomic<bool> pump_stop{false};
  std::atomic<bool> sink_stop{false};
  std::atomic<std::uint64_t> messages_sent{0};
  std::atomic<std::uint64_t> messages_received{0};
  std::atomic<std::int64_t> last_rx_us{0};
  std::atomic<int> a_node{0};
  std::atomic<int> b_node{1};

  // A pumps towards B; B's side drains. Both re-fetch the live session
  // each round — across a hop the previously held object is the exported
  // (stale) copy and times out quickly.
  std::thread pump([&] {
    while (!pump_stop.load()) {
      auto side = realm.ctrl(a_node.load()).session_by_id(conn_id);
      if (!side) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      if (side->send(util::ByteSpan(payload.data(), payload.size()),
                     std::chrono::milliseconds(50))
              .ok()) {
        messages_sent.fetch_add(1);
      }
    }
  });
  std::thread sink([&] {
    while (!sink_stop.load()) {
      auto side = realm.ctrl(b_node.load()).session_by_id(conn_id);
      if (!side) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      auto got = side->recv(std::chrono::milliseconds(20));
      if (got.ok()) {
        messages_received.fetch_add(1);
        last_rx_us.store(util::RealClock::instance().now_us());
      }
    }
  });

  const std::int64_t t0 = util::RealClock::instance().now_us();
  for (int hop = 0; hop < hops; ++hop) {
    util::RealClock::instance().sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(dwell_ms * 1000)));
    const int b_next = ((b_node.load() + 2) % 6) | 1;
    if (concurrent) {
      const int a_next = ((a_node.load() + 2) % 6) & ~1;
      auto move_a = std::async(std::launch::async, [&, a_next] {
        realm.migrate(a, a_node.load(), a_next, kAgentCost);
      });
      realm.migrate(b, b_node.load(), b_next, kAgentCost);
      move_a.get();
      a_node.store(a_next);
    } else {
      realm.migrate(b, b_node.load(), b_next, kAgentCost);
    }
    b_node.store(b_next);
  }
  util::RealClock::instance().sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(dwell_ms * 1000)));

  // Stop producing, then let the sink drain everything already sent.
  pump_stop.store(true);
  pump.join();
  const std::int64_t drain_deadline =
      util::RealClock::instance().now_us() + 10'000'000;
  while (messages_received.load() < messages_sent.load() &&
         util::RealClock::instance().now_us() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sink_stop.store(true);
  sink.join();

  const std::int64_t end_us = std::max(last_rx_us.load(), t0 + 1);
  const double elapsed_ms = static_cast<double>(end_us - t0) / 1000.0;
  return static_cast<double>(messages_received.load()) *
         static_cast<double>(kMsgSize) * 8.0 / 1e6 / (elapsed_ms / 1000.0);
}

}  // namespace
}  // namespace naplet::bench

int main() {
  using namespace naplet::bench;

  std::printf("Figure 10(b) reproduction: effective throughput vs migration "
              "hops, single vs concurrent patterns\n");
  std::printf("Paper findings: slow decay with hops; concurrent < single\n");

  const double dwell_ms = fast_mode() ? 80 : 250;
  const std::vector<int> hop_counts =
      fast_mode() ? std::vector<int>{1, 3}
                  : std::vector<int>{1, 2, 3, 4, 5, 6, 7};
  const int repeats = fast_mode() ? 1 : 3;

  print_header("Figure 10(b) (measured, Mb/s)",
               {"hops", "single", "concurrent", "conc/single"});
  double single_sum = 0, concurrent_sum = 0;
  for (int hops : hop_counts) {
    std::vector<double> singles, concurrents;
    for (int r = 0; r < repeats; ++r) {
      singles.push_back(run(hops, /*concurrent=*/false, dwell_ms));
      concurrents.push_back(run(hops, /*concurrent=*/true, dwell_ms));
    }
    // Median: robust to the occasional protocol-retry outlier round.
    std::sort(singles.begin(), singles.end());
    std::sort(concurrents.begin(), concurrents.end());
    const double single = singles[singles.size() / 2];
    const double concurrent = concurrents[concurrents.size() / 2];
    single_sum += single;
    concurrent_sum += concurrent;
    print_row({std::to_string(hops), fmt(single, 1), fmt(concurrent, 1),
               fmt(concurrent / single, 3)});
  }

  std::printf("\nshape check: concurrent migration costs more than single "
              "on average: %s (mean ratio %.3f)\n",
              concurrent_sum < single_sum ? "PASS" : "FAIL",
              concurrent_sum / single_sum);
  return 0;
}
