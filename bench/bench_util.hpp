// Shared scaffolding for the paper-reproduction benches: realm setup over
// real TCP loopback, pseudo-agent registration, aligned table printing, and
// simple statistics.
//
// Every bench prints (a) the paper's reported numbers for the experiment it
// regenerates and (b) the numbers measured on this machine. Absolute values
// differ — the paper ran Java on 2004 Sun Blade 1000s over fast Ethernet;
// this is C++ on loopback — but the qualitative shape must match, and
// EXPERIMENTS.md records both.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "net/tcp.hpp"

namespace naplet::bench {

using namespace std::chrono_literals;

inline util::ByteSpan span(const std::string& s) {
  return util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size());
}

/// Mean of a sample (ms).
inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

inline double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double sum = 0;
  for (double x : xs) sum += (x - m) * (x - m);
  return std::sqrt(sum / static_cast<double>(xs.size() - 1));
}

/// A realm of TCP-loopback nodes with pseudo-agents driven directly by the
/// bench thread (no agent threads; the protocol stack is identical).
class BenchRealm {
 public:
  explicit BenchRealm(int nodes, bool security = true,
                      crypto::DhGroup group = crypto::DhGroup::kModp2048) {
    realm_ = std::make_unique<nsock::Realm>();
    for (int i = 0; i < nodes; ++i) {
      nsock::NodeConfig config;
      config.controller.security = security;
      config.controller.dh_group = group;
      realm_->add_node("node" + std::to_string(i), config);
    }
    auto status = realm_->start();
    if (!status.ok()) {
      std::fprintf(stderr, "realm start failed: %s\n",
                   status.to_string().c_str());
      std::abort();
    }
  }

  ~BenchRealm() { realm_->stop(); }

  nsock::NapletRuntime& node(int i) {
    return realm_->node("node" + std::to_string(i));
  }
  nsock::SocketController& ctrl(int i) { return node(i).controller(); }
  agent::LocationService& locations() { return realm_->locations(); }

  agent::AgentId pseudo_agent(const std::string& name, int node_index) {
    agent::AgentId id(name);
    locations().register_agent(id, node(node_index).server().node_info());
    return id;
  }

  /// Full pseudo-migration of an agent's sessions between nodes; returns
  /// elapsed milliseconds. `agent_cost` models the shipping of the agent's
  /// code and state (the paper's Ta-migrate, ~220 ms on its testbed),
  /// which the pseudo-agent harness otherwise skips.
  double migrate(const agent::AgentId& id, int from, int to,
                 util::Duration agent_cost = {}) {
    util::Stopwatch sw(util::RealClock::instance());
    locations().begin_migration(id);
    auto st = ctrl(from).prepare_migration(id);
    if (!st.ok()) {
      // Abort the hop: keep the agent (and its suspended sessions) where
      // they are and resume them, mirroring AgentServer's rollback.
      std::fprintf(stderr, "bench migrate (prepare) failed: %s\n",
                   st.to_string().c_str());
      locations().register_agent(id, node(from).server().node_info());
      (void)ctrl(from).complete_migration(id);
      return sw.elapsed_ms();
    }
    const util::Bytes sessions = ctrl(from).export_sessions(id);
    if (agent_cost.count() > 0) {
      util::RealClock::instance().sleep_for(agent_cost);
    }
    st = ctrl(to).import_sessions(
        id, util::ByteSpan(sessions.data(), sessions.size()));
    locations().register_agent(id, node(to).server().node_info());
    if (st.ok()) st = ctrl(to).complete_migration(id);
    if (!st.ok()) {
      std::fprintf(stderr, "bench migrate failed: %s\n",
                   st.to_string().c_str());
    }
    return sw.elapsed_ms();
  }

 private:
  std::unique_ptr<nsock::Realm> realm_;
};

/// Fixed-width table printing.
inline void print_header(const std::string& title,
                         const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : columns) std::printf("%18s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%18s", "---");
  std::printf("\n");
}

inline void print_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%18s", c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

/// True when NAPLET_BENCH_FAST is set: shrink sweeps for smoke runs.
inline bool fast_mode() {
  const char* env = std::getenv("NAPLET_BENCH_FAST");
  return env != nullptr && env[0] != '0';
}

}  // namespace naplet::bench
