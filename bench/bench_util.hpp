// Shared scaffolding for the paper-reproduction benches: realm setup over
// real TCP loopback, pseudo-agent registration, aligned table printing, and
// simple statistics.
//
// Every bench prints (a) the paper's reported numbers for the experiment it
// regenerates and (b) the numbers measured on this machine. Absolute values
// differ — the paper ran Java on 2004 Sun Blade 1000s over fast Ethernet;
// this is C++ on loopback — but the qualitative shape must match, and
// EXPERIMENTS.md records both.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "core/session.hpp"
#include "net/sim.hpp"
#include "net/tcp.hpp"

namespace naplet::bench {

using namespace std::chrono_literals;

inline util::ByteSpan span(const std::string& s) {
  return util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size());
}

/// Mean of a sample (ms).
inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

inline double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double sum = 0;
  for (double x : xs) sum += (x - m) * (x - m);
  return std::sqrt(sum / static_cast<double>(xs.size() - 1));
}

/// A realm of TCP-loopback nodes with pseudo-agents driven directly by the
/// bench thread (no agent threads; the protocol stack is identical).
class BenchRealm {
 public:
  explicit BenchRealm(int nodes, bool security = true,
                      crypto::DhGroup group = crypto::DhGroup::kModp2048,
                      bool reactor = false) {
    realm_ = std::make_unique<nsock::Realm>();
    for (int i = 0; i < nodes; ++i) {
      nsock::NodeConfig config;
      config.controller.security = security;
      config.controller.dh_group = group;
      config.controller.reactor.enabled = reactor;
      realm_->add_node("node" + std::to_string(i), config);
    }
    auto status = realm_->start();
    if (!status.ok()) {
      std::fprintf(stderr, "realm start failed: %s\n",
                   status.to_string().c_str());
      std::abort();
    }
  }

  ~BenchRealm() { realm_->stop(); }

  nsock::NapletRuntime& node(int i) {
    return realm_->node("node" + std::to_string(i));
  }
  nsock::SocketController& ctrl(int i) { return node(i).controller(); }
  agent::LocationService& locations() { return realm_->locations(); }

  agent::AgentId pseudo_agent(const std::string& name, int node_index) {
    agent::AgentId id(name);
    locations().register_agent(id, node(node_index).server().node_info());
    return id;
  }

  /// Full pseudo-migration of an agent's sessions between nodes; returns
  /// elapsed milliseconds. `agent_cost` models the shipping of the agent's
  /// code and state (the paper's Ta-migrate, ~220 ms on its testbed),
  /// which the pseudo-agent harness otherwise skips.
  double migrate(const agent::AgentId& id, int from, int to,
                 util::Duration agent_cost = {}) {
    util::Stopwatch sw(util::RealClock::instance());
    locations().begin_migration(id);
    auto st = ctrl(from).prepare_migration(id);
    if (!st.ok()) {
      // Abort the hop: keep the agent (and its suspended sessions) where
      // they are and resume them, mirroring AgentServer's rollback.
      std::fprintf(stderr, "bench migrate (prepare) failed: %s\n",
                   st.to_string().c_str());
      locations().register_agent(id, node(from).server().node_info());
      (void)ctrl(from).complete_migration(id);
      return sw.elapsed_ms();
    }
    const util::Bytes sessions = ctrl(from).export_sessions(id);
    if (agent_cost.count() > 0) {
      util::RealClock::instance().sleep_for(agent_cost);
    }
    st = ctrl(to).import_sessions(
        id, util::ByteSpan(sessions.data(), sessions.size()));
    locations().register_agent(id, node(to).server().node_info());
    if (st.ok()) st = ctrl(to).complete_migration(id);
    if (!st.ok()) {
      std::fprintf(stderr, "bench migrate failed: %s\n",
                   st.to_string().c_str());
    }
    return sw.elapsed_ms();
  }

 private:
  std::unique_ptr<nsock::Realm> realm_;
};

/// Two ESTABLISHED sessions wired directly over a stream pair — the
/// data-path microbenchmark harness (no handshake, control channel, or
/// migration machinery in the loop).
struct WiredSessionPair {
  nsock::SessionPtr a;  // client/sender side
  nsock::SessionPtr b;  // server/receiver side
};

inline void drive_established(nsock::Session& s, bool client) {
  using nsock::ConnEvent;
  if (client) {
    (void)s.advance(ConnEvent::kAppConnect);
    (void)s.advance(ConnEvent::kRecvConnectAck);
  } else {
    (void)s.advance(ConnEvent::kAppListen);
    (void)s.advance(ConnEvent::kRecvConnect);
    (void)s.advance(ConnEvent::kRecvAttach);
  }
  if (s.state() != nsock::ConnState::kEstablished) std::abort();
}

inline WiredSessionPair wire_session_pair(net::StreamPtr client,
                                          net::StreamPtr server) {
  WiredSessionPair pair;
  pair.a = std::make_shared<nsock::Session>(1, 2, true, agent::AgentId("alice"),
                                            agent::AgentId("bob"));
  pair.b = std::make_shared<nsock::Session>(1, 2, false, agent::AgentId("bob"),
                                            agent::AgentId("alice"));
  pair.a->attach_stream(std::shared_ptr<net::Stream>(std::move(client)));
  pair.b->attach_stream(std::shared_ptr<net::Stream>(std::move(server)));
  drive_established(*pair.a, true);
  drive_established(*pair.b, false);
  return pair;
}

/// Session pair over the Sim backend (in-process pipes, zero latency):
/// isolates the CPU cost of the data path.
inline WiredSessionPair sim_session_pair(net::SimNet& net) {
  auto node_a = net.add_node("a");
  auto node_b = net.add_node("b");
  auto listener = node_b->listen(1);
  if (!listener.ok()) std::abort();
  auto client = node_a->connect(net::Endpoint{"b", 1}, 1s);
  auto server = (*listener)->accept(1s);
  if (!client.ok() || !server.ok()) std::abort();
  return wire_session_pair(std::move(*client), std::move(*server));
}

/// Session pair over real TCP loopback: adds syscall cost.
inline WiredSessionPair tcp_session_pair(net::TcpNetwork& network) {
  auto listener = network.listen(0);
  if (!listener.ok()) std::abort();
  auto client = network.connect((*listener)->local_endpoint(), 2s);
  auto server = (*listener)->accept(2s);
  if (!client.ok() || !server.ok()) std::abort();
  return wire_session_pair(std::move(*client), std::move(*server));
}

/// Fixed-width table printing.
inline void print_header(const std::string& title,
                         const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : columns) std::printf("%18s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%18s", "---");
  std::printf("\n");
}

inline void print_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%18s", c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

/// True when NAPLET_BENCH_FAST is set: shrink sweeps for smoke runs.
inline bool fast_mode() {
  const char* env = std::getenv("NAPLET_BENCH_FAST");
  return env != nullptr && env[0] != '0';
}

/// True when `flag` (e.g. "--reactor") was passed on the command line.
inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

/// True when `--json` was passed: benches additionally write their results
/// to a BENCH_<name>.json file so the perf trajectory is trackable across
/// PRs (EXPERIMENTS.md records the human-readable tables).
inline bool json_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return true;
  }
  return false;
}

/// Minimal JSON object builder — enough structure for bench results
/// (numbers, strings, and pre-rendered nested values), no dependency.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return raw(key, buf);
  }
  JsonObject& field(const std::string& key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& field(const std::string& key, const std::string& v) {
    return raw(key, "\"" + v + "\"");
  }
  /// Insert an already-rendered JSON value (nested object/array).
  JsonObject& raw(const std::string& key, const std::string& value) {
    if (!first_) body_ += ",";
    first_ = false;
    body_ += "\"" + key + "\":" + value;
    return *this;
  }

  [[nodiscard]] std::string render() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
  bool first_ = true;
};

inline std::string json_array(const std::vector<std::string>& elements) {
  std::string out = "[";
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i) out += ",";
    out += elements[i];
  }
  return out + "]";
}

inline void write_json_file(const std::string& path,
                            const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(content.c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace naplet::bench
