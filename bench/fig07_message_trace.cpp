// Reproduces paper Figure 7 (§4.1): the message trace demonstrating
// reliable communication. A stationary agent A streams counter messages to
// a mobile agent B, which migrates three times mid-stream. The trace shows
// each counter's arrival time and whether it was read from the socket
// stream (dark dots in the paper) or replayed from the NapletSocket
// message buffer after travelling with the agent (light dots).
//
// Invariants demonstrated: no loss, no duplication, strict order.
#include <thread>

#include "bench/bench_util.hpp"

int main() {
  using namespace naplet::bench;
  namespace nsock = naplet::nsock;

  std::printf("Figure 7 reproduction: reliable delivery trace across three "
              "migrations\n");

  BenchRealm realm(4, /*security=*/false);
  auto sender = realm.pseudo_agent("A", 0);
  auto mobile = realm.pseudo_agent("B", 1);

  if (!realm.ctrl(1).listen(mobile).ok()) std::abort();
  auto client = realm.ctrl(0).connect(sender, mobile);
  if (!client.ok()) std::abort();
  auto accepted = realm.ctrl(1).accept(mobile, 5s);
  if (!accepted.ok()) std::abort();
  const std::uint64_t conn_id = (*client)->conn_id();

  const int total = fast_mode() ? 40 : 60;
  std::thread pump([&] {
    for (int i = 0; i < total; ++i) {
      naplet::util::BytesWriter w;
      w.u32(static_cast<std::uint32_t>(i));
      if (!(*client)
               ->send(naplet::util::ByteSpan(w.data().data(),
                                             w.data().size()),
                      30s)
               .ok()) {
        std::abort();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  naplet::util::Stopwatch clock(naplet::util::RealClock::instance());
  std::printf("\n%10s %10s %10s   %s\n", "time(ms)", "counter", "source",
              "note");

  int receiver_node = 1;
  int received = 0;
  int replayed = 0;
  bool in_order = true;
  const int hop_targets[] = {2, 3, 1};
  int next_hop_index = 0;

  while (received < total) {
    // Migrate every total/4 messages, three times, mid-stream.
    if (next_hop_index < 3 && received >= (next_hop_index + 1) * total / 4) {
      // Let a few messages accumulate in flight before the hop.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      const int to = hop_targets[next_hop_index];
      const double ms = realm.migrate(mobile, receiver_node, to);
      std::printf("%10s %10s %10s   agent B migrated node%d -> node%d "
                  "(%.2f ms)\n",
                  fmt(clock.elapsed_ms(), 1).c_str(), "-", "-",
                  receiver_node, to, ms);
      receiver_node = to;
      ++next_hop_index;
    }

    auto side = realm.ctrl(receiver_node).session_by_id(conn_id);
    if (!side) std::abort();
    auto got = side->recv(10s);
    if (!got.ok()) {
      std::fprintf(stderr, "recv failed: %s\n",
                   got.status().to_string().c_str());
      return 1;
    }
    naplet::util::BytesReader r(
        naplet::util::ByteSpan(got->body.data(), got->body.size()));
    const std::uint32_t counter = *r.u32();
    if (counter != static_cast<std::uint32_t>(received)) in_order = false;
    std::printf("%10s %10u %10s\n", fmt(clock.elapsed_ms(), 1).c_str(),
                counter, got->from_buffer ? "buffer" : "socket");
    if (got->from_buffer) ++replayed;
    ++received;
  }
  pump.join();

  auto side = realm.ctrl(receiver_node).session_by_id(conn_id);
  const bool extra = side && side->recv(100ms).ok();

  std::printf("\nsummary: received %d/%d, %d replayed from the migrated "
              "buffer, order %s, duplicates %s\n",
              received, total, replayed, in_order ? "PRESERVED" : "BROKEN",
              extra ? "FOUND (FAIL)" : "none");
  std::printf("shape checks:\n");
  std::printf("  all messages delivered : %s\n",
              received == total ? "PASS" : "FAIL");
  std::printf("  strict order           : %s\n", in_order ? "PASS" : "FAIL");
  std::printf("  exactly once           : %s\n", extra ? "FAIL" : "PASS");
  std::printf("  buffered replays >= 1  : %s (%d)\n",
              replayed > 0 ? "PASS" : "FAIL", replayed);
  return (received == total && in_order && !extra) ? 0 : 1;
}
