// Reproduces paper Figure 13 (§5.2): connection-migration overhead — the
// fraction of all messages that are protocol control messages — as a
// function of the data-message exchange rate lambda, for relative rates
// r = lambda/mu in {1, 2, 5, 10, 20}.
//
// Paper findings: for fixed r, overhead falls as the exchange rate grows
// (the persistent connection's maintenance traffic amortizes); at r = 1
// (one message per host) the overhead stays above 80% no matter how fast
// the agents communicate.
#include <cstdio>
#include <vector>

#include "sim/overhead.hpp"

int main() {
  using namespace naplet::sim;

  std::printf("Figure 13 reproduction: connection-migration overhead vs "
              "message exchange rate\n");

  const std::vector<double> rates = {2, 5, 10, 20, 40, 60, 80, 100};
  const std::vector<double> ratios = {1, 2, 5, 10, 20};

  std::printf("\n%14s", "rate (1/unit)");
  for (double r : ratios) std::printf("        r = %-6.0f", r);
  std::printf("\n");

  double r1_min = 1.0;
  double first_r10 = 0, last_r10 = 0;
  for (double lambda : rates) {
    std::printf("%14.0f", lambda);
    for (double r : ratios) {
      OverheadConfig config;
      config.message_rate = lambda;
      config.relative_rate = r;
      config.sim_time = 50000;
      config.seed = 11;
      const OverheadResult result = simulate_overhead(config);
      std::printf("%16.3f", result.overhead());
      if (r == 1.0) r1_min = std::min(r1_min, result.overhead());
      if (r == 10.0) {
        if (first_r10 == 0) first_r10 = result.overhead();
        last_r10 = result.overhead();
      }
    }
    std::printf("\n");
  }

  std::printf("\nshape checks:\n");
  std::printf("  r=1 overhead always > 80%% : %s (min %.3f)\n",
              r1_min > 0.80 ? "PASS" : "FAIL", r1_min);
  std::printf("  overhead falls with rate (r=10): %s (%.3f -> %.3f)\n",
              last_r10 < first_r10 ? "PASS" : "FAIL", first_r10, last_r10);
  return 0;
}
