// Data-path hot loop: per-message cost of Session::send / Session::recv
// with everything else (handshake, control channel, migration) stripped
// away. Two sessions are wired directly over a stream — the Sim backend
// (in-process pipes, zero latency) isolates CPU cost per message; the TCP
// loopback backend adds real syscalls.
//
// This is the microbenchmark behind the zero-copy vectored data path: it
// reports throughput plus the session data-path counters (payload bytes
// copied, transport write/read ops, receive wakeups, frames coalesced) so
// a regression in any of them is visible immediately.
#include <thread>

#include "bench/bench_util.hpp"

namespace naplet::bench {
namespace {

struct HotloopResult {
  double msgs_per_sec = 0;
  double mbps = 0;
  nsock::DataPathStats tx{};  // sender-side counters
  nsock::DataPathStats rx{};  // receiver-side counters
};

HotloopResult run_hotloop(WiredSessionPair pair, std::size_t msg_size,
                          std::size_t count) {
  const util::Bytes payload(msg_size, 0x42);
  util::Stopwatch sw(util::RealClock::instance());
  std::thread writer([&] {
    for (std::size_t i = 0; i < count; ++i) {
      if (!pair.a->send(util::ByteSpan(payload.data(), payload.size()), 60s)
               .ok()) {
        std::abort();
      }
    }
  });
  for (std::size_t i = 0; i < count; ++i) {
    if (!pair.b->recv(60s).ok()) std::abort();
  }
  writer.join();
  const double ms = sw.elapsed_ms();

  HotloopResult result;
  result.msgs_per_sec = static_cast<double>(count) / (ms / 1000.0);
  result.mbps = static_cast<double>(count * msg_size) * 8.0 / 1e6 /
                (ms / 1000.0);
  result.tx = pair.a->data_stats();
  result.rx = pair.b->data_stats();
  return result;
}

HotloopResult sim_hotloop(std::size_t msg_size, std::size_t count) {
  net::SimNet net;
  return run_hotloop(sim_session_pair(net), msg_size, count);
}

HotloopResult tcp_hotloop(std::size_t msg_size, std::size_t count) {
  net::TcpNetwork network;
  return run_hotloop(tcp_session_pair(network), msg_size, count);
}

}  // namespace
}  // namespace naplet::bench

int main(int argc, char** argv) {
  using namespace naplet::bench;

  std::printf("Data-path hot loop: Session::send/recv per-message cost "
              "(Sim = CPU only, TCP = loopback syscalls)\n");

  const std::vector<std::size_t> sizes = fast_mode()
                                             ? std::vector<std::size_t>{64}
                                             : std::vector<std::size_t>{
                                                   16, 64, 256, 1024, 4096};
  const std::size_t count = fast_mode() ? 20'000 : 100'000;

  print_header("hot loop (messages: " + std::to_string(count) + " per point)",
               {"backend", "msg size (B)", "msgs/s", "Mb/s", "copied B/msg",
                "writes/msg", "wakeups"});
  std::vector<std::string> json_points;
  for (std::size_t size : sizes) {
    for (const bool sim : {true, false}) {
      auto r = sim ? sim_hotloop(size, count) : tcp_hotloop(size, count);
      const double copied_per_msg =
          static_cast<double>(r.tx.payload_bytes_copied) /
          static_cast<double>(count);
      const double writes_per_msg =
          static_cast<double>(r.tx.stream_write_ops) /
          static_cast<double>(count);
      print_row({sim ? "sim" : "tcp", std::to_string(size),
                 fmt(r.msgs_per_sec, 0), fmt(r.mbps, 1),
                 fmt(copied_per_msg, 2), fmt(writes_per_msg, 2),
                 std::to_string(r.rx.recv_wakeups)});
      json_points.push_back(
          JsonObject()
              .field("backend", std::string(sim ? "sim" : "tcp"))
              .field("msg_size", static_cast<std::uint64_t>(size))
              .field("msgs_per_sec", r.msgs_per_sec)
              .field("mbps", r.mbps)
              .field("payload_bytes_copied", r.tx.payload_bytes_copied)
              .field("stream_write_ops", r.tx.stream_write_ops)
              .field("stream_read_ops", r.rx.stream_read_ops)
              .field("recv_wakeups", r.rx.recv_wakeups)
              .field("frames_coalesced", r.rx.frames_coalesced)
              .render());
    }
  }

  if (json_flag(argc, argv)) {
    write_json_file("BENCH_data_path.json",
                    JsonObject()
                        .field("bench", std::string("data_path_hotloop"))
                        .field("messages_per_point",
                               static_cast<std::uint64_t>(count))
                        .raw("points", json_array(json_points))
                        .render());
  }
  return 0;
}
