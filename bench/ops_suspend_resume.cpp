// Reproduces the §4.2 text numbers: the cost of suspend and resume
// operations, and the headline comparison — keeping a connection alive
// with suspend+resume versus closing before migration and reopening after.
//
// Paper: suspend 27.8 ms, resume 16.9 ms (handshaking ≈50% and ≈70% of
// those); close+reopen ≈147 ms vs suspend+resume < 1/3 of that.
//
// With --json, also emits per-phase p50/p95/p99 pulled from the
// controller's metric histograms (suspend latency, drain, handoff, resume,
// and the connect breakdown) — the EXPERIMENTS.md migration-latency-
// breakdown recipe reads these.
#include "bench/bench_util.hpp"
#include "obs/metrics.hpp"

namespace naplet::bench {
namespace {

struct Costs {
  double suspend_ms;
  double resume_ms;
  double close_reopen_ms;
  obs::Snapshot metrics;  // mover-side registry after the sweep
};

Costs measure(int iterations, bool reactor) {
  BenchRealm realm(2, /*security=*/true, crypto::DhGroup::kModp2048, reactor);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  if (!realm.ctrl(1).listen(bob).ok()) std::abort();

  auto client = realm.ctrl(0).connect(alice, bob);
  if (!client.ok()) std::abort();
  auto server = realm.ctrl(1).accept(bob, 5s);
  if (!server.ok()) std::abort();

  std::vector<double> suspend_ms, resume_ms;
  for (int i = 0; i < iterations; ++i) {
    util::Stopwatch sw(util::RealClock::instance());
    if (!realm.ctrl(0).suspend(*client).ok()) std::abort();
    suspend_ms.push_back(sw.elapsed_ms());

    sw.reset();
    if (!realm.ctrl(0).resume(*client).ok()) std::abort();
    resume_ms.push_back(sw.elapsed_ms());
  }
  (void)realm.ctrl(0).close(*client);

  // close + reopen: the alternative strategy around each migration.
  std::vector<double> close_reopen_ms;
  for (int i = 0; i < iterations; ++i) {
    auto conn = realm.ctrl(0).connect(alice, bob);
    if (!conn.ok()) std::abort();
    auto acc = realm.ctrl(1).accept(bob, 5s);
    if (!acc.ok()) std::abort();

    util::Stopwatch sw(util::RealClock::instance());
    if (!realm.ctrl(0).close(*conn).ok()) std::abort();
    auto reconn = realm.ctrl(0).connect(alice, bob);
    if (!reconn.ok()) std::abort();
    auto reacc = realm.ctrl(1).accept(bob, 5s);
    if (!reacc.ok()) std::abort();
    close_reopen_ms.push_back(sw.elapsed_ms());
    (void)realm.ctrl(0).close(*reconn);
  }

  return {mean(suspend_ms), mean(resume_ms), mean(close_reopen_ms),
          realm.ctrl(0).metrics().snapshot()};
}

/// The per-phase histograms worth breaking out (all in microseconds).
const std::vector<std::pair<std::string, std::string>>& phase_histograms() {
  static const std::vector<std::pair<std::string, std::string>> kPhases = {
      {"suspend", "nsock_suspend_latency_us"},
      {"drain", "nsock_drain_time_us"},
      {"handoff", "nsock_handoff_time_us"},
      {"resume", "nsock_resume_latency_us"},
      {"connect_total", "nsock_connect_total_us"},
      {"connect_management", "nsock_connect_management_us"},
      {"connect_security", "nsock_connect_security_us"},
      {"connect_key_exchange", "nsock_connect_key_exchange_us"},
      {"connect_handshake", "nsock_connect_handshake_us"},
      {"connect_open_socket", "nsock_connect_open_socket_us"},
  };
  return kPhases;
}

std::string phase_json(const obs::HistogramSnapshot& h) {
  return JsonObject()
      .field("count", h.count)
      .field("mean_us", h.mean())
      .field("p50_us", h.percentile(50))
      .field("p95_us", h.percentile(95))
      .field("p99_us", h.percentile(99))
      .render();
}

}  // namespace
}  // namespace naplet::bench

int main(int argc, char** argv) {
  using namespace naplet::bench;
  const int iterations = fast_mode() ? 10 : 100;
  // --reactor moves the controllers onto the epoll/timer-wheel loop
  // (DESIGN.md §15); the measured operations and JSON keys are identical,
  // so the two modes diff directly.
  const bool reactor = has_flag(argc, argv, "--reactor");

  std::printf("§4.2 reproduction: suspend/resume primitive costs "
              "(%d iterations, %s mode)\n",
              iterations, reactor ? "reactor" : "threaded");
  std::printf("Paper: suspend 27.8 ms, resume 16.9 ms, close+reopen ~147 ms "
              "(suspend+resume < 1/3 of close+reopen)\n");

  const Costs costs = measure(iterations, reactor);
  const double migrate_cost = costs.suspend_ms + costs.resume_ms;

  print_header("Suspend/resume vs close+reopen (measured)",
               {"operation", "mean (ms)"});
  print_row({"suspend", fmt(costs.suspend_ms, 3)});
  print_row({"resume", fmt(costs.resume_ms, 3)});
  print_row({"suspend+resume", fmt(migrate_cost, 3)});
  print_row({"close+reopen", fmt(costs.close_reopen_ms, 3)});

  // Phase breakdown from the controller's own histograms: where each
  // operation's time actually goes (paper §4.2 attributes ~50%/~70% of
  // suspend/resume to handshaking; the connect_* rows replot Fig. 9).
  print_header("Migration phase breakdown (controller histograms, µs)",
               {"phase", "count", "p50", "p95", "p99"});
  for (const auto& [label, name] : phase_histograms()) {
    const auto* h = costs.metrics.histogram(name);
    if (h == nullptr || h->count == 0) continue;
    print_row({label, std::to_string(h->count), fmt(h->percentile(50), 0),
               fmt(h->percentile(95), 0), fmt(h->percentile(99), 0)});
  }

  std::printf("\nshape checks:\n");
  std::printf("  suspend+resume < close+reopen : %s (%.3f < %.3f)\n",
              migrate_cost < costs.close_reopen_ms ? "PASS" : "FAIL",
              migrate_cost, costs.close_reopen_ms);
  std::printf("  ratio suspend+resume / close+reopen = %.2f  (paper: < 0.33)\n",
              migrate_cost / costs.close_reopen_ms);

  if (json_flag(argc, argv)) {
    JsonObject obj;
    obj.field("bench", std::string("ops_suspend_resume"))
        .field("mode", std::string(reactor ? "reactor" : "threaded"))
        .field("iterations", static_cast<std::uint64_t>(iterations))
        .field("suspend_ms", costs.suspend_ms)
        .field("resume_ms", costs.resume_ms)
        .field("suspend_resume_ms", migrate_cost)
        .field("close_reopen_ms", costs.close_reopen_ms);
    for (const auto& [label, name] : phase_histograms()) {
      const auto* h = costs.metrics.histogram(name);
      if (h == nullptr) continue;
      obj.raw(label, phase_json(*h));
    }
    // Distinct file per mode so a reactor run does not clobber the
    // threaded baseline it is compared against.
    write_json_file(reactor ? "BENCH_ops_suspend_resume_reactor.json"
                            : "BENCH_ops_suspend_resume.json",
                    obj.render());
  }
  return 0;
}
