// Reproduces the §4.2 text numbers: the cost of suspend and resume
// operations, and the headline comparison — keeping a connection alive
// with suspend+resume versus closing before migration and reopening after.
//
// Paper: suspend 27.8 ms, resume 16.9 ms (handshaking ≈50% and ≈70% of
// those); close+reopen ≈147 ms vs suspend+resume < 1/3 of that.
#include "bench/bench_util.hpp"

namespace naplet::bench {
namespace {

struct Costs {
  double suspend_ms;
  double resume_ms;
  double close_reopen_ms;
};

Costs measure(int iterations) {
  BenchRealm realm(2, /*security=*/true);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  if (!realm.ctrl(1).listen(bob).ok()) std::abort();

  auto client = realm.ctrl(0).connect(alice, bob);
  if (!client.ok()) std::abort();
  auto server = realm.ctrl(1).accept(bob, 5s);
  if (!server.ok()) std::abort();

  std::vector<double> suspend_ms, resume_ms;
  for (int i = 0; i < iterations; ++i) {
    util::Stopwatch sw(util::RealClock::instance());
    if (!realm.ctrl(0).suspend(*client).ok()) std::abort();
    suspend_ms.push_back(sw.elapsed_ms());

    sw.reset();
    if (!realm.ctrl(0).resume(*client).ok()) std::abort();
    resume_ms.push_back(sw.elapsed_ms());
  }
  (void)realm.ctrl(0).close(*client);

  // close + reopen: the alternative strategy around each migration.
  std::vector<double> close_reopen_ms;
  for (int i = 0; i < iterations; ++i) {
    auto conn = realm.ctrl(0).connect(alice, bob);
    if (!conn.ok()) std::abort();
    auto acc = realm.ctrl(1).accept(bob, 5s);
    if (!acc.ok()) std::abort();

    util::Stopwatch sw(util::RealClock::instance());
    if (!realm.ctrl(0).close(*conn).ok()) std::abort();
    auto reconn = realm.ctrl(0).connect(alice, bob);
    if (!reconn.ok()) std::abort();
    auto reacc = realm.ctrl(1).accept(bob, 5s);
    if (!reacc.ok()) std::abort();
    close_reopen_ms.push_back(sw.elapsed_ms());
    (void)realm.ctrl(0).close(*reconn);
  }

  return {mean(suspend_ms), mean(resume_ms), mean(close_reopen_ms)};
}

}  // namespace
}  // namespace naplet::bench

int main() {
  using namespace naplet::bench;
  const int iterations = fast_mode() ? 10 : 100;

  std::printf("§4.2 reproduction: suspend/resume primitive costs "
              "(%d iterations)\n", iterations);
  std::printf("Paper: suspend 27.8 ms, resume 16.9 ms, close+reopen ~147 ms "
              "(suspend+resume < 1/3 of close+reopen)\n");

  const Costs costs = measure(iterations);
  const double migrate_cost = costs.suspend_ms + costs.resume_ms;

  print_header("Suspend/resume vs close+reopen (measured)",
               {"operation", "mean (ms)"});
  print_row({"suspend", fmt(costs.suspend_ms, 3)});
  print_row({"resume", fmt(costs.resume_ms, 3)});
  print_row({"suspend+resume", fmt(migrate_cost, 3)});
  print_row({"close+reopen", fmt(costs.close_reopen_ms, 3)});

  std::printf("\nshape checks:\n");
  std::printf("  suspend+resume < close+reopen : %s (%.3f < %.3f)\n",
              migrate_cost < costs.close_reopen_ms ? "PASS" : "FAIL",
              migrate_cost, costs.close_reopen_ms);
  std::printf("  ratio suspend+resume / close+reopen = %.2f  (paper: < 0.33)\n",
              migrate_cost / costs.close_reopen_ms);
  return 0;
}
