// Reproduces paper Figure 10(a) (§4.3): effective throughput of a pair of
// communicating agents under the single-migration pattern, as the mobile
// agent's per-host service (dwell) time varies.
//
// Paper finding: throughput climbs with dwell time and approaches the
// no-migration level once an agent stays long enough at each host (the
// fixed per-hop migration cost amortizes away).
//
// Scaling note: the paper's testbed had ~265 ms of per-hop cost against
// dwell times of 1-30 s. Our per-hop cost is a few ms on loopback, so the
// dwell sweep is scaled down proportionally; the curve shape is preserved.
#include <atomic>
#include <thread>

#include "bench/bench_util.hpp"

namespace naplet::bench {
namespace {

constexpr std::size_t kMsgSize = 2048;  // paper: constant 2 KB messages
// Scaled analog of the paper's Ta-migrate (code/state shipping).
constexpr util::Duration kAgentCost = std::chrono::milliseconds(20);

struct Throughput {
  double mbps;
};

/// Pump continuously for `dwell_ms` per host across `hops` migrations and
/// report effective throughput over the whole run.
Throughput run_pattern(int hops, double dwell_ms) {
  BenchRealm realm(4, /*security=*/false);
  auto sender = realm.pseudo_agent("A", 0);
  auto mobile = realm.pseudo_agent("B", 1);
  if (!realm.ctrl(1).listen(mobile).ok()) std::abort();
  auto client = realm.ctrl(0).connect(sender, mobile);
  if (!client.ok()) std::abort();
  auto accepted = realm.ctrl(1).accept(mobile, 5s);
  if (!accepted.ok()) std::abort();
  const std::uint64_t conn_id = (*client)->conn_id();

  const util::Bytes payload(kMsgSize, 0x55);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bytes_sent{0};

  std::thread pump([&] {
    while (!stop.load()) {
      if ((*client)
              ->send(util::ByteSpan(payload.data(), payload.size()), 60s)
              .ok()) {
        bytes_sent.fetch_add(payload.size());
      } else {
        break;
      }
    }
  });

  // Receiver loop runs on this thread, interleaved with migrations.
  int node = 1;
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<bool> rx_stop{false};
  std::atomic<int> rx_node{1};
  std::thread sink([&] {
    while (!rx_stop.load()) {
      auto side = realm.ctrl(rx_node.load()).session_by_id(conn_id);
      if (!side) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      auto got = side->recv(std::chrono::milliseconds(50));
      if (got.ok()) bytes_received.fetch_add(got->body.size());
    }
  });

  util::Stopwatch sw(util::RealClock::instance());
  for (int hop = 0; hop < hops; ++hop) {
    util::RealClock::instance().sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(dwell_ms * 1000)));
    const int next = 1 + (node % 3);
    realm.migrate(mobile, node, next, kAgentCost);
    node = next;
    rx_node.store(node);
  }
  util::RealClock::instance().sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(dwell_ms * 1000)));
  const double elapsed_ms = sw.elapsed_ms();

  // Stop the pump first while the sink still drains: a writer blocked on
  // TCP backpressure needs the reader alive to finish its final send.
  stop.store(true);
  pump.join();
  rx_stop.store(true);
  sink.join();
  (void)realm.ctrl(0).close(realm.ctrl(0).session_by_id(conn_id)
                                ? realm.ctrl(0).session_by_id(conn_id)
                                : *client);

  return Throughput{static_cast<double>(bytes_received.load()) * 8.0 / 1e6 /
                    (elapsed_ms / 1000.0)};
}

}  // namespace
}  // namespace naplet::bench

int main() {
  using namespace naplet::bench;

  std::printf("Figure 10(a) reproduction: effective throughput vs agent "
              "service time (single migration pattern, 2 KB messages)\n");
  std::printf("Paper finding: throughput rises with dwell time and "
              "approaches the stationary level at long dwells\n");

  const int hops = 3;
  const std::vector<double> dwells_ms =
      fast_mode() ? std::vector<double>{20, 100, 400}
                  : std::vector<double>{10, 25, 50, 100, 250, 500, 1000};

  // Stationary baseline: same pump, no migration, for 1 s.
  const double baseline = run_pattern(0, fast_mode() ? 300 : 1000).mbps;

  print_header("Figure 10(a) (measured)",
               {"dwell (ms)", "Mb/s", "% of baseline"});
  std::vector<double> series;
  for (double dwell : dwells_ms) {
    const double tput = run_pattern(hops, dwell).mbps;
    series.push_back(tput);
    print_row({fmt(dwell, 0), fmt(tput, 1),
               fmt(100.0 * tput / baseline, 1)});
  }
  print_row({"no migration", fmt(baseline, 1), "100.0"});

  const bool monotone_ish = series.back() > series.front();
  const bool approaches = series.back() > 0.7 * baseline;
  std::printf("\nshape checks:\n");
  std::printf("  throughput rises with dwell time : %s (%.1f -> %.1f)\n",
              monotone_ish ? "PASS" : "FAIL", series.front(), series.back());
  std::printf("  long dwell approaches baseline   : %s (%.0f%% of baseline)\n",
              approaches ? "PASS" : "FAIL",
              100.0 * series.back() / baseline);
  return 0;
}
